//! Umbrella crate for the `vmcw` workspace.
//!
//! This crate exists so that the repository root can host runnable examples
//! (`examples/`) and cross-crate integration tests (`tests/`). All library
//! functionality lives in the `crates/` workspace members and is re-exported
//! through [`vmcw_core`].

pub use vmcw_cluster as cluster;
pub use vmcw_consolidation as consolidation;
pub use vmcw_core as core;
pub use vmcw_emulator as emulator;
pub use vmcw_migration as migration;
pub use vmcw_trace as trace;
