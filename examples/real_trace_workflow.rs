//! The adoption path for real monitored traces: export, inspect, re-load,
//! analyse, plan.
//!
//! A user with their own data-center monitoring data writes it in the
//! documented CSV schema (`vmcw_trace::io::HEADER`) and runs exactly this
//! workflow — here the generator stands in for the real data center.
//!
//! ```text
//! cargo run --release --example real_trace_workflow
//! ```

use vmcw_repro::consolidation::planner::PlannerKind;
use vmcw_repro::core::prelude::*;
use vmcw_repro::trace::{analysis, io};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. "Monitor": here, generate a month of traces and dump them as CSV
    //    — the same file a real monitoring warehouse would export.
    let workload = GeneratorConfig::new(DataCenterId::Beverage)
        .scale(0.05)
        .days(21)
        .generate(7);
    let dir = std::env::temp_dir().join("vmcw-real-trace-demo");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("beverage.csv");
    io::save(&workload, &path)?;
    println!(
        "exported {} servers x {} days -> {} ({} KiB)",
        workload.servers.len(),
        workload.days,
        path.display(),
        std::fs::metadata(&path)?.len() / 1024,
    );

    // 2. Load it back, as a user with real traces would.
    let loaded = io::load(DataCenterId::Beverage, &path)?;
    println!(
        "re-loaded {} servers, {} hours each\n",
        loaded.servers.len(),
        loaded.hours()
    );

    // 3. Pre-consolidation analysis (§7: "a comprehensive consolidation
    //    planning analysis prior to VM consolidation in the wild").
    let series: Vec<&vmcw_repro::trace::series::TimeSeries> =
        loaded.servers.iter().map(|s| &s.cpu_used_frac).collect();
    let hist = analysis::peak_hour_histogram(series.iter().copied());
    let peak_hour = (0..24).max_by_key(|&h| hist[h]).unwrap();
    let stability = analysis::correlation_stability(&series, loaded.hours() / 2).unwrap_or(0.0);
    println!(
        "most common peak hour : {peak_hour}:00 ({} of {} servers)",
        hist[peak_hour],
        loaded.servers.len()
    );
    println!("correlation stability : {stability:.3} (>0.5 favours stochastic consolidation)");

    // 4. Plan on the loaded traces.
    let config = StudyConfig {
        scale: 1.0, // the loaded workload is used as-is
        history_days: 14,
        eval_days: 7,
        ..StudyConfig::paper_baseline(DataCenterId::Beverage, 0)
    };
    let study = Study::from_workload(&config, loaded);
    println!();
    for kind in PlannerKind::EVALUATED {
        let run = study.run(kind)?;
        println!(
            "{:<12} {:>4} hosts  {:>8.1} kWh  {:>6} migrations",
            kind.label(),
            run.cost.provisioned_hosts,
            run.cost.energy_kwh,
            run.report.migrations,
        );
    }
    Ok(())
}
