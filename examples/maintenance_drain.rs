//! Maintenance drain: evacuate a host with live migration before a
//! maintenance window — the production use of live migration the paper
//! observes in the wild (§1.2), as opposed to dynamic consolidation.
//!
//! ```text
//! cargo run --release --example maintenance_drain
//! ```

use vmcw_repro::consolidation::drain::plan_drain;
use vmcw_repro::core::prelude::*;
use vmcw_repro::migration::precopy::PrecopyConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = StudyConfig {
        scale: 0.10,
        ..StudyConfig::paper_baseline(DataCenterId::NaturalResources, 42)
    };
    let study = Study::prepare(&config);
    let plan = config.planner.plan_stochastic(study.input())?;
    let placement = plan.placements.at_hour(0);

    // Drain the busiest host at the quietest hour of the first day.
    let host = placement.active_hosts()[0];
    println!(
        "Draining {host} ({} VMs) out of a {}-host stochastic placement\n",
        placement.vms_on(host).len(),
        plan.provisioned_hosts(),
    );

    for (label, fabric) in [
        ("1 GbE", PrecopyConfig::gigabit()),
        ("10 GbE", PrecopyConfig::ten_gigabit()),
    ] {
        let drain = plan_drain(
            study.input(),
            placement,
            host,
            &plan.dc,
            4,
            (1.0, 1.0),
            &fabric,
        )?;
        println!(
            "{label:>7}: {} migrations, {:.1} min wall clock, {:.0} MB moved, {} failed",
            drain.moves.len(),
            drain.duration_secs() / 60.0,
            drain.schedule.total_copied_mb(),
            drain.schedule.failed(),
        );
    }

    let drain = plan_drain(
        study.input(),
        placement,
        host,
        &plan.dc,
        4,
        (1.0, 1.0),
        &PrecopyConfig::gigabit(),
    )?;
    println!("\nFirst moves:");
    for (vm, dest) in drain.moves.iter().take(5) {
        println!("  {vm} -> {dest}");
    }
    Ok(())
}
