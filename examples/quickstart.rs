//! Quickstart: generate a data-center workload, plan it three ways,
//! emulate the plans, and print the headline comparison.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use vmcw_repro::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A 10%-scale Banking data center: 30 days of planning history plus
    // the paper's 14-day evaluation window (Table 3).
    let config = StudyConfig {
        scale: 0.10,
        ..StudyConfig::paper_baseline(DataCenterId::Banking, 42)
    };
    let study = Study::prepare(&config);
    println!(
        "Generated {} servers of the {} workload ({} days of hourly traces)\n",
        study.workload().servers.len(),
        config.dc,
        config.total_days(),
    );

    let baseline = study.run(PlannerKind::SemiStatic)?;
    println!(
        "{:<12} {:>8} {:>12} {:>12} {:>12}",
        "planner", "hosts", "space(norm)", "power(norm)", "migrations"
    );
    for kind in PlannerKind::EVALUATED {
        let run = study.run(kind)?;
        let (space, power) = run.cost.normalized_to(&baseline.cost);
        println!(
            "{:<12} {:>8} {:>12.3} {:>12.3} {:>12}",
            kind.label(),
            run.cost.provisioned_hosts,
            space,
            power,
            run.report.migrations,
        );
    }
    println!(
        "\nThe stochastic planner needs the fewest servers (space), while the\n\
         dynamic planner — handicapped by its 20% live-migration reservation —\n\
         wins on power by switching servers off in quiet intervals (§5.4)."
    );
    Ok(())
}
