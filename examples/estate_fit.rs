//! Estate fit: can the servers we already own hold this workload?
//!
//! The paper's evaluation provisions fresh HS23 blades on demand; a real
//! engagement starts from a fixed, mixed inventory. This example sizes a
//! Beverage workload onto a heterogeneous estate and reports what fits,
//! what is left over for decommissioning, and where the estate runs out.
//!
//! ```text
//! cargo run --release --example estate_fit
//! ```

use vmcw_repro::cluster::constraints::ConstraintSet;
use vmcw_repro::cluster::datacenter::DataCenter;
use vmcw_repro::cluster::server::ServerModel;
use vmcw_repro::consolidation::ffd::OrderKey;
use vmcw_repro::consolidation::fixed_pool::{pack_fixed, FixedPoolError};
use vmcw_repro::consolidation::sizing::SizingFunction;
use vmcw_repro::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = StudyConfig {
        scale: 0.10,
        ..StudyConfig::paper_baseline(DataCenterId::Beverage, 42)
    };
    let study = Study::prepare(&config);
    let input = study.input();

    // History-peak sizing, as the vanilla semi-static planner would.
    let demands = input
        .vms
        .iter()
        .map(|t| {
            (
                t.vm.id,
                t.size_over(input.history_range(), SizingFunction::Max),
            )
        })
        .collect();
    let net = input.net_demands();

    println!(
        "Fitting {} VMs (history-peak sized) into shrinking mixed estates:\n",
        input.vms.len()
    );
    println!("{:>7} {:>7} | outcome", "HS23", "HS22");
    for (new_blades, old_blades) in [(6u32, 6u32), (4, 4), (2, 4), (1, 2)] {
        let estate = DataCenter::heterogeneous(
            &[
                (ServerModel::hs23_elite(), new_blades),
                // An older blade: half the compute, a quarter the memory.
                (
                    ServerModel {
                        name: "hs22".into(),
                        cpu_rpe2: 12_200.0,
                        mem_mb: 32.0 * 1024.0,
                        ..ServerModel::hs23_elite()
                    },
                    old_blades,
                ),
            ],
            14,
            4,
        );
        match pack_fixed(
            &demands,
            &net,
            &estate,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Dominant,
        ) {
            Ok(fit) => println!(
                "{:>7} {:>7} | fits — {} of {} hosts left empty (decommission candidates)",
                new_blades,
                old_blades,
                fit.empty_hosts.len(),
                estate.len(),
            ),
            Err(FixedPoolError::PoolExhausted { vm, demand }) => println!(
                "{:>7} {:>7} | exhausted — first stranded VM {vm} needs {demand}",
                new_blades, old_blades,
            ),
            Err(e) => return Err(e.into()),
        }
    }
    Ok(())
}
