//! Live-migration what-if analysis (§4.3 and §7 of the paper): how does
//! pre-copy behave as the source host fills up, how much headroom must be
//! reserved, and what would a 10 GbE fabric buy?
//!
//! ```text
//! cargo run --release --example migration_whatif
//! ```

use vmcw_repro::migration::precopy::{HostLoad, PrecopyConfig, VmMigrationProfile};
use vmcw_repro::migration::reliability::{
    derive_min_reservation, ReliabilityThresholds, ReservationPolicy,
};

fn main() {
    let vm = VmMigrationProfile::new(8192.0, 400.0, 1024.0);
    let thresholds = ReliabilityThresholds::esxi41();

    println!("Migrating a busy 8 GB VM while the source host fills up (GbE):\n");
    println!(
        "{:>6} {:>12} {:>12} {:>8} {:>11} {:>10}",
        "load", "duration_s", "downtime_ms", "rounds", "converged", "reliable?"
    );
    let gbe = PrecopyConfig::gigabit();
    for step in 0..=6 {
        let load = 0.5 + 0.08 * f64::from(step);
        let host = HostLoad::new(load, load);
        let out = gbe.simulate(&vm, host);
        println!(
            "{:>6.2} {:>12.1} {:>12.1} {:>8} {:>11} {:>10}",
            load,
            out.total_secs,
            out.downtime_ms,
            out.rounds,
            out.converged,
            thresholds.is_reliable(host),
        );
    }

    println!("\nMinimum reservation for reliable migration of this VM:");
    for (label, config) in [("1 GbE", gbe), ("10 GbE", PrecopyConfig::ten_gigabit())] {
        let reservation = derive_min_reservation(&config, &vm);
        println!(
            "  {label:>7}: reserve {:>4.0}% of the host  (utilization bound {:.2})",
            reservation * 100.0,
            1.0 - reservation,
        );
    }

    let thumb = ReservationPolicy::thumb_rule();
    println!(
        "\nThe paper's thumb rule reserves {:.0}% CPU and {:.0}% memory\n\
         (Observation 4); VMware's official recommendation is {:.0}%. The\n\
         10 GbE row shows the discussion section's point: faster fabrics\n\
         shrink the reservation and make dynamic consolidation viable.",
        thumb.cpu_frac * 100.0,
        thumb.mem_frac * 100.0,
        ReservationPolicy::vmware_official().cpu_frac * 100.0,
    );
}
