//! Deployment-constraint demo (§2.2.4): affinity, anti-affinity, host and
//! subnet pinning flowing through the consolidation planners.
//!
//! ```text
//! cargo run --release --example constraint_aware_placement
//! ```

use vmcw_repro::cluster::constraints::{Constraint, ConstraintSet};
use vmcw_repro::cluster::datacenter::{HostId, SubnetId};
use vmcw_repro::cluster::vm::VmId;
use vmcw_repro::consolidation::input::{PlanningInput, VirtualizationModel};
use vmcw_repro::consolidation::planner::Planner;
use vmcw_repro::trace::datacenters::{DataCenterId, GeneratorConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let workload = GeneratorConfig::new(DataCenterId::Beverage)
        .scale(0.03)
        .days(10)
        .generate(7);
    println!(
        "Placing {} VMs with real-world deployment constraints:\n",
        workload.servers.len()
    );

    let mut constraints = ConstraintSet::new();
    // An app server and its in-memory cache must share a host.
    constraints.add(Constraint::Colocate(VmId(0), VmId(1)))?;
    // An HA pair must never share a host.
    constraints.add(Constraint::AntiColocate(VmId(2), VmId(3)))?;
    // A license-bound database is pinned to host 0.
    constraints.add(Constraint::PinToHost(VmId(4), HostId(0)))?;
    // A DMZ-facing server must stay in subnet 1.
    constraints.add(Constraint::PinToSubnet(VmId(5), SubnetId(1)))?;

    let input = PlanningInput::from_workload(&workload, 7, VirtualizationModel::baseline())
        .with_constraints(constraints.clone());
    let plan = Planner::baseline().plan_stochastic(&input)?;
    let placement = plan.placements.at_hour(0);

    let host_of = |vm: u32| placement.host_of(VmId(vm)).expect("placed");
    println!(
        "colocated pair      : vm-0 -> {}, vm-1 -> {}",
        host_of(0),
        host_of(1)
    );
    println!(
        "anti-colocated pair : vm-2 -> {}, vm-3 -> {}",
        host_of(2),
        host_of(3)
    );
    println!("host-pinned         : vm-4 -> {}", host_of(4));
    let h5 = host_of(5);
    println!(
        "subnet-pinned       : vm-5 -> {} (subnet {})",
        h5,
        plan.dc.host(h5).expect("exists").subnet.0
    );

    let violations = constraints.violations(&placement.as_map(), |h| plan.dc.location(h));
    println!(
        "\n{} hosts provisioned, {} constraint violations",
        plan.provisioned_hosts(),
        violations.len()
    );
    assert!(violations.is_empty());
    Ok(())
}
