//! Capacity planning across all four data centers: how many HS23 blades
//! does each consolidation strategy need, and what does the sensitivity
//! to the live-migration reservation look like?
//!
//! ```text
//! cargo run --release --example capacity_planning [-- scale]
//! ```

use vmcw_repro::core::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scale: f64 = std::env::args()
        .nth(1)
        .map_or(0.25, |s| s.parse().expect("scale"));
    println!(
        "Consolidation capacity plan at {:.0}% of the paper's populations\n",
        scale * 100.0
    );
    println!(
        "{:<18} {:>7} {:>9} {:>11} {:>9} | dynamic hosts at utilization bound U",
        "datacenter", "servers", "vanilla", "stochastic", "dyn@0.8"
    );

    for dc in DataCenterId::ALL {
        let config = StudyConfig {
            scale,
            ..StudyConfig::paper_baseline(dc, 42)
        };
        let study = Study::prepare(&config);
        let vanilla = study.run(PlannerKind::SemiStatic)?.cost.provisioned_hosts;
        let stochastic = study.run(PlannerKind::Stochastic)?.cost.provisioned_hosts;
        let mut sweep = String::new();
        let mut dyn08 = 0;
        for bound in [0.7, 0.8, 0.9, 1.0] {
            let mut cfg = config;
            cfg.planner = cfg.planner.with_utilization_bound(bound);
            let hosts = Study::from_workload(&cfg, study.workload().clone())
                .run(PlannerKind::Dynamic)?
                .cost
                .provisioned_hosts;
            if (bound - 0.8).abs() < 1e-9 {
                dyn08 = hosts;
            }
            sweep.push_str(&format!(" U={bound:.1}:{hosts}"));
        }
        println!(
            "{:<18} {:>7} {:>9} {:>11} {:>9} |{}",
            dc.industry(),
            study.workload().servers.len(),
            vanilla,
            stochastic,
            dyn08,
            sweep,
        );
    }

    println!(
        "\nReading the table (cf. Figs 7 and 13–16): stochastic semi-static\n\
         consolidation matches or beats dynamic consolidation on footprint as\n\
         long as dynamic must reserve ~20% of each host for reliable live\n\
         migration; only with the reservation gone (U=1.0) does fine-grained\n\
         consolidation pull ahead on the bursty workloads."
    );
    Ok(())
}
