//! SLA triage: which workloads pay for aggressive dynamic consolidation?
//!
//! The paper warns that dynamic consolidation's power savings "were also
//! associated with a higher risk of SLA violations" (§7). This example
//! runs the bursty Banking workload under dynamic consolidation and lists
//! the worst-hit VMs.
//!
//! ```text
//! cargo run --release --example sla_triage
//! ```

use vmcw_repro::core::prelude::*;
use vmcw_repro::emulator::sla;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = StudyConfig {
        scale: 0.15,
        ..StudyConfig::paper_baseline(DataCenterId::Banking, 42)
    };
    let study = Study::prepare(&config);
    let run = study.run(PlannerKind::Dynamic)?;
    let report = sla::analyze(study.input(), &run.plan)?;

    println!(
        "Banking × Dynamic: {} VMs on {} hosts over {} hours\n",
        study.input().vms.len(),
        run.cost.provisioned_hosts,
        report.hours,
    );
    println!(
        "{:.1}% of VMs experienced at least one violation hour; total unserved \
         CPU {:.0} RPE2-hours\n",
        report.violator_fraction() * 100.0,
        report.total_unserved(),
    );
    println!(
        "{:<10} {:>16} {:>20}",
        "vm", "violation_hours", "unserved_fraction"
    );
    for v in report.violators().iter().take(10) {
        println!(
            "{:<10} {:>16} {:>19.3}%",
            v.vm.to_string(),
            v.violation_hours,
            v.unserved_fraction() * 100.0,
        );
    }
    println!(
        "\nFor comparison, the stochastic semi-static plan on the same traces \
         has {} violators.",
        sla::analyze(study.input(), &study.run(PlannerKind::Stochastic)?.plan)?
            .violators()
            .len(),
    );
    Ok(())
}
