//! Offline stand-in for `serde_derive`.
//!
//! The real `serde` ecosystem is unavailable in hermetic build
//! environments (no network, no vendored registry). This repo only uses
//! `#[derive(Serialize, Deserialize)]` as a marker — nothing serialises
//! at runtime — so the derives expand to nothing and the sibling `serde`
//! stub provides blanket trait impls instead.

use proc_macro::TokenStream;

/// No-op `Serialize` derive; the `serde` stub blanket-implements the
/// trait for every type.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive; the `serde` stub blanket-implements the
/// trait for every type.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
