//! Offline stand-in for `criterion`.
//!
//! Keeps the workspace's bench targets compiling and runnable without the
//! real crate: each benchmark body executes once and its wall-clock time
//! is printed. No statistics, warm-up, or reports — this is a smoke
//! harness, not a measurement tool. Swap the real criterion back in via
//! the workspace manifest to take actual measurements.

use std::fmt::Display;
use std::time::Instant;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// An id with a function label and a parameter, `label/param`.
    pub fn new<F: Display, P: Display>(function: F, parameter: P) -> Self {
        Self {
            label: format!("{function}/{parameter}"),
        }
    }

    /// An id carrying only a parameter.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

/// Runs benchmark bodies; `iter` executes the closure once.
pub struct Bencher {
    _private: (),
}

impl Bencher {
    /// Runs `body` once, timing it.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        let start = Instant::now();
        let out = body();
        let elapsed = start.elapsed();
        drop(out);
        println!("    1 iter in {elapsed:?} (offline criterion stub)");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is not configurable here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; timing budget is ignored.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F)
        -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        println!("bench {}/{}", self.name, id.label);
        f(&mut Bencher { _private: () }, input);
        self
    }

    /// Runs one benchmark without an input.
    pub fn bench_function<F>(&mut self, id: BenchmarkId, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {}/{}", self.name, id.label);
        f(&mut Bencher { _private: () });
        self
    }

    /// Ends the group (no-op; reports are not generated).
    pub fn finish(self) {}
}

/// Entry point mirroring `criterion::Criterion`.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Opens a benchmark group.
    pub fn benchmark_group<S: Display>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            _criterion: self,
        }
    }

    /// Runs a single free-standing benchmark.
    pub fn bench_function<S: Display, F>(&mut self, name: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        println!("bench {name}");
        f(&mut Bencher { _private: () });
        self
    }

    /// Accepted for API compatibility with generated `criterion_group!`
    /// code; command-line options are ignored.
    pub fn configure_from_args(self) -> Self {
        self
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bench(c: &mut Criterion) {
        let mut group = c.benchmark_group("demo");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::new("square", 7), &7u64, |b, &n| {
            b.iter(|| n * n);
        });
        group.bench_with_input(BenchmarkId::from_parameter("unit"), &(), |b, ()| {
            b.iter(|| 1 + 1);
        });
        group.finish();
        c.bench_function("free", |b| b.iter(|| "x".repeat(3)));
    }

    criterion_group!(benches, sample_bench);

    #[test]
    fn harness_runs_every_shape_used_by_the_workspace() {
        benches();
    }
}
