//! Offline stand-in for `serde`.
//!
//! Hermetic build environments cannot download crates, and this workspace
//! uses serde purely as `#[derive(Serialize, Deserialize)]` markers (no
//! serializer is ever instantiated). The traits here are blanket-
//! implemented for every type, and the re-exported derive macros expand
//! to nothing, so `use serde::{Deserialize, Serialize};` plus the derives
//! compile unchanged. Swapping the real serde back in is a one-line
//! change in the workspace manifest.

/// Marker for serialisable types. Blanket-implemented: with no runtime
/// serialiser in the workspace the bound is vacuous.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for deserialisable types, mirroring serde's lifetime parameter.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker mirroring `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}

pub use serde_derive::{Deserialize, Serialize};

/// Mirror of `serde::de` for code that names the module.
pub mod de {
    pub use crate::DeserializeOwned;
}
