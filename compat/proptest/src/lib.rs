//! Offline stand-in for `proptest`.
//!
//! Implements the subset this workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(...)]` header,
//! `prop_assert!`/`prop_assert_eq!`, range and tuple strategies, and
//! `proptest::collection::vec`. Cases are generated from a deterministic
//! RNG seeded by the test's module path and name, so failures reproduce
//! exactly across runs. No shrinking: the failing case's values are lost,
//! but the case index and seed are stable, so rerunning hits the same
//! inputs.

use rand::Rng;

/// Per-test configuration (only the case count is meaningful here).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

pub mod test_runner {
    pub use super::ProptestConfig;

    /// Deterministic per-test RNG: seeded from an FNV-1a hash of the
    /// test's fully-qualified name, so every run replays the same cases.
    #[derive(Debug, Clone)]
    pub struct TestRng(rand::rngs::StdRng);

    impl TestRng {
        /// Builds the RNG for the named test.
        pub fn for_test(name: &str) -> Self {
            use rand::SeedableRng;
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(rand::rngs::StdRng::seed_from_u64(h))
        }
    }

    impl rand::RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

use test_runner::TestRng;

/// A generator of random values for one `proptest!` argument.
pub trait Strategy {
    /// The value type produced.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl<T> Strategy for core::ops::Range<T>
where
    T: rand::SampleUniform + Copy,
    core::ops::Range<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

impl<T> Strategy for core::ops::RangeInclusive<T>
where
    T: rand::SampleUniform + Copy,
    core::ops::RangeInclusive<T>: rand::SampleRange<T>,
{
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        rng.random_range(self.clone())
    }
}

/// A strategy yielding one fixed value (mirrors `proptest::strategy::Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident / $i:tt),+))+) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy! {
    (A/0, B/1)
    (A/0, B/1, C/2)
    (A/0, B/1, C/2, D/3)
}

pub mod collection {
    use super::{Strategy, TestRng};
    use rand::Rng;

    /// Strategy for `Vec`s with a random length drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    /// A `Vec` strategy: `len` elements (uniform in the range), each drawn
    /// from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = rng.random_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a test file needs in scope.
pub mod prelude {
    pub use crate::test_runner::TestRng;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
    };
}

#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )+
    ) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut __rng);
                )+
                let __outcome: ::std::result::Result<(), ::std::string::String> = (|| {
                    let _ = $body;
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__msg) = __outcome {
                    panic!(
                        "proptest case {}/{} of `{}` failed: {}",
                        __case + 1,
                        __config.cases,
                        stringify!($name),
                        __msg
                    );
                }
            }
        }
    )+};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(format!($($fmt)+));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l == __r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(__l == __r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            __l != __r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples_stay_in_bounds(
            x in 1.0f64..2.0,
            pair in (0usize..10, 5u32..9),
            items in crate::collection::vec(0i64..=3, 1..7),
        ) {
            prop_assert!((1.0..2.0).contains(&x), "x out of range: {x}");
            prop_assert!(pair.0 < 10);
            prop_assert!((5..9).contains(&pair.1));
            prop_assert!(!items.is_empty() && items.len() < 7);
            prop_assert!(items.iter().all(|&v| (0..=3).contains(&v)));
        }
    }

    #[test]
    fn same_test_name_replays_identical_cases() {
        use crate::Strategy;
        let mut a = TestRng::for_test("demo");
        let mut b = TestRng::for_test("demo");
        for _ in 0..50 {
            assert_eq!((0.0f64..1.0).generate(&mut a), (0.0f64..1.0).generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "proptest case")]
    fn failing_property_panics_with_case_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]

            fn always_fails(x in 0u32..10) {
                prop_assert!(x > 100, "x was {x}");
            }
        }
        always_fails();
    }
}
