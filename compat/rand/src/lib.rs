//! Offline stand-in for `rand` 0.9.
//!
//! Provides exactly the API surface this workspace uses — `Rng::random`,
//! `Rng::random_range`, `SeedableRng::seed_from_u64`, `rngs::StdRng` —
//! backed by xoshiro256++ (Blackman & Vigna), a small, fast,
//! statistically solid generator. The stream differs from the real
//! crate's ChaCha12-based `StdRng`, which is fine: the workspace's
//! generators are documented as deterministic in *(config, seed)* for a
//! fixed toolchain, not as reproducing any particular rand version.

pub mod rngs;

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers), mirroring rand's
/// `StandardUniform` distribution.
pub trait StandardSample: Sized {
    /// Draws one standard sample from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl StandardSample for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

/// Types samplable uniformly from a caller-supplied interval.
pub trait SampleUniform: Sized {
    /// Uniform draw from `[lo, hi)`, or `[lo, hi]` when `inclusive`.
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),+) => {$(
        impl SampleUniform for $t {
            fn sample_interval<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let span = (hi as i128 - lo as i128 + i128::from(inclusive)) as u128;
                assert!(span > 0, "empty random_range");
                // 64 fresh bits per draw; modulo bias is < 2^-60 for the
                // simulation-sized spans used here.
                let offset = (u128::from(rng.next_u64()) % span) as i128;
                (lo as i128 + offset) as $t
            }
        }
    )+};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleUniform for f64 {
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool)
        -> Self {
        assert!(lo < hi, "empty random_range: {lo}..{hi}");
        lo + f64::sample_standard(rng) * (hi - lo)
    }
}

impl SampleUniform for f32 {
    fn sample_interval<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, _inclusive: bool)
        -> Self {
        assert!(lo < hi, "empty random_range: {lo}..{hi}");
        lo + f32::sample_standard(rng) * (hi - lo)
    }
}

/// Range-like arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_interval(rng, *self.start(), *self.end(), true)
    }
}

/// The user-facing generator interface, blanket-implemented for every
/// [`RngCore`].
pub trait Rng: RngCore {
    /// A standard sample: `[0, 1)` for floats, full-range for integers.
    fn random<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T: SampleUniform, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring `rand::SeedableRng`'s `seed_from_u64`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed (expanded via SplitMix64).
    fn seed_from_u64(seed: u64) -> Self;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = r.random_range(3usize..17);
            assert!((3..17).contains(&x));
            let y: i64 = r.random_range(0..=1);
            assert!((0..=1).contains(&y));
            let z = r.random_range(-2.0f64..3.0);
            assert!((-2.0..3.0).contains(&z));
        }
    }

    #[test]
    fn uniform_mean_is_centred() {
        let mut r = StdRng::seed_from_u64(3);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
