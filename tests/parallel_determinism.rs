//! Golden parallel-execution test (ISSUE: parallel study execution).
//!
//! Runs the full planner × data-center grid with one worker and with
//! four, and asserts the runs are *byte-identical* — cell reports,
//! fault ledgers, `cells.csv`, `STUDY.md` — including when the
//! four-worker run is killed mid-flight and resumed. Worker count must
//! never leak into results; it may only change wall-clock time and
//! journal record interleaving.
//!
//! Also validates the `vmcw bench` JSON artifacts at workspace level:
//! both suites must serialise to well-formed `vmcw-bench/v1` documents
//! whose entries cover every stage at every requested scale.

use std::path::PathBuf;

use vmcw_bench::perf::{run_emulator_suite, run_planner_suite};
use vmcw_repro::consolidation::planner::PlannerKind;
use vmcw_repro::core::supervise::{
    resume_study_jobs, run_study_jobs, CancelToken, CellOutcome, StudySpec, StudyStatus,
    JOURNAL_FILE,
};
use vmcw_repro::emulator::checkpoint::encode_report;
use vmcw_repro::emulator::FaultConfig;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vmcw-par-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Same golden grid as `resume_determinism.rs`: all four data centers ×
/// the three evaluated planners under heavy fault injection, so the
/// ledgers give byte-identity something nontrivial to bite on.
fn golden_spec() -> StudySpec {
    let mut spec = StudySpec::new(0.02, 23, 5, 1);
    spec.faults = Some(FaultConfig {
        host_mtbf_hours: 40.0,
        host_mttr_hours: 3.0,
        migration_failure_prob: 0.1,
        trace_dropout_prob: 0.02,
        ..FaultConfig::baseline(23)
    });
    spec.checkpoint_every_hours = 4;
    spec
}

#[test]
fn four_workers_are_byte_identical_to_one_even_across_a_kill() {
    let serial_dir = tmp_dir("serial");
    let serial = run_study_jobs(&golden_spec(), &serial_dir, &CancelToken::new(), 1).unwrap();
    assert_eq!(serial.status, StudyStatus::Completed);
    assert_eq!(serial.cells.len(), 12, "4 data centers x 3 planners");

    // Uninterrupted four-worker run.
    let par_dir = tmp_dir("jobs4");
    let parallel = run_study_jobs(&golden_spec(), &par_dir, &CancelToken::new(), 4).unwrap();
    assert_eq!(parallel.status, StudyStatus::Completed);

    // Four-worker run killed mid-flight, then resumed with four workers.
    let killed_dir = tmp_dir("jobs4-killed");
    let token = CancelToken::new();
    token.cancel_after_hours(17);
    let partial = run_study_jobs(&golden_spec(), &killed_dir, &token, 4).unwrap();
    assert_eq!(partial.status, StudyStatus::Interrupted);
    assert!(killed_dir.join(JOURNAL_FILE).exists());
    let resumed = resume_study_jobs(&killed_dir, None, &CancelToken::new(), 4).unwrap();
    assert_eq!(resumed.status, StudyStatus::Completed);

    for (label, other) in [("jobs=4", &parallel), ("jobs=4 killed+resumed", &resumed)] {
        assert_eq!(other.cells.len(), serial.cells.len(), "{label}");
        for (a, b) in serial.cells.iter().zip(&other.cells) {
            assert_eq!(a.dc, b.dc, "{label}: grid order must match");
            assert_eq!(a.kind, b.kind, "{label}: grid order must match");
            assert_eq!(b.outcome, CellOutcome::Completed, "{label}");
            let (ra, rb) = (a.report.as_ref().unwrap(), b.report.as_ref().unwrap());
            assert_eq!(
                ra.faults,
                rb.faults,
                "{label}: fault ledger diverged for {}/{}",
                a.dc.letter(),
                a.kind.label()
            );
            assert_eq!(
                encode_report(ra),
                encode_report(rb),
                "{label}: report diverged for {}/{}",
                a.dc.letter(),
                a.kind.label()
            );
        }
    }
    for dir in [&par_dir, &killed_dir] {
        for artifact in ["cells.csv", "STUDY.md"] {
            assert_eq!(
                std::fs::read(serial_dir.join(artifact)).unwrap(),
                std::fs::read(dir.join(artifact)).unwrap(),
                "{artifact} not byte-identical to the serial run"
            );
        }
    }
    for dir in [serial_dir, par_dir, killed_dir] {
        let _ = std::fs::remove_dir_all(&dir);
    }
}

/// Minimal strict-JSON validator — the workspace has no JSON crate, and
/// the bench documents are small enough that a recursive-descent walk is
/// the honest check that `vmcw bench` output parses everywhere.
fn parse_json(s: &str) -> Result<(), String> {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    fn skip_ws(b: &[u8], p: &mut usize) {
        while *p < b.len() && (b[*p] as char).is_ascii_whitespace() {
            *p += 1;
        }
    }
    fn value(b: &[u8], p: &mut usize) -> Result<(), String> {
        skip_ws(b, p);
        match b.get(*p) {
            Some(b'{') => {
                *p += 1;
                skip_ws(b, p);
                if b.get(*p) == Some(&b'}') {
                    *p += 1;
                    return Ok(());
                }
                loop {
                    skip_ws(b, p);
                    string(b, p)?;
                    skip_ws(b, p);
                    if b.get(*p) != Some(&b':') {
                        return Err(format!("expected ':' at {p:?}"));
                    }
                    *p += 1;
                    value(b, p)?;
                    skip_ws(b, p);
                    match b.get(*p) {
                        Some(b',') => *p += 1,
                        Some(b'}') => {
                            *p += 1;
                            return Ok(());
                        }
                        other => return Err(format!("expected ',' or '}}', got {other:?}")),
                    }
                }
            }
            Some(b'[') => {
                *p += 1;
                skip_ws(b, p);
                if b.get(*p) == Some(&b']') {
                    *p += 1;
                    return Ok(());
                }
                loop {
                    value(b, p)?;
                    skip_ws(b, p);
                    match b.get(*p) {
                        Some(b',') => *p += 1,
                        Some(b']') => {
                            *p += 1;
                            return Ok(());
                        }
                        other => return Err(format!("expected ',' or ']', got {other:?}")),
                    }
                }
            }
            Some(b'"') => string(b, p),
            Some(c) if c.is_ascii_digit() || *c == b'-' => {
                let start = *p;
                *p += 1;
                while *p < b.len()
                    && (b[*p].is_ascii_digit() || matches!(b[*p], b'.' | b'e' | b'E' | b'+' | b'-'))
                {
                    *p += 1;
                }
                std::str::from_utf8(&b[start..*p])
                    .ok()
                    .and_then(|t| t.parse::<f64>().ok())
                    .map(|_| ())
                    .ok_or_else(|| format!("bad number at {start}"))
            }
            other => Err(format!("unexpected {other:?} at {p:?}")),
        }
    }
    fn string(b: &[u8], p: &mut usize) -> Result<(), String> {
        if b.get(*p) != Some(&b'"') {
            return Err(format!("expected '\"' at {p:?}"));
        }
        *p += 1;
        while let Some(&c) = b.get(*p) {
            match c {
                b'\\' => *p += 2,
                b'"' => {
                    *p += 1;
                    return Ok(());
                }
                _ => *p += 1,
            }
        }
        Err("unterminated string".into())
    }
    value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos == bytes.len() {
        Ok(())
    } else {
        Err(format!("trailing bytes at {pos}"))
    }
}

#[test]
fn bench_artifacts_are_strict_json_with_the_v1_schema() {
    let scales = [0.02, 0.03];
    let seed = 11;
    let dir = tmp_dir("bench-json");
    std::fs::create_dir_all(&dir).unwrap();

    for (name, suite) in [
        ("BENCH_emulator.json", run_emulator_suite(&scales, seed)),
        ("BENCH_planners.json", run_planner_suite(&scales, seed)),
    ] {
        let path = dir.join(name);
        std::fs::write(&path, suite.to_json()).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        parse_json(&text).unwrap_or_else(|e| panic!("{name} is not strict JSON: {e}\n{text}"));
        assert!(text.contains("\"schema\": \"vmcw-bench/v1\""), "{name}");
        assert!(text.contains("\"seed\": 11"), "{name}");
        for scale in scales {
            assert!(
                text.contains(&format!("\"scale\": {scale}")),
                "{name} must cover scale {scale}"
            );
        }
    }

    // The emulator suite names its stages; the planner suite uses the
    // evaluated planner labels. Both must be complete.
    let emu = std::fs::read_to_string(dir.join("BENCH_emulator.json")).unwrap();
    for stage in ["trace-gen", "replay-plain", "replay-faulted"] {
        assert_eq!(
            emu.matches(&format!("\"stage\": \"{stage}\"")).count(),
            scales.len(),
            "emulator suite must time `{stage}` once per scale"
        );
    }
    let planners = std::fs::read_to_string(dir.join("BENCH_planners.json")).unwrap();
    for kind in PlannerKind::EVALUATED {
        assert_eq!(
            planners
                .matches(&format!("\"stage\": \"{}\"", kind.label()))
                .count(),
            scales.len(),
            "planner suite must time `{}` once per scale",
            kind.label()
        );
    }
    let _ = std::fs::remove_dir_all(&dir);
}
