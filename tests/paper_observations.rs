//! The paper's seven numbered Observations, asserted against the
//! reproduction at 30% scale.

use std::sync::OnceLock;
use vmcw_repro::consolidation::planner::PlannerKind;
use vmcw_repro::core::study::{Study, StudyConfig};
use vmcw_repro::migration::precopy::{HostLoad, PrecopyConfig, VmMigrationProfile};
use vmcw_repro::migration::reliability::derive_min_reservation;
use vmcw_repro::trace::datacenters::DataCenterId;
use vmcw_repro::trace::stats;

fn study(dc: DataCenterId) -> &'static Study {
    static STUDIES: OnceLock<Vec<(DataCenterId, Study)>> = OnceLock::new();
    let studies = STUDIES.get_or_init(|| {
        DataCenterId::ALL
            .iter()
            .map(|&dc| {
                let config = StudyConfig {
                    scale: 0.30,
                    ..StudyConfig::paper_baseline(dc, 31)
                };
                (dc, Study::prepare(&config))
            })
            .collect()
    });
    &studies.iter().find(|(d, _)| *d == dc).expect("prepared").1
}

fn all_servers_stat(
    resource: fn(
        &vmcw_repro::trace::datacenters::SourceServer,
    ) -> &vmcw_repro::trace::series::TimeSeries,
    stat: fn(&[f64]) -> Option<f64>,
) -> Vec<f64> {
    let mut out = Vec::new();
    for dc in DataCenterId::ALL {
        let w = study(dc).workload();
        let hh = 30 * 24;
        out.extend(
            w.servers
                .iter()
                .filter_map(|s| stat(&resource(s).values()[..hh.min(resource(s).len())])),
        );
    }
    out
}

/// Observation 1: "CPU Utilization of servers vary greatly over time with
/// Peak to Average Ratio of 5 and a CoV of 1 or more for more than 25% of
/// servers studied."
#[test]
fn observation_1_cpu_varies_greatly() {
    let pa = all_servers_stat(|s| &s.cpu_used_frac, stats::peak_to_average);
    let cov = all_servers_stat(|s| &s.cpu_used_frac, stats::coefficient_of_variability);
    let frac = pa
        .iter()
        .zip(&cov)
        .filter(|&(&p, &c)| p >= 5.0 && c >= 1.0)
        .count() as f64
        / pa.len() as f64;
    assert!(
        frac > 0.25,
        "only {frac:.2} of servers have P/A>=5 and CoV>=1"
    );
}

/// Observation 2: "Memory demand of servers vary moderately over time with
/// Peak to Average Ratio of 1.5 and a CoV of 0.5 or less for more than 80%
/// of servers studied."
#[test]
fn observation_2_memory_varies_moderately() {
    let pa = all_servers_stat(|s| &s.mem_used_mb, stats::peak_to_average);
    let cov = all_servers_stat(|s| &s.mem_used_mb, stats::coefficient_of_variability);
    let frac = pa
        .iter()
        .zip(&cov)
        .filter(|&(&p, &c)| p <= 1.6 && c <= 0.5)
        .count() as f64
        / pa.len() as f64;
    assert!(
        frac > 0.70,
        "only {frac:.2} of servers have modest memory variation"
    );
}

/// Observation 3: "Data centers with server consolidation are constrained
/// by memory more often than CPU (even after using extended memory blade
/// servers)."
#[test]
fn observation_3_memory_constrains_most_datacenters() {
    let mut memory_bound_dcs = 0;
    for dc in DataCenterId::ALL {
        let w = study(dc).workload();
        let hh = 30 * 24;
        let cpu = w.aggregate_cpu_rpe2();
        let mem = w.aggregate_mem_mb();
        let below_160 = cpu.values()[hh..]
            .iter()
            .zip(&mem.values()[hh..])
            .filter(|&(c, m)| c / (m / 1024.0) < 160.0)
            .count() as f64
            / (cpu.len() - hh) as f64;
        if below_160 > 0.5 {
            memory_bound_dcs += 1;
        }
    }
    assert!(
        memory_bound_dcs >= 3,
        "only {memory_bound_dcs} of 4 DCs memory-bound"
    );
}

/// Observation 4: "In order to support dynamic consolidation, it is
/// recommended to reserve at least 20% of a physical server's resources
/// for live migration." Derived from the pre-copy model rather than
/// asserted.
#[test]
fn observation_4_reservation_rule() {
    // A representative busy enterprise VM on the 2012-era GbE fabric.
    let vm = VmMigrationProfile::new(8192.0, 400.0, 1024.0);
    let derived = derive_min_reservation(&PrecopyConfig::gigabit(), &vm);
    assert!(
        (0.15..=0.35).contains(&derived),
        "derived reservation {derived} outside the paper's 20–30% band"
    );
    // And the thresholds themselves: reliable below, degraded above.
    let cfg = PrecopyConfig::gigabit();
    assert!(cfg.simulate(&vm, HostLoad::new(0.75, 0.80)).converged);
    assert!(!cfg.simulate(&vm, HostLoad::new(0.99, 0.99)).converged);
}

/// Observation 5: "Dynamic consolidation does not lead to space and
/// hardware savings over intelligent semi-static consolidation for many
/// workloads."
#[test]
fn observation_5_no_space_savings_over_stochastic() {
    let mut no_savings = 0;
    for dc in DataCenterId::ALL {
        let stochastic = study(dc)
            .run(PlannerKind::Stochastic)
            .unwrap()
            .cost
            .provisioned_hosts;
        let dynamic = study(dc)
            .run(PlannerKind::Dynamic)
            .unwrap()
            .cost
            .provisioned_hosts;
        // "does not lead to savings" = dynamic needs at least about as
        // many hosts (within one host of granularity) or more.
        if dynamic + 1 >= stochastic {
            no_savings += 1;
        }
    }
    assert!(
        no_savings >= 3,
        "dynamic saved space over stochastic on {} DCs",
        4 - no_savings
    );
}

/// Observation 6: "Dynamic consolidation leads to power savings for
/// workloads that exhibit high burstiness. However, these savings may be
/// associated with resource contention."
#[test]
fn observation_6_power_savings_with_contention_risk() {
    let banking = study(DataCenterId::Banking);
    let stochastic = banking.run(PlannerKind::Stochastic).unwrap();
    let dynamic = banking.run(PlannerKind::Dynamic).unwrap();
    assert!(
        dynamic.cost.energy_kwh < stochastic.cost.energy_kwh * 0.75,
        "bursty Banking: dynamic {} kWh vs stochastic {} kWh",
        dynamic.cost.energy_kwh,
        stochastic.cost.energy_kwh
    );
    assert!(
        !dynamic.report.cpu_contention_samples.is_empty(),
        "the savings must come with contention risk"
    );
}

/// Observation 7: "If the resources reserved for live migration can be
/// reduced without impacting the reliability of migration, then dynamic
/// consolidation can achieve space and hardware savings as well."
#[test]
fn observation_7_unreserved_dynamic_saves_space() {
    for dc in [DataCenterId::Banking, DataCenterId::NaturalResources] {
        let s = study(dc);
        let stochastic = s
            .run(PlannerKind::Stochastic)
            .unwrap()
            .cost
            .provisioned_hosts;
        let mut config = *s.config();
        config.planner = config.planner.with_utilization_bound(1.0);
        let unreserved = Study::from_workload(&config, s.workload().clone())
            .run(PlannerKind::Dynamic)
            .unwrap()
            .cost
            .provisioned_hosts;
        assert!(
            (unreserved as f64) < stochastic as f64 * 0.95,
            "{dc}: unreserved dynamic {unreserved} vs stochastic {stochastic}"
        );
    }
}
