//! Property tests over the write-ahead journal framing.
//!
//! Invariants: every *frame-aligned* prefix of a journal decodes
//! cleanly; any corrupted or truncated tail is caught by the per-frame
//! checksum, reported with the byte offset of the first bad frame, and
//! never handed back as a record.

use std::path::PathBuf;

use proptest::prelude::*;
use vmcw_repro::consolidation::planner::PlannerKind;
use vmcw_repro::core::journal::{crc32, decode, encode_records, Journal, MAGIC};
use vmcw_repro::core::supervise::{
    resume_study_opts, run_study_opts, CancelToken, CellOutcome, CellRetryPolicy, ChaosConfig,
    ChaosMode, RunOptions, StudySpec, StudyStatus, JOURNAL_FILE,
};
use vmcw_repro::trace::datacenters::DataCenterId;

/// Random record payloads: 0–12 records of 0–64 arbitrary bytes.
fn records_strategy() -> impl Strategy<Value = Vec<Vec<u8>>> {
    proptest::collection::vec(proptest::collection::vec(0u8..=255, 0..64), 0..12)
}

fn journal_bytes(records: &[Vec<u8>]) -> Vec<u8> {
    encode_records(records) // leads with MAGIC
}

/// Byte offset where frame `i` starts.
fn frame_offsets(records: &[Vec<u8>]) -> Vec<usize> {
    let mut offsets = vec![MAGIC.len()];
    for r in records {
        offsets.push(offsets.last().unwrap() + 8 + r.len());
    }
    offsets
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn round_trip_decodes_every_record(records in records_strategy()) {
        let (decoded, tail) = decode(&journal_bytes(&records)).unwrap();
        prop_assert_eq!(decoded, records);
        prop_assert!(tail.is_none());
    }

    #[test]
    fn every_frame_aligned_prefix_decodes_cleanly(records in records_strategy()) {
        let bytes = journal_bytes(&records);
        for (i, &offset) in frame_offsets(&records).iter().enumerate() {
            let (decoded, tail) = decode(&bytes[..offset]).unwrap();
            prop_assert_eq!(&decoded[..], &records[..i]);
            prop_assert!(tail.is_none(), "clean prefix of {i} frames reported a bad tail");
        }
    }

    #[test]
    fn truncation_is_detected_with_the_right_offset(
        records in records_strategy(),
        cut_back in 1usize..16,
    ) {
        let bytes = journal_bytes(&records);
        if bytes.len() == MAGIC.len() {
            return Ok(()); // no frames to truncate this case
        }
        let cut = (bytes.len() - cut_back.min(bytes.len() - MAGIC.len())).max(MAGIC.len());
        let offsets = frame_offsets(&records);
        // The first frame the cut lands inside.
        let bad_frame = offsets.iter().rposition(|&o| o <= cut).unwrap();
        if offsets[bad_frame] == cut {
            // Cut on a frame boundary: shorter but clean journal.
            let (decoded, tail) = decode(&bytes[..cut]).unwrap();
            prop_assert_eq!(&decoded[..], &records[..bad_frame]);
            prop_assert!(tail.is_none());
        } else {
            let (decoded, tail) = decode(&bytes[..cut]).unwrap();
            // Only the intact frames come back; the torn one never does.
            prop_assert_eq!(&decoded[..], &records[..bad_frame]);
            let tail = tail.expect("torn tail must be reported");
            prop_assert_eq!(tail.offset, offsets[bad_frame]);
        }
    }

    #[test]
    fn any_single_bit_flip_in_a_frame_is_caught(
        records in proptest::collection::vec(proptest::collection::vec(0u8..=255, 1..32), 1..6),
        flip_seed in 0usize..10_000,
    ) {
        let clean = journal_bytes(&records);
        let body_len = clean.len() - MAGIC.len();
        let byte = MAGIC.len() + flip_seed % body_len;
        let bit = (flip_seed / body_len) % 8;
        let mut bytes = clean;
        bytes[byte] ^= 1 << bit;

        let (decoded, tail) = match decode(&bytes) {
            Ok(ok) => ok,
            Err(e) => return Err(format!("decode errored instead of reporting a tail: {e}")),
        };
        let offsets = frame_offsets(&records);
        let bad_frame = offsets.iter().rposition(|&o| o <= byte).unwrap();
        // Frames before the flip survive; the flipped frame and
        // everything after it are dropped as a corrupt tail.
        prop_assert!(decoded.len() <= bad_frame,
            "a record at or after the flipped byte was deserialized");
        prop_assert_eq!(&decoded[..], &records[..decoded.len()]);
        let tail = tail.expect("flip must surface as tail corruption");
        prop_assert!(tail.offset <= byte);
    }

    #[test]
    fn crc32_detects_any_single_byte_change(
        payload in proptest::collection::vec(0u8..=255, 1..64),
        pos_seed in 0usize..1_000,
        delta in 1u8..=255,
    ) {
        let pos = pos_seed % payload.len();
        let mut mutated = payload.clone();
        mutated[pos] = mutated[pos].wrapping_add(delta);
        prop_assert_ne!(crc32(&payload), crc32(&mutated));
    }
}

fn chaos_tmp_dir(tag: usize) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vmcw-journal-chaos-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

proptest! {
    // Each case runs two small studies end to end, so keep the sample
    // count low; the panic hour is the only dimension that matters.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// DESIGN (self-healing supervisor): a cell panicking at an
    /// *arbitrary* replay hour never corrupts the journal. The file
    /// must reopen with zero torn frames, the crash must land in the
    /// record stream as an incident (not as garbage bytes), and a
    /// resume over that journal must succeed and change nothing.
    #[test]
    fn panic_at_any_hour_leaves_a_parseable_resumable_journal(panic_hour in 0usize..24) {
        let spec = StudySpec {
            dcs: vec![DataCenterId::Airlines],
            planners: vec![PlannerKind::SemiStatic, PlannerKind::Dynamic],
            ..StudySpec::new(0.02, 5, 5, 1)
        };
        let dir = chaos_tmp_dir(panic_hour);
        // Persistent panic with no retries: the cell quarantines on its
        // first attempt while the sibling completes. Airlines is
        // data-center letter B.
        let opts = RunOptions {
            retry: CellRetryPolicy::no_retry(),
            chaos: Some(
                ChaosConfig::for_cell("B/Dynamic", panic_hour, ChaosMode::Panic, false)
                    .expect("chaos cell id parses"),
            ),
            ..RunOptions::default()
        };
        let report = run_study_opts(&spec, &dir, &CancelToken::new(), &opts).unwrap();
        prop_assert_eq!(report.status, StudyStatus::Completed);
        let quarantined = report
            .cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Quarantined { .. }))
            .count();
        prop_assert_eq!(quarantined, 1, "exactly the injected cell quarantines");

        // The journal a panicking cell leaves behind decodes cleanly:
        // no torn tail, and the incident is a readable record.
        let (journal, tail) = Journal::open(&dir.join(JOURNAL_FILE)).unwrap();
        prop_assert!(tail.is_none(), "panic at hour {} tore the journal tail", panic_hour);
        let crashed = journal
            .records()
            .iter()
            .filter(|r| {
                String::from_utf8_lossy(r)
                    .lines()
                    .next()
                    .is_some_and(|h| h.starts_with("cell-crashed B Dynamic 1 panic"))
            })
            .count();
        prop_assert_eq!(crashed, 1, "the panic must be journaled exactly once");

        // Resuming over the quarantine journal is a no-op that agrees
        // with the original report cell by cell.
        let resumed = resume_study_opts(&dir, None, &CancelToken::new(), &RunOptions {
            retry: CellRetryPolicy::no_retry(),
            ..RunOptions::default()
        })
        .unwrap();
        prop_assert_eq!(resumed.status, StudyStatus::Completed);
        prop_assert_eq!(resumed.cells.len(), report.cells.len());
        for (a, b) in report.cells.iter().zip(&resumed.cells) {
            prop_assert_eq!(a.dc, b.dc);
            prop_assert_eq!(a.kind, b.kind);
            prop_assert_eq!(&a.outcome, &b.outcome);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
