//! Shape assertions for the paper's figures at reduced scale.
//!
//! These tests encode the reproduction targets of `DESIGN.md` §3: the
//! qualitative claims of every figure must hold for the generated
//! workloads and the planner comparison. They run at 30% of the paper's
//! server populations with a 30+14-day horizon, which keeps them fast
//! while large enough that host-count granularity does not mask the
//! orderings.

use std::sync::OnceLock;
use vmcw_repro::consolidation::planner::PlannerKind;
use vmcw_repro::core::study::{Study, StudyConfig, StudyRun};
use vmcw_repro::emulator::report;
use vmcw_repro::trace::datacenters::DataCenterId;
use vmcw_repro::trace::stats;

fn study(dc: DataCenterId) -> &'static Study {
    static STUDIES: OnceLock<Vec<(DataCenterId, Study)>> = OnceLock::new();
    let studies = STUDIES.get_or_init(|| {
        DataCenterId::ALL
            .iter()
            .map(|&dc| {
                let config = StudyConfig {
                    scale: 0.30,
                    ..StudyConfig::paper_baseline(dc, 31)
                };
                (dc, Study::prepare(&config))
            })
            .collect()
    });
    &studies
        .iter()
        .find(|(d, _)| *d == dc)
        .expect("all DCs prepared")
        .1
}

fn frac_above(samples: &[f64], x: f64) -> f64 {
    samples.iter().filter(|&&v| v > x).count() as f64 / samples.len().max(1) as f64
}

fn history_cpu_stat(dc: DataCenterId, f: impl Fn(&[f64]) -> Option<f64>) -> Vec<f64> {
    let w = study(dc).workload();
    let hh = 30 * 24;
    w.servers
        .iter()
        .filter_map(|s| f(&s.cpu_used_frac.values()[..hh]))
        .collect()
}

fn history_mem_stat(dc: DataCenterId, f: impl Fn(&[f64]) -> Option<f64>) -> Vec<f64> {
    let w = study(dc).workload();
    let hh = 30 * 24;
    w.servers
        .iter()
        .filter_map(|s| f(&s.mem_used_mb.values()[..hh]))
        .collect()
}

#[test]
fn table2_populations_and_utilisations() {
    for dc in DataCenterId::ALL {
        let w = study(dc).workload();
        let expected = (dc.server_count() as f64 * 0.30).round() as usize;
        assert_eq!(w.servers.len(), expected, "{dc}");
        let util = w.mean_cpu_util_pct();
        let paper = dc.table2_cpu_util_pct();
        assert!(
            (util - paper).abs() / paper < 0.35,
            "{dc}: mean CPU util {util:.2}% vs Table 2 {paper}%"
        );
    }
}

#[test]
fn fig2_banking_peak_to_average_above_five_for_half() {
    let pa = history_cpu_stat(DataCenterId::Banking, stats::peak_to_average);
    assert!(
        frac_above(&pa, 5.0) > 0.40,
        "got {:.2}",
        frac_above(&pa, 5.0)
    );
    assert!(frac_above(&pa, 2.0) > 0.90);
    // Fig 2(a), 1 h windows: roughly 30% of servers sit at P/A >= 10.
    let tail = frac_above(&pa, 10.0);
    assert!(
        (0.20..=0.45).contains(&tail),
        "Banking P/A>=10 tail {tail:.2}, paper shows ~0.30"
    );
}

#[test]
fn fig2_window_length_reduces_peak_to_average() {
    use vmcw_repro::consolidation::sizing::{window_demands, SizingFunction};
    let w = study(DataCenterId::Banking).workload();
    let hh = 30 * 24;
    let mut medians = Vec::new();
    for window in [1usize, 2, 4] {
        let ratios: Vec<f64> = w
            .servers
            .iter()
            .filter_map(|s| {
                let demands =
                    window_demands(&s.cpu_used_frac.slice(0..hh), window, SizingFunction::Max);
                stats::peak_to_average(demands.values())
            })
            .collect();
        medians.push(stats::percentile(&ratios, 50.0).unwrap());
    }
    assert!(
        medians[0] >= medians[1] && medians[1] >= medians[2],
        "P/A medians should fall with window length: {medians:?}"
    );
}

#[test]
fn fig3_cov_ordering_banking_highest_airlines_low() {
    let cov = |dc| history_cpu_stat(dc, stats::coefficient_of_variability);
    let banking = frac_above(&cov(DataCenterId::Banking), 1.0);
    let beverage = frac_above(&cov(DataCenterId::Beverage), 1.0);
    let airlines = frac_above(&cov(DataCenterId::Airlines), 1.0);
    let natres = frac_above(&cov(DataCenterId::NaturalResources), 1.0);
    assert!(banking > 0.40, "Banking heavy-tailed fraction {banking:.2}");
    // Fig 3(b): roughly 30% of Airlines servers are heavy-tailed — not
    // the near-zero the pre-calibration generator produced (~8%).
    assert!(
        (0.20..0.40).contains(&airlines),
        "Airlines heavy-tailed fraction {airlines:.2}, paper shows ~0.30"
    );
    assert!(
        natres < 0.35,
        "Natural Resources heavy-tailed fraction {natres:.2}"
    );
    assert!(banking > airlines && banking > natres);
    assert!(
        beverage > airlines,
        "Beverage should be burstier than Airlines"
    );
}

#[test]
fn fig4_memory_peak_to_average_modest_everywhere() {
    for dc in DataCenterId::ALL {
        let pa = history_mem_stat(dc, stats::peak_to_average);
        let below_15 = 1.0 - frac_above(&pa, 1.5);
        assert!(
            below_15 > 0.5,
            "{dc}: only {below_15:.2} of servers with mem P/A <= 1.5"
        );
    }
}

#[test]
fn fig5_memory_cov_order_of_magnitude_below_cpu() {
    for dc in DataCenterId::ALL {
        let mem_cov = history_mem_stat(dc, stats::coefficient_of_variability);
        let cpu_cov = history_cpu_stat(dc, stats::coefficient_of_variability);
        let mem_med = stats::percentile(&mem_cov, 50.0).unwrap();
        let cpu_med = stats::percentile(&cpu_cov, 50.0).unwrap();
        assert!(
            mem_med < cpu_med / 2.0,
            "{dc}: memory CoV median {mem_med:.3} not well below CPU {cpu_med:.3}"
        );
        // Airlines and Natural Resources: no heavy-tailed memory at all.
        if matches!(dc, DataCenterId::Airlines | DataCenterId::NaturalResources) {
            assert!(frac_above(&mem_cov, 1.0) < 0.02, "{dc}");
        }
    }
    // Banking has the visible heavy-tail memory population of Fig 5(a).
    let banking = history_mem_stat(DataCenterId::Banking, stats::coefficient_of_variability);
    assert!(frac_above(&banking, 1.0) > 0.05);
}

#[test]
fn fig6_resource_ratio_orderings() {
    let ratio_fracs: Vec<(DataCenterId, f64, f64)> = DataCenterId::ALL
        .iter()
        .map(|&dc| {
            let w = study(dc).workload();
            let hh = 30 * 24;
            let cpu = w.aggregate_cpu_rpe2();
            let mem = w.aggregate_mem_mb();
            let ratios: Vec<f64> = cpu.values()[hh..]
                .chunks(2)
                .zip(mem.values()[hh..].chunks(2))
                .map(|(c, m)| {
                    let c = c.iter().copied().fold(0.0, f64::max);
                    let m = m.iter().copied().fold(0.0, f64::max);
                    c / (m / 1024.0)
                })
                .collect();
            let above = frac_above(&ratios, 160.0);
            let median = stats::percentile(&ratios, 50.0).unwrap();
            (dc, above, median)
        })
        .collect();
    let get = |dc: DataCenterId| ratio_fracs.iter().find(|(d, _, _)| *d == dc).unwrap();
    let (_, banking_above, banking_med) = get(DataCenterId::Banking);
    let (_, airlines_above, airlines_med) = get(DataCenterId::Airlines);
    let (_, natres_above, natres_med) = get(DataCenterId::NaturalResources);
    let (_, beverage_above, beverage_med) = get(DataCenterId::Beverage);
    // Banking is CPU-intensive most of the time; the others are
    // memory-bound (Airlines always, ratio far below 50).
    assert!(
        *banking_above > 0.5,
        "Banking above-160 fraction {banking_above:.2}"
    );
    assert!(*airlines_above == 0.0 && *airlines_med < 50.0);
    assert!(*natres_above < 0.10);
    assert!(*beverage_above < 0.10);
    // CPU-intensity order: Banking > Beverage > NatRes > Airlines.
    assert!(banking_med > beverage_med && beverage_med > natres_med && natres_med > airlines_med);
}

fn runs(dc: DataCenterId) -> (StudyRun, StudyRun, StudyRun) {
    let s = study(dc);
    (
        s.run(PlannerKind::SemiStatic).unwrap(),
        s.run(PlannerKind::Stochastic).unwrap(),
        s.run(PlannerKind::Dynamic).unwrap(),
    )
}

#[test]
fn fig7_space_cost_orderings() {
    // Stochastic never provisions more than vanilla, and its win is >10%
    // on the bursty workloads; dynamic (with its 20% reservation) beats
    // vanilla for every workload except the memory-bound Airlines.
    for dc in DataCenterId::ALL {
        let (semi, stoch, dynamic) = runs(dc);
        assert!(
            stoch.cost.provisioned_hosts <= semi.cost.provisioned_hosts,
            "{dc}"
        );
        match dc {
            // The bursty/CPU-heavy data centers: dynamic clearly beats
            // vanilla despite its 20% reservation.
            DataCenterId::Banking | DataCenterId::NaturalResources => assert!(
                dynamic.cost.provisioned_hosts < semi.cost.provisioned_hosts,
                "{dc}: dynamic {} vs vanilla {}",
                dynamic.cost.provisioned_hosts,
                semi.cost.provisioned_hosts
            ),
            // Memory-bound Airlines: the reservation costs dynamic extra
            // hosts, and PCP has nothing to exploit over vanilla.
            DataCenterId::Airlines => {
                assert_eq!(stoch.cost.provisioned_hosts, semi.cost.provisioned_hosts);
                assert!(dynamic.cost.provisioned_hosts > semi.cost.provisioned_hosts);
            }
            // Beverage sits on the knife edge (as in Fig 7(d), where the
            // dynamic and vanilla bars nearly touch): allow a ±10% band.
            DataCenterId::Beverage => assert!(
                (dynamic.cost.provisioned_hosts as f64) < semi.cost.provisioned_hosts as f64 * 1.10,
                "Beverage: dynamic {} vs vanilla {}",
                dynamic.cost.provisioned_hosts,
                semi.cost.provisioned_hosts
            ),
        }
    }
}

#[test]
fn fig7_power_savings_pattern() {
    // Dynamic consolidation saves significant power on the bursty
    // workloads (Banking, Beverage) and only muted power on the
    // memory-bound ones (Airlines, Natural Resources).
    let ratio = |dc| {
        let (_, stoch, dynamic) = runs(dc);
        dynamic.cost.energy_kwh / stoch.cost.energy_kwh
    };
    let banking = ratio(DataCenterId::Banking);
    let beverage = ratio(DataCenterId::Beverage);
    let airlines = ratio(DataCenterId::Airlines);
    let natres = ratio(DataCenterId::NaturalResources);
    assert!(
        banking < 0.70,
        "Banking dynamic/stochastic power {banking:.2}"
    );
    assert!(
        beverage < 0.85,
        "Beverage dynamic/stochastic power {beverage:.2}"
    );
    assert!(
        airlines > 0.90,
        "Airlines savings should be muted, got {airlines:.2}"
    );
    assert!(
        natres > 0.70,
        "NatRes savings should be muted, got {natres:.2}"
    );
    assert!(banking < airlines && banking < natres);
}

#[test]
fn fig8_contention_concentrates_on_bursty_dynamic() {
    let banking = runs(DataCenterId::Banking);
    let airlines = runs(DataCenterId::Airlines);
    // Banking + Dynamic has contention; Airlines has none at all.
    assert!(
        report::contention_time_fraction(&banking.2.report) > 0.0,
        "Banking dynamic consolidation must show contention"
    );
    assert_eq!(report::contention_time_fraction(&airlines.2.report), 0.0);
    assert_eq!(report::contention_time_fraction(&airlines.0.report), 0.0);
    // Semi-static planners are nearly contention-free everywhere.
    for dc in DataCenterId::ALL {
        let (semi, stoch, _) = runs(dc);
        assert!(
            report::contention_time_fraction(&semi.report) < 0.005,
            "{dc}"
        );
        assert!(
            report::contention_time_fraction(&stoch.report) < 0.005,
            "{dc}"
        );
    }
}

#[test]
fn fig9_contention_magnitude_cdf_nonempty_for_banking() {
    let (_, _, dynamic) = runs(DataCenterId::Banking);
    let cdf = report::contention_cdf(&dynamic.report);
    assert!(!cdf.is_empty());
    assert!(cdf.quantile(1.0).unwrap() > 0.0);
}

#[test]
fn fig10_airlines_utilisation_is_lowest() {
    // "Our first observation is the really low CPU utilization for the
    // Airlines workload, which is a direct consequence of the high memory
    // usage."
    let med = |dc| {
        let (semi, _, _) = runs(dc);
        report::avg_util_cdf(&semi.report).median().unwrap()
    };
    let airlines = med(DataCenterId::Airlines);
    for dc in [
        DataCenterId::Banking,
        DataCenterId::NaturalResources,
        DataCenterId::Beverage,
    ] {
        assert!(
            airlines < med(dc),
            "Airlines {airlines:.3} vs {dc} {:.3}",
            med(dc)
        );
    }
    assert!(
        airlines < 0.05,
        "Airlines median CPU utilisation {airlines:.3}"
    );
}

#[test]
fn fig11_peak_utilisation_crosses_one_only_for_banking_dynamic() {
    let (_, _, dynamic) = runs(DataCenterId::Banking);
    let peak = report::peak_util_cdf(&dynamic.report);
    assert!(
        peak.fraction_above(1.0) > 0.0,
        "Banking dynamic must cross 100%"
    );
    let (_, _, airlines_dynamic) = runs(DataCenterId::Airlines);
    assert_eq!(
        report::peak_util_cdf(&airlines_dynamic.report).fraction_above(1.0),
        0.0
    );
}

#[test]
fn fig12_running_server_distribution() {
    // Banking switches most of its fleet off in quiet intervals; the
    // memory-bound Airlines cannot switch anything off.
    let (_, _, banking) = runs(DataCenterId::Banking);
    let cdf = report::active_fraction_cdf(&banking.report);
    assert!(
        cdf.quantile(0.05).unwrap() < 0.45,
        "Banking should run under ~45% of provisioned servers in quiet intervals, got {:?}",
        cdf.quantile(0.05)
    );
    let (_, _, airlines) = runs(DataCenterId::Airlines);
    let cdf = report::active_fraction_cdf(&airlines.report);
    assert!(
        cdf.quantile(0.05).unwrap() > 0.85,
        "Airlines fleet stays on"
    );
    // Beverage has a wide distribution too (Fig 12).
    let (_, _, beverage) = runs(DataCenterId::Beverage);
    let cdf = report::active_fraction_cdf(&beverage.report);
    assert!(cdf.quantile(0.10).unwrap() < 0.75);
}

#[test]
fn fig13_banking_sensitivity_crossings() {
    let s = study(DataCenterId::Banking);
    let vanilla = s
        .run(PlannerKind::SemiStatic)
        .unwrap()
        .cost
        .provisioned_hosts;
    let stochastic = s
        .run(PlannerKind::Stochastic)
        .unwrap()
        .cost
        .provisioned_hosts;
    let dynamic_at = |bound: f64| {
        let mut config = *s.config();
        config.planner = config.planner.with_utilization_bound(bound);
        Study::from_workload(&config, s.workload().clone())
            .run(PlannerKind::Dynamic)
            .unwrap()
            .cost
            .provisioned_hosts
    };
    let d070 = dynamic_at(0.70);
    let d085 = dynamic_at(0.85);
    let d100 = dynamic_at(1.00);
    // Heavy reservation: dynamic is no better than vanilla.
    assert!(
        d070 as f64 >= vanilla as f64 * 0.9,
        "dyn@0.70 {d070} vs vanilla {vanilla}"
    );
    // Light reservation: dynamic overtakes stochastic...
    assert!(
        d085 as f64 <= stochastic as f64 * 1.08,
        "dyn@0.85 {d085} vs stochastic {stochastic}"
    );
    // ...and with no reservation it wins by roughly the paper's 18%.
    let gain = 1.0 - d100 as f64 / stochastic as f64;
    assert!(
        (0.08..=0.35).contains(&gain),
        "dyn@1.00 {d100} vs stochastic {stochastic}: gain {gain:.2}"
    );
    // Monotone in the bound.
    assert!(d070 >= d085 && d085 >= d100);
}

#[test]
fn fig14_airlines_dynamic_matches_stochastic_only_unreserved() {
    let s = study(DataCenterId::Airlines);
    let stochastic = s
        .run(PlannerKind::Stochastic)
        .unwrap()
        .cost
        .provisioned_hosts;
    let dynamic_at = |bound: f64| {
        let mut config = *s.config();
        config.planner = config.planner.with_utilization_bound(bound);
        Study::from_workload(&config, s.workload().clone())
            .run(PlannerKind::Dynamic)
            .unwrap()
            .cost
            .provisioned_hosts
    };
    let d080 = dynamic_at(0.80);
    let d100 = dynamic_at(1.00);
    assert!(
        d080 as f64 > stochastic as f64 * 1.15,
        "reserved dynamic must trail by ~1/U"
    );
    assert!(
        (d100 as f64 - stochastic as f64).abs() / stochastic as f64 <= 0.12,
        "unreserved dynamic ≈ stochastic: {d100} vs {stochastic}"
    );
}

#[test]
fn migrations_run_only_in_the_dynamic_plan() {
    for dc in DataCenterId::ALL {
        let (semi, stoch, dynamic) = runs(dc);
        assert_eq!(semi.report.migrations, 0);
        assert_eq!(stoch.report.migrations, 0);
        assert!(dynamic.report.migrations > 0, "{dc}");
    }
}
