//! Adversarial property tests for the two hand-rolled parsers the
//! service mode leans on: the HTTP/1.1 request-head parser
//! (`serve::http::parse_head`) and the `vmcw-health/v1` JSON codec
//! (`health::HealthSnapshot`). Both sit on untrusted input — network
//! bytes and possibly-torn on-disk telemetry — so the invariant under
//! test is always the same: **typed errors, never panics, never
//! silently misparsed data.**

use proptest::prelude::*;
use vmcw_repro::core::health::{
    CellHealth, HealthSnapshot, InflightJob, ServeHealth,
};
use vmcw_repro::core::serve::http::{
    parse_head, HttpError, MAX_BODY_BYTES, MAX_HEADER_COUNT,
};

fn bytes_strategy(max: usize) -> impl Strategy<Value = Vec<u8>> {
    proptest::collection::vec(0u8..=255, 0..max)
}

/// Maps raw bytes onto a small adversarial alphabet for header values:
/// digits plus the classic content-length smuggling characters.
fn smuggle_value(raw: &[u8]) -> String {
    const ALPHABET: &[u8] = b"0123456789+-exE. \t";
    raw.iter()
        .map(|b| ALPHABET[*b as usize % ALPHABET.len()] as char)
        .collect()
}

/// A string drawn from arbitrary bytes (lossily decoded, so it may
/// contain replacement chars, quotes, backslashes, control chars...).
fn wild_string(raw: &[u8]) -> String {
    String::from_utf8_lossy(raw).into_owned()
}

/// Floats that survive the encoder's `{:.3}` formatting exactly.
fn milli(f: u32) -> f64 {
    f64::from(f) / 1000.0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn http_head_parser_never_panics_on_arbitrary_bytes(raw in bytes_strategy(2048)) {
        // The contract is total: any byte soup is Ok or a typed error.
        if let Ok(head) = parse_head(&raw) {
            prop_assert!(!head.method.is_empty());
            prop_assert!(head.method.bytes().all(|b| b.is_ascii_uppercase()));
            prop_assert!(head.content_length <= MAX_BODY_BYTES);
            prop_assert!(head.headers.len() <= MAX_HEADER_COUNT);
        }
    }

    #[test]
    fn http_header_count_limit_is_exact(extra in 0usize..80) {
        let mut raw = String::from("GET /healthz HTTP/1.1\r\n");
        for i in 0..extra {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        match parse_head(raw.as_bytes()) {
            Ok(head) => prop_assert!(extra <= MAX_HEADER_COUNT && head.headers.len() == extra),
            Err(HttpError::TooLarge { .. }) => prop_assert!(extra > MAX_HEADER_COUNT),
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    #[test]
    fn http_content_length_is_strict_digits_or_rejected(raw in bytes_strategy(28)) {
        let value = smuggle_value(&raw);
        let head = format!("POST /v1/plan HTTP/1.1\r\nContent-Length: {value}\r\n");
        let trimmed = value.trim();
        // Mirror the spec: nonempty, pure ASCII digits, fits usize,
        // within the body cap — anything else must be rejected.
        let want: Option<usize> = if !trimmed.is_empty()
            && trimmed.bytes().all(|b| b.is_ascii_digit())
        {
            trimmed.parse::<usize>().ok().filter(|n| *n <= MAX_BODY_BYTES)
        } else {
            None
        };
        match (parse_head(head.as_bytes()), want) {
            (Ok(parsed), Some(n)) => prop_assert_eq!(parsed.content_length, n),
            (Err(_), None) => {}
            (Ok(parsed), None) => prop_assert!(
                false,
                "smuggled content-length `{}` parsed as {}",
                value,
                parsed.content_length
            ),
            (Err(e), Some(n)) => prop_assert!(false, "rejected valid length {n}: {e}"),
        }
    }

    #[test]
    fn health_round_trips_adversarial_strings_and_values(
        status_raw in bytes_strategy(24),
        cell_raw in bytes_strategy(24),
        incident_raw in bytes_strategy(48),
        counts in (0u32..5000, 0u32..5000, 0u32..100000),
        with_serve in 0u8..2,
        deadline_ms in -100000i64..100000,
    ) {
        let snap = HealthSnapshot {
            status: wild_string(&status_raw),
            cells: vec![CellHealth {
                cell: wild_string(&cell_raw),
                state: "running".into(),
                attempt: counts.0 as usize,
                hours_done: counts.1 as usize,
                hours_total: 336,
                steps: u64::from(counts.1),
                beat_age_secs: milli(counts.2),
                steps_per_sec: milli(counts.0),
                incidents: vec![wild_string(&incident_raw)],
            }],
            serve: (with_serve == 1).then(|| ServeHealth {
                queue_depth: counts.0 as usize,
                queue_limit: 8,
                workers: 2,
                shed_total: u64::from(counts.1),
                deadline_timeouts: u64::from(counts.2),
                breaker: wild_string(&status_raw),
                breaker_failures: 1,
                inflight: vec![InflightJob {
                    job: wild_string(&cell_raw),
                    state: "queued".into(),
                    deadline_ms_remaining: Some(deadline_ms),
                }],
            }),
        };
        let parsed = HealthSnapshot::parse(&snap.to_json());
        prop_assert_eq!(parsed.expect("encoder output must parse"), snap);
    }

    #[test]
    fn health_truncation_errors_or_parses_identically(
        cut_permille in 0u32..1000,
        wild in bytes_strategy(16),
    ) {
        let snap = HealthSnapshot {
            status: wild_string(&wild),
            cells: vec![CellHealth {
                cell: "A/Dynamic".into(),
                state: "running".into(),
                attempt: 1,
                hours_done: 7,
                hours_total: 336,
                steps: 7,
                beat_age_secs: 0.25,
                steps_per_sec: 44.5,
                incidents: vec![wild_string(&wild)],
            }],
            serve: None,
        };
        let doc = snap.to_json();
        let mut cut = (doc.len() * cut_permille as usize) / 1000;
        while cut > 0 && !doc.is_char_boundary(cut) {
            cut -= 1;
        }
        // A truncated document either fails with a typed error or — if
        // only trailing whitespace was cut — parses to the same value.
        // Never a panic, never a different value.
        match HealthSnapshot::parse(&doc[..cut]) {
            Err(_) => {}
            Ok(parsed) => prop_assert_eq!(parsed, snap, "cut at {} of {}", cut, doc.len()),
        }
    }

    #[test]
    fn health_byte_corruption_never_panics(
        pos_permille in 0u32..1000,
        replacement in 0u8..=255,
    ) {
        let snap = HealthSnapshot {
            status: "running".into(),
            cells: vec![],
            serve: None,
        };
        let mut bytes = snap.to_json().into_bytes();
        let pos = (bytes.len() * pos_permille as usize) / 1000;
        let pos = pos.min(bytes.len() - 1);
        bytes[pos] = replacement;
        // Corruption may happen to leave the document valid (flipping a
        // byte inside a string, say); the contract is only that the
        // parser returns rather than panicking — including on invalid
        // UTF-8, which `parse_bytes` must catch itself.
        let _ = HealthSnapshot::parse_bytes(&bytes);
    }

    #[test]
    fn health_random_bytes_never_panic_the_parser(raw in bytes_strategy(512)) {
        let _ = HealthSnapshot::parse_bytes(&raw);
    }
}
