//! Golden kill-and-resume test (DESIGN: crash-safe studies).
//!
//! Runs the full planner × data-center grid under fault injection,
//! kills the study at several global replay hours, resumes it, and
//! asserts the final reports — including the fault ledgers — are
//! *byte-identical* to an uninterrupted run, cell by cell. Also checks
//! the rendered `cells.csv`/`STUDY.md` artifacts match bytewise.

use std::path::PathBuf;

use vmcw_repro::consolidation::planner::PlannerKind;
use vmcw_repro::core::journal::Journal;
use vmcw_repro::core::supervise::{
    resume_study, run_study, run_study_opts, CancelToken, CellOutcome, CellRetryPolicy,
    ChaosConfig, ChaosMode, RunOptions, StudySpec, StudyStatus, JOURNAL_FILE,
};
use vmcw_repro::emulator::checkpoint::encode_report;
use vmcw_repro::emulator::FaultConfig;
use vmcw_repro::trace::datacenters::DataCenterId;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vmcw-golden-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// All four data centers × the three evaluated planners, with heavy
/// fault injection so the ledger is exercised, checkpointing every 4
/// replay hours.
fn golden_spec() -> StudySpec {
    let mut spec = StudySpec::new(0.02, 23, 5, 1);
    spec.faults = Some(FaultConfig {
        host_mtbf_hours: 40.0,
        host_mttr_hours: 3.0,
        migration_failure_prob: 0.1,
        trace_dropout_prob: 0.02,
        ..FaultConfig::baseline(23)
    });
    spec.checkpoint_every_hours = 4;
    spec
}

#[test]
fn resume_after_kill_is_byte_identical_for_every_cell() {
    let clean_dir = tmp_dir("clean");
    let clean = run_study(&golden_spec(), &clean_dir, &CancelToken::new()).unwrap();
    assert_eq!(clean.status, StudyStatus::Completed);
    assert_eq!(clean.cells.len(), 12, "4 data centers x 3 planners");
    assert!(
        clean
            .cells
            .iter()
            .any(|c| !c.report.as_ref().unwrap().faults.is_clean()),
        "fault injection should leave a visible ledger somewhere"
    );

    // Kill early in the first cell, mid first cell, and in the second
    // cell (hours are counted globally across the grid).
    for kill_hour in [1u64, 13, 29] {
        let dir = tmp_dir(&format!("kill{kill_hour}"));
        let token = CancelToken::new();
        token.cancel_after_hours(kill_hour);
        let partial = run_study(&golden_spec(), &dir, &token).unwrap();
        assert_eq!(
            partial.status,
            StudyStatus::Interrupted,
            "kill at hour {kill_hour} should interrupt"
        );
        assert!(dir.join(JOURNAL_FILE).exists());

        let resumed = resume_study(&dir, None, &CancelToken::new()).unwrap();
        assert_eq!(resumed.status, StudyStatus::Completed);
        assert_eq!(resumed.cells.len(), clean.cells.len());
        for (a, b) in clean.cells.iter().zip(&resumed.cells) {
            assert_eq!(a.dc, b.dc);
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.outcome, CellOutcome::Completed);
            assert_eq!(b.outcome, CellOutcome::Completed);
            let (ra, rb) = (a.report.as_ref().unwrap(), b.report.as_ref().unwrap());
            assert_eq!(
                ra.faults, rb.faults,
                "fault ledger diverged for {}/{} after kill at hour {kill_hour}",
                a.dc.letter(),
                a.kind.label()
            );
            assert_eq!(
                encode_report(ra),
                encode_report(rb),
                "report diverged for {}/{} after kill at hour {kill_hour}",
                a.dc.letter(),
                a.kind.label()
            );
        }
        for artifact in ["cells.csv", "STUDY.md"] {
            assert_eq!(
                std::fs::read(clean_dir.join(artifact)).unwrap(),
                std::fs::read(dir.join(artifact)).unwrap(),
                "{artifact} not byte-identical after kill at hour {kill_hour}"
            );
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
    let _ = std::fs::remove_dir_all(&clean_dir);
}

/// Two data centers × two planners under the golden fault load, small
/// enough that the self-healing leg below stays quick.
fn healing_spec() -> StudySpec {
    StudySpec {
        dcs: vec![DataCenterId::Airlines, DataCenterId::Banking],
        planners: vec![PlannerKind::SemiStatic, PlannerKind::Dynamic],
        ..golden_spec()
    }
}

/// DESIGN (self-healing supervisor): a cell that panics once mid-replay
/// is retried from its last checkpoint, and the healed study's rendered
/// artifacts are *byte-identical* to a run that never crashed. The
/// journal records the incident (`cell-crashed`) and the recovery
/// (`cell-retried`) without perturbing any report bytes.
#[test]
fn one_shot_panic_retry_is_byte_identical_to_clean_run() {
    let clean_dir = tmp_dir("heal-clean");
    let clean = run_study_opts(
        &healing_spec(),
        &clean_dir,
        &CancelToken::new(),
        &RunOptions::default(),
    )
    .unwrap();
    assert_eq!(clean.status, StudyStatus::Completed);
    assert_eq!(clean.cells.len(), 4, "2 data centers x 2 planners");

    let chaos_dir = tmp_dir("heal-chaos");
    let opts = RunOptions {
        retry: CellRetryPolicy {
            max_attempts: 3,
            base_backoff_secs: 0.01,
            backoff_factor: 2.0,
        },
        chaos: Some(
            ChaosConfig::for_cell("B/Dynamic", 7, ChaosMode::Panic, true)
                .expect("chaos cell id parses"),
        ),
        ..RunOptions::default()
    };
    let healed = run_study_opts(&healing_spec(), &chaos_dir, &CancelToken::new(), &opts).unwrap();
    assert_eq!(
        healed.status,
        StudyStatus::Completed,
        "a single transient panic must heal, not fail the study"
    );
    for cell in &healed.cells {
        assert_eq!(
            cell.outcome,
            CellOutcome::Completed,
            "cell {}/{} should complete after the retry",
            cell.dc.letter(),
            cell.kind.label()
        );
    }

    // The incident trail is journaled: one crash on attempt 1, one
    // retry announcing attempt 2, for exactly the injected cell.
    let (journal, tail) = Journal::open(&chaos_dir.join(JOURNAL_FILE)).unwrap();
    assert!(tail.is_none(), "healed journal must have no torn tail");
    let heads: Vec<String> = journal
        .records()
        .iter()
        .map(|r| {
            let text = String::from_utf8_lossy(r);
            text.lines().next().unwrap_or_default().to_string()
        })
        .collect();
    assert!(
        heads
            .iter()
            .any(|h| h.starts_with("cell-crashed B Dynamic 1 panic")),
        "journal should record the injected panic: {heads:?}"
    );
    assert!(
        heads.iter().any(|h| h == "cell-retried B Dynamic 2"),
        "journal should record the retry: {heads:?}"
    );
    assert!(
        !heads.iter().any(|h| h.starts_with("cell-crashed A")),
        "sibling cells must not record incidents: {heads:?}"
    );

    // The hard guarantee: healed artifacts match the clean run byte for
    // byte — retry resumes from the checkpoint stream, not from scratch.
    for artifact in ["cells.csv", "STUDY.md"] {
        assert_eq!(
            std::fs::read(clean_dir.join(artifact)).unwrap(),
            std::fs::read(chaos_dir.join(artifact)).unwrap(),
            "{artifact} not byte-identical after a healed panic"
        );
    }
    let _ = std::fs::remove_dir_all(&chaos_dir);
    let _ = std::fs::remove_dir_all(&clean_dir);
}
