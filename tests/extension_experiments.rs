//! The extension experiments run end-to-end at reduced scale, and every
//! registered experiment id resolves.

use vmcw_repro::core::experiments::{
    run_experiment, Suite, SuiteConfig, ALL_EXPERIMENTS, EXTENSION_EXPERIMENTS,
};

fn suite() -> Suite {
    Suite::new(SuiteConfig {
        scale: 0.04,
        seed: 3,
        history_days: 8,
        eval_days: 4,
    })
}

#[test]
fn every_registered_experiment_runs() {
    let mut suite = suite();
    for id in ALL_EXPERIMENTS.iter().chain(EXTENSION_EXPERIMENTS.iter()) {
        let tables = run_experiment(id, &mut suite).unwrap_or_else(|e| {
            panic!("experiment {id} failed: {e}");
        });
        assert!(!tables.is_empty(), "{id} produced no tables");
        for t in &tables {
            // fig9 may legitimately be empty at tiny scale (no contention).
            if *id != "fig9" {
                assert!(!t.is_empty(), "{id}/{} produced no rows", t.name);
            }
            assert!(!t.columns.is_empty());
        }
    }
    // The sensitivity pseudo-id expands to four tables.
    let sens = run_experiment("sensitivity", &mut suite).unwrap();
    assert_eq!(sens.len(), 4);
}

#[test]
fn csvs_are_parseable_back() {
    // Round-trip sanity: every produced CSV has a rectangular shape.
    let mut suite = suite();
    for id in ["fig7", "intervals", "stability", "constraints"] {
        for t in run_experiment(id, &mut suite).unwrap() {
            let csv = t.to_csv();
            let mut lines = csv.lines();
            let header_cols = lines.next().unwrap().split(',').count();
            for line in lines {
                assert_eq!(
                    line.split(',').count(),
                    header_cols,
                    "{id}: ragged CSV row `{line}`"
                );
            }
        }
    }
}
