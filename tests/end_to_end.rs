//! End-to-end integration: monitoring agent → warehouse → planning →
//! emulation, plus cross-cutting behaviours (constraints, determinism,
//! emulator conservation).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use vmcw_repro::cluster::constraints::{Constraint, ConstraintSet};
use vmcw_repro::cluster::resources::Resources;
use vmcw_repro::cluster::vm::VmId;
use vmcw_repro::consolidation::input::{PlanningInput, VirtualizationModel};
use vmcw_repro::consolidation::planner::{PlanPlacements, Planner, PlannerKind};
use vmcw_repro::core::study::{Study, StudyConfig};
use vmcw_repro::emulator::engine::{emulate, EmulatorConfig};
use vmcw_repro::trace::datacenters::{DataCenterId, GeneratorConfig};
use vmcw_repro::trace::metrics::{Metric, Sample};
use vmcw_repro::trace::series::StepSecs;
use vmcw_repro::trace::warehouse::{DataWarehouse, SourceId};

/// The full monitoring path of §3.1: per-minute agent samples flow into
/// the warehouse; consolidation planning reads hourly aggregates.
#[test]
fn monitoring_pipeline_feeds_planning() {
    let workload = GeneratorConfig::new(DataCenterId::Beverage)
        .scale(0.01)
        .days(4)
        .generate(17);
    let mut warehouse = DataWarehouse::default();
    let mut rng = StdRng::seed_from_u64(3);

    // The agent reports each hour as 60 jittered per-minute samples.
    for server in &workload.servers {
        for (hour, cpu_frac) in server.cpu_used_frac.iter().enumerate() {
            for minute in 0..60u64 {
                let jitter = 1.0 + 0.02 * (rng.random::<f64>() - 0.5);
                warehouse.ingest(
                    SourceId(server.id.0),
                    Metric::TotalProcessorTime,
                    Sample::new(hour as u64 * 60 + minute, cpu_frac * 100.0 * jitter),
                );
            }
        }
    }

    // Hourly aggregates must reproduce the generated trace within the
    // jitter (the paper's "hourly averages of the monitored data").
    for server in workload.servers.iter().take(3) {
        let series = warehouse
            .hourly_series(SourceId(server.id.0), Metric::TotalProcessorTime)
            .expect("server reported");
        assert_eq!(series.step(), StepSecs::HOUR);
        assert_eq!(series.len(), workload.hours());
        for (a, b) in series.iter().zip(server.cpu_used_frac.iter()) {
            assert!(
                (a - b * 100.0).abs() < b * 100.0 * 0.05 + 0.05,
                "{a} vs {}",
                b * 100.0
            );
        }
    }

    // And the planning input built from the same workload must plan.
    let input = PlanningInput::from_workload(&workload, 3, VirtualizationModel::baseline());
    let plan = Planner::baseline().plan_semi_static(&input).unwrap();
    assert!(plan.provisioned_hosts() > 0);
}

#[test]
fn studies_are_deterministic_end_to_end() {
    let config = StudyConfig::quick(DataCenterId::Banking, 77);
    let run = |kind| {
        let study = Study::prepare(&config);
        let r = study.run(kind).unwrap();
        (
            r.cost.provisioned_hosts,
            r.cost.energy_kwh,
            r.report.migrations,
            r.report.cpu_contention_samples.len(),
        )
    };
    for kind in [
        PlannerKind::SemiStatic,
        PlannerKind::Stochastic,
        PlannerKind::Dynamic,
    ] {
        assert_eq!(run(kind), run(kind), "{kind} must be deterministic");
    }
}

#[test]
fn emulator_conserves_demand() {
    // Σ served + Σ unmet == Σ demand, per hour, across all hosts.
    let config = StudyConfig::quick(DataCenterId::Banking, 5);
    let study = Study::prepare(&config);
    let run = study.run(PlannerKind::Dynamic).unwrap();
    let input = study.input();
    let eval = input.eval_range();
    let capacity = run.plan.dc.template().capacity();
    for (h, hour) in run.report.per_hour.iter().enumerate() {
        let placement = run.plan.placements.at_hour(h);
        let mut total_cpu_demand = 0.0;
        let mut served_plus_unmet = 0.0;
        for host in placement.active_hosts() {
            let demand = placement.demand_on(host, |vm| {
                input.vm_trace(vm).unwrap().demand_at(eval.start + h)
            });
            total_cpu_demand += demand.cpu_rpe2;
            served_plus_unmet += demand.cpu_rpe2.min(capacity.cpu_rpe2);
        }
        served_plus_unmet += hour.cpu_contention * capacity.cpu_rpe2;
        assert!(
            (total_cpu_demand - served_plus_unmet).abs() < 1e-6 * total_cpu_demand.max(1.0),
            "hour {h}: demand {total_cpu_demand} vs served+unmet {served_plus_unmet}"
        );
    }
}

#[test]
fn constraints_hold_in_every_dynamic_interval() {
    let workload = GeneratorConfig::new(DataCenterId::Airlines)
        .scale(0.04)
        .days(10)
        .generate(23);
    let ids: Vec<VmId> = (0..workload.servers.len() as u32).map(VmId).collect();
    let mut cs = ConstraintSet::new();
    cs.add(Constraint::AntiColocate(ids[0], ids[1])).unwrap();
    cs.add(Constraint::Colocate(ids[2], ids[3])).unwrap();
    cs.add(Constraint::PinToSubnet(
        ids[4],
        vmcw_repro::cluster::datacenter::SubnetId(1),
    ))
    .unwrap();
    let input = PlanningInput::from_workload(&workload, 7, VirtualizationModel::baseline())
        .with_constraints(cs.clone());
    let plan = Planner::baseline().plan_dynamic(&input).unwrap();
    let PlanPlacements::PerInterval { placements, .. } = &plan.placements else {
        panic!("dynamic plan must be per interval");
    };
    for (i, p) in placements.iter().enumerate() {
        let violations = cs.violations(&p.as_map(), |h| plan.dc.location(h));
        assert!(violations.is_empty(), "interval {i}: {violations:?}");
    }
}

#[test]
fn pinned_vm_never_migrates() {
    let workload = GeneratorConfig::new(DataCenterId::Banking)
        .scale(0.03)
        .days(10)
        .generate(29);
    let pinned = VmId(0);
    let mut cs = ConstraintSet::new();
    cs.add(Constraint::PinToHost(
        pinned,
        vmcw_repro::cluster::datacenter::HostId(0),
    ))
    .unwrap();
    let input = PlanningInput::from_workload(&workload, 7, VirtualizationModel::baseline())
        .with_constraints(cs);
    let plan = Planner::baseline().plan_dynamic(&input).unwrap();
    assert!(plan.migrations.iter().all(|m| m.vm != pinned));
    let PlanPlacements::PerInterval { placements, .. } = &plan.placements else {
        panic!("dynamic plan must be per interval");
    };
    for p in placements {
        assert_eq!(
            p.host_of(pinned),
            Some(vmcw_repro::cluster::datacenter::HostId(0))
        );
    }
}

#[test]
fn dedup_savings_reduce_memory_pressure_end_to_end() {
    let config = StudyConfig::quick(DataCenterId::Airlines, 31);
    let study = Study::prepare(&config);
    let plan = config.planner.plan_semi_static(study.input()).unwrap();
    let without = emulate(study.input(), &plan, &EmulatorConfig::default()).unwrap();
    let with = emulate(
        study.input(),
        &plan,
        &EmulatorConfig {
            dedup_savings_frac: 0.25,
            ..EmulatorConfig::default()
        },
    )
    .unwrap();
    let mean_mem = |r: &vmcw_repro::emulator::engine::EmulationReport| {
        r.per_host.iter().map(|h| h.avg_mem_util).sum::<f64>() / r.per_host.len() as f64
    };
    assert!(mean_mem(&with) < mean_mem(&without) * 0.9);
}

#[test]
fn more_history_never_breaks_planning() {
    // Plans must work for any history/eval split.
    let workload = GeneratorConfig::new(DataCenterId::Beverage)
        .scale(0.02)
        .days(12)
        .generate(41);
    for history_days in [1usize, 5, 11] {
        let input =
            PlanningInput::from_workload(&workload, history_days, VirtualizationModel::baseline());
        for kind in PlannerKind::EVALUATED {
            let plan = Planner::baseline().plan(kind, &input).unwrap();
            assert!(
                plan.provisioned_hosts() > 0,
                "{kind} with {history_days}d history"
            );
        }
    }
}

#[test]
fn oracle_dynamic_has_no_contention() {
    // With perfect foresight and the 20% reservation, every window's
    // demand fits by construction.
    let workload = GeneratorConfig::new(DataCenterId::Banking)
        .scale(0.05)
        .days(12)
        .generate(47);
    let input = PlanningInput::from_workload(&workload, 8, VirtualizationModel::baseline());
    let mut planner = Planner::baseline();
    planner.dynamic.cpu_predictor = vmcw_repro::consolidation::prediction::Predictor::Oracle;
    planner.dynamic.mem_predictor = vmcw_repro::consolidation::prediction::Predictor::Oracle;
    let plan = planner.plan_dynamic(&input).unwrap();
    let report = emulate(&input, &plan, &EmulatorConfig::default()).unwrap();
    assert_eq!(report.cpu_contention_samples.len(), 0);
    assert!(report
        .per_host
        .iter()
        .all(|h| h.peak_cpu_util <= 1.0 / 0.8 + 1e-9));
}

#[test]
fn study_runs_share_a_single_workload() {
    let config = StudyConfig::quick(DataCenterId::NaturalResources, 53);
    let study = Study::prepare(&config);
    let runs = study.run_evaluated().unwrap();
    assert_eq!(runs.len(), 3);
    // All plans cover the same VM population.
    let n = study.input().vms.len();
    for run in runs.values() {
        assert_eq!(run.plan.placements.at_hour(0).len(), n);
    }
}

#[test]
fn resources_sum_matches_aggregate_series() {
    // GeneratedWorkload::aggregate_* must equal summing servers by hand.
    let w = GeneratorConfig::new(DataCenterId::Banking)
        .scale(0.02)
        .days(3)
        .generate(59);
    let agg_cpu = w.aggregate_cpu_rpe2();
    let agg_mem = w.aggregate_mem_mb();
    for h in [0usize, 13, 71] {
        let cpu: f64 = w
            .servers
            .iter()
            .map(|s| s.cpu_demand_rpe2().get(h).unwrap())
            .sum();
        let mem: f64 = w
            .servers
            .iter()
            .map(|s| s.mem_used_mb.get(h).unwrap())
            .sum();
        assert!((agg_cpu.get(h).unwrap() - cpu).abs() < 1e-6);
        assert!((agg_mem.get(h).unwrap() - mem).abs() < 1e-6);
    }
    let _ = Resources::new(1.0, 1.0); // silence unused import lint paths
}

#[test]
fn black_swan_demand_surge_contends_fixed_plans_but_dynamic_recovers() {
    // Failure injection: a demand surge far beyond anything in the
    // planning history hits a subset of VMs mid-evaluation. The fixed
    // plans (sized on history) must show contention; the dynamic planner
    // repairs within a couple of intervals.
    let workload = GeneratorConfig::new(DataCenterId::Airlines)
        .scale(0.05)
        .days(14)
        .generate(61);
    let mut input = PlanningInput::from_workload(&workload, 10, VirtualizationModel::baseline());
    // Surge: from evaluation hour 48 onward, the first 8 VMs jump to
    // 60% CPU of a 6000-RPE2 box — far beyond the quiet Airlines history.
    let eval_start = input.history_range().end;
    for t in input.vms.iter_mut().take(8) {
        let mut values = t.cpu_rpe2.values().to_vec();
        for v in values.iter_mut().skip(eval_start + 48) {
            *v += 3600.0;
        }
        t.cpu_rpe2 = vmcw_repro::trace::series::TimeSeries::new(t.cpu_rpe2.step(), values);
    }

    let planner = Planner::baseline();
    let semi = planner.plan_semi_static(&input).unwrap();
    let dynamic = planner.plan_dynamic(&input).unwrap();
    let cfg = EmulatorConfig::default();
    let semi_report = emulate(&input, &semi, &cfg).unwrap();
    let dyn_report = emulate(&input, &dynamic, &cfg).unwrap();

    // The surge may or may not overflow the semi-static hosts depending
    // on packing slack, but the dynamic planner must end up with less
    // late-surge contention than its first surprised window.
    let dyn_late: f64 = dyn_report.per_hour[60..]
        .iter()
        .map(|h| h.cpu_contention)
        .sum();
    let dyn_first_window: f64 = dyn_report.per_hour[48..52]
        .iter()
        .map(|h| h.cpu_contention)
        .sum();
    assert!(
        dyn_late <= dyn_first_window + 1e-9,
        "dynamic must adapt after the surge: first window {dyn_first_window}, later {dyn_late}"
    );
    // Both plans keep serving every VM.
    assert_eq!(dyn_report.per_hour.len(), semi_report.per_hour.len());
    // And the dynamic plan provisions extra hosts to absorb the surge.
    assert!(
        dynamic.provisioned_hosts() >= semi.provisioned_hosts(),
        "surge forces the dynamic plan to provision at least as many hosts"
    );
}

#[test]
fn heterogeneous_estate_emulates_with_per_host_capacities() {
    use vmcw_repro::cluster::datacenter::DataCenter;
    use vmcw_repro::cluster::server::ServerModel;
    use vmcw_repro::consolidation::ffd::OrderKey;
    use vmcw_repro::consolidation::fixed_pool::pack_fixed;
    use vmcw_repro::consolidation::planner::{ConsolidationPlan, PlanPlacements, PlannerKind};
    use vmcw_repro::consolidation::sizing::SizingFunction;

    let workload = GeneratorConfig::new(DataCenterId::Beverage)
        .scale(0.04)
        .days(10)
        .generate(67);
    let input = PlanningInput::from_workload(&workload, 7, VirtualizationModel::baseline());
    let demands = input
        .vms
        .iter()
        .map(|t| {
            (
                t.vm.id,
                t.size_over(input.history_range(), SizingFunction::Max),
            )
        })
        .collect();
    let estate = DataCenter::heterogeneous(
        &[(ServerModel::hs23_elite(), 3), (ServerModel::hs22(), 4)],
        14,
        4,
    );
    let fit = pack_fixed(
        &demands,
        &input.net_demands(),
        &estate,
        &input.constraints,
        (1.0, 1.0),
        vmcw_repro::consolidation::ffd::OrderKey::Dominant,
    )
    .expect("estate should hold the shrunken workload");
    let _ = OrderKey::Dominant;

    let plan = ConsolidationPlan {
        kind: PlannerKind::SemiStatic,
        placements: PlanPlacements::Fixed(fit.placement.clone()),
        migrations: Vec::new(),
        dc: estate,
    };
    let report = emulate(&input, &plan, &EmulatorConfig::default()).unwrap();
    assert_eq!(report.hours, 72);
    // No contention: demands were sized at the history peak and the
    // packer honoured the *per-host* (heterogeneous) capacities. A bug
    // that applied the big template capacity to the small HS22 hosts
    // would show up as contention here.
    assert_eq!(report.cpu_contention_samples.len(), 0);
    for host in &report.per_host {
        assert!(
            host.peak_cpu_util <= 1.02,
            "host {}: {}",
            host.host,
            host.peak_cpu_util
        );
        assert!(
            host.peak_mem_util <= 1.05,
            "host {}: {}",
            host.host,
            host.peak_mem_util
        );
    }
}
