//! Acceptance tests for the `vmcw serve` service mode: load shedding
//! under overload, deadline-driven cooperative cancellation, and
//! graceful drain with boot-time recovery of interrupted jobs.
//!
//! Everything here is driven through real loopback sockets via the
//! `vmcw_bench::load` client, against a `Server` bound to port 0, so
//! the whole stack — HTTP codec, admission queue, worker pool,
//! supervisor, journal — is exercised exactly as in production. The
//! tests are ordering-deterministic: every step first *observes* the
//! server state it depends on (via `/healthz` polling) before acting,
//! and the only wall-clock dependence is "a ~1.5 s replay outlives a
//! few milliseconds of polling", which holds with enormous margin.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use vmcw_bench::load::{request, HttpReply};
use vmcw_repro::core::health::HealthSnapshot;
use vmcw_repro::core::serve::{ServeConfig, Server, JOBS_DIR};
use vmcw_repro::core::signals;
use vmcw_repro::core::supervise::JOURNAL_FILE;

fn tmp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("vmcw-serve-{name}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A job big enough to hold a worker for roughly 1.5 s (one cell,
/// scale 2.0, 44 days of replay).
const SLOW_JOB: &str = "{\"id\": \"slow\", \"dcs\": \"A\", \"planners\": [\"Semi-Static\"], \
                        \"scale\": 2.0, \"history_days\": 30, \"eval_days\": 14}";

/// A job that finishes in a few milliseconds.
fn tiny_job(id: &str) -> String {
    format!(
        "{{\"id\": \"{id}\", \"dcs\": \"A\", \"planners\": [\"Semi-Static\"], \
         \"scale\": 0.02, \"history_days\": 2, \"eval_days\": 1}}"
    )
}

fn healthz(port: u16) -> HealthSnapshot {
    let reply = request(port, "GET", "/healthz", "").expect("GET /healthz");
    assert_eq!(reply.status, 200, "{}", reply.body);
    HealthSnapshot::parse(&reply.body).expect("healthz parses")
}

/// Polls `/healthz` until `pred` holds; panics after 60 s.
fn wait_for(port: u16, what: &str, pred: impl Fn(&HealthSnapshot) -> bool) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let snap = healthz(port);
        if pred(&snap) {
            return;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}: {snap:?}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Polls `GET /v1/jobs/<id>` until the body reports `state`.
fn wait_for_job_state(port: u16, id: &str, state: &str) {
    let deadline = Instant::now() + Duration::from_secs(60);
    loop {
        let reply = request(port, "GET", &format!("/v1/jobs/{id}"), "").expect("job status");
        if reply.status == 200 && reply.body.contains(&format!("\"state\": \"{state}\"")) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for job {id} to reach {state}: {} {}",
            reply.status,
            reply.body
        );
        std::thread::sleep(Duration::from_millis(25));
    }
}

fn post(port: u16, body: String) -> HttpReply {
    request(port, "POST", "/v1/plan", &body).expect("POST /v1/plan")
}

/// Worker pool of 1, queue bound of 2: with one job running and two
/// queued, the fourth concurrent submission is shed with 503 +
/// `Retry-After`, while every admitted job still completes with 200.
#[test]
fn overload_sheds_the_fourth_request_and_completes_the_queued_ones() {
    let dir = tmp_dir("overload");
    let mut config = ServeConfig::new(&dir, 0);
    config.workers = 1;
    config.queue_depth = 2;
    let server = Server::bind(config).expect("bind");
    let port = server.port();

    // Occupy the single worker...
    let slow = std::thread::spawn(move || post(port, SLOW_JOB.to_owned()));
    wait_for(port, "slow job running", |s| {
        s.serve.as_ref().is_some_and(|sv| {
            sv.inflight.iter().any(|j| j.job == "slow" && j.state == "running")
        })
    });
    // ...fill the admission queue...
    let q1 = std::thread::spawn(move || post(port, tiny_job("q1")));
    let q2 = std::thread::spawn(move || post(port, tiny_job("q2")));
    wait_for(port, "queue depth 2", |s| {
        s.serve.as_ref().is_some_and(|sv| sv.queue_depth == 2)
    });

    // ...and the next submission must be shed, not buffered.
    let shed = post(port, tiny_job("q3"));
    assert_eq!(shed.status, 503, "{}", shed.body);
    assert!(shed.body.contains("queue is full"), "{}", shed.body);
    let retry_after = shed.header("Retry-After").expect("shed responses carry Retry-After");
    assert!(retry_after.parse::<u64>().expect("integral Retry-After") >= 1);

    // The admitted jobs are unharmed by the shed.
    for (label, handle) in [("slow", slow), ("q1", q1), ("q2", q2)] {
        let reply = handle.join().expect("join submitter");
        assert_eq!(reply.status, 200, "{label}: {}", reply.body);
        assert!(reply.body.contains("\"status\": \"completed\""), "{label}: {}", reply.body);
    }

    let snap = healthz(port);
    let serve = snap.serve.expect("serve block");
    assert!(serve.shed_total >= 1, "shed_total = {}", serve.shed_total);
    assert_eq!(serve.queue_limit, 2);
    assert_eq!(serve.workers, 1);

    // A job that was never admitted must not exist in the registry.
    let reply = request(port, "GET", "/v1/jobs/q3", "").expect("job status");
    assert_eq!(reply.status, 404, "{}", reply.body);

    server.drain_handle().drain();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// A 100 ms deadline on a ~1.5 s replay: the request returns 504 with
/// partial progress, leaves a resumable journal on disk, the worker
/// immediately serves the next request, and a server reboot resumes
/// the interrupted job to completion from its checkpoint.
#[test]
fn deadline_cancels_cooperatively_and_leaves_a_resumable_checkpoint() {
    let dir = tmp_dir("deadline");
    let mut config = ServeConfig::new(&dir, 0);
    config.workers = 1;
    let server = Server::bind(config.clone()).expect("bind");
    let port = server.port();

    let body = "{\"id\": \"dl\", \"dcs\": \"A\", \"planners\": [\"Semi-Static\"], \
                \"scale\": 2.0, \"history_days\": 30, \"eval_days\": 14, \
                \"checkpoint_every_hours\": 2, \"deadline_ms\": 100}";
    let reply = post(port, body.to_owned());
    assert_eq!(reply.status, 504, "{}", reply.body);
    assert!(reply.body.contains("\"status\": \"timeout\""), "{}", reply.body);
    assert!(reply.body.contains("\"resumable\": true"), "{}", reply.body);

    // The interrupted replay checkpointed: its journal is on disk.
    let journal = dir.join(JOBS_DIR).join("dl").join(JOURNAL_FILE);
    assert!(journal.is_file(), "no journal at {}", journal.display());

    // The worker survived the timeout and serves the next request.
    let after = post(port, tiny_job("after"));
    assert_eq!(after.status, 200, "{}", after.body);

    // The registry remembers the timeout.
    let status = request(port, "GET", "/v1/jobs/dl", "").expect("job status");
    assert_eq!(status.status, 200);
    assert!(status.body.contains("\"state\": \"timeout\""), "{}", status.body);

    let snap = healthz(port);
    assert!(snap.serve.expect("serve block").deadline_timeouts >= 1);

    server.drain_handle().drain();
    server.join();

    // Reboot on the same directory: boot recovery re-enqueues the
    // interrupted job (without a deadline) and runs it to completion
    // from the checkpoint.
    let server2 = Server::bind(config).expect("rebind");
    let port2 = server2.port();
    wait_for_job_state(port2, "dl", "completed");
    server2.drain_handle().drain();
    server2.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// First termination signal mid-replay: `/readyz` flips to 503, new
/// submissions are refused, the in-flight job checkpoints and its
/// client gets a retryable 503, `join()` returns (the process would
/// exit 0), and a reboot resumes the job. The second-signal hard-exit
/// policy is asserted via [`signals::action_for`]; delivering a real
/// second signal would kill the test process and is covered by the CI
/// `serve-smoke` job instead.
#[test]
fn drain_on_signal_checkpoints_inflight_work_and_recovers_on_reboot() {
    let dir = tmp_dir("drain");
    let mut config = ServeConfig::new(&dir, 0);
    config.workers = 1;
    let server = Server::bind(config.clone()).expect("bind");
    let port = server.port();

    let ready = request(port, "GET", "/readyz", "").expect("GET /readyz");
    assert_eq!(ready.status, 200, "{}", ready.body);

    let inflight = std::thread::spawn(move || {
        request(
            port,
            "POST",
            "/v1/plan",
            "{\"id\": \"infl\", \"dcs\": \"A\", \"planners\": [\"Semi-Static\"], \
             \"scale\": 2.0, \"history_days\": 30, \"eval_days\": 14, \
             \"checkpoint_every_hours\": 2}",
        )
        .expect("POST inflight job")
    });
    wait_for(port, "inflight job running", |s| {
        s.serve.as_ref().is_some_and(|sv| {
            sv.inflight.iter().any(|j| j.job == "infl" && j.state == "running")
        })
    });

    // Deliver the (simulated) first SIGTERM through the real wiring:
    // the signal watcher observes it and triggers the drain handle.
    let handle = server.drain_handle();
    signals::on_first_signal(move || handle.drain());
    assert_eq!(signals::action_for(1), signals::SignalAction::Drain);
    assert_eq!(signals::action_for(2), signals::SignalAction::HardExit);
    signals::simulate_signal();

    // Drain stops readiness...
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let ready = request(port, "GET", "/readyz", "").expect("GET /readyz");
        if ready.status == 503 {
            assert!(ready.body.contains("draining"), "{}", ready.body);
            break;
        }
        assert!(Instant::now() < deadline, "readyz never flipped to 503");
        std::thread::sleep(Duration::from_millis(10));
    }
    // ...and admission.
    let refused = post(port, tiny_job("late"));
    assert_eq!(refused.status, 503, "{}", refused.body);
    assert!(refused.body.contains("draining"), "{}", refused.body);

    // The in-flight client gets a retryable interruption, not a hang.
    let reply = inflight.join().expect("join inflight submitter");
    assert_eq!(reply.status, 503, "{}", reply.body);
    assert!(reply.body.contains("\"status\": \"interrupted\""), "{}", reply.body);
    assert!(reply.body.contains("\"resumable\": true"), "{}", reply.body);
    assert!(reply.header("Retry-After").is_some());

    // Workers wind down; join() returning is the in-process equivalent
    // of "the daemon exited 0".
    server.join();
    let journal = dir.join(JOBS_DIR).join("infl").join(JOURNAL_FILE);
    assert!(journal.is_file(), "no journal at {}", journal.display());

    // Reboot: the interrupted job resumes from its checkpoint and the
    // server is ready again.
    let server2 = Server::bind(config).expect("rebind");
    let port2 = server2.port();
    let ready = request(port2, "GET", "/readyz", "").expect("GET /readyz");
    assert_eq!(ready.status, 200, "{}", ready.body);
    wait_for_job_state(port2, "infl", "completed");
    server2.drain_handle().drain();
    server2.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Anonymous submissions never collide with jobs recovered from a
/// previous process: `next_id` restarts at 1 every boot, so the id
/// generator must skip ids already present in the registry or on disk
/// instead of answering a spurious 409.
#[test]
fn generated_ids_skip_jobs_recovered_from_a_previous_boot() {
    let dir = tmp_dir("autoid");
    let mut config = ServeConfig::new(&dir, 0);
    config.workers = 1;
    let server = Server::bind(config.clone()).expect("bind");
    let port = server.port();

    let anon = "{\"dcs\": \"A\", \"planners\": [\"Semi-Static\"], \
                \"scale\": 0.02, \"history_days\": 2, \"eval_days\": 1}";
    let reply = post(port, anon.to_owned());
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("\"job\": \"job-0001\""), "{}", reply.body);
    server.drain_handle().drain();
    server.join();

    // Reboot on the same directory: job-0001 is recovered from disk,
    // and the next anonymous submission gets a fresh id, not a 409.
    let server2 = Server::bind(config).expect("rebind");
    let port2 = server2.port();
    let reply = post(port2, anon.to_owned());
    assert_eq!(reply.status, 200, "{}", reply.body);
    assert!(reply.body.contains("\"job\": \"job-0002\""), "{}", reply.body);
    server2.drain_handle().drain();
    server2.join();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Adversarial wire input against a live server: pipelined requests get
/// exactly one response (`Connection: close`), malformed framing gets
/// 400, an oversized head gets 431 — and the server stays up.
#[test]
fn wire_garbage_gets_typed_errors_and_exactly_one_response() {
    let dir = tmp_dir("wire");
    let mut config = ServeConfig::new(&dir, 0);
    config.workers = 1;
    let server = Server::bind(config).expect("bind");
    let port = server.port();

    let raw = |bytes: &[u8]| -> String {
        let mut stream = TcpStream::connect(("127.0.0.1", port)).expect("connect");
        stream.write_all(bytes).expect("write");
        let mut out = Vec::new();
        stream.read_to_end(&mut out).expect("read");
        String::from_utf8_lossy(&out).into_owned()
    };

    // Pipelined requests: one response, then close.
    let text = raw(b"GET /readyz HTTP/1.1\r\n\r\nGET /readyz HTTP/1.1\r\n\r\n");
    assert_eq!(text.matches("HTTP/1.1").count(), 1, "{text}");
    assert!(text.starts_with("HTTP/1.1 200"), "{text}");

    // Pipelined garbage after a complete body is ignored, and the bad
    // body itself is a 400, not a hang or crash.
    let text = raw(
        b"POST /v1/plan HTTP/1.1\r\nContent-Length: 2\r\n\r\n[]\x00\xff pipelined trash",
    );
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");

    // Unparsable content-length.
    let text = raw(b"POST /v1/plan HTTP/1.1\r\nContent-Length: zebra\r\n\r\n");
    assert!(text.starts_with("HTTP/1.1 400"), "{text}");

    // A head that never ends within the limit. Sized to one byte past
    // the 16 KiB head cap so the server consumes every byte we send
    // before erroring — unread bytes at close would RST the connection
    // and could discard the buffered 431 on loopback.
    let mut big = b"GET /readyz HTTP/1.1\r\n".to_vec();
    big.extend(std::iter::repeat_n(b'a', 16 * 1024 + 1 - big.len()));
    let text = raw(&big);
    assert!(text.starts_with("HTTP/1.1 431"), "{text}");

    // After all that abuse the server still answers cleanly.
    let ready = request(port, "GET", "/readyz", "").expect("GET /readyz");
    assert_eq!(ready.status, 200, "{}", ready.body);

    server.drain_handle().drain();
    server.join();
    let _ = std::fs::remove_dir_all(&dir);
}
