//! Property-based tests over the core invariants (see DESIGN.md §5).

use proptest::prelude::*;
use std::collections::BTreeMap;
use vmcw_repro::cluster::constraints::{Constraint, ConstraintSet};
use vmcw_repro::cluster::datacenter::DataCenter;
use vmcw_repro::cluster::power::PowerModel;
use vmcw_repro::cluster::resources::Resources;
use vmcw_repro::cluster::server::ServerModel;
use vmcw_repro::cluster::vm::VmId;
use vmcw_repro::consolidation::ffd::{first_fit_decreasing, FfdModel, OrderKey};
use vmcw_repro::consolidation::sizing::SizingFunction;
use vmcw_repro::migration::precopy::{HostLoad, PrecopyConfig, VmMigrationProfile};
use vmcw_repro::trace::stats;

fn test_host(cpu: f64, mem: f64) -> ServerModel {
    ServerModel {
        name: "prop-host".into(),
        cpu_rpe2: cpu,
        mem_mb: mem,
        net_mbps: 1000.0,
        power: PowerModel::new(100.0, 200.0),
    }
}

/// Replays an FFD run and checks no host exceeds the effective capacity.
fn assert_capacity_respected(
    demands: &BTreeMap<VmId, Resources>,
    bounds: (f64, f64),
) -> (usize, usize) {
    let mut dc = DataCenter::new(test_host(100.0, 1000.0), 8, 2);
    let placement = first_fit_decreasing(
        demands,
        &mut dc,
        &ConstraintSet::new(),
        bounds,
        OrderKey::Dominant,
    )
    .expect("all items fit an empty host by construction");
    let effective = Resources::new(100.0 * bounds.0, 1000.0 * bounds.1);
    for host in placement.active_hosts() {
        let load = placement.demand_on(host, |vm| demands[&vm]);
        assert!(
            load.fits_within(&(effective * (1.0 + 1e-9))),
            "host {host} overloaded: {load} > {effective}"
        );
    }
    assert_eq!(
        placement.len(),
        demands.len(),
        "every VM placed exactly once"
    );
    (placement.active_host_count(), dc.len())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn ffd_never_overloads_hosts(
        demands in proptest::collection::vec((1.0f64..80.0, 1.0f64..800.0), 1..60),
        cpu_bound in 0.5f64..1.0,
        mem_bound in 0.5f64..1.0,
    ) {
        let map: BTreeMap<VmId, Resources> = demands
            .iter()
            .enumerate()
            .map(|(i, &(c, m))| (VmId(i as u32), Resources::new(c * cpu_bound, m * mem_bound)))
            .collect();
        assert_capacity_respected(&map, (cpu_bound, mem_bound));
    }

    #[test]
    fn ffd_host_count_lower_bound(
        demands in proptest::collection::vec((1.0f64..50.0, 1.0f64..500.0), 1..60),
    ) {
        // Host count is at least the volume lower bound in each dimension
        // and at most the number of VMs.
        let map: BTreeMap<VmId, Resources> = demands
            .iter()
            .enumerate()
            .map(|(i, &(c, m))| (VmId(i as u32), Resources::new(c, m)))
            .collect();
        let (active, provisioned) = assert_capacity_respected(&map, (1.0, 1.0));
        let cpu_total: f64 = map.values().map(|r| r.cpu_rpe2).sum();
        let mem_total: f64 = map.values().map(|r| r.mem_mb).sum();
        let lower = ((cpu_total / 100.0).ceil() as usize).max((mem_total / 1000.0).ceil() as usize);
        prop_assert!(active >= lower, "active {active} below volume bound {lower}");
        prop_assert!(active <= map.len());
        prop_assert_eq!(active, provisioned);
    }

    #[test]
    fn ffd_respects_random_anti_colocation(
        n in 2usize..20,
        pairs in proptest::collection::vec((0usize..20, 0usize..20), 0..10),
    ) {
        let map: BTreeMap<VmId, Resources> = (0..n)
            .map(|i| (VmId(i as u32), Resources::new(10.0, 100.0)))
            .collect();
        let mut cs = ConstraintSet::new();
        for (a, b) in pairs {
            let (a, b) = (a % n, b % n);
            if a != b {
                // Ignore conflicts with earlier colocations — none exist.
                let _ = cs.add(Constraint::AntiColocate(VmId(a as u32), VmId(b as u32)));
            }
        }
        let mut dc = DataCenter::new(test_host(100.0, 1000.0), 8, 2);
        let placement =
            first_fit_decreasing(&map, &mut dc, &cs, (1.0, 1.0), OrderKey::Dominant).unwrap();
        let violations = cs.violations(&placement.as_map(), |h| dc.location(h));
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn ffd_respects_random_colocation_groups(
        n in 2usize..16,
        links in proptest::collection::vec((0usize..16, 0usize..16), 0..8),
    ) {
        let map: BTreeMap<VmId, Resources> = (0..n)
            .map(|i| (VmId(i as u32), Resources::new(5.0, 50.0)))
            .collect();
        let mut cs = ConstraintSet::new();
        for (a, b) in links {
            let (a, b) = (a % n, b % n);
            if a != b {
                cs.add(Constraint::Colocate(VmId(a as u32), VmId(b as u32))).unwrap();
            }
        }
        let mut dc = DataCenter::new(test_host(100.0, 1000.0), 8, 2);
        let placement =
            first_fit_decreasing(&map, &mut dc, &cs, (1.0, 1.0), OrderKey::Dominant).unwrap();
        let violations = cs.violations(&placement.as_map(), |h| dc.location(h));
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }

    #[test]
    fn sizing_functions_are_ordered(
        values in proptest::collection::vec(0.0f64..1000.0, 1..200),
    ) {
        let mean = SizingFunction::Mean.size(&values);
        let p50 = SizingFunction::Percentile(50.0).size(&values);
        let p90 = SizingFunction::BODY_P90.size(&values);
        let max = SizingFunction::Max.size(&values);
        prop_assert!(p50 <= p90 + 1e-9);
        prop_assert!(p90 <= max + 1e-9);
        prop_assert!(mean <= max + 1e-9);
        prop_assert!(values.iter().copied().fold(f64::INFINITY, f64::min) <= mean + 1e-9);
    }

    #[test]
    fn percentile_is_monotone_in_p(
        values in proptest::collection::vec(0.0f64..100.0, 1..100),
        p1 in 0.0f64..100.0,
        p2 in 0.0f64..100.0,
    ) {
        let (lo, hi) = if p1 <= p2 { (p1, p2) } else { (p2, p1) };
        let a = stats::percentile(&values, lo).unwrap();
        let b = stats::percentile(&values, hi).unwrap();
        prop_assert!(a <= b + 1e-9);
    }

    #[test]
    fn cov_and_peak_ratio_invariants(
        values in proptest::collection::vec(0.01f64..100.0, 2..200),
    ) {
        let pa = stats::peak_to_average(&values).unwrap();
        prop_assert!(pa >= 1.0 - 1e-9, "peak/average is at least 1, got {pa}");
        let cov = stats::coefficient_of_variability(&values).unwrap();
        prop_assert!(cov >= 0.0);
        // Scaling invariance: both statistics are scale-free.
        let scaled: Vec<f64> = values.iter().map(|v| v * 7.5).collect();
        prop_assert!((stats::peak_to_average(&scaled).unwrap() - pa).abs() < 1e-6);
        prop_assert!(
            (stats::coefficient_of_variability(&scaled).unwrap() - cov).abs() < 1e-6
        );
    }

    #[test]
    fn cdf_quantile_and_fraction_are_inverse_ish(
        values in proptest::collection::vec(-100.0f64..100.0, 1..100),
        q in 0.01f64..1.0,
    ) {
        let cdf = stats::Cdf::from_samples(values);
        let x = cdf.quantile(q).unwrap();
        // At least q of the mass is at or below the q-quantile.
        prop_assert!(cdf.fraction_at_or_below(x) + 1e-9 >= q);
    }

    #[test]
    fn precopy_duration_monotone_in_memory(
        mem_a in 256.0f64..4096.0,
        extra in 1.0f64..8192.0,
        dirty in 0.0f64..400.0,
    ) {
        let cfg = PrecopyConfig::gigabit();
        let wws = 128.0;
        let small = cfg.simulate(&VmMigrationProfile::new(mem_a, dirty, wws), HostLoad::idle());
        let large = cfg.simulate(
            &VmMigrationProfile::new(mem_a + extra, dirty, wws),
            HostLoad::idle(),
        );
        prop_assert!(large.total_secs >= small.total_secs - 1e-9);
    }

    #[test]
    fn precopy_copies_at_least_the_memory(
        mem in 256.0f64..16384.0,
        dirty in 0.0f64..900.0,
        wws_frac in 0.0f64..0.4,
    ) {
        let cfg = PrecopyConfig::gigabit();
        let vm = VmMigrationProfile::new(mem, dirty, mem * wws_frac);
        let out = cfg.simulate(&vm, HostLoad::idle());
        prop_assert!(out.copied_mb >= mem - 1e-6);
        prop_assert!(out.precopy_secs > 0.0);
        prop_assert!(out.rounds >= 1);
    }

    #[test]
    fn power_model_is_monotone(
        idle in 0.0f64..300.0,
        span in 0.0f64..300.0,
        u1 in 0.0f64..1.0,
        u2 in 0.0f64..1.0,
    ) {
        let p = PowerModel::new(idle, idle + span);
        let (lo, hi) = if u1 <= u2 { (u1, u2) } else { (u2, u1) };
        prop_assert!(p.watts_at(lo) <= p.watts_at(hi) + 1e-9);
        prop_assert!(p.watts_at(lo) >= idle - 1e-9);
        prop_assert!(p.watts_at(hi) <= idle + span + 1e-9);
    }

    #[test]
    fn ffd_model_load_tracks_placements(
        demands in proptest::collection::vec((1.0f64..40.0, 1.0f64..400.0), 1..30),
    ) {
        // The FfdModel's internal accounting must match a recomputation.
        use vmcw_repro::consolidation::ffd::{build_items, pack};
        let map: BTreeMap<VmId, Resources> = demands
            .iter()
            .enumerate()
            .map(|(i, &(c, m))| (VmId(i as u32), Resources::new(c, m)))
            .collect();
        let items = build_items(&map, &ConstraintSet::new()).unwrap();
        let mut dc = DataCenter::new(test_host(100.0, 1000.0), 8, 2);
        let mut model = FfdModel::new(Resources::new(100.0, 1000.0), OrderKey::Dominant, 0);
        let placement = pack(&mut model, items, &mut dc, &ConstraintSet::new()).unwrap();
        for host in placement.active_hosts() {
            let expected = placement.demand_on(host, |vm| map[&vm]);
            let tracked = model.load(host.0 as usize);
            prop_assert!((expected.cpu_rpe2 - tracked.cpu_rpe2).abs() < 1e-6);
            prop_assert!((expected.mem_mb - tracked.mem_mb).abs() < 1e-6);
        }
    }
}

// ---- Stochastic-planner invariants -----------------------------------

use vmcw_repro::cluster::vm::Vm;
use vmcw_repro::consolidation::input::VmTrace;
use vmcw_repro::consolidation::pcp::{build_pcp_items, PcpConfig};
use vmcw_repro::trace::series::{StepSecs, TimeSeries};

fn trace_from(values: Vec<f64>, id: u32) -> VmTrace {
    let len = values.len();
    VmTrace {
        vm: Vm::new(VmId(id), format!("p{id}"), 1024.0),
        cpu_rpe2: TimeSeries::new(StepSecs::HOUR, values),
        mem_mb: TimeSeries::new(StepSecs::HOUR, vec![100.0; len]),
        net_peak_mbps: 0.0,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn pcp_envelopes_lie_between_body_and_tail(
        raw in proptest::collection::vec(0.0f64..500.0, 48..240),
    ) {
        let len = raw.len();
        let vms = vec![trace_from(raw, 0)];
        let cfg = PcpConfig { buckets: 24, ..PcpConfig::paper() };
        let items = build_pcp_items(&vms, 0..len, &cfg, &ConstraintSet::new()).unwrap();
        let item = &items[0];
        prop_assert!(item.body.cpu_rpe2 <= item.tail.cpu_rpe2 + 1e-9);
        for &e in &item.cpu_env {
            prop_assert!(
                e >= item.body.cpu_rpe2 - 1e-9 && e <= item.tail.cpu_rpe2 + 1e-9,
                "envelope {e} outside [body {}, tail {}]",
                item.body.cpu_rpe2,
                item.tail.cpu_rpe2
            );
        }
        // At least one bucket carries the tail (the max lives somewhere),
        // unless the series never exceeds its own P90 (flat series).
        let max = item.tail.cpu_rpe2;
        if max > item.body.cpu_rpe2 + 1e-9 {
            prop_assert!(item.cpu_env.iter().any(|&e| (e - max).abs() < 1e-9));
        }
    }

    #[test]
    fn pcp_more_buckets_never_hurt_feasibility_mass(
        raw in proptest::collection::vec(0.0f64..500.0, 96..240),
    ) {
        // The total envelope mass (Σ over buckets) is monotone data: with
        // more buckets the envelope isolates peaks more precisely, so the
        // *mean* envelope level cannot increase.
        let len = raw.len();
        let vms = vec![trace_from(raw, 0)];
        let coarse_cfg = PcpConfig { buckets: 6, ..PcpConfig::paper() };
        let fine_cfg = PcpConfig { buckets: 48, ..PcpConfig::paper() };
        let coarse = &build_pcp_items(&vms, 0..len, &coarse_cfg, &ConstraintSet::new()).unwrap()[0];
        let fine = &build_pcp_items(&vms, 0..len, &fine_cfg, &ConstraintSet::new()).unwrap()[0];
        let mean = |env: &[f64]| env.iter().sum::<f64>() / env.len() as f64;
        prop_assert!(mean(&fine.cpu_env) <= mean(&coarse.cpu_env) + 1e-9);
    }

    #[test]
    fn dynamic_plans_cover_all_vms_for_random_seeds(seed in 0u64..200) {
        use vmcw_repro::consolidation::input::{PlanningInput, VirtualizationModel};
        use vmcw_repro::consolidation::planner::Planner;
        use vmcw_repro::trace::datacenters::{DataCenterId, GeneratorConfig};
        let w = GeneratorConfig::new(DataCenterId::Beverage).scale(0.015).days(6).generate(seed);
        let input = PlanningInput::from_workload(&w, 4, VirtualizationModel::baseline());
        let plan = Planner::baseline().plan_dynamic(&input).unwrap();
        for h in [0usize, 13, 47] {
            prop_assert_eq!(plan.placements.at_hour(h).len(), input.vms.len());
        }
        prop_assert!(plan.provisioned_hosts() >= 1);
    }
}

// ---- Fixed-pool invariants --------------------------------------------

use vmcw_repro::consolidation::fixed_pool::{pack_fixed, FixedPoolError};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fixed_pool_never_overloads_mixed_hosts(
        demands in proptest::collection::vec((1.0f64..60.0, 1.0f64..600.0), 1..40),
        big_hosts in 1u32..4,
        small_hosts in 0u32..4,
    ) {
        let estate = DataCenter::heterogeneous(
            &[
                (test_host(100.0, 1000.0), big_hosts),
                (test_host(50.0, 500.0), small_hosts),
            ],
            8,
            2,
        );
        let map: BTreeMap<VmId, Resources> = demands
            .iter()
            .enumerate()
            .map(|(i, &(c, m))| (VmId(i as u32), Resources::new(c, m)))
            .collect();
        match pack_fixed(
            &map,
            &BTreeMap::new(),
            &estate,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Dominant,
        ) {
            Ok(fit) => {
                // Every host's load fits its own capacity.
                for host in fit.placement.active_hosts() {
                    let cap = estate.host(host).unwrap().model.capacity();
                    let load = fit.placement.demand_on(host, |vm| map[&vm]);
                    prop_assert!(
                        load.fits_within(&(cap * (1.0 + 1e-9))),
                        "host {host} ({}) overloaded: {load}",
                        estate.host(host).unwrap().model.name
                    );
                }
                prop_assert_eq!(fit.placement.len(), map.len());
                // Empty-host report is consistent.
                for h in &fit.empty_hosts {
                    prop_assert!(fit.placement.vms_on(*h).is_empty());
                }
            }
            Err(FixedPoolError::PoolExhausted { .. }) => {
                // Legitimate when the estate is too small; nothing to check.
            }
            Err(e) => prop_assert!(false, "unexpected error: {e}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Fault-injection invariants (see docs/ROBUSTNESS.md).
// ---------------------------------------------------------------------------

use std::sync::OnceLock;
use vmcw_repro::consolidation::drain::plan_drain;
use vmcw_repro::consolidation::input::{PlanningInput, VirtualizationModel};
use vmcw_repro::consolidation::planner::{ConsolidationPlan, Planner};
use vmcw_repro::emulator::engine::{emulate_with_faults, EmulatorConfig};
use vmcw_repro::emulator::faults::{CrashSchedule, FaultConfig};
use vmcw_repro::migration::retry::RetryPolicy;
use vmcw_repro::trace::datacenters::{DataCenterId, GeneratorConfig};

/// A small planned study, built once and shared across property cases.
fn fault_fixture() -> &'static (PlanningInput, ConsolidationPlan) {
    static FIXTURE: OnceLock<(PlanningInput, ConsolidationPlan)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let w = GeneratorConfig::new(DataCenterId::Banking)
            .scale(0.04)
            .days(8)
            .generate(17);
        let input = PlanningInput::from_workload(&w, 5, VirtualizationModel::baseline());
        let plan = Planner::baseline()
            .plan_stochastic(&input)
            .expect("fixture plans");
        (input, plan)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn same_fault_seed_gives_identical_crash_schedules(
        seed in 0u64..u64::MAX,
        mtbf in 24.0f64..600.0,
        mttr in 1.0f64..12.0,
        n_hosts in 1usize..24,
        hours in 24usize..300,
    ) {
        let faults = FaultConfig {
            seed,
            host_mtbf_hours: mtbf,
            host_mttr_hours: mttr,
            ..FaultConfig::disabled()
        };
        let a = CrashSchedule::generate(&faults, n_hosts, hours);
        let b = CrashSchedule::generate(&faults, n_hosts, hours);
        prop_assert_eq!(&a, &b, "one seed must yield one timeline");
        // Every outage stays inside the horizon and no host is double
        // booked: within a host, outages are disjoint and ordered.
        for o in a.outages() {
            prop_assert!(o.start_hour < hours);
            prop_assert!(o.end_hour <= hours);
            prop_assert!(o.start_hour < o.end_hour);
        }
    }

    #[test]
    fn retry_never_exceeds_the_attempt_cap(
        max_attempts in 1u32..12,
        base in 0.0f64..120.0,
        factor in 1.0f64..4.0,
        budget in 1.0f64..7200.0,
        duration in 0.0f64..900.0,
        fail_mask in 0u32..u32::MAX,
    ) {
        let policy = RetryPolicy::try_new(max_attempts, base, factor, budget)
            .expect("generated parameters are valid");
        let outcome = policy.run(duration, |attempt| fail_mask & (1 << (attempt % 32)) != 0);
        prop_assert!(
            outcome.attempts <= max_attempts,
            "{} attempts > cap {max_attempts}", outcome.attempts
        );
        prop_assert!(outcome.elapsed_secs <= budget + 1e-9,
            "elapsed {} exceeds budget {budget}", outcome.elapsed_secs);
        prop_assert_eq!(outcome.succeeded, outcome.abandoned.is_none());
    }

    #[test]
    fn evacuation_conserves_vm_count(host_idx in 0usize..64) {
        let (input, plan) = fault_fixture();
        let placement = plan.placements.at_hour(0);
        let active = placement.active_hosts();
        let host = active[host_idx % active.len()];
        let residents = placement.vms_on(host).to_vec();
        prop_assert!(!residents.is_empty(), "active hosts hold at least one VM");
        let precopy = vmcw_repro::migration::precopy::PrecopyConfig::gigabit();
        if let Ok(dp) = plan_drain(input, placement, host, &plan.dc, 0, (1.0, 1.0), &precopy) {
            let mut after = placement.clone();
            for &(vm, dest) in &dp.moves {
                prop_assert!(dest != host, "evacuation must leave the crashed host");
                after.assign(vm, dest);
            }
            // No VM lost or duplicated: `assign` re-homes, so the total
            // count is conserved and the drained host ends empty.
            prop_assert_eq!(after.len(), placement.len());
            prop_assert_eq!(dp.moves.len(), residents.len());
            prop_assert!(after.vms_on(host).is_empty(), "host must end empty");
            for &vm in &residents {
                prop_assert!(after.host_of(vm).is_some(), "{vm} lost in evacuation");
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Sort-key totality: every float-keyed ordering in the planners must be
// NaN-free, total and stable (ties broken by id), so plans never depend
// on the incidental insertion order of equal keys.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn float_sort_keys_are_total_and_stable(
        raw in proptest::collection::vec((-1000.0f64..1000.0, 0u32..8), 1..80),
    ) {
        // Mirrors the planner sort shape: descending key, ascending id
        // tie-break, exactly as dynamic.rs / ffd.rs / drain.rs sort.
        // A slice of the keys is degenerate: NaN, +0.0 and -0.0 all occur.
        let mut items: Vec<(u32, f64)> = raw
            .iter()
            .enumerate()
            .map(|(i, &(k, tag))| {
                let key = match tag {
                    0 => f64::NAN,
                    1 => 0.0,
                    2 => -0.0,
                    _ => k,
                };
                (i as u32, key)
            })
            .collect();
        let sort = |v: &mut Vec<(u32, f64)>| {
            v.sort_by(|a, b| b.1.total_cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        };
        sort(&mut items);
        // Total: sorting any permutation yields the identical order.
        let mut reversed: Vec<(u32, f64)> = items.iter().copied().rev().collect();
        sort(&mut reversed);
        for (a, b) in items.iter().zip(&reversed) {
            prop_assert_eq!(a.0, b.0, "order must not depend on input order");
            prop_assert!(a.1 == b.1 || (a.1.is_nan() && b.1.is_nan()));
        }
        // The comparator is a strict weak order even with NaN present:
        // adjacent pairs never compare Greater in sorted position.
        for w in items.windows(2) {
            let ord = w[1].1.total_cmp(&w[0].1).then_with(|| w[0].0.cmp(&w[1].0));
            prop_assert!(ord != std::cmp::Ordering::Greater);
        }
    }

    #[test]
    fn planner_sort_sites_never_panic_on_degenerate_demands(
        demands in proptest::collection::vec((0.0f64..50.0, 0.0f64..500.0), 1..30),
    ) {
        // Zero-capacity reference exercises the 0/0 → NaN path that
        // `partial_cmp(..).unwrap_or(Equal)` used to swallow silently:
        // dominant_share against a zero effective capacity is NaN, and
        // the sort must still terminate with a deterministic order.
        use vmcw_repro::consolidation::ffd::OrderKey;
        let reference = Resources::ZERO;
        let mut keyed: Vec<(usize, Resources)> = demands
            .iter()
            .enumerate()
            .map(|(i, &(c, m))| (i, Resources::new(c, m)))
            .collect();
        keyed.sort_by(|a, b| {
            OrderKey::Dominant
                .key(&b.1, &reference)
                .total_cmp(&OrderKey::Dominant.key(&a.1, &reference))
                .then_with(|| a.0.cmp(&b.0))
        });
        // Same multiset out as in, and the order is reproducible.
        prop_assert_eq!(keyed.len(), demands.len());
        let mut again: Vec<(usize, Resources)> = demands
            .iter()
            .enumerate()
            .map(|(i, &(c, m))| (i, Resources::new(c, m)))
            .collect();
        again.sort_by(|a, b| {
            OrderKey::Dominant
                .key(&b.1, &reference)
                .total_cmp(&OrderKey::Dominant.key(&a.1, &reference))
                .then_with(|| a.0.cmp(&b.0))
        });
        let ids: Vec<usize> = keyed.iter().map(|k| k.0).collect();
        let ids2: Vec<usize> = again.iter().map(|k| k.0).collect();
        prop_assert_eq!(ids, ids2);
    }
}

proptest! {
    // Full fault replays are costly; a handful of cases is enough to
    // catch order or seed sensitivity.
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn same_fault_seed_gives_identical_reports(seed in 0u64..u64::MAX) {
        let (input, plan) = fault_fixture();
        let faults = FaultConfig {
            host_mtbf_hours: 72.0,
            host_mttr_hours: 2.0,
            ..FaultConfig::baseline(seed)
        };
        let cfg = EmulatorConfig::default();
        let a = emulate_with_faults(input, plan, &cfg, &faults).expect("replay");
        let b = emulate_with_faults(input, plan, &cfg, &faults).expect("replay");
        prop_assert_eq!(a, b, "fault replay must be deterministic in the seed");
    }
}
