//! Health telemetry for supervised studies (`health.json`).
//!
//! The supervisor's monitor thread periodically rewrites an atomic
//! `health.json` next to the study journal: one entry per grid cell
//! with its state, attempt count, progress, heartbeat age and
//! steps/sec. `vmcw health <dir>` renders it for a live run (watch the
//! file change) or a dead one (the last written snapshot is the
//! post-mortem). The format is plain JSON so any off-the-shelf tool
//! can consume it; the encoder *and* the schema-checked parser live
//! here because this workspace is offline and carries no JSON
//! dependency.

use std::fmt;

/// File name of the health snapshot inside a study directory.
pub const HEALTH_FILE: &str = "health.json";

/// Schema tag written into every snapshot.
pub const HEALTH_SCHEMA: &str = "vmcw-health/v1";

/// Health of one study cell at snapshot time.
#[derive(Debug, Clone, PartialEq)]
pub struct CellHealth {
    /// Cell id, `<data-center letter>/<planner label>`.
    pub cell: String,
    /// Lifecycle state: `pending`, `running`, `backoff`, `crashed`,
    /// `completed`, `degraded`, `aborted`, `quarantined` or
    /// `interrupted`.
    pub state: String,
    /// Current (or final) attempt number, 1-based; 0 before the first.
    pub attempt: usize,
    /// Replay hours completed.
    pub hours_done: usize,
    /// Replay hours in the full horizon.
    pub hours_total: usize,
    /// Heartbeat count of the current attempt.
    pub steps: u64,
    /// Seconds since the cell last beat (0 when not running).
    pub beat_age_secs: f64,
    /// Mean steps per second over the current attempt.
    pub steps_per_sec: f64,
    /// Incident log: one line per crash/watchdog event so far.
    pub incidents: Vec<String>,
}

/// One periodically-rewritten `health.json` snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthSnapshot {
    /// Study status: `running`, `completed`, `interrupted` or `failed`
    /// (`vmcw serve` adds `draining`).
    pub status: String,
    /// Per-cell health, grid order.
    pub cells: Vec<CellHealth>,
    /// Service-mode telemetry, present only in snapshots written by
    /// `vmcw serve`. Optional in the document too, so v1 parsers and
    /// batch snapshots are unaffected.
    pub serve: Option<ServeHealth>,
}

/// Service-mode (`vmcw serve`) telemetry block of a health snapshot.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ServeHealth {
    /// Requests currently waiting in the admission queue.
    pub queue_depth: usize,
    /// Admission-queue bound; at this depth new work is shed.
    pub queue_limit: usize,
    /// Size of the worker pool.
    pub workers: usize,
    /// Requests shed (503) since boot.
    pub shed_total: u64,
    /// Requests that hit their deadline (504) since boot.
    pub deadline_timeouts: u64,
    /// Circuit-breaker state: `closed`, `open` or `half-open`.
    pub breaker: String,
    /// Consecutive failures counted toward the breaker trip.
    pub breaker_failures: usize,
    /// Jobs currently executing or admitted, with their deadlines.
    pub inflight: Vec<InflightJob>,
}

/// One admitted-but-unfinished job in a [`ServeHealth`] block.
#[derive(Debug, Clone, PartialEq)]
pub struct InflightJob {
    /// Job id.
    pub job: String,
    /// Job state: `queued` or `running`.
    pub state: String,
    /// Milliseconds until the job's deadline (negative = past due);
    /// `None` when the job has no deadline.
    pub deadline_ms_remaining: Option<i64>,
}

/// Why a `health.json` could not be understood.
#[derive(Debug, Clone, PartialEq)]
pub enum HealthError {
    /// Not valid JSON.
    Syntax {
        /// Byte offset of the problem.
        offset: usize,
        /// What was expected.
        detail: String,
    },
    /// Valid JSON, wrong shape or schema tag.
    Schema {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for HealthError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HealthError::Syntax { offset, detail } => {
                write!(f, "bad JSON at byte {offset}: {detail}")
            }
            HealthError::Schema { detail } => write!(f, "bad health schema: {detail}"),
        }
    }
}

impl std::error::Error for HealthError {}

pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl HealthSnapshot {
    /// Serialises the snapshot as strict JSON, one cell per line.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json_string(HEALTH_SCHEMA)));
        out.push_str(&format!("  \"status\": {},\n", json_string(&self.status)));
        if let Some(s) = &self.serve {
            let inflight: Vec<String> = s
                .inflight
                .iter()
                .map(|j| {
                    format!(
                        "{{\"job\": {}, \"state\": {}, \"deadline_ms_remaining\": {}}}",
                        json_string(&j.job),
                        json_string(&j.state),
                        j.deadline_ms_remaining
                            .map_or_else(|| "null".to_owned(), |ms| ms.to_string()),
                    )
                })
                .collect();
            out.push_str(&format!(
                "  \"serve\": {{\"queue_depth\": {}, \"queue_limit\": {}, \
                 \"workers\": {}, \"shed_total\": {}, \"deadline_timeouts\": {}, \
                 \"breaker\": {}, \"breaker_failures\": {}, \"inflight\": [{}]}},\n",
                s.queue_depth,
                s.queue_limit,
                s.workers,
                s.shed_total,
                s.deadline_timeouts,
                json_string(&s.breaker),
                s.breaker_failures,
                inflight.join(", "),
            ));
        }
        out.push_str("  \"cells\": [\n");
        for (i, c) in self.cells.iter().enumerate() {
            let incidents: Vec<String> = c.incidents.iter().map(|s| json_string(s)).collect();
            out.push_str(&format!(
                "    {{\"cell\": {}, \"state\": {}, \"attempt\": {}, \"hours_done\": {}, \
                 \"hours_total\": {}, \"steps\": {}, \"beat_age_secs\": {:.3}, \
                 \"steps_per_sec\": {:.3}, \"incidents\": [{}]}}{}\n",
                json_string(&c.cell),
                json_string(&c.state),
                c.attempt,
                c.hours_done,
                c.hours_total,
                c.steps,
                c.beat_age_secs,
                c.steps_per_sec,
                incidents.join(", "),
                if i + 1 < self.cells.len() { "," } else { "" },
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parses [`to_json`](Self::to_json) output (any JSON with the same
    /// shape, really — field order and whitespace are free).
    ///
    /// # Errors
    ///
    /// [`HealthError::Syntax`] for malformed JSON,
    /// [`HealthError::Schema`] for a missing/foreign schema tag or
    /// wrongly-typed fields.
    pub fn parse(text: &str) -> Result<Self, HealthError> {
        let value = Json::parse(text)?;
        let top = value.as_object("top level")?;
        let schema = get(top, "schema")?.as_str("schema")?;
        if schema != HEALTH_SCHEMA {
            return Err(HealthError::Schema {
                detail: format!("schema `{schema}` is not `{HEALTH_SCHEMA}`"),
            });
        }
        let status = get(top, "status")?.as_str("status")?.to_owned();
        // The `serve` block is optional: batch snapshots and pre-serve
        // documents simply don't carry it.
        let serve = match opt(top, "serve") {
            None => None,
            Some(v) => {
                let obj = v.as_object("serve")?;
                let num = |key: &str| -> Result<f64, HealthError> {
                    get(obj, key)?.as_number(&format!("serve.{key}"))
                };
                let mut inflight = Vec::new();
                for (i, j) in get(obj, "inflight")?.as_array("serve.inflight")?.iter().enumerate() {
                    let ctx = format!("serve.inflight[{i}]");
                    let jo = j.as_object(&ctx)?;
                    let deadline = match get(jo, "deadline_ms_remaining")? {
                        Json::Null => None,
                        other => Some(other.as_number(&format!("{ctx}.deadline_ms_remaining"))? as i64),
                    };
                    inflight.push(InflightJob {
                        job: get(jo, "job")?.as_str(&ctx)?.to_owned(),
                        state: get(jo, "state")?.as_str(&ctx)?.to_owned(),
                        deadline_ms_remaining: deadline,
                    });
                }
                Some(ServeHealth {
                    queue_depth: num("queue_depth")? as usize,
                    queue_limit: num("queue_limit")? as usize,
                    workers: num("workers")? as usize,
                    shed_total: num("shed_total")? as u64,
                    deadline_timeouts: num("deadline_timeouts")? as u64,
                    breaker: get(obj, "breaker")?.as_str("serve.breaker")?.to_owned(),
                    breaker_failures: num("breaker_failures")? as usize,
                    inflight,
                })
            }
        };
        let mut cells = Vec::new();
        for (i, c) in get(top, "cells")?.as_array("cells")?.iter().enumerate() {
            let ctx = format!("cells[{i}]");
            let obj = c.as_object(&ctx)?;
            let num = |key: &str| -> Result<f64, HealthError> {
                get(obj, key)?.as_number(&format!("{ctx}.{key}"))
            };
            let incidents = get(obj, "incidents")?
                .as_array(&format!("{ctx}.incidents"))?
                .iter()
                .map(|v| v.as_str("incident").map(str::to_owned))
                .collect::<Result<Vec<_>, _>>()?;
            cells.push(CellHealth {
                cell: get(obj, "cell")?.as_str(&ctx)?.to_owned(),
                state: get(obj, "state")?.as_str(&ctx)?.to_owned(),
                attempt: num("attempt")? as usize,
                hours_done: num("hours_done")? as usize,
                hours_total: num("hours_total")? as usize,
                steps: num("steps")? as u64,
                beat_age_secs: num("beat_age_secs")?,
                steps_per_sec: num("steps_per_sec")?,
                incidents,
            });
        }
        Ok(Self {
            status,
            cells,
            serve,
        })
    }

    /// [`parse`](Self::parse) over raw bytes: non-UTF8 input is a
    /// [`HealthError::Syntax`] at the offending byte, never a panic —
    /// the on-disk file may be torn or corrupted.
    ///
    /// # Errors
    ///
    /// Everything [`parse`](Self::parse) returns, plus `Syntax` for
    /// invalid UTF-8.
    pub fn parse_bytes(bytes: &[u8]) -> Result<Self, HealthError> {
        let text = std::str::from_utf8(bytes).map_err(|e| HealthError::Syntax {
            offset: e.valid_up_to(),
            detail: "invalid UTF-8".into(),
        })?;
        Self::parse(text)
    }
}

pub(crate) fn get<'a>(obj: &'a [(String, Json)], key: &str) -> Result<&'a Json, HealthError> {
    obj.iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| v)
        .ok_or_else(|| HealthError::Schema {
            detail: format!("missing field `{key}`"),
        })
}

pub(crate) fn opt<'a>(obj: &'a [(String, Json)], key: &str) -> Option<&'a Json> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// A minimal JSON value — just enough to read our own telemetry and
/// the `vmcw serve` request bodies (which reuse this parser).
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    pub(crate) fn parse(text: &str) -> Result<Self, HealthError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing data after the JSON value"));
        }
        Ok(v)
    }

    fn type_name(&self) -> &'static str {
        match self {
            Json::Null => "null",
            Json::Bool(_) => "bool",
            Json::Number(_) => "number",
            Json::String(_) => "string",
            Json::Array(_) => "array",
            Json::Object(_) => "object",
        }
    }

    fn wrong(&self, what: &str, want: &str) -> HealthError {
        HealthError::Schema {
            detail: format!("{what} is a {} where a {want} was expected", self.type_name()),
        }
    }

    pub(crate) fn as_str(&self, what: &str) -> Result<&str, HealthError> {
        match self {
            Json::String(s) => Ok(s),
            other => Err(other.wrong(what, "string")),
        }
    }

    pub(crate) fn as_number(&self, what: &str) -> Result<f64, HealthError> {
        match self {
            Json::Number(n) => Ok(*n),
            other => Err(other.wrong(what, "number")),
        }
    }

    pub(crate) fn as_bool(&self, what: &str) -> Result<bool, HealthError> {
        match self {
            Json::Bool(b) => Ok(*b),
            other => Err(other.wrong(what, "bool")),
        }
    }

    pub(crate) fn as_array(&self, what: &str) -> Result<&[Json], HealthError> {
        match self {
            Json::Array(a) => Ok(a),
            other => Err(other.wrong(what, "array")),
        }
    }

    pub(crate) fn as_object(&self, what: &str) -> Result<&[(String, Json)], HealthError> {
        match self {
            Json::Object(o) => Ok(o),
            other => Err(other.wrong(what, "object")),
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl Parser<'_> {
    fn err(&self, detail: impl Into<String>) -> HealthError {
        HealthError::Syntax {
            offset: self.at,
            detail: detail.into(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), HealthError> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(format!("expected `{}`", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, HealthError> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<Json, HealthError> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Json, HealthError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            if fields.iter().any(|(k, _)| *k == key) {
                // Lookups take the first match, so a duplicate would
                // silently shadow data — a classic parser-differential
                // vector. Reject instead.
                return Err(self.err(format!("duplicate object key `{key}`")));
            }
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn array(&mut self) -> Result<Json, HealthError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, HealthError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.at + 1..self.at + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            // Basic-plane escapes only; the encoder never
                            // emits surrogate pairs.
                            out.push(
                                char::from_u32(hex)
                                    .ok_or_else(|| self.err("\\u escape is not a scalar"))?,
                            );
                            self.at += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.at += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8 by construction).
                    let rest = &self.bytes[self.at..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("bad UTF-8"))?;
                    let c = s.chars().next().ok_or_else(|| self.err("empty string"))?;
                    out.push(c);
                    self.at += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, HealthError> {
        let start = self.at;
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
        ) {
            self.at += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .map_err(|_| self.err("bad number"))?;
        let n: f64 = text.parse().map_err(|_| HealthError::Syntax {
            offset: start,
            detail: format!("bad number `{text}`"),
        })?;
        if !n.is_finite() {
            // `"1e999".parse::<f64>()` is Ok(inf); every numeric field
            // in our documents is a finite count or rate, so an
            // overflowing literal is corruption, not data.
            return Err(HealthError::Syntax {
                offset: start,
                detail: format!("number `{text}` overflows an f64"),
            });
        }
        Ok(Json::Number(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> HealthSnapshot {
        HealthSnapshot {
            status: "running".into(),
            cells: vec![
                CellHealth {
                    cell: "A/Dynamic".into(),
                    state: "running".into(),
                    attempt: 2,
                    hours_done: 12,
                    hours_total: 336,
                    steps: 12,
                    beat_age_secs: 0.25,
                    steps_per_sec: 44.5,
                    incidents: vec!["attempt 1: panic: boom \"quoted\"\nline2".into()],
                },
                CellHealth {
                    cell: "B/Semi-Static".into(),
                    state: "pending".into(),
                    attempt: 0,
                    hours_done: 0,
                    hours_total: 336,
                    steps: 0,
                    beat_age_secs: 0.0,
                    steps_per_sec: 0.0,
                    incidents: vec![],
                },
            ],
            serve: None,
        }
    }

    #[test]
    fn serve_block_round_trips() {
        let mut snap = sample();
        snap.serve = Some(ServeHealth {
            queue_depth: 2,
            queue_limit: 8,
            workers: 4,
            shed_total: 17,
            deadline_timeouts: 3,
            breaker: "half-open".into(),
            breaker_failures: 1,
            inflight: vec![
                InflightJob {
                    job: "job-0001".into(),
                    state: "running".into(),
                    deadline_ms_remaining: Some(-12),
                },
                InflightJob {
                    job: "job-0002".into(),
                    state: "queued".into(),
                    deadline_ms_remaining: None,
                },
            ],
        });
        let parsed = HealthSnapshot::parse(&snap.to_json()).unwrap();
        assert_eq!(snap, parsed);
    }

    #[test]
    fn snapshot_without_serve_block_still_parses() {
        // Back-compat: v1 documents written before service mode.
        let snap = HealthSnapshot::parse(&sample().to_json()).unwrap();
        assert_eq!(snap.serve, None);
    }

    #[test]
    fn parse_bytes_rejects_non_utf8() {
        let err = HealthSnapshot::parse_bytes(&[b'{', 0xFF, 0xFE, b'}']).unwrap_err();
        assert!(matches!(err, HealthError::Syntax { offset: 1, .. }), "{err}");
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = sample();
        let parsed = HealthSnapshot::parse(&snap.to_json()).unwrap();
        assert_eq!(snap, parsed);
    }

    #[test]
    fn foreign_schema_is_rejected() {
        let text = sample().to_json().replace("vmcw-health/v1", "vmcw-health/v9");
        let err = HealthSnapshot::parse(&text).unwrap_err();
        assert!(matches!(err, HealthError::Schema { .. }), "{err}");
    }

    #[test]
    fn malformed_json_reports_an_offset() {
        let err = HealthSnapshot::parse("{\"schema\": ").unwrap_err();
        assert!(matches!(err, HealthError::Syntax { .. }), "{err}");
        let err = HealthSnapshot::parse("{} trailing").unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
    }

    #[test]
    fn missing_fields_are_schema_errors() {
        let err = HealthSnapshot::parse("{\"schema\": \"vmcw-health/v1\"}").unwrap_err();
        assert!(err.to_string().contains("status"), "{err}");
    }

    #[test]
    fn duplicate_keys_are_rejected() {
        let err = HealthSnapshot::parse(
            "{\"schema\": \"vmcw-health/v1\", \"schema\": \"vmcw-health/v1\", \
             \"status\": \"running\", \"cells\": []}",
        )
        .unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
    }

    #[test]
    fn overflowing_numbers_are_rejected() {
        for lit in ["1e999", "-1e999", "1e309"] {
            let text = format!(
                "{{\"schema\": \"vmcw-health/v1\", \"status\": \"x\", \
                 \"cells\": [], \"n\": {lit}}}"
            );
            let err = HealthSnapshot::parse(&text).unwrap_err();
            assert!(err.to_string().contains("overflows"), "{lit}: {err}");
        }
        // Large-but-finite literals still parse.
        let ok = HealthSnapshot::parse(
            "{\"schema\": \"vmcw-health/v1\", \"status\": \"x\", \
             \"cells\": [], \"n\": 1e308}",
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn parser_accepts_whitespace_and_reordered_fields() {
        let text = "  { \"cells\" : [ ] , \"status\" : \"completed\" , \
                    \"schema\" : \"vmcw-health/v1\" }  ";
        let snap = HealthSnapshot::parse(text).unwrap();
        assert_eq!(snap.status, "completed");
        assert!(snap.cells.is_empty());
    }
}
