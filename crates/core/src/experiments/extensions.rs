//! Extension experiments beyond the paper's figures — the quantified
//! versions of its §7 discussion:
//!
//! * [`interval_sweep`] — "Enabling Shorter Consolidation Intervals":
//!   how do footprint, power and migration-schedule feasibility change
//!   with the consolidation interval and the fabric?
//! * [`future_mechanisms`] — "Improving live migration efficiency": what
//!   reservation does each migration mechanism need, and what does
//!   dynamic consolidation's footprint become at that reservation?
//! * [`correlation_stability_experiment`] — Observation 5's premise,
//!   measured: how stable is the pairwise correlation structure between
//!   the two halves of the planning month?

use super::Suite;
use crate::render::{fnum, Table};
use vmcw_cluster::constraints::{Constraint, ConstraintSet};
use vmcw_cluster::datacenter::SubnetId;
use vmcw_cluster::vm::VmId;
use crate::study::StudyError;
use vmcw_consolidation::planner::PlannerKind;
use vmcw_migration::mechanisms::MigrationMechanism;
use vmcw_migration::precopy::{PrecopyConfig, VmMigrationProfile};
use vmcw_migration::schedule::schedule_recorded;
use vmcw_trace::analysis;
use vmcw_trace::constraints_gen::{synthesise, ConstraintMix};
use vmcw_trace::datacenters::DataCenterId;
use vmcw_trace::series::TimeSeries;

/// Interval lengths swept (hours; must divide 24).
pub const INTERVAL_HOURS: [usize; 4] = [1, 2, 4, 6];

/// Sweeps the dynamic consolidation interval for the Banking workload.
///
/// For each interval length the dynamic planner is re-run; its migrations
/// are then scheduled per interval under one-transfer-per-link on both
/// fabrics, and the worst interval's makespan decides feasibility — the
/// computable version of the paper's "2 hours is a practical number".
///
/// # Errors
///
/// Propagates [`StudyError`] from the planner.
pub fn interval_sweep(suite: &mut Suite) -> Result<Table, StudyError> {
    let study = suite.study(DataCenterId::Banking).clone();
    let mut t = Table::new(
        "intervals",
        &[
            "interval_h",
            "provisioned_hosts",
            "energy_kwh",
            "migrations",
            "serial_makespan_s",
            "worst_link_busy_s",
            "feasible_1gbe",
            "feasible_10gbe",
        ],
    );
    for hours in INTERVAL_HOURS {
        let mut config = *study.config();
        config.planner.dynamic.window_hours = hours;
        let run = crate::study::Study::from_workload(&config, study.workload().clone())
            .run(PlannerKind::Dynamic)?;

        // Schedule each interval's migrations with the durations the
        // planner's pre-copy simulation recorded; track the worst
        // interval's makespan.
        let mut worst = 0.0f64;
        let mut worst_link = 0.0f64;
        let mut by_interval: std::collections::BTreeMap<usize, Vec<(_, _, f64)>> =
            std::collections::BTreeMap::new();
        for m in &run.plan.migrations {
            by_interval
                .entry(m.interval)
                .or_default()
                .push((m.from, m.to, m.duration_secs));
        }
        for transfers in by_interval.values() {
            worst = worst.max(schedule_recorded(transfers).1);
            // Pipelined lower bound: each link must at least carry its own
            // transfers, chains aside.
            let mut busy: std::collections::BTreeMap<_, f64> = std::collections::BTreeMap::new();
            for &(from, to, d) in transfers {
                *busy.entry(from).or_default() += d;
                *busy.entry(to).or_default() += d;
            }
            worst_link = worst_link.max(busy.values().copied().fold(0.0, f64::max));
        }
        let interval_secs = hours as f64 * 3600.0;
        // Feasibility is judged on per-link busy time: hypervisors run
        // several concurrent transfers per link, so the serial makespan
        // (also reported) is pessimistic. 10 GbE moves the same bytes
        // ~10× faster through every link.
        t.push_row([
            hours.to_string(),
            run.cost.provisioned_hosts.to_string(),
            fnum(run.cost.energy_kwh, 1),
            run.report.migrations.to_string(),
            fnum(worst, 1),
            fnum(worst_link, 1),
            (worst_link <= interval_secs).to_string(),
            (worst_link / 10.0 <= interval_secs).to_string(),
        ]);
    }
    Ok(t)
}

/// Quantifies §7's "improving live migration efficiency": per mechanism,
/// the model-derived minimum reservation and the dynamic footprint at
/// that reservation, against the stochastic baseline.
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn future_mechanisms(suite: &mut Suite) -> Result<Table, StudyError> {
    let stochastic = suite
        .run(DataCenterId::Banking, PlannerKind::Stochastic)?
        .cost;
    let study = suite.study(DataCenterId::Banking).clone();
    let reference_vm = VmMigrationProfile::new(8192.0, 400.0, 1024.0);
    let fabric = PrecopyConfig::gigabit();
    let mut t = Table::new(
        "futurework",
        &[
            "mechanism",
            "min_reservation",
            "utilization_bound",
            "dynamic_hosts",
            "stochastic_hosts",
            "dynamic_vs_stochastic",
        ],
    );
    for mechanism in MigrationMechanism::ALL {
        let reservation = mechanism.min_reservation(&fabric, &reference_vm);
        let bound = (1.0 - reservation).clamp(0.05, 1.0);
        let mut config = *study.config();
        config.planner = config.planner.with_utilization_bound(bound);
        let run = crate::study::Study::from_workload(&config, study.workload().clone())
            .run(PlannerKind::Dynamic)?;
        t.push_row([
            mechanism.label().to_owned(),
            fnum(reservation, 2),
            fnum(bound, 2),
            run.cost.provisioned_hosts.to_string(),
            stochastic.provisioned_hosts.to_string(),
            fnum(
                run.cost.provisioned_hosts as f64 / stochastic.provisioned_hosts as f64,
                3,
            ),
        ]);
    }
    Ok(t)
}

/// Measures the stability of the pairwise CPU-correlation structure
/// between the two halves of the planning month, per data center
/// (Observation 5: "correlation between workloads is stable over time").
///
/// To keep the pair count tractable the first 80 servers of each data
/// center are used.
#[must_use]
pub fn correlation_stability_experiment(suite: &mut Suite) -> Table {
    let history_hours = suite.config().history_days * 24;
    let mut t = Table::new(
        "stability",
        &[
            "datacenter",
            "servers_sampled",
            "correlation_stability",
            "mean_autocorrelation_24h",
        ],
    );
    for dc in DataCenterId::ALL {
        let w = suite.study(dc).workload().clone();
        let sample: Vec<TimeSeries> = w
            .servers
            .iter()
            .take(80)
            .map(|s| {
                s.cpu_used_frac
                    .slice(0..history_hours.min(s.cpu_used_frac.len()))
            })
            .collect();
        let refs: Vec<&TimeSeries> = sample.iter().collect();
        let stability = analysis::correlation_stability(&refs, history_hours / 2).unwrap_or(0.0);
        let acs: Vec<f64> = refs
            .iter()
            .filter_map(|s| analysis::autocorrelation(s, 24))
            .collect();
        let mean_ac = vmcw_trace::stats::mean(&acs).unwrap_or(0.0);
        t.push_row([
            dc.industry().to_owned(),
            refs.len().to_string(),
            fnum(stability, 3),
            fnum(mean_ac, 3),
        ]);
    }
    t
}

/// Measures what the §2.2.4 deployment constraints cost: the footprint of
/// the stochastic and dynamic planners per data center under no / typical
/// / heavy constraint mixes.
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn constraint_cost(suite: &mut Suite) -> Result<Table, StudyError> {
    let mut t = Table::new(
        "constraints",
        &[
            "datacenter",
            "mix",
            "constraints",
            "stochastic_hosts",
            "dynamic_hosts",
        ],
    );
    for dc in DataCenterId::ALL {
        let study = suite.study(dc).clone();
        for (label, mix) in [
            ("none", ConstraintMix::none()),
            ("typical", ConstraintMix::typical()),
            ("heavy", ConstraintMix::heavy()),
        ] {
            let synth = synthesise(study.input().vms.len(), &mix, suite.config().seed);
            let mut cs = ConstraintSet::new();
            for &(a, b) in &synth.anti_pairs {
                cs.add(Constraint::AntiColocate(VmId(a), VmId(b)))
                    .expect("disjoint pairs");
            }
            for &(a, b) in &synth.affinity_pairs {
                cs.add(Constraint::Colocate(VmId(a), VmId(b)))
                    .expect("disjoint pairs");
            }
            for &(v, subnet) in &synth.subnet_pins {
                cs.add(Constraint::PinToSubnet(VmId(v), SubnetId(subnet)))
                    .expect("unique pins");
            }
            let mut input = study.input().clone();
            input.constraints = cs;
            let planner = study.config().planner;
            let stochastic = planner.plan_stochastic(&input)?.provisioned_hosts();
            let dynamic = planner.plan_dynamic(&input)?.provisioned_hosts();
            t.push_row([
                dc.industry().to_owned(),
                label.to_owned(),
                synth.len().to_string(),
                stochastic.to_string(),
                dynamic.to_string(),
            ]);
        }
    }
    Ok(t)
}

/// Exports the per-hour emulation timeline of the Banking workload under
/// all three planners — the raw series behind Figs 7/8/12, ready for
/// plotting.
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn timeline(suite: &mut Suite) -> Result<Table, StudyError> {
    let mut t = Table::new(
        "timeline",
        &[
            "planner",
            "hour",
            "active_hosts",
            "watts",
            "contended_hosts",
            "cpu_contention",
        ],
    );
    for kind in PlannerKind::EVALUATED {
        let run = suite.run(DataCenterId::Banking, kind)?;
        for hour in &run.report.per_hour {
            t.push_row([
                kind.label().to_owned(),
                hour.hour.to_string(),
                hour.active_hosts.to_string(),
                fnum(hour.watts, 1),
                hour.contended_hosts.to_string(),
                fnum(hour.cpu_contention, 5),
            ]);
        }
    }
    Ok(t)
}

/// Sweeps the semi-static re-planning period (§2.2.2: consolidation
/// "once a month or once a week"): how much footprint does more frequent
/// relocation (with downtime, no reservation) buy, and where does it land
/// between one-shot semi-static and fully dynamic consolidation?
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn rolling_sweep(suite: &mut Suite) -> Result<Table, StudyError> {
    let study = suite.study(DataCenterId::Banking).clone();
    let semi = suite
        .run(DataCenterId::Banking, PlannerKind::SemiStatic)?
        .cost;
    let dynamic = suite.run(DataCenterId::Banking, PlannerKind::Dynamic)?.cost;
    let mut t = Table::new(
        "rolling",
        &["replan_period_days", "provisioned_hosts", "energy_kwh"],
    );
    t.push_row([
        "never (semi-static)".to_owned(),
        semi.provisioned_hosts.to_string(),
        fnum(semi.energy_kwh, 1),
    ]);
    for period in [7usize, 3, 1] {
        let plan = study
            .config()
            .planner
            .plan_semi_static_rolling(study.input(), period)?;
        let report =
            vmcw_emulator::engine::emulate(study.input(), &plan, &study.config().emulator)?;
        t.push_row([
            period.to_string(),
            plan.provisioned_hosts().to_string(),
            fnum(report.energy_kwh, 1),
        ]);
    }
    t.push_row([
        "2h (dynamic)".to_owned(),
        dynamic.provisioned_hosts.to_string(),
        fnum(dynamic.energy_kwh, 1),
    ]);
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SuiteConfig;

    fn suite() -> Suite {
        Suite::new(SuiteConfig {
            scale: 0.05,
            seed: 8,
            history_days: 8,
            eval_days: 4,
        })
    }

    #[test]
    fn interval_sweep_covers_all_lengths() {
        let mut s = suite();
        let t = interval_sweep(&mut s).unwrap();
        assert_eq!(t.len(), INTERVAL_HOURS.len());
        // The paper's 2h interval must be feasible on GbE.
        let two_hour = t.rows.iter().find(|r| r[0] == "2").unwrap();
        assert_eq!(two_hour[6], "true");
    }

    #[test]
    fn shorter_intervals_do_not_increase_energy() {
        let mut s = suite();
        let t = interval_sweep(&mut s).unwrap();
        let energy: Vec<f64> = t.rows.iter().map(|r| r[2].parse().unwrap()).collect();
        // Finer consolidation tracks demand more closely: 1h uses no more
        // energy than 6h (allowing small noise).
        assert!(energy[0] <= energy[energy.len() - 1] * 1.10, "{energy:?}");
    }

    #[test]
    fn future_mechanisms_shrink_the_reservation() {
        let mut s = suite();
        let t = future_mechanisms(&mut s).unwrap();
        assert_eq!(t.len(), 3);
        let reservation = |label: &str| -> f64 {
            t.rows.iter().find(|r| r[0] == label).unwrap()[1]
                .parse()
                .unwrap()
        };
        assert!(reservation("post-copy") < reservation("pre-copy"));
        assert!(reservation("rdma-assisted") < reservation("pre-copy"));
        // With a smaller reservation the dynamic footprint shrinks.
        let hosts = |label: &str| -> usize {
            t.rows.iter().find(|r| r[0] == label).unwrap()[3]
                .parse()
                .unwrap()
        };
        assert!(hosts("post-copy") <= hosts("pre-copy"));
    }

    #[test]
    fn constraint_cost_is_monotone_in_mix() {
        let mut s = suite();
        let t = constraint_cost(&mut s).unwrap();
        assert_eq!(t.len(), 12);
        for dc in DataCenterId::ALL {
            let hosts = |mix: &str| -> usize {
                t.rows
                    .iter()
                    .find(|r| r[0] == dc.industry() && r[1] == mix)
                    .unwrap()[3]
                    .parse()
                    .unwrap()
            };
            assert!(
                hosts("heavy") >= hosts("none"),
                "{dc}: heavy constraints must not shrink the footprint"
            );
        }
    }

    #[test]
    fn rolling_sweep_produces_all_periods() {
        let mut s = suite();
        let t = rolling_sweep(&mut s).unwrap();
        assert_eq!(t.len(), 5);
        assert!(t.rows[0][0].contains("semi-static"));
        assert!(t.rows[4][0].contains("dynamic"));
    }

    #[test]
    fn timeline_covers_all_hours_and_planners() {
        let mut s = suite();
        let t = timeline(&mut s).unwrap();
        // 3 planners × 4 eval days × 24 h.
        assert_eq!(t.len(), 3 * 4 * 24);
        // Dynamic varies its active host count; semi-static does not.
        let counts = |planner: &str| -> Vec<usize> {
            t.rows
                .iter()
                .filter(|r| r[0] == planner)
                .map(|r| r[2].parse().unwrap())
                .collect()
        };
        let semi = counts("Semi-Static");
        assert!(semi.windows(2).all(|w| w[0] == w[1]));
        let dynamic = counts("Dynamic");
        assert!(dynamic.iter().min() < dynamic.iter().max());
    }

    #[test]
    fn stability_is_high_for_all_datacenters() {
        let mut s = suite();
        let t = correlation_stability_experiment(&mut s);
        assert_eq!(t.len(), 4);
        for row in &t.rows {
            let stability: f64 = row[2].parse().unwrap();
            assert!(stability > 0.3, "{}: stability {stability}", row[0]);
        }
    }
}
