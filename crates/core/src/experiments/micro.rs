//! In-text micro-experiments: the Olio scaling measurement (§4.1), the
//! live-migration reliability study (§4.3) and the emulator validation
//! (§5.2).

use crate::render::{fnum, Table};
use vmcw_emulator::apps::WebAppModel;
use vmcw_emulator::validate::{validate_emulator, validation_trace, ValidationWorkload};
use vmcw_migration::precopy::{HostLoad, PrecopyConfig, VmMigrationProfile};
use vmcw_migration::reliability::ReliabilityThresholds;

/// §4.1: Olio throughput sweep — "for a 6X increase in application
/// throughput, CPU demand increased from 0.18 core to 1.42 cores (7.9X
/// increase), whereas the memory demand only increased by 3X".
#[must_use]
pub fn olio_experiment() -> Table {
    let model = WebAppModel::olio();
    let mut t = Table::new(
        "olio",
        &[
            "ops_per_sec",
            "cpu_cores",
            "mem_mb",
            "cpu_ratio_vs_10ops",
            "mem_ratio_vs_10ops",
        ],
    );
    let cpu10 = model.cpu_cores(10.0);
    let mem10 = model.mem_mb(10.0);
    for ops in [10.0, 20.0, 30.0, 40.0, 50.0, 60.0] {
        t.push_row([
            fnum(ops, 0),
            fnum(model.cpu_cores(ops), 3),
            fnum(model.mem_mb(ops), 1),
            fnum(model.cpu_cores(ops) / cpu10, 2),
            fnum(model.mem_mb(ops) / mem10, 2),
        ]);
    }
    t
}

/// §4.3: live-migration behaviour vs host load, showing why the paper
/// reserves 20% — the pre-copy duration blows up and convergence is lost
/// once the source host passes ~80% CPU / ~85% memory utilisation.
#[must_use]
pub fn migration_experiment() -> Table {
    let config = PrecopyConfig::gigabit();
    let thresholds = ReliabilityThresholds::esxi41();
    // A busy enterprise VM: 8 GB, dirtying pages at a realistic clip.
    let vm = VmMigrationProfile::new(8192.0, 400.0, 1024.0);
    let mut t = Table::new(
        "migration",
        &[
            "cpu_util",
            "mem_util",
            "duration_s",
            "downtime_ms",
            "rounds",
            "converged",
            "within_esxi_thresholds",
        ],
    );
    for step in 0..=10 {
        let load = 0.5 + 0.05 * f64::from(step);
        let host = HostLoad::new(load, load);
        let out = config.simulate(&vm, host);
        t.push_row([
            fnum(load, 2),
            fnum(load, 2),
            fnum(out.total_secs, 1),
            fnum(out.downtime_ms, 1),
            out.rounds.to_string(),
            out.converged.to_string(),
            thresholds.is_reliable(host).to_string(),
        ]);
    }
    t
}

/// §5.2: emulator accuracy — "the 99 percentile error bound of our
/// emulator is 5% for RuBIS and 2% for daxpy".
#[must_use]
pub fn emulator_validation() -> Table {
    let (cpu, mem) = validation_trace(2000, 99);
    let mut t = Table::new(
        "emuval",
        &[
            "workload",
            "points",
            "p99_cpu_error",
            "p99_mem_error",
            "mean_cpu_error",
            "mean_mem_error",
            "paper_bound",
        ],
    );
    for (workload, bound) in [
        (ValidationWorkload::RubisLike, 0.05),
        (ValidationWorkload::DaxpyLike, 0.02),
    ] {
        let r = validate_emulator(workload, &cpu, &mem, 7);
        t.push_row([
            workload.label().to_owned(),
            r.points.to_string(),
            fnum(r.p99_cpu_error, 4),
            fnum(r.p99_mem_error, 4),
            fnum(r.mean_cpu_error, 4),
            fnum(r.mean_mem_error, 4),
            fnum(bound, 2),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn olio_table_reproduces_ratios() {
        let t = olio_experiment();
        assert_eq!(t.len(), 6);
        let last = t.rows.last().unwrap();
        let cpu_ratio: f64 = last[3].parse().unwrap();
        let mem_ratio: f64 = last[4].parse().unwrap();
        assert!((cpu_ratio - 7.9).abs() < 0.2, "cpu ratio {cpu_ratio}");
        assert!((mem_ratio - 3.0).abs() < 0.1, "mem ratio {mem_ratio}");
    }

    #[test]
    fn migration_table_shows_the_cliff() {
        let t = migration_experiment();
        // Converged at moderate load, not converged at the top end.
        let first: bool = t.rows.first().unwrap()[5].parse().unwrap();
        let last: bool = t.rows.last().unwrap()[5].parse().unwrap();
        assert!(first, "migration at 50% load must converge");
        assert!(!last, "migration at 100% load must fail");
        // Duration grows monotonically-ish: last ≥ first.
        let d0: f64 = t.rows.first().unwrap()[2].parse().unwrap();
        let dn: f64 = t.rows.last().unwrap()[2].parse().unwrap();
        assert!(dn > d0);
    }

    #[test]
    fn emulator_validation_meets_paper_bounds() {
        let t = emulator_validation();
        for row in &t.rows {
            let p99_cpu: f64 = row[2].parse().unwrap();
            let p99_mem: f64 = row[3].parse().unwrap();
            let bound: f64 = row[6].parse().unwrap();
            assert!(p99_cpu <= bound, "{}: cpu {p99_cpu} > {bound}", row[0]);
            assert!(p99_mem <= bound, "{}: mem {p99_mem} > {bound}", row[0]);
        }
    }
}
