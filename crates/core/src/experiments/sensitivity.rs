//! Sensitivity to the live-migration reservation (§5.5, Figs 13–16).
//!
//! "For a utilization bound of U, 1−U fraction of all server resources are
//! reserved for live migration." The experiment sweeps U and reports the
//! number of servers provisioned by dynamic consolidation beside the
//! (reservation-independent) semi-static and stochastic footprints.

use super::Suite;
use crate::render::Table;
use crate::study::StudyError;
use vmcw_consolidation::planner::PlannerKind;
use vmcw_trace::datacenters::DataCenterId;

/// The swept utilization bounds.
pub const UTILIZATION_BOUNDS: [f64; 7] = [0.70, 0.75, 0.80, 0.85, 0.90, 0.95, 1.00];

fn figure_name(dc: DataCenterId) -> &'static str {
    match dc {
        DataCenterId::Banking => "fig13",
        DataCenterId::Airlines => "fig14",
        DataCenterId::NaturalResources => "fig15",
        DataCenterId::Beverage => "fig16",
    }
}

/// Runs the utilization-bound sweep for one data center (Fig 13, 14, 15
/// or 16 depending on `dc`).
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn sensitivity(suite: &mut Suite, dc: DataCenterId) -> Result<Table, StudyError> {
    let semi = suite
        .run(dc, PlannerKind::SemiStatic)?
        .cost
        .provisioned_hosts;
    let stochastic = suite
        .run(dc, PlannerKind::Stochastic)?
        .cost
        .provisioned_hosts;
    let study = suite.study(dc).clone();

    let mut t = Table::new(
        figure_name(dc),
        &[
            "utilization_bound",
            "dynamic_hosts",
            "stochastic_hosts",
            "semi_static_hosts",
        ],
    );
    for bound in UTILIZATION_BOUNDS {
        let mut config = *study.config();
        config.planner = config.planner.with_utilization_bound(bound);
        let swept = crate::study::Study::from_workload(&config, study.workload().clone());
        let dynamic = swept.run(PlannerKind::Dynamic)?.cost.provisioned_hosts;
        t.push_row([
            format!("{bound:.2}"),
            dynamic.to_string(),
            stochastic.to_string(),
            semi.to_string(),
        ]);
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SuiteConfig;

    #[test]
    fn sweep_produces_all_bounds_and_monotone_trend() {
        let mut suite = Suite::new(SuiteConfig {
            scale: 0.03,
            seed: 7,
            history_days: 7,
            eval_days: 3,
        });
        let t = sensitivity(&mut suite, DataCenterId::Banking).unwrap();
        assert_eq!(t.name, "fig13");
        assert_eq!(t.len(), UTILIZATION_BOUNDS.len());
        let dynamic: Vec<usize> = t.rows.iter().map(|r| r[1].parse().unwrap()).collect();
        // Higher bound (less reservation) must never need more hosts.
        assert!(
            dynamic.windows(2).all(|w| w[1] <= w[0]),
            "dynamic hosts not non-increasing: {dynamic:?}"
        );
        // The semi-static and stochastic columns are constant.
        assert!(t
            .rows
            .iter()
            .all(|r| r[2] == t.rows[0][2] && r[3] == t.rows[0][3]));
    }

    #[test]
    fn figure_names_follow_paper_order() {
        assert_eq!(figure_name(DataCenterId::Banking), "fig13");
        assert_eq!(figure_name(DataCenterId::Airlines), "fig14");
        assert_eq!(figure_name(DataCenterId::NaturalResources), "fig15");
        assert_eq!(figure_name(DataCenterId::Beverage), "fig16");
    }
}
