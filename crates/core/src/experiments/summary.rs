//! Automated paper-vs-measured summary.
//!
//! [`reproduction_summary`] re-derives the paper's headline claims from a
//! suite's cached runs and reports pass/fail per claim — the generated
//! counterpart of the hand-written `EXPERIMENTS.md`. The `figures` harness
//! writes it as `results/SUMMARY.md`.

use super::Suite;
use crate::render::fnum;
use std::fmt::Write as _;
use crate::study::StudyError;
use vmcw_consolidation::planner::PlannerKind;
use vmcw_emulator::report;
use vmcw_trace::datacenters::DataCenterId;
use vmcw_trace::stats;

/// One checked claim.
#[derive(Debug, Clone, PartialEq)]
pub struct Claim {
    /// Where the claim comes from (figure / observation).
    pub source: &'static str,
    /// The claim, as checked.
    pub statement: String,
    /// The measured value(s), formatted.
    pub measured: String,
    /// Whether the reproduction satisfies it.
    pub holds: bool,
}

fn frac_above(samples: &[f64], x: f64) -> f64 {
    samples.iter().filter(|&&v| v > x).count() as f64 / samples.len().max(1) as f64
}

/// Checks the headline claims against the suite's workloads and runs.
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn check_claims(suite: &mut Suite) -> Result<Vec<Claim>, StudyError> {
    let mut claims = Vec::new();
    let history_hours = suite.config().history_days * 24;

    // --- Workload claims -------------------------------------------------
    let mut banking_cpu_pa = Vec::new();
    let mut banking_cpu_cov = Vec::new();
    let mut all_mem_pa = Vec::new();
    for dc in DataCenterId::ALL {
        let w = suite.study(dc).workload().clone();
        for s in &w.servers {
            let cpu = &s.cpu_used_frac.values()[..history_hours.min(s.cpu_used_frac.len())];
            let mem = &s.mem_used_mb.values()[..history_hours.min(s.mem_used_mb.len())];
            if dc == DataCenterId::Banking {
                banking_cpu_pa.extend(stats::peak_to_average(cpu));
                banking_cpu_cov.extend(stats::coefficient_of_variability(cpu));
            }
            all_mem_pa.extend(stats::peak_to_average(mem));
        }
    }
    let pa5 = frac_above(&banking_cpu_pa, 5.0);
    claims.push(Claim {
        source: "Fig 2 / Obs 1",
        statement: "≥40% of Banking servers have CPU peak/average > 5".into(),
        measured: format!("{:.0}%", pa5 * 100.0),
        holds: pa5 >= 0.40,
    });
    let cov1 = frac_above(&banking_cpu_cov, 1.0);
    claims.push(Claim {
        source: "Fig 3 / Obs 1",
        statement: "≥40% of Banking servers are heavy-tailed (CPU CoV ≥ 1)".into(),
        measured: format!("{:.0}%", cov1 * 100.0),
        holds: cov1 >= 0.40,
    });
    let mem_ok = 1.0 - frac_above(&all_mem_pa, 1.6);
    claims.push(Claim {
        source: "Fig 4 / Obs 2",
        statement: "most servers keep memory peak/average ≤ ~1.5".into(),
        measured: format!("{:.0}% at or below 1.6", mem_ok * 100.0),
        holds: mem_ok > 0.6,
    });

    // Fig 6 / Obs 3: memory constrains ≥3 of 4 DCs.
    let mut memory_bound = 0;
    for dc in DataCenterId::ALL {
        let w = suite.study(dc).workload().clone();
        let cpu = w.aggregate_cpu_rpe2();
        let mem = w.aggregate_mem_mb();
        let below: f64 = cpu.values()[history_hours..]
            .iter()
            .zip(&mem.values()[history_hours..])
            .filter(|&(c, m)| c / (m / 1024.0) < 160.0)
            .count() as f64
            / (cpu.len() - history_hours) as f64;
        if below > 0.5 {
            memory_bound += 1;
        }
    }
    claims.push(Claim {
        source: "Fig 6 / Obs 3",
        statement: "≥3 of 4 data centers are memory-constrained most of the time".into(),
        measured: format!("{memory_bound} of 4"),
        holds: memory_bound >= 3,
    });

    // --- Evaluation claims ------------------------------------------------
    let mut stoch_never_worse = true;
    let mut dynamic_beats_vanilla = 0;
    let mut rows = String::new();
    for dc in DataCenterId::ALL {
        let semi = suite
            .run(dc, PlannerKind::SemiStatic)?
            .cost
            .provisioned_hosts;
        let stoch = suite
            .run(dc, PlannerKind::Stochastic)?
            .cost
            .provisioned_hosts;
        let dynamic = suite.run(dc, PlannerKind::Dynamic)?.cost.provisioned_hosts;
        stoch_never_worse &= stoch <= semi;
        if dynamic < semi {
            dynamic_beats_vanilla += 1;
        }
        let _ = write!(rows, "{}:{}/{}/{} ", dc.letter(), semi, stoch, dynamic);
    }
    claims.push(Claim {
        source: "Fig 7 space",
        statement: "stochastic never provisions more than vanilla".into(),
        measured: format!("vanilla/stochastic/dynamic hosts — {rows}"),
        holds: stoch_never_worse,
    });
    claims.push(Claim {
        source: "Fig 7 space / §5.4",
        statement: "dynamic beats vanilla for 3 of 4 data centers".into(),
        measured: format!("{dynamic_beats_vanilla} of 4"),
        holds: (2..=3).contains(&dynamic_beats_vanilla),
    });

    let banking_power_ratio = suite
        .run(DataCenterId::Banking, PlannerKind::Dynamic)?
        .cost
        .energy_kwh
        / suite
            .run(DataCenterId::Banking, PlannerKind::Stochastic)?
            .cost
            .energy_kwh;
    claims.push(Claim {
        source: "Fig 7 power",
        statement: "dynamic roughly halves Banking's power vs stochastic".into(),
        measured: format!("ratio {}", fnum(banking_power_ratio, 2)),
        holds: banking_power_ratio < 0.70,
    });
    let airlines_power_ratio = suite
        .run(DataCenterId::Airlines, PlannerKind::Dynamic)?
        .cost
        .energy_kwh
        / suite
            .run(DataCenterId::Airlines, PlannerKind::Stochastic)?
            .cost
            .energy_kwh;
    claims.push(Claim {
        source: "Fig 7 power / Obs 6",
        statement: "power savings are muted (absent) for memory-bound Airlines".into(),
        measured: format!("ratio {}", fnum(airlines_power_ratio, 2)),
        holds: airlines_power_ratio > 0.9,
    });

    let banking_dynamic = suite.run(DataCenterId::Banking, PlannerKind::Dynamic)?;
    let contention = report::contention_time_fraction(&banking_dynamic.report);
    claims.push(Claim {
        source: "Fig 8 / Obs 6",
        statement: "Banking dynamic consolidation shows contention; Airlines shows none".into(),
        measured: format!(
            "Banking {:.3}%, Airlines {:.3}%",
            contention * 100.0,
            report::contention_time_fraction(
                &suite
                    .run(DataCenterId::Airlines, PlannerKind::Dynamic)?
                    .report
            ) * 100.0
        ),
        holds: contention > 0.0
            && report::contention_time_fraction(
                &suite
                    .run(DataCenterId::Airlines, PlannerKind::Dynamic)?
                    .report,
            ) == 0.0,
    });

    let active = report::active_fraction_cdf(
        &suite
            .run(DataCenterId::Banking, PlannerKind::Dynamic)?
            .report,
    );
    let p05 = active.quantile(0.05).unwrap_or(1.0);
    claims.push(Claim {
        source: "Fig 12",
        statement: "Banking switches off most of its fleet in quiet intervals".into(),
        measured: format!("5th-percentile active fraction {}", fnum(p05, 2)),
        holds: p05 < 0.5,
    });

    Ok(claims)
}

/// Renders the claims as a Markdown report.
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn reproduction_summary(suite: &mut Suite) -> Result<String, StudyError> {
    let claims = check_claims(suite)?;
    let passed = claims.iter().filter(|c| c.holds).count();
    let cfg = suite.config();
    let mut out = String::new();
    let _ = writeln!(out, "# Reproduction summary\n");
    let _ = writeln!(
        out,
        "Scale {} · seed {} · {}+{} days · {}/{} headline claims hold\n",
        cfg.scale,
        cfg.seed,
        cfg.history_days,
        cfg.eval_days,
        passed,
        claims.len()
    );
    let _ = writeln!(out, "| | source | claim | measured |");
    let _ = writeln!(out, "|---|---|---|---|");
    for c in &claims {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            if c.holds { "✔" } else { "✘" },
            c.source,
            c.statement,
            c.measured
        );
    }
    Ok(out)
}

/// Renders a supervised study's outcome as Markdown (`STUDY.md`).
///
/// Deterministic — no timestamps or wall-clock figures — so two
/// bit-identical runs render byte-identical files.
#[must_use]
pub fn study_markdown(report: &crate::supervise::StudyReport) -> String {
    use crate::supervise::{CellOutcome, StudyStatus};

    let spec = &report.spec;
    let mut out = String::new();
    let _ = writeln!(out, "# Study report\n");
    let _ = writeln!(
        out,
        "Scale {} · seed {} · {}+{} days · faults {} · status {}\n",
        spec.scale,
        spec.seed,
        spec.history_days,
        spec.eval_days,
        if spec.faults.is_some() { "on" } else { "off" },
        match report.status {
            StudyStatus::Completed => "completed",
            StudyStatus::Interrupted => "interrupted",
        }
    );
    if let Some(tail) = &report.tail_dropped {
        let _ = writeln!(
            out,
            "> A corrupt journal tail was discarded on resume ({tail}).\n"
        );
    }
    let _ = writeln!(out, "| dc | planner | outcome | hours | hosts | energy kWh | note |");
    let _ = writeln!(out, "|---|---|---|---|---|---|---|");
    for cell in &report.cells {
        let (hours, hosts, energy) = cell.report.as_ref().map_or_else(
            || ("-".into(), "-".into(), "-".into()),
            |r| {
                (
                    r.hours.to_string(),
                    r.provisioned_hosts.to_string(),
                    fnum(r.energy_kwh, 3),
                )
            },
        );
        let note = match &cell.outcome {
            CellOutcome::Completed => String::new(),
            CellOutcome::Degraded { reason, .. } => reason.clone(),
            CellOutcome::Aborted { error } => error.clone(),
            CellOutcome::Crashed { message, .. } => message.clone(),
            CellOutcome::Quarantined { attempts, .. } => {
                format!("quarantined after {attempts} attempt(s)")
            }
        };
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} | {} | {} | {} |",
            cell.dc.letter(),
            cell.kind.label(),
            cell.outcome.label(),
            hours,
            hosts,
            energy,
            note
        );
    }
    let degraded = report
        .cells
        .iter()
        .filter(|c| matches!(c.outcome, CellOutcome::Degraded { .. }))
        .count();
    let aborted = report
        .cells
        .iter()
        .filter(|c| {
            matches!(
                c.outcome,
                CellOutcome::Aborted { .. } | CellOutcome::Crashed { .. }
            )
        })
        .count();
    if degraded + aborted > 0 {
        let _ = writeln!(
            out,
            "\n{degraded} degraded and {aborted} aborted cell(s); their rows report the \
             completed prefix only. See docs/DURABILITY.md for resume semantics."
        );
    }
    let quarantined: Vec<_> = report
        .cells
        .iter()
        .filter_map(|c| match &c.outcome {
            CellOutcome::Quarantined {
                attempts,
                incidents,
            } => Some((c, *attempts, incidents)),
            _ => None,
        })
        .collect();
    if !quarantined.is_empty() {
        let _ = writeln!(out, "\n## Failure matrix\n");
        let _ = writeln!(
            out,
            "{} cell(s) exhausted their retry budget and were quarantined; their \
             results are excluded above. Incident log per cell (see \
             docs/ROBUSTNESS.md for the supervision model):\n",
            quarantined.len()
        );
        for (cell, attempts, incidents) in quarantined {
            let _ = writeln!(
                out,
                "* `{}/{}` — {attempts} attempt(s):",
                cell.dc.letter(),
                cell.kind.label()
            );
            for incident in incidents {
                let _ = writeln!(out, "  * {incident}");
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SuiteConfig;

    #[test]
    fn all_claims_hold_at_reduced_scale() {
        let mut suite = Suite::new(SuiteConfig {
            scale: 0.2,
            seed: 42,
            history_days: 30,
            eval_days: 14,
        });
        let claims = check_claims(&mut suite).unwrap();
        let failing: Vec<&Claim> = claims.iter().filter(|c| !c.holds).collect();
        assert!(failing.is_empty(), "failing claims: {failing:#?}");
        assert!(claims.len() >= 9);
    }

    #[test]
    fn summary_renders_markdown() {
        let mut suite = Suite::new(SuiteConfig {
            scale: 0.05,
            seed: 1,
            history_days: 8,
            eval_days: 4,
        });
        let md = reproduction_summary(&mut suite).unwrap();
        assert!(md.starts_with("# Reproduction summary"));
        assert!(md.contains("| Fig 7 space |") || md.contains("Fig 7 space"));
        assert!(md.contains("claims hold"));
    }
}
