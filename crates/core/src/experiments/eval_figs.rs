//! Evaluation tables and figures (§5: Table 3, Figs 7–12).

use super::Suite;
use crate::render::{fnum, Table};
use crate::study::StudyError;
use vmcw_consolidation::planner::PlannerKind;
use vmcw_emulator::report;
use vmcw_trace::datacenters::DataCenterId;
use vmcw_trace::stats::Cdf;

/// Points per CDF written to CSV.
const CDF_POINTS: usize = 120;

/// Table 3: baseline experimental settings.
#[must_use]
pub fn table3(suite: &Suite) -> Table {
    let cfg = suite.config();
    let mut t = Table::new("table3", &["metric", "value"]);
    t.push_row(["Experiment Duration", &format!("{} days", cfg.eval_days)]);
    t.push_row(["Dynamic Consolidation Interval", "2 hours"]);
    t.push_row(["Number of Intervals", &format!("{}", cfg.eval_days * 12)]);
    t.push_row(["CPU reserved for VMotion", "20%"]);
    t.push_row(["Memory reserved for VMotion", "20%"]);
    t.push_row(["Planning history", &format!("{} days", cfg.history_days)]);
    t.push_row(["Server scale", &fnum(cfg.scale, 3)]);
    t
}

/// Fig 7: space and power cost of the three planners, normalised to the
/// vanilla semi-static planner per data center.
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn fig7(suite: &mut Suite) -> Result<Table, StudyError> {
    let mut t = Table::new(
        "fig7",
        &[
            "datacenter",
            "planner",
            "space_cost_norm",
            "power_cost_norm",
            "provisioned_hosts",
            "energy_kwh",
        ],
    );
    for dc in DataCenterId::ALL {
        let baseline = suite.run(dc, PlannerKind::SemiStatic)?.cost;
        for kind in PlannerKind::EVALUATED {
            let run = suite.run(dc, kind)?;
            let (space, power) = run.cost.normalized_to(&baseline);
            let row = [
                dc.industry().to_owned(),
                kind.label().to_owned(),
                fnum(space, 4),
                fnum(power, 4),
                run.cost.provisioned_hosts.to_string(),
                fnum(run.cost.energy_kwh, 1),
            ];
            t.push_row(row);
        }
    }
    Ok(t)
}

/// Fig 8: fraction of provisioned host-hours with resource contention.
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn fig8(suite: &mut Suite) -> Result<Table, StudyError> {
    let mut t = Table::new(
        "fig8",
        &["datacenter", "planner", "contention_time_fraction"],
    );
    for dc in DataCenterId::ALL {
        for kind in PlannerKind::EVALUATED {
            let run = suite.run(dc, kind)?;
            t.push_row([
                dc.industry().to_owned(),
                kind.label().to_owned(),
                fnum(report::contention_time_fraction(&run.report), 6),
            ]);
        }
    }
    Ok(t)
}

/// Fig 9: CDF of CPU contention magnitude under dynamic consolidation
/// (unmet demand as a fraction of server capacity).
///
/// # Errors
///
/// Propagates [`StudyError`] from the planner.
pub fn fig9(suite: &mut Suite) -> Result<Table, StudyError> {
    let mut t = Table::new("fig9", &["datacenter", "contention", "cdf"]);
    for dc in DataCenterId::ALL {
        let run = suite.run(dc, PlannerKind::Dynamic)?;
        let cdf = report::contention_cdf(&run.report);
        if cdf.is_empty() {
            continue; // "Absence of line for Airline indicates no contention."
        }
        for (x, y) in cdf.points_downsampled(CDF_POINTS) {
            t.push_row([dc.industry().to_owned(), fnum(x, 5), fnum(y, 4)]);
        }
    }
    Ok(t)
}

fn util_cdf_table(
    name: &str,
    suite: &mut Suite,
    extract: fn(&vmcw_emulator::engine::EmulationReport) -> Cdf,
) -> Result<Table, StudyError> {
    let mut t = Table::new(name, &["datacenter", "planner", "cpu_util", "cdf"]);
    for dc in DataCenterId::ALL {
        for kind in PlannerKind::EVALUATED {
            let run = suite.run(dc, kind)?;
            let cdf = extract(&run.report);
            for (x, y) in cdf.points_downsampled(CDF_POINTS) {
                t.push_row([
                    dc.industry().to_owned(),
                    kind.label().to_owned(),
                    fnum(x, 5),
                    fnum(y, 4),
                ]);
            }
        }
    }
    Ok(t)
}

/// Fig 10: CDF of per-server average CPU utilisation.
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn fig10(suite: &mut Suite) -> Result<Table, StudyError> {
    util_cdf_table("fig10", suite, report::avg_util_cdf)
}

/// Fig 11: CDF of per-server peak CPU utilisation (values above 1 are
/// servers crossing 100%).
///
/// # Errors
///
/// Propagates [`StudyError`] from the planners.
pub fn fig11(suite: &mut Suite) -> Result<Table, StudyError> {
    util_cdf_table("fig11", suite, report::peak_util_cdf)
}

/// Fig 12: CDF of the fraction of provisioned servers running per
/// consolidation interval under dynamic consolidation.
///
/// # Errors
///
/// Propagates [`StudyError`] from the planner.
pub fn fig12(suite: &mut Suite) -> Result<Table, StudyError> {
    let mut t = Table::new("fig12", &["datacenter", "running_fraction", "cdf"]);
    for dc in DataCenterId::ALL {
        let run = suite.run(dc, PlannerKind::Dynamic)?;
        let cdf = report::active_fraction_cdf(&run.report);
        for (x, y) in cdf.points_downsampled(CDF_POINTS) {
            t.push_row([dc.industry().to_owned(), fnum(x, 4), fnum(y, 4)]);
        }
    }
    Ok(t)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SuiteConfig;

    fn suite() -> Suite {
        Suite::new(SuiteConfig {
            scale: 0.03,
            seed: 6,
            history_days: 7,
            eval_days: 3,
        })
    }

    #[test]
    fn table3_reflects_suite_config() {
        let s = suite();
        let t = table3(&s);
        assert!(t
            .rows
            .iter()
            .any(|r| r[0] == "Experiment Duration" && r[1] == "3 days"));
        assert!(t
            .rows
            .iter()
            .any(|r| r[0] == "Number of Intervals" && r[1] == "36"));
    }

    #[test]
    fn fig7_baseline_rows_are_one() {
        let mut s = suite();
        let t = fig7(&mut s).unwrap();
        assert_eq!(t.len(), 12);
        for row in t.rows.iter().filter(|r| r[1] == "Semi-Static") {
            assert_eq!(row[2], "1.0000");
            assert_eq!(row[3], "1.0000");
        }
    }

    #[test]
    fn fig8_fractions_bounded() {
        let mut s = suite();
        let t = fig8(&mut s).unwrap();
        for row in &t.rows {
            let f: f64 = row[2].parse().unwrap();
            assert!((0.0..=1.0).contains(&f));
        }
    }

    #[test]
    fn fig10_and_11_cover_all_planners() {
        let mut s = suite();
        for t in [fig10(&mut s).unwrap(), fig11(&mut s).unwrap()] {
            for kind in PlannerKind::EVALUATED {
                assert!(
                    t.rows.iter().any(|r| r[1] == kind.label()),
                    "{} missing",
                    kind
                );
            }
        }
    }

    #[test]
    fn fig12_fractions_bounded() {
        let mut s = suite();
        let t = fig12(&mut s).unwrap();
        for row in &t.rows {
            let f: f64 = row[1].parse().unwrap();
            assert!((0.0..=1.0 + 1e-9).contains(&f));
        }
    }
}
