//! Workload-analysis tables and figures (§3–§4: Tables 1–2, Figs 1–6).

use super::Suite;
use crate::render::{fnum, Table};
use vmcw_cluster::server::ServerModel;
use vmcw_consolidation::sizing::{window_demands, SizingFunction};
use vmcw_trace::datacenters::{DataCenterId, GeneratedWorkload};
use vmcw_trace::metrics::Metric;
use vmcw_trace::series::TimeSeries;
use vmcw_trace::stats::{self, Cdf};

/// Consolidation-window lengths studied in Figs 2 and 4 (hours).
const WINDOWS: [usize; 3] = [1, 2, 4];
/// Points per CDF written to CSV.
const CDF_POINTS: usize = 120;

/// Table 1: the monitored-metric catalog.
#[must_use]
pub fn table1() -> Table {
    let mut t = Table::new(
        "table1",
        &["metric", "description", "unit", "planning_resource"],
    );
    for m in Metric::ALL {
        t.push_row([
            m.name().to_owned(),
            m.description().to_owned(),
            m.unit().to_string(),
            m.is_planning_resource().to_string(),
        ]);
    }
    t
}

/// Table 2: workload types — paper values beside the generated ones.
#[must_use]
pub fn table2(suite: &mut Suite) -> Table {
    let mut t = Table::new(
        "table2",
        &[
            "name",
            "industry",
            "servers_paper",
            "servers_generated",
            "cpu_util_paper_pct",
            "cpu_util_generated_pct",
            "web_servers",
            "batch_servers",
        ],
    );
    for dc in DataCenterId::ALL {
        let w = suite.study(dc).workload().clone();
        let (web, batch) = w.class_counts();
        t.push_row([
            dc.letter().to_string(),
            dc.industry().to_owned(),
            dc.server_count().to_string(),
            w.servers.len().to_string(),
            fnum(dc.table2_cpu_util_pct(), 0),
            fnum(w.mean_cpu_util_pct(), 2),
            web.to_string(),
            batch.to_string(),
        ]);
    }
    t
}

/// Fig 1: hourly CPU utilisation of two low-average, high-peak Banking
/// servers over one week (average < 5%, peak > 50%).
#[must_use]
pub fn fig1(suite: &mut Suite) -> Table {
    let w = suite.study(DataCenterId::Banking).workload().clone();
    let hours = (7 * 24).min(w.hours());
    // "Picked completely at random": the first two servers that show the
    // low-average/high-peak signature of Fig 1. If the (possibly tiny)
    // population has no such server, fall back to the two burstiest.
    let mut picks: Vec<&vmcw_trace::datacenters::SourceServer> = w
        .servers
        .iter()
        .filter(|s| {
            let mean = s.cpu_used_frac.mean().unwrap_or(1.0);
            let peak = s.cpu_used_frac.max().unwrap_or(0.0);
            mean < 0.05 && peak > 0.5
        })
        .take(2)
        .collect();
    if picks.len() < 2 {
        let mut by_burst: Vec<&vmcw_trace::datacenters::SourceServer> = w.servers.iter().collect();
        by_burst.sort_by(|a, b| {
            let pa = vmcw_trace::stats::peak_to_average(b.cpu_used_frac.values()).unwrap_or(0.0);
            let pb = vmcw_trace::stats::peak_to_average(a.cpu_used_frac.values()).unwrap_or(0.0);
            pa.partial_cmp(&pb).unwrap_or(std::cmp::Ordering::Equal)
        });
        picks = by_burst.into_iter().take(2).collect();
    }
    let mut t = Table::new("fig1", &["hour", "server", "cpu_util_pct"]);
    for s in picks {
        for h in 0..hours {
            t.push_row([
                h.to_string(),
                s.name.clone(),
                fnum(s.cpu_used_frac.get(h).unwrap_or(0.0) * 100.0, 3),
            ]);
        }
    }
    t
}

/// Shared CDF-table builder for Figs 2–5.
fn burstiness_cdf_table(
    name: &str,
    suite: &mut Suite,
    resource: fn(&vmcw_trace::datacenters::SourceServer) -> &TimeSeries,
    metric: BurstinessMetric,
) -> Table {
    let history_hours = suite.config().history_days * 24;
    let mut t = Table::new(name, &["datacenter", "window_h", "value", "cdf"]);
    for dc in DataCenterId::ALL {
        let w = suite.study(dc).workload().clone();
        match metric {
            BurstinessMetric::PeakToAverage => {
                for window in WINDOWS {
                    let cdf: Cdf = per_server_samples(&w, history_hours, |s| {
                        let demands = window_demands(
                            &truncate(resource(s), history_hours),
                            window,
                            SizingFunction::Max,
                        );
                        stats::peak_to_average(demands.values())
                    });
                    push_cdf_rows(&mut t, dc, window.to_string(), &cdf);
                }
            }
            BurstinessMetric::CoV => {
                let cdf: Cdf = per_server_samples(&w, history_hours, |s| {
                    stats::coefficient_of_variability(
                        &resource(s).values()[..history_hours.min(resource(s).len())],
                    )
                });
                push_cdf_rows(&mut t, dc, "-".to_owned(), &cdf);
            }
        }
    }
    t
}

#[derive(Clone, Copy)]
enum BurstinessMetric {
    PeakToAverage,
    CoV,
}

fn truncate(s: &TimeSeries, hours: usize) -> TimeSeries {
    s.slice(0..hours.min(s.len()))
}

fn per_server_samples<F>(w: &GeneratedWorkload, _history_hours: usize, f: F) -> Cdf
where
    F: Fn(&vmcw_trace::datacenters::SourceServer) -> Option<f64>,
{
    w.servers.iter().filter_map(f).collect()
}

fn push_cdf_rows(t: &mut Table, dc: DataCenterId, window: String, cdf: &Cdf) {
    for (x, y) in cdf.points_downsampled(CDF_POINTS) {
        t.push_row([
            dc.industry().to_owned(),
            window.clone(),
            fnum(x, 4),
            fnum(y, 4),
        ]);
    }
}

/// Fig 2: CDF of the CPU peak-to-average ratio per server, for 1/2/4-hour
/// consolidation windows.
#[must_use]
pub fn fig2(suite: &mut Suite) -> Table {
    burstiness_cdf_table(
        "fig2",
        suite,
        |s| &s.cpu_used_frac,
        BurstinessMetric::PeakToAverage,
    )
}

/// Fig 3: CDF of the CPU coefficient of variability per server.
#[must_use]
pub fn fig3(suite: &mut Suite) -> Table {
    burstiness_cdf_table("fig3", suite, |s| &s.cpu_used_frac, BurstinessMetric::CoV)
}

/// Fig 4: CDF of the memory peak-to-average ratio per server.
#[must_use]
pub fn fig4(suite: &mut Suite) -> Table {
    burstiness_cdf_table(
        "fig4",
        suite,
        |s| &s.mem_used_mb,
        BurstinessMetric::PeakToAverage,
    )
}

/// Fig 5: CDF of the memory coefficient of variability per server.
#[must_use]
pub fn fig5(suite: &mut Suite) -> Table {
    burstiness_cdf_table("fig5", suite, |s| &s.mem_used_mb, BurstinessMetric::CoV)
}

/// Fig 6: CDF of the aggregate CPU(RPE2)/memory(GB) resource ratio across
/// 2-hour consolidation intervals of the evaluation fortnight, with the
/// HS23 blade's ratio (160) as the reference.
#[must_use]
pub fn fig6(suite: &mut Suite) -> Table {
    let history_hours = suite.config().history_days * 24;
    let hs23 = ServerModel::hs23_elite().cpu_mem_ratio();
    let mut t = Table::new("fig6", &["datacenter", "ratio", "cdf", "hs23_reference"]);
    for dc in DataCenterId::ALL {
        let w = suite.study(dc).workload().clone();
        let total = w.hours();
        let cpu = w
            .aggregate_cpu_rpe2()
            .slice(history_hours.min(total)..total);
        let mem = w.aggregate_mem_mb().slice(history_hours.min(total)..total);
        let cpu_w = window_demands(&cpu, 2, SizingFunction::Max);
        let mem_w = window_demands(&mem, 2, SizingFunction::Max);
        let ratios: Cdf = cpu_w
            .iter()
            .zip(mem_w.iter())
            .filter(|&(_, m)| m > 0.0)
            .map(|(c, m)| c / (m / 1024.0))
            .collect();
        for (x, y) in ratios.points_downsampled(CDF_POINTS) {
            t.push_row([
                dc.industry().to_owned(),
                fnum(x, 3),
                fnum(y, 4),
                fnum(hs23, 0),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiments::SuiteConfig;

    fn suite() -> Suite {
        Suite::new(SuiteConfig {
            scale: 0.03,
            seed: 5,
            history_days: 7,
            eval_days: 4,
        })
    }

    #[test]
    fn table1_lists_all_metrics() {
        let t = table1();
        assert_eq!(t.len(), 11);
        assert_eq!(t.columns.len(), 4);
    }

    #[test]
    fn table2_covers_four_datacenters() {
        let mut s = suite();
        let t = table2(&mut s);
        assert_eq!(t.len(), 4);
        assert!(t.rows.iter().any(|r| r[1] == "Banking"));
    }

    #[test]
    fn fig1_finds_bursty_servers() {
        let mut s = suite();
        let t = fig1(&mut s);
        assert!(!t.is_empty(), "no low-average/high-peak servers found");
        // Two servers × up to 7 days of hours.
        assert!(t.len() <= 2 * 7 * 24);
    }

    #[test]
    fn fig2_has_all_windows_per_datacenter() {
        let mut s = suite();
        let t = fig2(&mut s);
        for dc in DataCenterId::ALL {
            for w in ["1", "2", "4"] {
                assert!(
                    t.rows.iter().any(|r| r[0] == dc.industry() && r[1] == w),
                    "{dc} window {w} missing"
                );
            }
        }
    }

    #[test]
    fn fig3_and_fig5_use_single_window() {
        let mut s = suite();
        for t in [fig3(&mut s), fig5(&mut s)] {
            assert!(t.rows.iter().all(|r| r[1] == "-"));
        }
    }

    #[test]
    fn fig6_includes_reference_ratio() {
        let mut s = suite();
        let t = fig6(&mut s);
        assert!(t.rows.iter().all(|r| r[3] == "160"));
        // Airlines must sit far below the reference.
        let airlines_max = t
            .rows
            .iter()
            .filter(|r| r[0] == "Airlines")
            .map(|r| r[1].parse::<f64>().unwrap())
            .fold(0.0, f64::max);
        assert!(
            airlines_max < 160.0,
            "Airlines ratio reached {airlines_max}"
        );
    }
}
