//! Reproduction of every table and figure in the paper.
//!
//! Each function regenerates one artifact of the paper as a
//! [`Table`] (see the experiment index in
//! `DESIGN.md`). The [`Suite`] caches generated workloads and baseline
//! runs so the full figure set shares one set of traces, exactly like the
//! paper's single measurement campaign.
//!
//! [`Table`]: crate::render::Table
//!
//! | id | artifact |
//! |----|----------|
//! | `table1` | monitored metrics |
//! | `table2` | workload types |
//! | `table3` | baseline experimental settings |
//! | `fig1`   | burstiness of two bank servers |
//! | `fig2`/`fig3` | CPU peak-to-average and CoV CDFs |
//! | `fig4`/`fig5` | memory peak-to-average and CoV CDFs |
//! | `fig6`   | CPU/memory resource-ratio CDFs |
//! | `olio`   | Olio throughput vs CPU/memory scaling |
//! | `migration` | pre-copy duration vs host load |
//! | `emuval` | emulator 99p accuracy |
//! | `fig7`   | normalized space & power cost |
//! | `fig8`   | fraction of time with contention |
//! | `fig9`   | CPU contention CDF (dynamic) |
//! | `fig10`/`fig11` | average/peak utilisation CDFs |
//! | `fig12`  | running-server distribution (dynamic) |
//! | `fig13`–`fig16` | sensitivity to the utilization bound |

mod eval_figs;
mod extensions;
mod micro;
mod sensitivity;
mod summary;
mod workload_figs;

pub use eval_figs::{fig10, fig11, fig12, fig7, fig8, fig9, table3};
pub use extensions::{
    constraint_cost, correlation_stability_experiment, future_mechanisms, interval_sweep,
    rolling_sweep, timeline, INTERVAL_HOURS,
};
pub use micro::{emulator_validation, migration_experiment, olio_experiment};
pub use sensitivity::{sensitivity, UTILIZATION_BOUNDS};
pub use summary::{check_claims, reproduction_summary, study_markdown, Claim};
pub use workload_figs::{fig1, fig2, fig3, fig4, fig5, fig6, table1, table2};

use crate::render::Table;
use crate::study::{Study, StudyConfig, StudyError, StudyRun};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vmcw_consolidation::planner::PlannerKind;
use vmcw_trace::datacenters::DataCenterId;

/// Configuration shared by the whole figure suite.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SuiteConfig {
    /// Server-count scale (1.0 reproduces Table 2's populations).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Planning-history days (paper: 30).
    pub history_days: usize,
    /// Evaluation days (Table 3: 14).
    pub eval_days: usize,
}

impl SuiteConfig {
    /// Paper-scale configuration.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            scale: 1.0,
            seed: 42,
            history_days: 30,
            eval_days: 14,
        }
    }

    /// A reduced configuration for quick runs and CI.
    #[must_use]
    pub fn quick() -> Self {
        Self {
            scale: 0.08,
            seed: 42,
            history_days: 10,
            eval_days: 6,
        }
    }

    fn study_config(&self, dc: DataCenterId) -> StudyConfig {
        StudyConfig {
            scale: self.scale,
            history_days: self.history_days,
            eval_days: self.eval_days,
            ..StudyConfig::paper_baseline(dc, self.seed)
        }
    }
}

impl Default for SuiteConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Caches workloads and baseline runs across experiments.
#[derive(Debug)]
pub struct Suite {
    config: SuiteConfig,
    studies: BTreeMap<DataCenterId, Study>,
    runs: BTreeMap<(DataCenterId, PlannerKind), StudyRun>,
}

impl Suite {
    /// Creates an empty suite.
    #[must_use]
    pub fn new(config: SuiteConfig) -> Self {
        Self {
            config,
            studies: BTreeMap::new(),
            runs: BTreeMap::new(),
        }
    }

    /// The suite configuration.
    #[must_use]
    pub fn config(&self) -> SuiteConfig {
        self.config
    }

    /// The (cached) study for a data center.
    pub fn study(&mut self, dc: DataCenterId) -> &Study {
        let config = self.config.study_config(dc);
        self.studies
            .entry(dc)
            .or_insert_with(|| Study::prepare(&config))
    }

    /// The (cached) baseline run of `kind` on `dc`.
    ///
    /// # Errors
    ///
    /// Propagates [`StudyError`] from the study (planner or emulator).
    pub fn run(&mut self, dc: DataCenterId, kind: PlannerKind) -> Result<&StudyRun, StudyError> {
        if !self.runs.contains_key(&(dc, kind)) {
            let run = self.study(dc).run(kind)?;
            self.runs.insert((dc, kind), run);
        }
        Ok(&self.runs[&(dc, kind)])
    }
}

/// All experiment identifiers, in the paper's order.
pub const ALL_EXPERIMENTS: [&str; 18] = [
    "table1",
    "table2",
    "table3",
    "fig1",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "olio",
    "migration",
    "emuval",
    "fig7",
    "fig8",
    "fig9",
    "fig10",
    "fig11",
    "fig12",
    // figs 13–16 are produced together by the `sensitivity` experiment;
    // see `run_experiment("sensitivity", ..)`.
];

/// Extension experiments quantifying the paper's §7 discussion (not
/// figures of the paper itself).
pub const EXTENSION_EXPERIMENTS: [&str; 6] = [
    "intervals",
    "futurework",
    "stability",
    "constraints",
    "timeline",
    "rolling",
];

/// Runs one experiment by id, returning its table(s).
///
/// The pseudo-id `sensitivity` produces figs 13–16 (one table per data
/// center).
///
/// # Errors
///
/// Returns a [`StudyError`] (wrapped in a `String` for uniformity)
/// or an unknown-id error.
pub fn run_experiment(id: &str, suite: &mut Suite) -> Result<Vec<Table>, String> {
    let map_err = |e: StudyError| e.to_string();
    match id {
        "table1" => Ok(vec![table1()]),
        "table2" => Ok(vec![table2(suite)]),
        "table3" => Ok(vec![table3(suite)]),
        "fig1" => Ok(vec![fig1(suite)]),
        "fig2" => Ok(vec![fig2(suite)]),
        "fig3" => Ok(vec![fig3(suite)]),
        "fig4" => Ok(vec![fig4(suite)]),
        "fig5" => Ok(vec![fig5(suite)]),
        "fig6" => Ok(vec![fig6(suite)]),
        "olio" => Ok(vec![olio_experiment()]),
        "migration" => Ok(vec![migration_experiment()]),
        "emuval" => Ok(vec![emulator_validation()]),
        "fig7" => fig7(suite).map(|t| vec![t]).map_err(map_err),
        "fig8" => fig8(suite).map(|t| vec![t]).map_err(map_err),
        "fig9" => fig9(suite).map(|t| vec![t]).map_err(map_err),
        "fig10" => fig10(suite).map(|t| vec![t]).map_err(map_err),
        "fig11" => fig11(suite).map(|t| vec![t]).map_err(map_err),
        "fig12" => fig12(suite).map(|t| vec![t]).map_err(map_err),
        "sensitivity" | "fig13" | "fig14" | "fig15" | "fig16" => {
            let dcs: Vec<DataCenterId> = match id {
                "fig13" => vec![DataCenterId::Banking],
                "fig14" => vec![DataCenterId::Airlines],
                "fig15" => vec![DataCenterId::NaturalResources],
                "fig16" => vec![DataCenterId::Beverage],
                _ => DataCenterId::ALL.to_vec(),
            };
            dcs.into_iter()
                .map(|dc| sensitivity(suite, dc).map_err(|e| e.to_string()))
                .collect()
        }
        "intervals" => interval_sweep(suite).map(|t| vec![t]).map_err(map_err),
        "futurework" => future_mechanisms(suite).map(|t| vec![t]).map_err(map_err),
        "stability" => Ok(vec![correlation_stability_experiment(suite)]),
        "constraints" => constraint_cost(suite).map(|t| vec![t]).map_err(map_err),
        "timeline" => timeline(suite).map(|t| vec![t]).map_err(map_err),
        "rolling" => rolling_sweep(suite).map(|t| vec![t]).map_err(map_err),
        other => Err(format!("unknown experiment id: {other}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_caches_studies_and_runs() {
        let mut suite = Suite::new(SuiteConfig {
            scale: 0.02,
            seed: 1,
            history_days: 6,
            eval_days: 3,
        });
        let a = suite.study(DataCenterId::Airlines).workload().clone();
        let b = suite.study(DataCenterId::Airlines).workload().clone();
        assert_eq!(a, b);
        let hosts_a = suite
            .run(DataCenterId::Airlines, PlannerKind::SemiStatic)
            .unwrap()
            .cost
            .provisioned_hosts;
        let hosts_b = suite
            .run(DataCenterId::Airlines, PlannerKind::SemiStatic)
            .unwrap()
            .cost
            .provisioned_hosts;
        assert_eq!(hosts_a, hosts_b);
    }

    #[test]
    fn unknown_experiment_is_an_error() {
        let mut suite = Suite::new(SuiteConfig::quick());
        assert!(run_experiment("fig99", &mut suite).is_err());
    }

    #[test]
    fn static_experiments_run_without_suite_state() {
        let mut suite = Suite::new(SuiteConfig::quick());
        for id in ["table1", "olio", "migration", "emuval"] {
            let tables = run_experiment(id, &mut suite).unwrap();
            assert!(!tables[0].is_empty(), "{id} produced no rows");
        }
    }
}
