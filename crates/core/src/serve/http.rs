//! A deliberately small HTTP/1.1 server-side codec.
//!
//! `vmcw serve` needs five routes, `Connection: close` semantics and
//! nothing else, so — like the hand-rolled JSON in
//! [`health`](crate::health) — the parser lives here instead of pulling
//! a dependency into this offline workspace. The head parser is a pure
//! function over bytes ([`parse_head`]) so adversarial property tests
//! can hammer it without sockets.
//!
//! Hard limits are enforced *before* allocation is proportional to
//! attacker input: a request head over [`MAX_HEAD_BYTES`], more than
//! [`MAX_HEADER_COUNT`] headers, or a body over [`MAX_BODY_BYTES`] is
//! rejected, never buffered.

use std::fmt;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Maximum bytes of request line + headers (everything before the
/// blank line).
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// Maximum number of header lines accepted.
pub const MAX_HEADER_COUNT: usize = 64;

/// Maximum request body accepted (request bodies here are small JSON
/// job specs; 1 MiB is generous).
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// How an inbound request failed to parse.
#[derive(Debug, Clone, PartialEq)]
pub enum HttpError {
    /// Malformed request line, header, or body framing → 400.
    Bad {
        /// What was wrong.
        detail: String,
    },
    /// A hard limit was exceeded → 431/413.
    TooLarge {
        /// Which limit.
        detail: String,
    },
    /// The socket died or stalled mid-request.
    Io {
        /// The I/O error, stringified (keeps the type `PartialEq`).
        detail: String,
        /// The client stalled past the read timeout (→ 408); otherwise
        /// the transport itself broke and no response is owed.
        timeout: bool,
    },
}

impl fmt::Display for HttpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HttpError::Bad { detail } => write!(f, "bad request: {detail}"),
            HttpError::TooLarge { detail } => write!(f, "request too large: {detail}"),
            HttpError::Io { detail, timeout } => {
                let kind = if *timeout { "request read timeout" } else { "request i/o" };
                write!(f, "{kind}: {detail}")
            }
        }
    }
}

impl std::error::Error for HttpError {}

fn bad(detail: impl Into<String>) -> HttpError {
    HttpError::Bad {
        detail: detail.into(),
    }
}

/// The parsed request line + headers of one HTTP/1.1 request.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestHead {
    /// Request method, as sent (`GET`, `POST`, ...).
    pub method: String,
    /// Request target (path + optional query), as sent.
    pub path: String,
    /// Header `(name, value)` pairs; names lowercased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Parsed `Content-Length`, 0 when absent.
    pub content_length: usize,
}

impl RequestHead {
    /// First value of header `name` (lowercase), if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Parses the request head: everything up to and excluding the blank
/// line. Accepts both `\r\n` and bare `\n` line endings (curl always
/// sends the former; hand-rolled test clients often the latter).
///
/// # Errors
///
/// [`HttpError::Bad`] for malformed syntax (non-UTF8 head, missing
/// method/path, header without `:`, unparsable or conflicting
/// `Content-Length`), [`HttpError::TooLarge`] for more than
/// [`MAX_HEADER_COUNT`] headers or a declared body over
/// [`MAX_BODY_BYTES`]. Never panics, whatever the bytes.
pub fn parse_head(head: &[u8]) -> Result<RequestHead, HttpError> {
    if head.len() > MAX_HEAD_BYTES {
        return Err(HttpError::TooLarge {
            detail: format!("request head over {MAX_HEAD_BYTES} bytes"),
        });
    }
    let text = std::str::from_utf8(head).map_err(|_| bad("request head is not UTF-8"))?;
    let mut lines = text.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or_else(|| bad("empty request line"))?;
    let path = parts
        .next()
        .ok_or_else(|| bad("request line has no target"))?;
    let version = parts.next().unwrap_or("HTTP/1.1");
    if !version.starts_with("HTTP/1.") {
        return Err(bad(format!("unsupported protocol `{version}`")));
    }
    if parts.next().is_some() {
        return Err(bad("request line has trailing tokens"));
    }
    if !method.bytes().all(|b| b.is_ascii_uppercase()) || method.is_empty() {
        return Err(bad(format!("bad method `{method}`")));
    }

    let mut headers: Vec<(String, String)> = Vec::new();
    let mut content_length: Option<usize> = None;
    for line in lines {
        if line.is_empty() {
            continue; // trailing blank from the head/body split
        }
        if headers.len() >= MAX_HEADER_COUNT {
            return Err(HttpError::TooLarge {
                detail: format!("more than {MAX_HEADER_COUNT} headers"),
            });
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| bad(format!("header line without `:`: `{line}`")))?;
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim().to_owned();
        if name.is_empty() || name.contains(char::is_whitespace) {
            return Err(bad("empty or malformed header name"));
        }
        if name == "content-length" {
            // Strict digits only — "+1", "0x10", "1e2" are smuggling
            // vectors, not lengths.
            if value.is_empty() || !value.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad(format!("bad content-length `{value}`")));
            }
            let n: usize = value.parse().map_err(|_| {
                bad(format!("content-length `{value}` does not fit in usize"))
            })?;
            match content_length {
                Some(prev) if prev != n => {
                    return Err(bad("conflicting content-length headers"));
                }
                _ => content_length = Some(n),
            }
        }
        headers.push((name, value));
    }
    let content_length = content_length.unwrap_or(0);
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge {
            detail: format!("declared body of {content_length} bytes over {MAX_BODY_BYTES}"),
        });
    }
    Ok(RequestHead {
        method: method.to_owned(),
        path: path.to_owned(),
        headers,
        content_length,
    })
}

/// One fully-read request: head + body.
#[derive(Debug, Clone, PartialEq)]
pub struct Request {
    /// The parsed head.
    pub head: RequestHead,
    /// The body, exactly `head.content_length` bytes.
    pub body: Vec<u8>,
}

/// Reads exactly one request off `stream` (the server speaks
/// `Connection: close`, so at most one request per connection is
/// honoured; pipelined bytes after the first body are ignored).
///
/// # Errors
///
/// Everything [`parse_head`] returns, plus [`HttpError::Io`] for socket
/// errors/timeouts and [`HttpError::TooLarge`] when the head never
/// terminates within [`MAX_HEAD_BYTES`].
pub fn read_request(stream: &mut TcpStream) -> Result<Request, HttpError> {
    let io = |e: std::io::Error| HttpError::Io {
        timeout: matches!(
            e.kind(),
            std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
        ),
        detail: e.to_string(),
    };
    // A stuck client must not wedge a connection handler forever.
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .map_err(io)?;
    let mut buf: Vec<u8> = Vec::with_capacity(1024);
    let mut chunk = [0u8; 1024];
    let head_end = loop {
        if let Some(end) = find_head_end(&buf) {
            break end;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::TooLarge {
                detail: format!("request head over {MAX_HEAD_BYTES} bytes"),
            });
        }
        let n = stream.read(&mut chunk).map_err(io)?;
        if n == 0 {
            return Err(bad("connection closed before the request head ended"));
        }
        buf.extend_from_slice(&chunk[..n]);
    };
    let (head_bytes, body_sep) = head_end;
    let head = parse_head(&buf[..head_bytes])?;
    let mut body: Vec<u8> = buf[head_bytes + body_sep..].to_vec();
    if body.len() > head.content_length {
        body.truncate(head.content_length); // ignore pipelined garbage
    }
    while body.len() < head.content_length {
        let want = (head.content_length - body.len()).min(chunk.len());
        let n = stream.read(&mut chunk[..want]).map_err(io)?;
        if n == 0 {
            return Err(bad("connection closed mid-body"));
        }
        body.extend_from_slice(&chunk[..n]);
    }
    Ok(Request { head, body })
}

/// Finds the end of the request head: returns `(head_len,
/// separator_len)` for the first `\r\n\r\n` or `\n\n`.
fn find_head_end(buf: &[u8]) -> Option<(usize, usize)> {
    for i in 0..buf.len() {
        if buf[i..].starts_with(b"\r\n\r\n") {
            return Some((i, 4));
        }
        if buf[i..].starts_with(b"\n\n") {
            return Some((i, 2));
        }
    }
    None
}

/// An outbound response; always `Connection: close`.
#[derive(Debug, Clone, PartialEq)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// Extra headers beyond the automatic ones.
    pub headers: Vec<(String, String)>,
    /// The body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response (`Content-Type: application/json`).
    #[must_use]
    pub fn json(status: u16, body: impl Into<String>) -> Self {
        Self {
            status,
            headers: vec![("Content-Type".into(), "application/json".into())],
            body: body.into().into_bytes(),
        }
    }

    /// Adds a header.
    #[must_use]
    pub fn header(mut self, name: &str, value: impl fmt::Display) -> Self {
        self.headers.push((name.into(), value.to_string()));
        self
    }

    /// Serialises the response onto `w`.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O errors.
    pub fn write_to(&self, w: &mut impl Write) -> std::io::Result<()> {
        let mut out = format!("HTTP/1.1 {} {}\r\n", self.status, reason(self.status));
        for (name, value) in &self.headers {
            out.push_str(&format!("{name}: {value}\r\n"));
        }
        out.push_str(&format!("Content-Length: {}\r\n", self.body.len()));
        out.push_str("Connection: close\r\n\r\n");
        w.write_all(out.as_bytes())?;
        w.write_all(&self.body)?;
        w.flush()
    }
}

/// Canned reason phrases for the statuses this server emits.
#[must_use]
pub fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_plain_get() {
        let head = parse_head(b"GET /healthz HTTP/1.1\r\nHost: x\r\n").unwrap();
        assert_eq!(head.method, "GET");
        assert_eq!(head.path, "/healthz");
        assert_eq!(head.header("host"), Some("x"));
        assert_eq!(head.content_length, 0);
    }

    #[test]
    fn accepts_bare_newlines_and_lowercases_names() {
        let head = parse_head(b"POST /v1/plan HTTP/1.1\nContent-Length: 2\n").unwrap();
        assert_eq!(head.content_length, 2);
        assert_eq!(head.header("content-length"), Some("2"));
    }

    #[test]
    fn rejects_bad_content_lengths() {
        for cl in ["-1", "+1", "0x10", "1e3", "", "9999999999999999999999"] {
            let raw = format!("POST / HTTP/1.1\r\nContent-Length: {cl}\r\n");
            let err = parse_head(raw.as_bytes()).unwrap_err();
            assert!(matches!(err, HttpError::Bad { .. }), "{cl}: {err}");
        }
    }

    #[test]
    fn conflicting_content_lengths_are_rejected_duplicates_allowed() {
        let err =
            parse_head(b"POST / HTTP/1.1\r\nContent-Length: 1\r\nContent-Length: 2\r\n")
                .unwrap_err();
        assert!(matches!(err, HttpError::Bad { .. }), "{err}");
        let ok = parse_head(b"POST / HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n");
        assert_eq!(ok.unwrap().content_length, 3);
    }

    #[test]
    fn oversized_declared_body_is_too_large() {
        let raw = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n", MAX_BODY_BYTES + 1);
        let err = parse_head(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge { .. }), "{err}");
    }

    #[test]
    fn too_many_headers_is_too_large() {
        let mut raw = String::from("GET / HTTP/1.1\r\n");
        for i in 0..=MAX_HEADER_COUNT {
            raw.push_str(&format!("x-h{i}: v\r\n"));
        }
        let err = parse_head(raw.as_bytes()).unwrap_err();
        assert!(matches!(err, HttpError::TooLarge { .. }), "{err}");
    }

    #[test]
    fn garbage_is_bad_not_panic() {
        for raw in [
            &b""[..],
            &b"\r\n"[..],
            &b"GET\r\n"[..],
            &b"get / HTTP/1.1\r\n"[..],
            &b"GET / HTTP/1.1 extra\r\n"[..],
            &b"GET / SPDY/3\r\n"[..],
            &b"GET / HTTP/1.1\r\nno-colon-here\r\n"[..],
            &b"GET / HTTP/1.1\r\n: empty-name\r\n"[..],
            &b"\xff\xfe / HTTP/1.1\r\n"[..],
        ] {
            let err = parse_head(raw).unwrap_err();
            assert!(matches!(err, HttpError::Bad { .. }), "{raw:?}: {err}");
        }
    }

    #[test]
    fn response_wire_format() {
        let mut out = Vec::new();
        Response::json(503, "{}")
            .header("Retry-After", 2)
            .write_to(&mut out)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"), "{text}");
        assert!(text.contains("Retry-After: 2\r\n"), "{text}");
        assert!(text.contains("Content-Length: 2\r\n"), "{text}");
        assert!(text.ends_with("\r\n\r\n{}"), "{text}");
    }

    #[test]
    fn head_end_detection() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nbody"), Some((14, 4)));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nbody"), Some((14, 2)));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
