//! Crash-safe, budgeted execution of multi-cell studies.
//!
//! A *study* here is the planner × data-center grid of the paper's
//! evaluation. [`run_study`] drives every cell through the stepwise
//! [`Replay`] engine under a cooperative [`CancelToken`] and per-cell
//! [`CellBudget`]s, journaling a [`ReplayCheckpoint`] at a fixed cadence
//! and each finished cell's full report. [`resume_study`] rebuilds from
//! the journal after a crash or SIGKILL: completed cells are replayed
//! from their journaled reports (byte-identical by construction), the
//! interrupted cell resumes from its last checkpoint (bit-identical by
//! the engine's resume guarantee), and the rest run normally.
//!
//! Cells that exhaust a budget are *degraded* — their partial report
//! covers the completed hours — and cells whose planner or replay fails
//! are *aborted*; neither kills the rest of the study. Every checkpoint
//! is invariant-checked (capacity, double placement, ledger/hour
//! monotonicity) before it is journaled, failing fast at the boundary
//! where state first went bad.
//!
//! Cells are independent, so [`run_study_jobs`] fans them over a pool of
//! worker threads. The journal is a shared append-only log behind a
//! mutex: records from different cells interleave under parallelism, but
//! resume keys every record by its `(data center, planner)` cell, so
//! record *order* never matters for correctness. The final `cells.csv` /
//! `STUDY.md` are merged in grid order (data center major, planner
//! minor), making them byte-identical for any worker count — see
//! docs/PERFORMANCE.md for the determinism argument.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use vmcw_consolidation::planner::PlannerKind;
use vmcw_emulator::checkpoint::{
    decode_cost, decode_fault_config, decode_report, enc_f64, encode_cost, encode_fault_config,
    encode_report, fnv1a, CheckpointError, Toks,
};
use vmcw_emulator::engine::{EmulationReport, Replay};
use vmcw_emulator::faults::FaultConfig;
use vmcw_emulator::report::{cost_summary, CostSummary};
use vmcw_emulator::validate::{check_checkpoint_with, CheckScratch, InvariantViolation};
use vmcw_emulator::ReplayCheckpoint;
use vmcw_trace::datacenters::DataCenterId;

use crate::journal::{write_atomic, Journal, JournalError, TailCorruption};
use crate::render::{fnum, Table};
use crate::study::{Study, StudyConfig};

/// Cooperative cancellation shared between a supervisor and whoever
/// wants to stop it (a signal handler, a test, a deadline).
///
/// Cancellation is *cooperative*: the supervisor polls the token at
/// every hour boundary, checkpoints, and returns an `Interrupted`
/// report — it never loses state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Cancel once this many hours have been stepped (u64::MAX = never);
    /// lets tests kill a study at a *deterministic* point.
    limit_hours: AtomicU64,
    stepped: AtomicU64,
}

impl CancelToken {
    /// A token that never fires until [`cancel`](Self::cancel)ed.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                limit_hours: AtomicU64::new(u64::MAX),
                stepped: AtomicU64::new(0),
            }),
        }
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Arms the token to cancel after `hours` replay hours have been
    /// stepped across the whole study — a deterministic "kill at hour N".
    pub fn cancel_after_hours(&self, hours: u64) {
        self.inner.limit_hours.store(hours, Ordering::SeqCst);
    }

    /// Records one stepped replay hour (called by the supervisor).
    pub fn note_hour(&self) {
        let stepped = self.inner.stepped.fetch_add(1, Ordering::SeqCst) + 1;
        if stepped >= self.inner.limit_hours.load(Ordering::SeqCst) {
            self.cancel();
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-cell execution budgets. A cell that runs over is *degraded* — it
/// finalises a partial report instead of wedging the study.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellBudget {
    /// Maximum wall-clock seconds per cell per session.
    pub max_wall_secs: Option<f64>,
    /// Maximum replay hours per cell (deterministic step budget).
    pub max_hours: Option<usize>,
}

impl CellBudget {
    /// No limits.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }
}

/// How one planner × data-center cell ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// Replayed every evaluation hour.
    Completed,
    /// Stopped at a budget; the cell's report is partial.
    Degraded {
        /// Which budget fired.
        reason: String,
        /// Hours actually replayed.
        hours_done: usize,
    },
    /// Planning or replay failed; the error is recorded, the study went
    /// on.
    Aborted {
        /// The failure.
        error: String,
    },
}

impl CellOutcome {
    /// Short status word for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Completed => "completed",
            CellOutcome::Degraded { .. } => "degraded",
            CellOutcome::Aborted { .. } => "aborted",
        }
    }
}

/// One cell of the study grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The data center.
    pub dc: DataCenterId,
    /// The planner.
    pub kind: PlannerKind,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// The (possibly partial) emulation report; `None` for aborted
    /// cells.
    pub report: Option<EmulationReport>,
    /// Costs of the report under the study's cost model.
    pub cost: Option<CostSummary>,
}

/// What a supervised study should run.
#[derive(Debug, Clone, PartialEq)]
pub struct StudySpec {
    /// Data centers to evaluate.
    pub dcs: Vec<DataCenterId>,
    /// Planners to evaluate per data center.
    pub planners: Vec<PlannerKind>,
    /// Server-count scale (1.0 = Table 2 population).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Planning-history days.
    pub history_days: usize,
    /// Evaluation days.
    pub eval_days: usize,
    /// Fault injection, if any.
    pub faults: Option<FaultConfig>,
    /// Checkpoint cadence in replay hours.
    pub checkpoint_every_hours: usize,
    /// Per-cell budgets.
    pub budget: CellBudget,
}

impl StudySpec {
    /// All four data centers × the three evaluated planners, checkpoint
    /// every 6 replay hours, no budgets, no faults.
    #[must_use]
    pub fn new(scale: f64, seed: u64, history_days: usize, eval_days: usize) -> Self {
        Self {
            dcs: DataCenterId::ALL.to_vec(),
            planners: PlannerKind::EVALUATED.to_vec(),
            scale,
            seed,
            history_days,
            eval_days,
            faults: None,
            checkpoint_every_hours: 6,
            budget: CellBudget::unlimited(),
        }
    }

    /// The per-data-center study configuration the spec induces.
    #[must_use]
    pub fn study_config(&self, dc: DataCenterId) -> StudyConfig {
        StudyConfig {
            scale: self.scale,
            history_days: self.history_days,
            eval_days: self.eval_days,
            ..StudyConfig::paper_baseline(dc, self.seed)
        }
    }

    /// Single-line journal encoding (floats bit-exact).
    #[must_use]
    pub fn encode(&self) -> String {
        let dcs: String = self.dcs.iter().map(|d| d.letter()).collect();
        let planners: Vec<&str> = self.planners.iter().map(|k| k.label()).collect();
        let faults = self
            .faults
            .as_ref()
            .map_or_else(|| "none".to_owned(), encode_fault_config);
        let maxh = self
            .budget
            .max_hours
            .map_or_else(|| "none".to_owned(), |h| h.to_string());
        let maxs = self
            .budget
            .max_wall_secs
            .map_or_else(|| "none".to_owned(), enc_f64);
        format!(
            "spec v1 seed {} scale {} history {} eval {} ckpt {} dcs {} planners {} maxhours {} maxsecs {} faults {}",
            self.seed,
            enc_f64(self.scale),
            self.history_days,
            self.eval_days,
            self.checkpoint_every_hours,
            dcs,
            planners.join(","),
            maxh,
            maxs,
            faults,
        )
    }

    /// Decodes [`encode`](Self::encode) output.
    ///
    /// # Errors
    ///
    /// [`SuperviseError::Spec`] on malformed input.
    pub fn decode(line: &str) -> Result<Self, SuperviseError> {
        let bad = |detail: &str| SuperviseError::Spec {
            detail: detail.to_owned(),
        };
        let mut t = Toks::new(line, 0);
        let take = |t: &mut Toks<'_>, key: &str| -> Result<(), SuperviseError> {
            let k = t.str().map_err(SuperviseError::Checkpoint)?;
            if k == key {
                Ok(())
            } else {
                Err(SuperviseError::Spec {
                    detail: format!("expected `{key}`, found `{k}`"),
                })
            }
        };
        take(&mut t, "spec")?;
        let v = t.str().map_err(SuperviseError::Checkpoint)?;
        if v != "v1" {
            return Err(bad("unsupported spec version"));
        }
        take(&mut t, "seed")?;
        let seed = t.u64().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "scale")?;
        let scale = t.f64().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "history")?;
        let history_days = t.usize().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "eval")?;
        let eval_days = t.usize().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "ckpt")?;
        let checkpoint_every_hours = t.usize().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "dcs")?;
        let dcs_tok = t.str().map_err(SuperviseError::Checkpoint)?;
        let dcs = dcs_tok
            .chars()
            .map(|c| dc_from_letter(c).ok_or_else(|| bad("unknown data-center letter")))
            .collect::<Result<Vec<_>, _>>()?;
        take(&mut t, "planners")?;
        let planners_tok = t.str().map_err(SuperviseError::Checkpoint)?;
        let planners = planners_tok
            .split(',')
            .map(|l| PlannerKind::parse(l).ok_or_else(|| bad("unknown planner label")))
            .collect::<Result<Vec<_>, _>>()?;
        take(&mut t, "maxhours")?;
        let maxh = t.str().map_err(SuperviseError::Checkpoint)?;
        let max_hours = if maxh == "none" {
            None
        } else {
            Some(maxh.parse().map_err(|_| bad("bad maxhours"))?)
        };
        take(&mut t, "maxsecs")?;
        let maxs = t.str().map_err(SuperviseError::Checkpoint)?;
        let max_wall_secs = if maxs == "none" {
            None
        } else {
            Some(f64::from_bits(
                u64::from_str_radix(maxs, 16).map_err(|_| bad("bad maxsecs"))?,
            ))
        };
        take(&mut t, "faults")?;
        // The fault config is the remainder of the line: either the
        // literal `none` or the 13-token fault-config encoding.
        let faults_payload = line
            .split_once(" faults ")
            .map(|(_, f)| f.trim())
            .ok_or_else(|| bad("missing faults field"))?;
        let faults = if faults_payload == "none" {
            None
        } else {
            let mut ft = Toks::new(faults_payload, 0);
            Some(decode_fault_config(&mut ft).map_err(SuperviseError::Checkpoint)?)
        };
        Ok(Self {
            dcs,
            planners,
            scale,
            seed,
            history_days,
            eval_days,
            faults,
            checkpoint_every_hours,
            budget: CellBudget {
                max_wall_secs,
                max_hours,
            },
        })
    }
}

fn dc_from_letter(c: char) -> Option<DataCenterId> {
    DataCenterId::ALL.into_iter().find(|d| d.letter() == c)
}

/// Whether the whole grid ran to the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyStatus {
    /// Every cell reached a terminal outcome; results were written.
    Completed,
    /// Cancelled mid-run; the journal holds a checkpoint to resume from.
    Interrupted,
}

/// The (possibly partial) result of a supervised study.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    /// What was asked for.
    pub spec: StudySpec,
    /// Whether the grid finished.
    pub status: StudyStatus,
    /// Cells in grid order (data center major, planner minor). Under
    /// `Interrupted`, only the cells with a terminal outcome so far.
    pub cells: Vec<CellReport>,
    /// A corrupt/truncated journal tail discarded on open, if any.
    pub tail_dropped: Option<TailCorruption>,
}

/// Errors of the supervisor itself (cell-level failures are recorded as
/// [`CellOutcome::Aborted`] instead).
#[derive(Debug)]
pub enum SuperviseError {
    /// Journal I/O or framing.
    Journal(JournalError),
    /// A checkpoint failed to decode or belongs to a different run.
    Checkpoint(CheckpointError),
    /// A replay invariant was violated at a checkpoint boundary.
    Invariant {
        /// The violation.
        violation: InvariantViolation,
        /// Journal record index at which it was detected.
        record: usize,
    },
    /// The study spec (journal config record or CLI) is malformed.
    Spec {
        /// What was wrong.
        detail: String,
    },
    /// The journal has no config record to resume from.
    MissingConfig {
        /// The journal path.
        path: PathBuf,
    },
}

impl fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperviseError::Journal(e) => e.fmt(f),
            SuperviseError::Checkpoint(e) => e.fmt(f),
            SuperviseError::Invariant { violation, record } => {
                write!(f, "{violation} (journal record {record})")
            }
            SuperviseError::Spec { detail } => write!(f, "invalid study spec: {detail}"),
            SuperviseError::MissingConfig { path } => {
                write!(f, "{} has no study config record", path.display())
            }
        }
    }
}

impl std::error::Error for SuperviseError {}

impl From<JournalError> for SuperviseError {
    fn from(e: JournalError) -> Self {
        SuperviseError::Journal(e)
    }
}

impl From<CheckpointError> for SuperviseError {
    fn from(e: CheckpointError) -> Self {
        SuperviseError::Checkpoint(e)
    }
}

/// Journal file name inside a study directory.
pub const JOURNAL_FILE: &str = "journal.vmcwj";

/// Starts a fresh supervised study in `dir`, journaling to
/// `dir/journal.vmcwj`.
///
/// # Errors
///
/// [`JournalError::AlreadyExists`] if the directory already holds a
/// journal (resume it instead), plus journal/checkpoint errors.
pub fn run_study(
    spec: &StudySpec,
    dir: &Path,
    token: &CancelToken,
) -> Result<StudyReport, SuperviseError> {
    run_study_jobs(spec, dir, token, 1)
}

/// [`run_study`] with an explicit worker count.
///
/// `jobs` worker threads execute independent cells concurrently;
/// `jobs <= 1` is exactly the serial supervisor (identical journal
/// record sequence). Any worker count yields byte-identical `cells.csv`,
/// `STUDY.md` and cell reports; only journal record interleaving and
/// wall-clock time differ.
///
/// # Errors
///
/// As [`run_study`].
pub fn run_study_jobs(
    spec: &StudySpec,
    dir: &Path,
    token: &CancelToken,
    jobs: usize,
) -> Result<StudyReport, SuperviseError> {
    std::fs::create_dir_all(dir).map_err(|source| {
        SuperviseError::Journal(JournalError::Io {
            path: dir.to_path_buf(),
            source,
        })
    })?;
    let mut journal = Journal::create(&dir.join(JOURNAL_FILE))?;
    journal.append(format!("config {}", spec.encode()).as_bytes())?;
    drive(
        spec.clone(),
        journal,
        BTreeMap::new(),
        BTreeMap::new(),
        false,
        None,
        dir,
        token,
        jobs,
    )
}

/// Resumes (or idempotently re-finalises) the study journaled in `dir`.
///
/// Completed cells are restored from their journaled reports, the
/// interrupted cell from its last checkpoint; the final report is
/// byte-identical to an uninterrupted run. `budget` overrides the
/// journaled per-cell budgets for this session when given.
///
/// # Errors
///
/// Journal/spec/checkpoint errors; a checkpoint that fails its
/// invariants or fingerprint aborts the resume rather than silently
/// recomputing.
pub fn resume_study(
    dir: &Path,
    budget: Option<CellBudget>,
    token: &CancelToken,
) -> Result<StudyReport, SuperviseError> {
    resume_study_jobs(dir, budget, token, 1)
}

/// [`resume_study`] with an explicit worker count (see
/// [`run_study_jobs`]). A journal written under any worker count resumes
/// under any other: records are keyed by cell, not by position.
///
/// # Errors
///
/// As [`resume_study`].
pub fn resume_study_jobs(
    dir: &Path,
    budget: Option<CellBudget>,
    token: &CancelToken,
    jobs: usize,
) -> Result<StudyReport, SuperviseError> {
    let path = dir.join(JOURNAL_FILE);
    let (journal, tail) = Journal::open(&path)?;
    let records = journal.records();
    let first = records.first().ok_or_else(|| SuperviseError::MissingConfig {
        path: path.clone(),
    })?;
    let config_line = std::str::from_utf8(first)
        .ok()
        .and_then(|s| s.strip_prefix("config "))
        .ok_or_else(|| SuperviseError::MissingConfig { path: path.clone() })?;
    let mut spec = StudySpec::decode(config_line.trim_end())?;
    if let Some(b) = budget {
        spec.budget = b;
    }

    let mut done: BTreeMap<(char, &'static str), CellReport> = BTreeMap::new();
    let mut ckpts: BTreeMap<(char, &'static str), ReplayCheckpoint> = BTreeMap::new();
    let mut run_done = false;
    for (i, rec) in records.iter().enumerate().skip(1) {
        let text = std::str::from_utf8(rec).map_err(|_| SuperviseError::Spec {
            detail: format!("journal record {i} is not UTF-8"),
        })?;
        let (head, body) = text.split_once('\n').unwrap_or((text, ""));
        let mut toks = head.split_whitespace();
        match toks.next() {
            Some("cell-start") => {}
            Some("run-done") => run_done = true,
            Some("checkpoint") => {
                let (dc, kind) = cell_key(&mut toks, i)?;
                let ckpt = ReplayCheckpoint::decode(body)?;
                ckpts.insert((dc.letter(), kind.label()), ckpt);
            }
            Some("cell-done") => {
                let (dc, kind) = cell_key(&mut toks, i)?;
                let outcome_word = toks.next().ok_or_else(|| SuperviseError::Spec {
                    detail: format!("journal record {i}: missing cell outcome"),
                })?;
                let cell = match outcome_word {
                    "aborted" => CellReport {
                        dc,
                        kind,
                        outcome: CellOutcome::Aborted {
                            error: toks.collect::<Vec<_>>().join(" "),
                        },
                        report: None,
                        cost: None,
                    },
                    word @ ("completed" | "degraded") => {
                        let outcome = if word == "completed" {
                            CellOutcome::Completed
                        } else {
                            let hours_done = toks
                                .next()
                                .and_then(|h| h.parse().ok())
                                .ok_or_else(|| SuperviseError::Spec {
                                    detail: format!("journal record {i}: bad degraded hours"),
                                })?;
                            CellOutcome::Degraded {
                                reason: toks.collect::<Vec<_>>().join(" "),
                                hours_done,
                            }
                        };
                        let (cost_line, report_wire) =
                            body.split_once('\n').ok_or_else(|| SuperviseError::Spec {
                                detail: format!("journal record {i}: missing cell body"),
                            })?;
                        CellReport {
                            dc,
                            kind,
                            outcome,
                            report: Some(decode_report(report_wire)?),
                            cost: Some(decode_cost(cost_line)?),
                        }
                    }
                    other => {
                        return Err(SuperviseError::Spec {
                            detail: format!("journal record {i}: unknown outcome `{other}`"),
                        })
                    }
                };
                ckpts.remove(&(dc.letter(), kind.label()));
                done.insert((dc.letter(), kind.label()), cell);
            }
            other => {
                return Err(SuperviseError::Spec {
                    detail: format!("journal record {i}: unknown record `{other:?}`"),
                })
            }
        }
    }

    drive(spec, journal, done, ckpts, run_done, tail, dir, token, jobs)
}

fn cell_key<'a>(
    toks: &mut impl Iterator<Item = &'a str>,
    record: usize,
) -> Result<(DataCenterId, PlannerKind), SuperviseError> {
    let bad = |detail: String| SuperviseError::Spec { detail };
    let letter = toks
        .next()
        .and_then(|s| (s.len() == 1).then(|| s.chars().next().unwrap()))
        .ok_or_else(|| bad(format!("journal record {record}: missing data-center letter")))?;
    let dc = dc_from_letter(letter)
        .ok_or_else(|| bad(format!("journal record {record}: unknown data center `{letter}`")))?;
    let kind = toks
        .next()
        .and_then(PlannerKind::parse)
        .ok_or_else(|| bad(format!("journal record {record}: unknown planner")))?;
    Ok((dc, kind))
}

/// Shared per-run executor state, borrowed by every worker thread.
struct Executor<'a> {
    spec: &'a StudySpec,
    journal: Mutex<Journal>,
    ckpts: &'a BTreeMap<(char, &'static str), ReplayCheckpoint>,
    token: &'a CancelToken,
    /// Lazily prepared per-data-center studies, indexed as `spec.dcs`.
    /// `OnceLock` blocks racing workers until the first finishes the
    /// (expensive) trace generation, so each DC is prepared exactly once.
    studies: Vec<OnceLock<Study>>,
    /// Next position in the pending list to claim.
    next: AtomicUsize,
    /// Set when any worker hits a supervisor-fatal error; others stop at
    /// the next hour boundary (checkpointing first, so no work is lost).
    abort: AtomicBool,
    /// Set when the cancel token stopped a worker mid-grid.
    interrupted: AtomicBool,
    fatal: Mutex<Option<SuperviseError>>,
    finished: Mutex<Vec<(usize, CellReport)>>,
}

impl Executor<'_> {
    fn journal(&self) -> std::sync::MutexGuard<'_, Journal> {
        self.journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Claims and runs pending cells until the grid is drained, the
    /// token fires, or a fatal error (here or in a sibling) stops the
    /// run.
    fn work(&self, grid: &[(DataCenterId, PlannerKind)], pending: &[usize]) {
        loop {
            if self.abort.load(Ordering::SeqCst) {
                return;
            }
            let slot = self.next.fetch_add(1, Ordering::SeqCst);
            let Some(&idx) = pending.get(slot) else {
                return;
            };
            let (dc, kind) = grid[idx];
            if self.token.is_cancelled() {
                self.interrupted.store(true, Ordering::SeqCst);
                return;
            }
            let di = self
                .spec
                .dcs
                .iter()
                .position(|d| *d == dc)
                .expect("grid cell's DC is in the spec");
            let study =
                self.studies[di].get_or_init(|| Study::prepare(&self.spec.study_config(dc)));
            match self.run_cell(dc, kind, study) {
                Ok(Some(cell)) => self
                    .finished
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((idx, cell)),
                Ok(None) => return,
                Err(e) => {
                    let mut fatal = self
                        .fatal
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    fatal.get_or_insert(e);
                    self.abort.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
    }

    /// Runs one cell to a terminal outcome (`Some`) or checkpoints and
    /// yields (`None`) on cancellation / sibling abort. Journal appends
    /// take the lock per record and never hold it across replay work.
    fn run_cell(
        &self,
        dc: DataCenterId,
        kind: PlannerKind,
        study: &Study,
    ) -> Result<Option<CellReport>, SuperviseError> {
        let spec = self.spec;
        let abort_cell = |error: String| CellReport {
            dc,
            kind,
            outcome: CellOutcome::Aborted { error },
            report: None,
            cost: None,
        };
        let config = *study.config();
        let plan = match study.plan(kind) {
            Ok(p) => p,
            Err(e) => {
                let cell = abort_cell(e.to_string());
                append_cell_done(&mut self.journal(), &cell)?;
                return Ok(Some(cell));
            }
        };
        let n_hosts = plan.dc.len();
        let mut scratch = CheckScratch::default();
        let mut prev_ckpt = self.ckpts.get(&(dc.letter(), kind.label())).cloned();
        let mut replay = match prev_ckpt.as_ref() {
            Some(ck) => Replay::resume(
                study.input(),
                &plan,
                &config.emulator,
                spec.faults.as_ref(),
                ck,
            )?,
            None => {
                self.journal()
                    .append(format!("cell-start {} {}", dc.letter(), kind.label()).as_bytes())?;
                match Replay::new(
                    study.input(),
                    &plan,
                    &config.emulator,
                    spec.faults.as_ref(),
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        let cell = abort_cell(e.to_string());
                        append_cell_done(&mut self.journal(), &cell)?;
                        return Ok(Some(cell));
                    }
                }
            }
        };

        let cell_started = Instant::now();
        let outcome = loop {
            if self.token.is_cancelled() || self.abort.load(Ordering::SeqCst) {
                let ck = replay.checkpoint();
                append_checkpoint(&mut self.journal(), dc, kind, &ck)?;
                if self.token.is_cancelled() {
                    self.interrupted.store(true, Ordering::SeqCst);
                }
                return Ok(None);
            }
            if replay.is_done() {
                break CellOutcome::Completed;
            }
            if let Some(max_hours) = spec.budget.max_hours {
                if replay.hour() >= max_hours {
                    break CellOutcome::Degraded {
                        reason: format!("step budget of {max_hours} hours exhausted"),
                        hours_done: replay.hour(),
                    };
                }
            }
            if let Some(max_secs) = spec.budget.max_wall_secs {
                let elapsed = cell_started.elapsed().as_secs_f64();
                if elapsed > max_secs {
                    break CellOutcome::Degraded {
                        reason: format!("wall-clock budget of {max_secs}s exhausted"),
                        hours_done: replay.hour(),
                    };
                }
            }
            if let Err(e) = replay.step() {
                break CellOutcome::Aborted {
                    error: e.to_string(),
                };
            }
            self.token.note_hour();
            if replay.hour() % spec.checkpoint_every_hours == 0 || replay.is_done() {
                let ck = replay.checkpoint();
                if let Err(violation) =
                    check_checkpoint_with(&mut scratch, &ck, n_hosts, prev_ckpt.as_ref())
                {
                    let record = self.journal().records().len();
                    return Err(SuperviseError::Invariant { violation, record });
                }
                append_checkpoint(&mut self.journal(), dc, kind, &ck)?;
                prev_ckpt = Some(ck);
            }
        };

        let cell = match outcome {
            CellOutcome::Aborted { error } => abort_cell(error),
            outcome => {
                let report = replay.into_report();
                let cost = cost_summary(&report, &config.cost_model);
                CellReport {
                    dc,
                    kind,
                    outcome,
                    report: Some(report),
                    cost: Some(cost),
                }
            }
        };
        append_cell_done(&mut self.journal(), &cell)?;
        Ok(Some(cell))
    }
}

#[allow(clippy::too_many_arguments)]
fn drive(
    spec: StudySpec,
    journal: Journal,
    done: BTreeMap<(char, &'static str), CellReport>,
    ckpts: BTreeMap<(char, &'static str), ReplayCheckpoint>,
    run_done: bool,
    tail_dropped: Option<TailCorruption>,
    dir: &Path,
    token: &CancelToken,
    jobs: usize,
) -> Result<StudyReport, SuperviseError> {
    // The grid in output order (data center major, planner minor); done
    // cells slot straight in, the rest are claimed by workers.
    let grid: Vec<(DataCenterId, PlannerKind)> = spec
        .dcs
        .iter()
        .flat_map(|&dc| spec.planners.iter().map(move |&kind| (dc, kind)))
        .collect();
    let mut slots: Vec<Option<CellReport>> = grid
        .iter()
        .map(|&(dc, kind)| done.get(&(dc.letter(), kind.label())).cloned())
        .collect();
    let mut pending: Vec<usize> = (0..grid.len()).filter(|&i| slots[i].is_none()).collect();

    let workers = jobs.max(1).min(pending.len().max(1));
    if workers > 1 {
        // Claim planner-major so concurrent workers start on *different*
        // data centers and their `Study::prepare` calls overlap instead
        // of serialising on one `OnceLock`. Output order is unaffected:
        // finished cells are merged back by grid index.
        let planners = spec.planners.len().max(1);
        pending.sort_by_key(|&idx| (idx % planners, idx / planners));
    }

    let exec = Executor {
        spec: &spec,
        journal: Mutex::new(journal),
        ckpts: &ckpts,
        token,
        studies: spec.dcs.iter().map(|_| OnceLock::new()).collect(),
        next: AtomicUsize::new(0),
        abort: AtomicBool::new(false),
        interrupted: AtomicBool::new(false),
        fatal: Mutex::new(None),
        finished: Mutex::new(Vec::new()),
    };

    if !pending.is_empty() {
        if token.is_cancelled() {
            exec.interrupted.store(true, Ordering::SeqCst);
        } else {
            std::thread::scope(|s| {
                for _ in 0..workers {
                    s.spawn(|| exec.work(&grid, &pending));
                }
            });
        }
    }

    if let Some(e) = exec
        .fatal
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
    {
        return Err(e);
    }
    for (idx, cell) in exec
        .finished
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .drain(..)
    {
        slots[idx] = Some(cell);
    }
    let cells: Vec<CellReport> = slots.into_iter().flatten().collect();

    let status = if exec.interrupted.load(Ordering::SeqCst) {
        StudyStatus::Interrupted
    } else {
        StudyStatus::Completed
    };
    if status == StudyStatus::Completed {
        if !run_done {
            exec.journal().append(b"run-done")?;
        }
        let report = StudyReport {
            spec,
            status,
            cells,
            tail_dropped,
        };
        write_outputs(dir, &report)?;
        return Ok(report);
    }
    Ok(StudyReport {
        spec,
        status,
        cells,
        tail_dropped,
    })
}

fn append_checkpoint(
    journal: &mut Journal,
    dc: DataCenterId,
    kind: PlannerKind,
    ck: &ReplayCheckpoint,
) -> Result<(), SuperviseError> {
    let payload = format!(
        "checkpoint {} {}\n{}",
        dc.letter(),
        kind.label(),
        ck.encode()
    );
    journal.append(payload.as_bytes())?;
    Ok(())
}

fn append_cell_done(journal: &mut Journal, cell: &CellReport) -> Result<(), SuperviseError> {
    let head = match &cell.outcome {
        CellOutcome::Completed => {
            format!("cell-done {} {} completed", cell.dc.letter(), cell.kind.label())
        }
        CellOutcome::Degraded { reason, hours_done } => format!(
            "cell-done {} {} degraded {hours_done} {reason}",
            cell.dc.letter(),
            cell.kind.label()
        ),
        CellOutcome::Aborted { error } => format!(
            "cell-done {} {} aborted {error}",
            cell.dc.letter(),
            cell.kind.label()
        ),
    };
    let payload = match (&cell.cost, &cell.report) {
        (Some(cost), Some(report)) => {
            format!("{head}\n{}\n{}", encode_cost(cost), encode_report(report))
        }
        _ => head,
    };
    journal.append(payload.as_bytes())?;
    Ok(())
}

/// Renders the per-cell results table (`cells.csv`). Deterministic: no
/// timestamps or timings, and the digest column is the FNV-1a of the
/// cell report's canonical encoding, so two bit-identical runs produce
/// byte-identical CSVs.
#[must_use]
pub fn cells_table(report: &StudyReport) -> Table {
    let mut t = Table::new(
        "cells",
        &[
            "dc",
            "planner",
            "outcome",
            "hours",
            "hosts",
            "energy_kwh",
            "migrations",
            "crashes",
            "evacuations",
            "downtime_vm_hours",
            "stale_sample_hours",
            "space_cost",
            "power_cost",
            "digest",
        ],
    );
    for cell in &report.cells {
        let (hours, hosts, energy, migrations, crashes, evac, down, stale, digest) =
            match &cell.report {
                Some(r) => (
                    r.hours.to_string(),
                    r.provisioned_hosts.to_string(),
                    fnum(r.energy_kwh, 3),
                    r.migrations.to_string(),
                    r.faults.host_crashes.to_string(),
                    r.faults.evacuations.to_string(),
                    r.faults.downtime_vm_hours.to_string(),
                    r.faults.stale_sample_hours.to_string(),
                    format!("{:016x}", fnv1a(encode_report(r).as_bytes())),
                ),
                None => (
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ),
            };
        let (space, power) = match &cell.cost {
            Some(c) => (fnum(c.space_cost, 2), fnum(c.power_cost, 2)),
            None => ("-".into(), "-".into()),
        };
        t.push_row([
            cell.dc.letter().to_string(),
            cell.kind.label().to_owned(),
            cell.outcome.label().to_owned(),
            hours,
            hosts,
            energy,
            migrations,
            crashes,
            evac,
            down,
            stale,
            space,
            power,
            digest,
        ]);
    }
    t
}

fn write_outputs(dir: &Path, report: &StudyReport) -> Result<(), SuperviseError> {
    let io_err = |path: &Path| {
        let path = path.to_path_buf();
        move |source| {
            SuperviseError::Journal(JournalError::Io {
                path: path.clone(),
                source,
            })
        }
    };
    let csv_path = dir.join("cells.csv");
    write_atomic(&csv_path, cells_table(report).to_csv().as_bytes())
        .map_err(io_err(&csv_path))?;
    let md_path = dir.join("STUDY.md");
    let md = crate::experiments::study_markdown(report);
    write_atomic(&md_path, md.as_bytes()).map_err(io_err(&md_path))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vmcw-supervise-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> StudySpec {
        StudySpec {
            dcs: vec![DataCenterId::Airlines],
            planners: vec![PlannerKind::SemiStatic, PlannerKind::Dynamic],
            ..StudySpec::new(0.02, 5, 5, 1)
        }
    }

    #[test]
    fn spec_round_trips_through_its_encoding() {
        let mut spec = StudySpec::new(0.05, 42, 7, 5);
        spec.faults = Some(FaultConfig::baseline(31));
        spec.budget = CellBudget {
            max_wall_secs: Some(12.5),
            max_hours: Some(48),
        };
        let decoded = StudySpec::decode(&spec.encode()).unwrap();
        assert_eq!(spec, decoded);
        // And the none-variants too.
        let plain = StudySpec::new(1.0, 0, 30, 14);
        assert_eq!(plain, StudySpec::decode(&plain.encode()).unwrap());
    }

    #[test]
    fn fresh_study_completes_and_writes_outputs() {
        let dir = tmp_dir("fresh");
        let report = run_study(&tiny_spec(), &dir, &CancelToken::new()).unwrap();
        assert_eq!(report.status, StudyStatus::Completed);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.outcome, CellOutcome::Completed);
            assert_eq!(cell.report.as_ref().unwrap().hours, 24);
        }
        assert!(dir.join("cells.csv").exists());
        assert!(dir.join("STUDY.md").exists());
        // Starting over in the same directory is refused.
        let err = run_study(&tiny_spec(), &dir, &CancelToken::new()).unwrap_err();
        assert!(matches!(
            err,
            SuperviseError::Journal(JournalError::AlreadyExists { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn over_budget_cells_degrade_instead_of_killing_the_study() {
        let dir = tmp_dir("degraded");
        let mut spec = tiny_spec();
        spec.budget.max_hours = Some(10);
        let report = run_study(&spec, &dir, &CancelToken::new()).unwrap();
        assert_eq!(report.status, StudyStatus::Completed);
        for cell in &report.cells {
            match &cell.outcome {
                CellOutcome::Degraded { hours_done, .. } => assert_eq!(*hours_done, 10),
                other => panic!("expected degraded, got {other:?}"),
            }
            let r = cell.report.as_ref().unwrap();
            assert_eq!(r.hours, 10, "partial report covers completed hours");
            assert!(cell.cost.is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_study_resumes_to_identical_reports() {
        let clean_dir = tmp_dir("clean");
        let spec = tiny_spec();
        let clean = run_study(&spec, &clean_dir, &CancelToken::new()).unwrap();

        let killed_dir = tmp_dir("killed");
        let token = CancelToken::new();
        token.cancel_after_hours(30); // mid second cell
        let partial = run_study(&spec, &killed_dir, &token).unwrap();
        assert_eq!(partial.status, StudyStatus::Interrupted);
        assert!(partial.cells.len() < clean.cells.len() || partial.cells.is_empty());

        let resumed = resume_study(&killed_dir, None, &CancelToken::new()).unwrap();
        assert_eq!(resumed.status, StudyStatus::Completed);
        assert_eq!(resumed.cells.len(), clean.cells.len());
        for (a, b) in clean.cells.iter().zip(&resumed.cells) {
            assert_eq!(
                encode_report(a.report.as_ref().unwrap()),
                encode_report(b.report.as_ref().unwrap()),
                "cell {}/{} diverged",
                a.dc.letter(),
                a.kind.label()
            );
        }
        // cells.csv must be byte-identical too.
        assert_eq!(
            std::fs::read(clean_dir.join("cells.csv")).unwrap(),
            std::fs::read(killed_dir.join("cells.csv")).unwrap()
        );
        // Resuming a completed journal is idempotent.
        let again = resume_study(&killed_dir, None, &CancelToken::new()).unwrap();
        assert_eq!(again.cells.len(), clean.cells.len());
        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&killed_dir);
    }

    #[test]
    fn worker_count_does_not_change_outputs() {
        let spec = StudySpec {
            dcs: vec![DataCenterId::Airlines, DataCenterId::Banking],
            planners: vec![PlannerKind::SemiStatic, PlannerKind::Dynamic],
            ..StudySpec::new(0.02, 5, 5, 1)
        };
        let serial_dir = tmp_dir("jobs-serial");
        let serial = run_study_jobs(&spec, &serial_dir, &CancelToken::new(), 1).unwrap();
        let parallel_dir = tmp_dir("jobs-parallel");
        let parallel = run_study_jobs(&spec, &parallel_dir, &CancelToken::new(), 4).unwrap();
        assert_eq!(serial.status, StudyStatus::Completed);
        assert_eq!(parallel.status, StudyStatus::Completed);
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!((a.dc, a.kind), (b.dc, b.kind), "grid order must match");
            assert_eq!(
                encode_report(a.report.as_ref().unwrap()),
                encode_report(b.report.as_ref().unwrap()),
                "cell {}/{} diverged across worker counts",
                a.dc.letter(),
                a.kind.label()
            );
        }
        for file in ["cells.csv", "STUDY.md"] {
            assert_eq!(
                std::fs::read(serial_dir.join(file)).unwrap(),
                std::fs::read(parallel_dir.join(file)).unwrap(),
                "{file} differs between --jobs 1 and --jobs 4"
            );
        }
        let _ = std::fs::remove_dir_all(&serial_dir);
        let _ = std::fs::remove_dir_all(&parallel_dir);
    }

    #[test]
    fn parallel_study_killed_and_resumed_matches_serial() {
        let spec = StudySpec {
            dcs: vec![DataCenterId::Airlines, DataCenterId::Banking],
            planners: vec![PlannerKind::SemiStatic, PlannerKind::Dynamic],
            ..StudySpec::new(0.02, 5, 5, 1)
        };
        let clean_dir = tmp_dir("par-clean");
        let clean = run_study_jobs(&spec, &clean_dir, &CancelToken::new(), 1).unwrap();

        let killed_dir = tmp_dir("par-killed");
        let token = CancelToken::new();
        token.cancel_after_hours(30); // fires with several cells in flight
        let partial = run_study_jobs(&spec, &killed_dir, &token, 4).unwrap();
        assert_eq!(partial.status, StudyStatus::Interrupted);

        // Resume under a different worker count than the original run.
        let resumed = resume_study_jobs(&killed_dir, None, &CancelToken::new(), 2).unwrap();
        assert_eq!(resumed.status, StudyStatus::Completed);
        assert_eq!(resumed.cells.len(), clean.cells.len());
        for (a, b) in clean.cells.iter().zip(&resumed.cells) {
            assert_eq!(
                encode_report(a.report.as_ref().unwrap()),
                encode_report(b.report.as_ref().unwrap()),
                "cell {}/{} diverged after parallel kill+resume",
                a.dc.letter(),
                a.kind.label()
            );
        }
        assert_eq!(
            std::fs::read(clean_dir.join("cells.csv")).unwrap(),
            std::fs::read(killed_dir.join("cells.csv")).unwrap()
        );
        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&killed_dir);
    }

    #[test]
    fn resume_without_journal_fails_cleanly() {
        let dir = tmp_dir("nojournal");
        std::fs::create_dir_all(&dir).unwrap();
        let err = resume_study(&dir, None, &CancelToken::new()).unwrap_err();
        assert!(matches!(err, SuperviseError::Journal(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_token_fires_after_armed_hours() {
        let t = CancelToken::new();
        t.cancel_after_hours(3);
        assert!(!t.is_cancelled());
        t.note_hour();
        t.note_hour();
        assert!(!t.is_cancelled());
        t.note_hour();
        assert!(t.is_cancelled());
    }
}
