//! Crash-safe, budgeted execution of multi-cell studies.
//!
//! A *study* here is the planner × data-center grid of the paper's
//! evaluation. [`run_study`] drives every cell through the stepwise
//! [`Replay`] engine under a cooperative [`CancelToken`] and per-cell
//! [`CellBudget`]s, journaling a [`ReplayCheckpoint`] at a fixed cadence
//! and each finished cell's full report. [`resume_study`] rebuilds from
//! the journal after a crash or SIGKILL: completed cells are replayed
//! from their journaled reports (byte-identical by construction), the
//! interrupted cell resumes from its last checkpoint (bit-identical by
//! the engine's resume guarantee), and the rest run normally.
//!
//! Cells that exhaust a budget are *degraded* — their partial report
//! covers the completed hours — and cells whose planner or replay fails
//! are *aborted*; neither kills the rest of the study. Every checkpoint
//! is invariant-checked (capacity, double placement, ledger/hour
//! monotonicity) before it is journaled, failing fast at the boundary
//! where state first went bad.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use vmcw_consolidation::planner::PlannerKind;
use vmcw_emulator::checkpoint::{
    decode_cost, decode_fault_config, decode_report, enc_f64, encode_cost, encode_fault_config,
    encode_report, fnv1a, CheckpointError, Toks,
};
use vmcw_emulator::engine::{EmulationReport, Replay};
use vmcw_emulator::faults::FaultConfig;
use vmcw_emulator::report::{cost_summary, CostSummary};
use vmcw_emulator::validate::{check_checkpoint, InvariantViolation};
use vmcw_emulator::ReplayCheckpoint;
use vmcw_trace::datacenters::DataCenterId;

use crate::journal::{write_atomic, Journal, JournalError, TailCorruption};
use crate::render::{fnum, Table};
use crate::study::{Study, StudyConfig};

/// Cooperative cancellation shared between a supervisor and whoever
/// wants to stop it (a signal handler, a test, a deadline).
///
/// Cancellation is *cooperative*: the supervisor polls the token at
/// every hour boundary, checkpoints, and returns an `Interrupted`
/// report — it never loses state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Cancel once this many hours have been stepped (u64::MAX = never);
    /// lets tests kill a study at a *deterministic* point.
    limit_hours: AtomicU64,
    stepped: AtomicU64,
}

impl CancelToken {
    /// A token that never fires until [`cancel`](Self::cancel)ed.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                limit_hours: AtomicU64::new(u64::MAX),
                stepped: AtomicU64::new(0),
            }),
        }
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Whether cancellation was requested.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.inner.cancelled.load(Ordering::SeqCst)
    }

    /// Arms the token to cancel after `hours` replay hours have been
    /// stepped across the whole study — a deterministic "kill at hour N".
    pub fn cancel_after_hours(&self, hours: u64) {
        self.inner.limit_hours.store(hours, Ordering::SeqCst);
    }

    /// Records one stepped replay hour (called by the supervisor).
    pub fn note_hour(&self) {
        let stepped = self.inner.stepped.fetch_add(1, Ordering::SeqCst) + 1;
        if stepped >= self.inner.limit_hours.load(Ordering::SeqCst) {
            self.cancel();
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-cell execution budgets. A cell that runs over is *degraded* — it
/// finalises a partial report instead of wedging the study.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellBudget {
    /// Maximum wall-clock seconds per cell per session.
    pub max_wall_secs: Option<f64>,
    /// Maximum replay hours per cell (deterministic step budget).
    pub max_hours: Option<usize>,
}

impl CellBudget {
    /// No limits.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }
}

/// How one planner × data-center cell ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// Replayed every evaluation hour.
    Completed,
    /// Stopped at a budget; the cell's report is partial.
    Degraded {
        /// Which budget fired.
        reason: String,
        /// Hours actually replayed.
        hours_done: usize,
    },
    /// Planning or replay failed; the error is recorded, the study went
    /// on.
    Aborted {
        /// The failure.
        error: String,
    },
}

impl CellOutcome {
    /// Short status word for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Completed => "completed",
            CellOutcome::Degraded { .. } => "degraded",
            CellOutcome::Aborted { .. } => "aborted",
        }
    }
}

/// One cell of the study grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The data center.
    pub dc: DataCenterId,
    /// The planner.
    pub kind: PlannerKind,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// The (possibly partial) emulation report; `None` for aborted
    /// cells.
    pub report: Option<EmulationReport>,
    /// Costs of the report under the study's cost model.
    pub cost: Option<CostSummary>,
}

/// What a supervised study should run.
#[derive(Debug, Clone, PartialEq)]
pub struct StudySpec {
    /// Data centers to evaluate.
    pub dcs: Vec<DataCenterId>,
    /// Planners to evaluate per data center.
    pub planners: Vec<PlannerKind>,
    /// Server-count scale (1.0 = Table 2 population).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Planning-history days.
    pub history_days: usize,
    /// Evaluation days.
    pub eval_days: usize,
    /// Fault injection, if any.
    pub faults: Option<FaultConfig>,
    /// Checkpoint cadence in replay hours.
    pub checkpoint_every_hours: usize,
    /// Per-cell budgets.
    pub budget: CellBudget,
}

impl StudySpec {
    /// All four data centers × the three evaluated planners, checkpoint
    /// every 6 replay hours, no budgets, no faults.
    #[must_use]
    pub fn new(scale: f64, seed: u64, history_days: usize, eval_days: usize) -> Self {
        Self {
            dcs: DataCenterId::ALL.to_vec(),
            planners: PlannerKind::EVALUATED.to_vec(),
            scale,
            seed,
            history_days,
            eval_days,
            faults: None,
            checkpoint_every_hours: 6,
            budget: CellBudget::unlimited(),
        }
    }

    /// The per-data-center study configuration the spec induces.
    #[must_use]
    pub fn study_config(&self, dc: DataCenterId) -> StudyConfig {
        StudyConfig {
            scale: self.scale,
            history_days: self.history_days,
            eval_days: self.eval_days,
            ..StudyConfig::paper_baseline(dc, self.seed)
        }
    }

    /// Single-line journal encoding (floats bit-exact).
    #[must_use]
    pub fn encode(&self) -> String {
        let dcs: String = self.dcs.iter().map(|d| d.letter()).collect();
        let planners: Vec<&str> = self.planners.iter().map(|k| k.label()).collect();
        let faults = self
            .faults
            .as_ref()
            .map_or_else(|| "none".to_owned(), encode_fault_config);
        let maxh = self
            .budget
            .max_hours
            .map_or_else(|| "none".to_owned(), |h| h.to_string());
        let maxs = self
            .budget
            .max_wall_secs
            .map_or_else(|| "none".to_owned(), enc_f64);
        format!(
            "spec v1 seed {} scale {} history {} eval {} ckpt {} dcs {} planners {} maxhours {} maxsecs {} faults {}",
            self.seed,
            enc_f64(self.scale),
            self.history_days,
            self.eval_days,
            self.checkpoint_every_hours,
            dcs,
            planners.join(","),
            maxh,
            maxs,
            faults,
        )
    }

    /// Decodes [`encode`](Self::encode) output.
    ///
    /// # Errors
    ///
    /// [`SuperviseError::Spec`] on malformed input.
    pub fn decode(line: &str) -> Result<Self, SuperviseError> {
        let bad = |detail: &str| SuperviseError::Spec {
            detail: detail.to_owned(),
        };
        let mut t = Toks::new(line, 0);
        let take = |t: &mut Toks<'_>, key: &str| -> Result<(), SuperviseError> {
            let k = t.str().map_err(SuperviseError::Checkpoint)?;
            if k == key {
                Ok(())
            } else {
                Err(SuperviseError::Spec {
                    detail: format!("expected `{key}`, found `{k}`"),
                })
            }
        };
        take(&mut t, "spec")?;
        let v = t.str().map_err(SuperviseError::Checkpoint)?;
        if v != "v1" {
            return Err(bad("unsupported spec version"));
        }
        take(&mut t, "seed")?;
        let seed = t.u64().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "scale")?;
        let scale = t.f64().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "history")?;
        let history_days = t.usize().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "eval")?;
        let eval_days = t.usize().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "ckpt")?;
        let checkpoint_every_hours = t.usize().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "dcs")?;
        let dcs_tok = t.str().map_err(SuperviseError::Checkpoint)?;
        let dcs = dcs_tok
            .chars()
            .map(|c| dc_from_letter(c).ok_or_else(|| bad("unknown data-center letter")))
            .collect::<Result<Vec<_>, _>>()?;
        take(&mut t, "planners")?;
        let planners_tok = t.str().map_err(SuperviseError::Checkpoint)?;
        let planners = planners_tok
            .split(',')
            .map(|l| PlannerKind::parse(l).ok_or_else(|| bad("unknown planner label")))
            .collect::<Result<Vec<_>, _>>()?;
        take(&mut t, "maxhours")?;
        let maxh = t.str().map_err(SuperviseError::Checkpoint)?;
        let max_hours = if maxh == "none" {
            None
        } else {
            Some(maxh.parse().map_err(|_| bad("bad maxhours"))?)
        };
        take(&mut t, "maxsecs")?;
        let maxs = t.str().map_err(SuperviseError::Checkpoint)?;
        let max_wall_secs = if maxs == "none" {
            None
        } else {
            Some(f64::from_bits(
                u64::from_str_radix(maxs, 16).map_err(|_| bad("bad maxsecs"))?,
            ))
        };
        take(&mut t, "faults")?;
        // The fault config is the remainder of the line: either the
        // literal `none` or the 13-token fault-config encoding.
        let faults_payload = line
            .split_once(" faults ")
            .map(|(_, f)| f.trim())
            .ok_or_else(|| bad("missing faults field"))?;
        let faults = if faults_payload == "none" {
            None
        } else {
            let mut ft = Toks::new(faults_payload, 0);
            Some(decode_fault_config(&mut ft).map_err(SuperviseError::Checkpoint)?)
        };
        Ok(Self {
            dcs,
            planners,
            scale,
            seed,
            history_days,
            eval_days,
            faults,
            checkpoint_every_hours,
            budget: CellBudget {
                max_wall_secs,
                max_hours,
            },
        })
    }
}

fn dc_from_letter(c: char) -> Option<DataCenterId> {
    DataCenterId::ALL.into_iter().find(|d| d.letter() == c)
}

/// Whether the whole grid ran to the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyStatus {
    /// Every cell reached a terminal outcome; results were written.
    Completed,
    /// Cancelled mid-run; the journal holds a checkpoint to resume from.
    Interrupted,
}

/// The (possibly partial) result of a supervised study.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    /// What was asked for.
    pub spec: StudySpec,
    /// Whether the grid finished.
    pub status: StudyStatus,
    /// Cells in grid order (data center major, planner minor). Under
    /// `Interrupted`, only the cells with a terminal outcome so far.
    pub cells: Vec<CellReport>,
    /// A corrupt/truncated journal tail discarded on open, if any.
    pub tail_dropped: Option<TailCorruption>,
}

/// Errors of the supervisor itself (cell-level failures are recorded as
/// [`CellOutcome::Aborted`] instead).
#[derive(Debug)]
pub enum SuperviseError {
    /// Journal I/O or framing.
    Journal(JournalError),
    /// A checkpoint failed to decode or belongs to a different run.
    Checkpoint(CheckpointError),
    /// A replay invariant was violated at a checkpoint boundary.
    Invariant {
        /// The violation.
        violation: InvariantViolation,
        /// Journal record index at which it was detected.
        record: usize,
    },
    /// The study spec (journal config record or CLI) is malformed.
    Spec {
        /// What was wrong.
        detail: String,
    },
    /// The journal has no config record to resume from.
    MissingConfig {
        /// The journal path.
        path: PathBuf,
    },
}

impl fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperviseError::Journal(e) => e.fmt(f),
            SuperviseError::Checkpoint(e) => e.fmt(f),
            SuperviseError::Invariant { violation, record } => {
                write!(f, "{violation} (journal record {record})")
            }
            SuperviseError::Spec { detail } => write!(f, "invalid study spec: {detail}"),
            SuperviseError::MissingConfig { path } => {
                write!(f, "{} has no study config record", path.display())
            }
        }
    }
}

impl std::error::Error for SuperviseError {}

impl From<JournalError> for SuperviseError {
    fn from(e: JournalError) -> Self {
        SuperviseError::Journal(e)
    }
}

impl From<CheckpointError> for SuperviseError {
    fn from(e: CheckpointError) -> Self {
        SuperviseError::Checkpoint(e)
    }
}

/// Journal file name inside a study directory.
pub const JOURNAL_FILE: &str = "journal.vmcwj";

/// Starts a fresh supervised study in `dir`, journaling to
/// `dir/journal.vmcwj`.
///
/// # Errors
///
/// [`JournalError::AlreadyExists`] if the directory already holds a
/// journal (resume it instead), plus journal/checkpoint errors.
pub fn run_study(
    spec: &StudySpec,
    dir: &Path,
    token: &CancelToken,
) -> Result<StudyReport, SuperviseError> {
    std::fs::create_dir_all(dir).map_err(|source| {
        SuperviseError::Journal(JournalError::Io {
            path: dir.to_path_buf(),
            source,
        })
    })?;
    let mut journal = Journal::create(&dir.join(JOURNAL_FILE))?;
    journal.append(format!("config {}", spec.encode()).as_bytes())?;
    drive(
        spec.clone(),
        journal,
        BTreeMap::new(),
        BTreeMap::new(),
        false,
        None,
        dir,
        token,
    )
}

/// Resumes (or idempotently re-finalises) the study journaled in `dir`.
///
/// Completed cells are restored from their journaled reports, the
/// interrupted cell from its last checkpoint; the final report is
/// byte-identical to an uninterrupted run. `budget` overrides the
/// journaled per-cell budgets for this session when given.
///
/// # Errors
///
/// Journal/spec/checkpoint errors; a checkpoint that fails its
/// invariants or fingerprint aborts the resume rather than silently
/// recomputing.
pub fn resume_study(
    dir: &Path,
    budget: Option<CellBudget>,
    token: &CancelToken,
) -> Result<StudyReport, SuperviseError> {
    let path = dir.join(JOURNAL_FILE);
    let (journal, tail) = Journal::open(&path)?;
    let records = journal.records();
    let first = records.first().ok_or_else(|| SuperviseError::MissingConfig {
        path: path.clone(),
    })?;
    let config_line = std::str::from_utf8(first)
        .ok()
        .and_then(|s| s.strip_prefix("config "))
        .ok_or_else(|| SuperviseError::MissingConfig { path: path.clone() })?;
    let mut spec = StudySpec::decode(config_line.trim_end())?;
    if let Some(b) = budget {
        spec.budget = b;
    }

    let mut done: BTreeMap<(char, &'static str), CellReport> = BTreeMap::new();
    let mut ckpts: BTreeMap<(char, &'static str), ReplayCheckpoint> = BTreeMap::new();
    let mut run_done = false;
    for (i, rec) in records.iter().enumerate().skip(1) {
        let text = std::str::from_utf8(rec).map_err(|_| SuperviseError::Spec {
            detail: format!("journal record {i} is not UTF-8"),
        })?;
        let (head, body) = text.split_once('\n').unwrap_or((text, ""));
        let mut toks = head.split_whitespace();
        match toks.next() {
            Some("cell-start") => {}
            Some("run-done") => run_done = true,
            Some("checkpoint") => {
                let (dc, kind) = cell_key(&mut toks, i)?;
                let ckpt = ReplayCheckpoint::decode(body)?;
                ckpts.insert((dc.letter(), kind.label()), ckpt);
            }
            Some("cell-done") => {
                let (dc, kind) = cell_key(&mut toks, i)?;
                let outcome_word = toks.next().ok_or_else(|| SuperviseError::Spec {
                    detail: format!("journal record {i}: missing cell outcome"),
                })?;
                let cell = match outcome_word {
                    "aborted" => CellReport {
                        dc,
                        kind,
                        outcome: CellOutcome::Aborted {
                            error: toks.collect::<Vec<_>>().join(" "),
                        },
                        report: None,
                        cost: None,
                    },
                    word @ ("completed" | "degraded") => {
                        let outcome = if word == "completed" {
                            CellOutcome::Completed
                        } else {
                            let hours_done = toks
                                .next()
                                .and_then(|h| h.parse().ok())
                                .ok_or_else(|| SuperviseError::Spec {
                                    detail: format!("journal record {i}: bad degraded hours"),
                                })?;
                            CellOutcome::Degraded {
                                reason: toks.collect::<Vec<_>>().join(" "),
                                hours_done,
                            }
                        };
                        let (cost_line, report_wire) =
                            body.split_once('\n').ok_or_else(|| SuperviseError::Spec {
                                detail: format!("journal record {i}: missing cell body"),
                            })?;
                        CellReport {
                            dc,
                            kind,
                            outcome,
                            report: Some(decode_report(report_wire)?),
                            cost: Some(decode_cost(cost_line)?),
                        }
                    }
                    other => {
                        return Err(SuperviseError::Spec {
                            detail: format!("journal record {i}: unknown outcome `{other}`"),
                        })
                    }
                };
                ckpts.remove(&(dc.letter(), kind.label()));
                done.insert((dc.letter(), kind.label()), cell);
            }
            other => {
                return Err(SuperviseError::Spec {
                    detail: format!("journal record {i}: unknown record `{other:?}`"),
                })
            }
        }
    }

    drive(spec, journal, done, ckpts, run_done, tail, dir, token)
}

fn cell_key<'a>(
    toks: &mut impl Iterator<Item = &'a str>,
    record: usize,
) -> Result<(DataCenterId, PlannerKind), SuperviseError> {
    let bad = |detail: String| SuperviseError::Spec { detail };
    let letter = toks
        .next()
        .and_then(|s| (s.len() == 1).then(|| s.chars().next().unwrap()))
        .ok_or_else(|| bad(format!("journal record {record}: missing data-center letter")))?;
    let dc = dc_from_letter(letter)
        .ok_or_else(|| bad(format!("journal record {record}: unknown data center `{letter}`")))?;
    let kind = toks
        .next()
        .and_then(PlannerKind::parse)
        .ok_or_else(|| bad(format!("journal record {record}: unknown planner")))?;
    Ok((dc, kind))
}

#[allow(clippy::too_many_arguments, clippy::too_many_lines)]
fn drive(
    spec: StudySpec,
    mut journal: Journal,
    done: BTreeMap<(char, &'static str), CellReport>,
    ckpts: BTreeMap<(char, &'static str), ReplayCheckpoint>,
    run_done: bool,
    tail_dropped: Option<TailCorruption>,
    dir: &Path,
    token: &CancelToken,
) -> Result<StudyReport, SuperviseError> {
    let mut cells: Vec<CellReport> = Vec::new();
    let mut studies: Vec<(char, Study)> = Vec::new();
    let mut interrupted = false;

    'grid: for &dc in &spec.dcs {
        for &kind in &spec.planners {
            let key = (dc.letter(), kind.label());
            if let Some(cell) = done.get(&key) {
                cells.push(cell.clone());
                continue;
            }
            if token.is_cancelled() {
                interrupted = true;
                break 'grid;
            }
            let study = match studies.iter().find(|(l, _)| *l == dc.letter()) {
                Some((_, s)) => s,
                None => {
                    let s = Study::prepare(&spec.study_config(dc));
                    studies.push((dc.letter(), s));
                    &studies.last().unwrap().1
                }
            };
            let config = *study.config();
            let plan = match study.plan(kind) {
                Ok(p) => p,
                Err(e) => {
                    let cell = CellReport {
                        dc,
                        kind,
                        outcome: CellOutcome::Aborted {
                            error: e.to_string(),
                        },
                        report: None,
                        cost: None,
                    };
                    append_cell_done(&mut journal, &cell)?;
                    cells.push(cell);
                    continue;
                }
            };
            let n_hosts = plan.dc.len();
            let mut prev_ckpt = ckpts.get(&key).cloned();
            let mut replay = match prev_ckpt.as_ref() {
                Some(ck) => Replay::resume(
                    study.input(),
                    &plan,
                    &config.emulator,
                    spec.faults.as_ref(),
                    ck,
                )?,
                None => {
                    journal.append(
                        format!("cell-start {} {}", dc.letter(), kind.label()).as_bytes(),
                    )?;
                    match Replay::new(
                        study.input(),
                        &plan,
                        &config.emulator,
                        spec.faults.as_ref(),
                    ) {
                        Ok(r) => r,
                        Err(e) => {
                            let cell = CellReport {
                                dc,
                                kind,
                                outcome: CellOutcome::Aborted {
                                    error: e.to_string(),
                                },
                                report: None,
                                cost: None,
                            };
                            append_cell_done(&mut journal, &cell)?;
                            cells.push(cell);
                            continue;
                        }
                    }
                }
            };

            let cell_started = Instant::now();
            let outcome = loop {
                if token.is_cancelled() {
                    let ck = replay.checkpoint();
                    append_checkpoint(&mut journal, dc, kind, &ck)?;
                    interrupted = true;
                    break 'grid;
                }
                if replay.is_done() {
                    break CellOutcome::Completed;
                }
                if let Some(max_hours) = spec.budget.max_hours {
                    if replay.hour() >= max_hours {
                        break CellOutcome::Degraded {
                            reason: format!("step budget of {max_hours} hours exhausted"),
                            hours_done: replay.hour(),
                        };
                    }
                }
                if let Some(max_secs) = spec.budget.max_wall_secs {
                    let elapsed = cell_started.elapsed().as_secs_f64();
                    if elapsed > max_secs {
                        break CellOutcome::Degraded {
                            reason: format!("wall-clock budget of {max_secs}s exhausted"),
                            hours_done: replay.hour(),
                        };
                    }
                }
                if let Err(e) = replay.step() {
                    break CellOutcome::Aborted {
                        error: e.to_string(),
                    };
                }
                token.note_hour();
                if replay.hour() % spec.checkpoint_every_hours == 0 || replay.is_done() {
                    let ck = replay.checkpoint();
                    check_checkpoint(&ck, n_hosts, prev_ckpt.as_ref()).map_err(|violation| {
                        SuperviseError::Invariant {
                            violation,
                            record: journal.records().len(),
                        }
                    })?;
                    append_checkpoint(&mut journal, dc, kind, &ck)?;
                    prev_ckpt = Some(ck);
                }
            };

            let cell = match outcome {
                CellOutcome::Aborted { error } => CellReport {
                    dc,
                    kind,
                    outcome: CellOutcome::Aborted { error },
                    report: None,
                    cost: None,
                },
                outcome => {
                    let report = replay.into_report();
                    let cost = cost_summary(&report, &config.cost_model);
                    CellReport {
                        dc,
                        kind,
                        outcome,
                        report: Some(report),
                        cost: Some(cost),
                    }
                }
            };
            append_cell_done(&mut journal, &cell)?;
            cells.push(cell);
        }
    }

    let status = if interrupted {
        StudyStatus::Interrupted
    } else {
        StudyStatus::Completed
    };
    if status == StudyStatus::Completed {
        if !run_done {
            journal.append(b"run-done")?;
        }
        let report = StudyReport {
            spec,
            status,
            cells,
            tail_dropped,
        };
        write_outputs(dir, &report)?;
        return Ok(report);
    }
    Ok(StudyReport {
        spec,
        status,
        cells,
        tail_dropped,
    })
}

fn append_checkpoint(
    journal: &mut Journal,
    dc: DataCenterId,
    kind: PlannerKind,
    ck: &ReplayCheckpoint,
) -> Result<(), SuperviseError> {
    let payload = format!(
        "checkpoint {} {}\n{}",
        dc.letter(),
        kind.label(),
        ck.encode()
    );
    journal.append(payload.as_bytes())?;
    Ok(())
}

fn append_cell_done(journal: &mut Journal, cell: &CellReport) -> Result<(), SuperviseError> {
    let head = match &cell.outcome {
        CellOutcome::Completed => {
            format!("cell-done {} {} completed", cell.dc.letter(), cell.kind.label())
        }
        CellOutcome::Degraded { reason, hours_done } => format!(
            "cell-done {} {} degraded {hours_done} {reason}",
            cell.dc.letter(),
            cell.kind.label()
        ),
        CellOutcome::Aborted { error } => format!(
            "cell-done {} {} aborted {error}",
            cell.dc.letter(),
            cell.kind.label()
        ),
    };
    let payload = match (&cell.cost, &cell.report) {
        (Some(cost), Some(report)) => {
            format!("{head}\n{}\n{}", encode_cost(cost), encode_report(report))
        }
        _ => head,
    };
    journal.append(payload.as_bytes())?;
    Ok(())
}

/// Renders the per-cell results table (`cells.csv`). Deterministic: no
/// timestamps or timings, and the digest column is the FNV-1a of the
/// cell report's canonical encoding, so two bit-identical runs produce
/// byte-identical CSVs.
#[must_use]
pub fn cells_table(report: &StudyReport) -> Table {
    let mut t = Table::new(
        "cells",
        &[
            "dc",
            "planner",
            "outcome",
            "hours",
            "hosts",
            "energy_kwh",
            "migrations",
            "crashes",
            "evacuations",
            "downtime_vm_hours",
            "stale_sample_hours",
            "space_cost",
            "power_cost",
            "digest",
        ],
    );
    for cell in &report.cells {
        let (hours, hosts, energy, migrations, crashes, evac, down, stale, digest) =
            match &cell.report {
                Some(r) => (
                    r.hours.to_string(),
                    r.provisioned_hosts.to_string(),
                    fnum(r.energy_kwh, 3),
                    r.migrations.to_string(),
                    r.faults.host_crashes.to_string(),
                    r.faults.evacuations.to_string(),
                    r.faults.downtime_vm_hours.to_string(),
                    r.faults.stale_sample_hours.to_string(),
                    format!("{:016x}", fnv1a(encode_report(r).as_bytes())),
                ),
                None => (
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ),
            };
        let (space, power) = match &cell.cost {
            Some(c) => (fnum(c.space_cost, 2), fnum(c.power_cost, 2)),
            None => ("-".into(), "-".into()),
        };
        t.push_row([
            cell.dc.letter().to_string(),
            cell.kind.label().to_owned(),
            cell.outcome.label().to_owned(),
            hours,
            hosts,
            energy,
            migrations,
            crashes,
            evac,
            down,
            stale,
            space,
            power,
            digest,
        ]);
    }
    t
}

fn write_outputs(dir: &Path, report: &StudyReport) -> Result<(), SuperviseError> {
    let io_err = |path: &Path| {
        let path = path.to_path_buf();
        move |source| {
            SuperviseError::Journal(JournalError::Io {
                path: path.clone(),
                source,
            })
        }
    };
    let csv_path = dir.join("cells.csv");
    write_atomic(&csv_path, cells_table(report).to_csv().as_bytes())
        .map_err(io_err(&csv_path))?;
    let md_path = dir.join("STUDY.md");
    let md = crate::experiments::study_markdown(report);
    write_atomic(&md_path, md.as_bytes()).map_err(io_err(&md_path))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vmcw-supervise-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> StudySpec {
        StudySpec {
            dcs: vec![DataCenterId::Airlines],
            planners: vec![PlannerKind::SemiStatic, PlannerKind::Dynamic],
            ..StudySpec::new(0.02, 5, 5, 1)
        }
    }

    #[test]
    fn spec_round_trips_through_its_encoding() {
        let mut spec = StudySpec::new(0.05, 42, 7, 5);
        spec.faults = Some(FaultConfig::baseline(31));
        spec.budget = CellBudget {
            max_wall_secs: Some(12.5),
            max_hours: Some(48),
        };
        let decoded = StudySpec::decode(&spec.encode()).unwrap();
        assert_eq!(spec, decoded);
        // And the none-variants too.
        let plain = StudySpec::new(1.0, 0, 30, 14);
        assert_eq!(plain, StudySpec::decode(&plain.encode()).unwrap());
    }

    #[test]
    fn fresh_study_completes_and_writes_outputs() {
        let dir = tmp_dir("fresh");
        let report = run_study(&tiny_spec(), &dir, &CancelToken::new()).unwrap();
        assert_eq!(report.status, StudyStatus::Completed);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.outcome, CellOutcome::Completed);
            assert_eq!(cell.report.as_ref().unwrap().hours, 24);
        }
        assert!(dir.join("cells.csv").exists());
        assert!(dir.join("STUDY.md").exists());
        // Starting over in the same directory is refused.
        let err = run_study(&tiny_spec(), &dir, &CancelToken::new()).unwrap_err();
        assert!(matches!(
            err,
            SuperviseError::Journal(JournalError::AlreadyExists { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn over_budget_cells_degrade_instead_of_killing_the_study() {
        let dir = tmp_dir("degraded");
        let mut spec = tiny_spec();
        spec.budget.max_hours = Some(10);
        let report = run_study(&spec, &dir, &CancelToken::new()).unwrap();
        assert_eq!(report.status, StudyStatus::Completed);
        for cell in &report.cells {
            match &cell.outcome {
                CellOutcome::Degraded { hours_done, .. } => assert_eq!(*hours_done, 10),
                other => panic!("expected degraded, got {other:?}"),
            }
            let r = cell.report.as_ref().unwrap();
            assert_eq!(r.hours, 10, "partial report covers completed hours");
            assert!(cell.cost.is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_study_resumes_to_identical_reports() {
        let clean_dir = tmp_dir("clean");
        let spec = tiny_spec();
        let clean = run_study(&spec, &clean_dir, &CancelToken::new()).unwrap();

        let killed_dir = tmp_dir("killed");
        let token = CancelToken::new();
        token.cancel_after_hours(30); // mid second cell
        let partial = run_study(&spec, &killed_dir, &token).unwrap();
        assert_eq!(partial.status, StudyStatus::Interrupted);
        assert!(partial.cells.len() < clean.cells.len() || partial.cells.is_empty());

        let resumed = resume_study(&killed_dir, None, &CancelToken::new()).unwrap();
        assert_eq!(resumed.status, StudyStatus::Completed);
        assert_eq!(resumed.cells.len(), clean.cells.len());
        for (a, b) in clean.cells.iter().zip(&resumed.cells) {
            assert_eq!(
                encode_report(a.report.as_ref().unwrap()),
                encode_report(b.report.as_ref().unwrap()),
                "cell {}/{} diverged",
                a.dc.letter(),
                a.kind.label()
            );
        }
        // cells.csv must be byte-identical too.
        assert_eq!(
            std::fs::read(clean_dir.join("cells.csv")).unwrap(),
            std::fs::read(killed_dir.join("cells.csv")).unwrap()
        );
        // Resuming a completed journal is idempotent.
        let again = resume_study(&killed_dir, None, &CancelToken::new()).unwrap();
        assert_eq!(again.cells.len(), clean.cells.len());
        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&killed_dir);
    }

    #[test]
    fn resume_without_journal_fails_cleanly() {
        let dir = tmp_dir("nojournal");
        std::fs::create_dir_all(&dir).unwrap();
        let err = resume_study(&dir, None, &CancelToken::new()).unwrap_err();
        assert!(matches!(err, SuperviseError::Journal(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_token_fires_after_armed_hours() {
        let t = CancelToken::new();
        t.cancel_after_hours(3);
        assert!(!t.is_cancelled());
        t.note_hour();
        t.note_hour();
        assert!(!t.is_cancelled());
        t.note_hour();
        assert!(t.is_cancelled());
    }
}
