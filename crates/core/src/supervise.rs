//! Crash-safe, budgeted execution of multi-cell studies.
//!
//! A *study* here is the planner × data-center grid of the paper's
//! evaluation. [`run_study`] drives every cell through the stepwise
//! [`Replay`] engine under a cooperative [`CancelToken`] and per-cell
//! [`CellBudget`]s, journaling a [`ReplayCheckpoint`] at a fixed cadence
//! and each finished cell's full report. [`resume_study`] rebuilds from
//! the journal after a crash or SIGKILL: completed cells are replayed
//! from their journaled reports (byte-identical by construction), the
//! interrupted cell resumes from its last checkpoint (bit-identical by
//! the engine's resume guarantee), and the rest run normally.
//!
//! Cells that exhaust a budget are *degraded* — their partial report
//! covers the completed hours — and cells whose planner or replay fails
//! are *aborted*; neither kills the rest of the study. Every checkpoint
//! is invariant-checked (capacity, double placement, ledger/hour
//! monotonicity) before it is journaled, failing fast at the boundary
//! where state first went bad.
//!
//! Cells are independent, so [`run_study_jobs`] fans them over a pool of
//! worker threads. The journal is a shared append-only log behind a
//! mutex: records from different cells interleave under parallelism, but
//! resume keys every record by its `(data center, planner)` cell, so
//! record *order* never matters for correctness. The final `cells.csv` /
//! `STUDY.md` are merged in grid order (data center major, planner
//! minor), making them byte-identical for any worker count — see
//! docs/PERFORMANCE.md for the determinism argument.
//!
//! The supervisor is *self-healing* (docs/ROBUSTNESS.md has the
//! supervision tree): each cell attempt runs under `catch_unwind`, so a
//! panicking planner becomes a journaled [`CellOutcome::Crashed`]
//! incident instead of killing the run; a monitor thread watches
//! per-cell [`Heartbeat`]s and cooperatively cancels cells that stop
//! beating (hangs become `Degraded`, never wedged studies); crashed and
//! watchdog-stopped cells are retried from their last journaled
//! checkpoint under a [`CellRetryPolicy`] (exponential backoff, jitter
//! keyed on the study seed) and quarantined into `STUDY.md`'s failure
//! matrix once attempts are exhausted. A retry resumes from a
//! checkpoint, so a healed cell's output is *byte-identical* to an
//! uninterrupted run. The monitor also rewrites an atomic
//! `health.json` ([`crate::health`]) so `vmcw health <dir>` can inspect
//! a live or dead run.

use std::collections::BTreeMap;
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, Once, OnceLock};
use std::time::{Duration, Instant};

use vmcw_consolidation::planner::PlannerKind;
use vmcw_emulator::checkpoint::{
    decode_cost, decode_fault_config, decode_report, enc_f64, encode_cost, encode_fault_config,
    encode_report, fnv1a, CheckpointError, Toks,
};
use vmcw_emulator::engine::{EmulationReport, Heartbeat, Replay};
use vmcw_emulator::faults::FaultConfig;
use vmcw_emulator::report::{cost_summary, CostSummary};
use vmcw_emulator::validate::{
    check_checkpoint_with, check_retry_checkpoint, CheckScratch, InvariantViolation,
};
use vmcw_emulator::ReplayCheckpoint;
use vmcw_trace::datacenters::DataCenterId;

use crate::health::{CellHealth, HealthSnapshot, HEALTH_FILE};
use crate::journal::{write_atomic, Journal, JournalError, TailCorruption};
use crate::render::{fnum, Table};
use crate::study::{Study, StudyConfig, StudyError};

/// Cooperative cancellation shared between a supervisor and whoever
/// wants to stop it (a signal handler, a test, a deadline).
///
/// Cancellation is *cooperative*: the supervisor polls the token at
/// every hour boundary, checkpoints, and returns an `Interrupted`
/// report — it never loses state.
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<TokenInner>,
}

#[derive(Debug)]
struct TokenInner {
    cancelled: AtomicBool,
    /// Cancel once this many hours have been stepped (u64::MAX = never);
    /// lets tests kill a study at a *deterministic* point.
    limit_hours: AtomicU64,
    stepped: AtomicU64,
    /// Wall-clock deadline past which [`CancelToken::is_cancelled`]
    /// reports true — how `vmcw serve` propagates per-request deadlines
    /// into a replay without any extra sweeper thread.
    deadline: Mutex<Option<Instant>>,
}

impl CancelToken {
    /// A token that never fires until [`cancel`](Self::cancel)ed.
    #[must_use]
    pub fn new() -> Self {
        Self {
            inner: Arc::new(TokenInner {
                cancelled: AtomicBool::new(false),
                limit_hours: AtomicU64::new(u64::MAX),
                stepped: AtomicU64::new(0),
                deadline: Mutex::new(None),
            }),
        }
    }

    /// Requests cancellation.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::SeqCst);
    }

    /// Arms an externally-supplied deadline: once `deadline` passes,
    /// [`is_cancelled`](Self::is_cancelled) reports true at the next
    /// poll (the supervisor polls at every hour boundary, so a replay
    /// checkpoints and yields within one step of the deadline).
    pub fn cancel_at(&self, deadline: Instant) {
        *self
            .inner
            .deadline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(deadline);
    }

    /// The armed deadline, if any.
    #[must_use]
    pub fn deadline(&self) -> Option<Instant> {
        *self
            .inner
            .deadline
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Whether the armed deadline (if any) has passed.
    #[must_use]
    pub fn deadline_passed(&self) -> bool {
        self.deadline().is_some_and(|d| Instant::now() >= d)
    }

    /// Whether cancellation was requested (explicitly, or implicitly by
    /// an expired [`cancel_at`](Self::cancel_at) deadline).
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::SeqCst) {
            return true;
        }
        if self.deadline_passed() {
            self.cancel();
            return true;
        }
        false
    }

    /// Arms the token to cancel after `hours` replay hours have been
    /// stepped across the whole study — a deterministic "kill at hour N".
    pub fn cancel_after_hours(&self, hours: u64) {
        self.inner.limit_hours.store(hours, Ordering::SeqCst);
    }

    /// Records one stepped replay hour (called by the supervisor).
    pub fn note_hour(&self) {
        let stepped = self.inner.stepped.fetch_add(1, Ordering::SeqCst) + 1;
        if stepped >= self.inner.limit_hours.load(Ordering::SeqCst) {
            self.cancel();
        }
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

/// Per-cell execution budgets. A cell that runs over is *degraded* — it
/// finalises a partial report instead of wedging the study.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct CellBudget {
    /// Maximum wall-clock seconds per cell per session.
    pub max_wall_secs: Option<f64>,
    /// Maximum replay hours per cell (deterministic step budget).
    pub max_hours: Option<usize>,
}

impl CellBudget {
    /// No limits.
    #[must_use]
    pub fn unlimited() -> Self {
        Self::default()
    }
}

/// Bounded re-execution of transiently failed cells (panics and
/// watchdog timeouts). Deterministic failures — typed replay errors,
/// step-budget exhaustion — are *not* retried: they would fail the same
/// way again.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellRetryPolicy {
    /// Total attempts per cell per session (1 = no retry).
    pub max_attempts: usize,
    /// Backoff before the second attempt, in seconds.
    pub base_backoff_secs: f64,
    /// Backoff multiplier per further attempt.
    pub backoff_factor: f64,
}

impl CellRetryPolicy {
    /// Three attempts, 100 ms base backoff doubling per attempt.
    #[must_use]
    pub fn default_policy() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_secs: 0.1,
            backoff_factor: 2.0,
        }
    }

    /// A single attempt: the first crash or watchdog stop is terminal.
    #[must_use]
    pub fn no_retry() -> Self {
        Self {
            max_attempts: 1,
            ..Self::default_policy()
        }
    }

    /// Seconds to wait before `next_attempt` (2-based): exponential in
    /// the attempt number with a deterministic jitter factor in
    /// `[0.5, 1.5)` keyed on the study seed and the cell, so two
    /// sessions of the same study back off identically while distinct
    /// cells never thunder in herd.
    #[must_use]
    pub fn backoff_secs(&self, seed: u64, dc: char, planner: &str, next_attempt: usize) -> f64 {
        let exp = next_attempt.saturating_sub(2).min(i32::MAX as usize) as i32;
        let key = fnv1a(format!("retry {seed} {dc} {planner} {next_attempt}").as_bytes());
        let jitter = 0.5 + key as f64 / (u64::MAX as f64 + 1.0);
        self.base_backoff_secs * self.backoff_factor.powi(exp) * jitter
    }
}

impl Default for CellRetryPolicy {
    fn default() -> Self {
        Self::default_policy()
    }
}

/// What a chaos hook does to its target cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Panic in the cell body right before stepping the configured hour.
    Panic,
    /// Stop heartbeating (without stepping) until the watchdog fires.
    Hang,
}

/// A fault-injection hook for the *supervisor itself*: deterministically
/// crash or hang one cell so tests and the CI chaos job can prove that
/// isolation, retry and quarantine work. Never enabled implicitly — the
/// CLI wires it from `VMCW_CHAOS_*` environment variables, tests pass it
/// programmatically via [`RunOptions`].
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Data-center letter of the target cell.
    pub dc: char,
    /// Planner label of the target cell (as [`PlannerKind::label`]).
    pub planner: String,
    /// Replay hour before which the fault fires.
    pub hour: usize,
    /// Crash or hang.
    pub mode: ChaosMode,
    /// Fire once per study (the retry then succeeds — the self-healing
    /// path) instead of once per attempt (exhausts retries — the
    /// quarantine path).
    pub one_shot: bool,
}

impl ChaosConfig {
    /// Builds a chaos hook from a `<letter>/<planner label>` cell id.
    /// Returns `None` for a malformed id.
    #[must_use]
    pub fn for_cell(cell_id: &str, hour: usize, mode: ChaosMode, one_shot: bool) -> Option<Self> {
        let (letter, planner) = cell_id.split_once('/')?;
        let dc = letter.trim().to_ascii_uppercase().chars().next()?;
        dc_from_letter(dc)?;
        let kind = PlannerKind::parse(planner.trim())?;
        Some(Self {
            dc,
            planner: kind.label().to_owned(),
            hour,
            mode,
            one_shot,
        })
    }

    /// Reads the env-gated chaos hooks: `VMCW_CHAOS_PANIC_CELL=<L>/<planner>`
    /// or `VMCW_CHAOS_HANG_CELL=<L>/<planner>`, with
    /// `VMCW_CHAOS_PANIC_HOUR=<N>` (default 2) and `VMCW_CHAOS_ONE_SHOT=1`.
    /// Returns `None` when no (well-formed) hook is set.
    #[must_use]
    pub fn from_env() -> Option<Self> {
        let (cell, mode) = if let Ok(v) = std::env::var("VMCW_CHAOS_PANIC_CELL") {
            (v, ChaosMode::Panic)
        } else if let Ok(v) = std::env::var("VMCW_CHAOS_HANG_CELL") {
            (v, ChaosMode::Hang)
        } else {
            return None;
        };
        let hour = std::env::var("VMCW_CHAOS_PANIC_HOUR")
            .ok()
            .and_then(|h| h.parse().ok())
            .unwrap_or(2);
        let one_shot = std::env::var("VMCW_CHAOS_ONE_SHOT").is_ok_and(|v| v == "1");
        Self::for_cell(&cell, hour, mode, one_shot)
    }

    fn matches(&self, dc: DataCenterId, kind: PlannerKind) -> bool {
        self.dc == dc.letter() && self.planner == kind.label()
    }
}

/// Session-scoped execution options for [`run_study_opts`] /
/// [`resume_study_opts`]. None of these are journaled: like worker
/// count and wall budgets, they shape *how* a session executes, never
/// *what* the study computes — any combination yields byte-identical
/// study outputs (chaos aside, and even a healed chaos run matches).
#[derive(Debug, Clone)]
pub struct RunOptions {
    /// Worker threads (see [`run_study_jobs`]).
    pub jobs: usize,
    /// Retry budget for crashed / watchdog-stopped cells.
    pub retry: CellRetryPolicy,
    /// Watchdog deadline: a cell whose heartbeat goes silent for this
    /// many seconds is cooperatively cancelled. `None` disables the
    /// watchdog (health telemetry still runs). Must comfortably exceed
    /// the cell's planning time — planning beats only at its edges.
    pub heartbeat_timeout_secs: Option<f64>,
    /// Supervisor fault injection for tests and CI.
    pub chaos: Option<ChaosConfig>,
}

impl Default for RunOptions {
    fn default() -> Self {
        Self {
            jobs: 1,
            retry: CellRetryPolicy::default_policy(),
            heartbeat_timeout_secs: None,
            chaos: None,
        }
    }
}

/// How one planner × data-center cell ended.
#[derive(Debug, Clone, PartialEq)]
pub enum CellOutcome {
    /// Replayed every evaluation hour.
    Completed,
    /// Stopped at a budget; the cell's report is partial.
    Degraded {
        /// Which budget fired.
        reason: String,
        /// Hours actually replayed.
        hours_done: usize,
    },
    /// Planning or replay failed; the error is recorded, the study went
    /// on.
    Aborted {
        /// The failure.
        error: String,
    },
    /// An attempt panicked or was stopped by the watchdog. Transient:
    /// the supervisor retries from the last journaled checkpoint, so
    /// this is only ever a *terminal* outcome in journals written by
    /// defensive paths — normally a crash ends as `Completed` (healed)
    /// or [`Quarantined`](Self::Quarantined) (exhausted).
    Crashed {
        /// Single-line panic or watchdog message.
        message: String,
        /// Captured backtrace of the crash site (may be empty).
        backtrace: String,
    },
    /// Every retry attempt crashed or hung. The cell is excluded from
    /// aggregate results; its incident log feeds `STUDY.md`'s failure
    /// matrix.
    Quarantined {
        /// Attempts spent before giving up.
        attempts: usize,
        /// One line per incident: `attempt N: panic|watchdog: message`.
        incidents: Vec<String>,
    },
}

impl CellOutcome {
    /// Short status word for tables.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            CellOutcome::Completed => "completed",
            CellOutcome::Degraded { .. } => "degraded",
            CellOutcome::Aborted { .. } => "aborted",
            CellOutcome::Crashed { .. } => "crashed",
            CellOutcome::Quarantined { .. } => "quarantined",
        }
    }
}

/// One cell of the study grid.
#[derive(Debug, Clone, PartialEq)]
pub struct CellReport {
    /// The data center.
    pub dc: DataCenterId,
    /// The planner.
    pub kind: PlannerKind,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// The (possibly partial) emulation report; `None` for aborted
    /// cells.
    pub report: Option<EmulationReport>,
    /// Costs of the report under the study's cost model.
    pub cost: Option<CostSummary>,
}

/// What a supervised study should run.
#[derive(Debug, Clone, PartialEq)]
pub struct StudySpec {
    /// Data centers to evaluate.
    pub dcs: Vec<DataCenterId>,
    /// Planners to evaluate per data center.
    pub planners: Vec<PlannerKind>,
    /// Server-count scale (1.0 = Table 2 population).
    pub scale: f64,
    /// Generator seed.
    pub seed: u64,
    /// Planning-history days.
    pub history_days: usize,
    /// Evaluation days.
    pub eval_days: usize,
    /// Fault injection, if any.
    pub faults: Option<FaultConfig>,
    /// Checkpoint cadence in replay hours.
    pub checkpoint_every_hours: usize,
    /// Per-cell budgets.
    pub budget: CellBudget,
}

impl StudySpec {
    /// All four data centers × the three evaluated planners, checkpoint
    /// every 6 replay hours, no budgets, no faults.
    #[must_use]
    pub fn new(scale: f64, seed: u64, history_days: usize, eval_days: usize) -> Self {
        Self {
            dcs: DataCenterId::ALL.to_vec(),
            planners: PlannerKind::EVALUATED.to_vec(),
            scale,
            seed,
            history_days,
            eval_days,
            faults: None,
            checkpoint_every_hours: 6,
            budget: CellBudget::unlimited(),
        }
    }

    /// The per-data-center study configuration the spec induces.
    #[must_use]
    pub fn study_config(&self, dc: DataCenterId) -> StudyConfig {
        StudyConfig {
            scale: self.scale,
            history_days: self.history_days,
            eval_days: self.eval_days,
            ..StudyConfig::paper_baseline(dc, self.seed)
        }
    }

    /// Single-line journal encoding (floats bit-exact).
    #[must_use]
    pub fn encode(&self) -> String {
        let dcs: String = self.dcs.iter().map(|d| d.letter()).collect();
        let planners: Vec<&str> = self.planners.iter().map(|k| k.label()).collect();
        let faults = self
            .faults
            .as_ref()
            .map_or_else(|| "none".to_owned(), encode_fault_config);
        let maxh = self
            .budget
            .max_hours
            .map_or_else(|| "none".to_owned(), |h| h.to_string());
        let maxs = self
            .budget
            .max_wall_secs
            .map_or_else(|| "none".to_owned(), enc_f64);
        format!(
            "spec v1 seed {} scale {} history {} eval {} ckpt {} dcs {} planners {} maxhours {} maxsecs {} faults {}",
            self.seed,
            enc_f64(self.scale),
            self.history_days,
            self.eval_days,
            self.checkpoint_every_hours,
            dcs,
            planners.join(","),
            maxh,
            maxs,
            faults,
        )
    }

    /// Decodes [`encode`](Self::encode) output.
    ///
    /// # Errors
    ///
    /// [`SuperviseError::Spec`] on malformed input.
    pub fn decode(line: &str) -> Result<Self, SuperviseError> {
        let bad = |detail: &str| SuperviseError::Spec {
            detail: detail.to_owned(),
        };
        let mut t = Toks::new(line, 0);
        let take = |t: &mut Toks<'_>, key: &str| -> Result<(), SuperviseError> {
            let k = t.str().map_err(SuperviseError::Checkpoint)?;
            if k == key {
                Ok(())
            } else {
                Err(SuperviseError::Spec {
                    detail: format!("expected `{key}`, found `{k}`"),
                })
            }
        };
        take(&mut t, "spec")?;
        let v = t.str().map_err(SuperviseError::Checkpoint)?;
        if v != "v1" {
            return Err(bad("unsupported spec version"));
        }
        take(&mut t, "seed")?;
        let seed = t.u64().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "scale")?;
        let scale = t.f64().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "history")?;
        let history_days = t.usize().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "eval")?;
        let eval_days = t.usize().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "ckpt")?;
        let checkpoint_every_hours = t.usize().map_err(SuperviseError::Checkpoint)?;
        take(&mut t, "dcs")?;
        let dcs_tok = t.str().map_err(SuperviseError::Checkpoint)?;
        let dcs = dcs_tok
            .chars()
            .map(|c| dc_from_letter(c).ok_or_else(|| bad("unknown data-center letter")))
            .collect::<Result<Vec<_>, _>>()?;
        take(&mut t, "planners")?;
        let planners_tok = t.str().map_err(SuperviseError::Checkpoint)?;
        let planners = planners_tok
            .split(',')
            .map(|l| PlannerKind::parse(l).ok_or_else(|| bad("unknown planner label")))
            .collect::<Result<Vec<_>, _>>()?;
        take(&mut t, "maxhours")?;
        let maxh = t.str().map_err(SuperviseError::Checkpoint)?;
        let max_hours = if maxh == "none" {
            None
        } else {
            Some(maxh.parse().map_err(|_| bad("bad maxhours"))?)
        };
        take(&mut t, "maxsecs")?;
        let maxs = t.str().map_err(SuperviseError::Checkpoint)?;
        let max_wall_secs = if maxs == "none" {
            None
        } else {
            Some(f64::from_bits(
                u64::from_str_radix(maxs, 16).map_err(|_| bad("bad maxsecs"))?,
            ))
        };
        take(&mut t, "faults")?;
        // The fault config is the remainder of the line: either the
        // literal `none` or the 13-token fault-config encoding.
        let faults_payload = line
            .split_once(" faults ")
            .map(|(_, f)| f.trim())
            .ok_or_else(|| bad("missing faults field"))?;
        let faults = if faults_payload == "none" {
            None
        } else {
            let mut ft = Toks::new(faults_payload, 0);
            Some(decode_fault_config(&mut ft).map_err(SuperviseError::Checkpoint)?)
        };
        Ok(Self {
            dcs,
            planners,
            scale,
            seed,
            history_days,
            eval_days,
            faults,
            checkpoint_every_hours,
            budget: CellBudget {
                max_wall_secs,
                max_hours,
            },
        })
    }
}

fn dc_from_letter(c: char) -> Option<DataCenterId> {
    DataCenterId::ALL.into_iter().find(|d| d.letter() == c)
}

/// Whether the whole grid ran to the end.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StudyStatus {
    /// Every cell reached a terminal outcome; results were written.
    Completed,
    /// Cancelled mid-run; the journal holds a checkpoint to resume from.
    Interrupted,
}

/// The (possibly partial) result of a supervised study.
#[derive(Debug, Clone, PartialEq)]
pub struct StudyReport {
    /// What was asked for.
    pub spec: StudySpec,
    /// Whether the grid finished.
    pub status: StudyStatus,
    /// Cells in grid order (data center major, planner minor). Under
    /// `Interrupted`, only the cells with a terminal outcome so far.
    pub cells: Vec<CellReport>,
    /// A corrupt/truncated journal tail discarded on open, if any.
    pub tail_dropped: Option<TailCorruption>,
}

/// Errors of the supervisor itself (cell-level failures are recorded as
/// [`CellOutcome::Aborted`] instead).
#[derive(Debug)]
pub enum SuperviseError {
    /// Journal I/O or framing.
    Journal(JournalError),
    /// A checkpoint failed to decode or belongs to a different run.
    Checkpoint(CheckpointError),
    /// A replay invariant was violated at a checkpoint boundary.
    Invariant {
        /// The violation.
        violation: InvariantViolation,
        /// Journal record index at which it was detected.
        record: usize,
    },
    /// The study spec (journal config record or CLI) is malformed.
    Spec {
        /// What was wrong.
        detail: String,
    },
    /// The journal has no config record to resume from.
    MissingConfig {
        /// The journal path.
        path: PathBuf,
    },
}

impl fmt::Display for SuperviseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SuperviseError::Journal(e) => e.fmt(f),
            SuperviseError::Checkpoint(e) => e.fmt(f),
            SuperviseError::Invariant { violation, record } => {
                write!(f, "{violation} (journal record {record})")
            }
            SuperviseError::Spec { detail } => write!(f, "invalid study spec: {detail}"),
            SuperviseError::MissingConfig { path } => {
                write!(f, "{} has no study config record", path.display())
            }
        }
    }
}

impl std::error::Error for SuperviseError {}

impl From<JournalError> for SuperviseError {
    fn from(e: JournalError) -> Self {
        SuperviseError::Journal(e)
    }
}

impl From<CheckpointError> for SuperviseError {
    fn from(e: CheckpointError) -> Self {
        SuperviseError::Checkpoint(e)
    }
}

/// Journal file name inside a study directory.
pub const JOURNAL_FILE: &str = "journal.vmcwj";

/// Starts a fresh supervised study in `dir`, journaling to
/// `dir/journal.vmcwj`.
///
/// # Errors
///
/// [`JournalError::AlreadyExists`] if the directory already holds a
/// journal (resume it instead), plus journal/checkpoint errors.
pub fn run_study(
    spec: &StudySpec,
    dir: &Path,
    token: &CancelToken,
) -> Result<StudyReport, SuperviseError> {
    run_study_jobs(spec, dir, token, 1)
}

/// [`run_study`] with an explicit worker count.
///
/// `jobs` worker threads execute independent cells concurrently;
/// `jobs <= 1` is exactly the serial supervisor (identical journal
/// record sequence). Any worker count yields byte-identical `cells.csv`,
/// `STUDY.md` and cell reports; only journal record interleaving and
/// wall-clock time differ.
///
/// # Errors
///
/// As [`run_study`].
pub fn run_study_jobs(
    spec: &StudySpec,
    dir: &Path,
    token: &CancelToken,
    jobs: usize,
) -> Result<StudyReport, SuperviseError> {
    run_study_opts(
        spec,
        dir,
        token,
        &RunOptions {
            jobs,
            ..RunOptions::default()
        },
    )
}

/// [`run_study`] with full session [`RunOptions`]: worker count, retry
/// policy, watchdog deadline and (for tests/CI) chaos injection.
///
/// # Errors
///
/// As [`run_study`].
pub fn run_study_opts(
    spec: &StudySpec,
    dir: &Path,
    token: &CancelToken,
    opts: &RunOptions,
) -> Result<StudyReport, SuperviseError> {
    std::fs::create_dir_all(dir).map_err(|source| {
        SuperviseError::Journal(JournalError::Io {
            path: dir.to_path_buf(),
            source,
        })
    })?;
    let mut journal = Journal::create(&dir.join(JOURNAL_FILE))?;
    journal.append(format!("config {}", spec.encode()).as_bytes())?;
    drive(
        spec.clone(),
        journal,
        BTreeMap::new(),
        BTreeMap::new(),
        false,
        None,
        dir,
        token,
        opts,
    )
}

/// Resumes (or idempotently re-finalises) the study journaled in `dir`.
///
/// Completed cells are restored from their journaled reports, the
/// interrupted cell from its last checkpoint; the final report is
/// byte-identical to an uninterrupted run. `budget` overrides the
/// journaled per-cell budgets for this session when given.
///
/// # Errors
///
/// Journal/spec/checkpoint errors; a checkpoint that fails its
/// invariants or fingerprint aborts the resume rather than silently
/// recomputing.
pub fn resume_study(
    dir: &Path,
    budget: Option<CellBudget>,
    token: &CancelToken,
) -> Result<StudyReport, SuperviseError> {
    resume_study_jobs(dir, budget, token, 1)
}

/// [`resume_study`] with an explicit worker count (see
/// [`run_study_jobs`]). A journal written under any worker count resumes
/// under any other: records are keyed by cell, not by position.
///
/// # Errors
///
/// As [`resume_study`].
pub fn resume_study_jobs(
    dir: &Path,
    budget: Option<CellBudget>,
    token: &CancelToken,
    jobs: usize,
) -> Result<StudyReport, SuperviseError> {
    resume_study_opts(
        dir,
        budget,
        token,
        &RunOptions {
            jobs,
            ..RunOptions::default()
        },
    )
}

/// [`resume_study`] with full session [`RunOptions`] (see
/// [`run_study_opts`]).
///
/// # Errors
///
/// As [`resume_study`].
pub fn resume_study_opts(
    dir: &Path,
    budget: Option<CellBudget>,
    token: &CancelToken,
    opts: &RunOptions,
) -> Result<StudyReport, SuperviseError> {
    let path = dir.join(JOURNAL_FILE);
    let (journal, tail) = Journal::open(&path)?;
    let records = journal.records();
    let first = records.first().ok_or_else(|| SuperviseError::MissingConfig {
        path: path.clone(),
    })?;
    let config_line = std::str::from_utf8(first)
        .ok()
        .and_then(|s| s.strip_prefix("config "))
        .ok_or_else(|| SuperviseError::MissingConfig { path: path.clone() })?;
    let mut spec = StudySpec::decode(config_line.trim_end())?;
    if let Some(b) = budget {
        spec.budget = b;
    }

    let mut done: BTreeMap<(char, &'static str), CellReport> = BTreeMap::new();
    let mut ckpts: BTreeMap<(char, &'static str), ReplayCheckpoint> = BTreeMap::new();
    let mut run_done = false;
    for (i, rec) in records.iter().enumerate().skip(1) {
        let text = std::str::from_utf8(rec).map_err(|_| SuperviseError::Spec {
            detail: format!("journal record {i} is not UTF-8"),
        })?;
        let (head, body) = text.split_once('\n').unwrap_or((text, ""));
        let mut toks = head.split_whitespace();
        match toks.next() {
            // Informational records: cell lifecycle markers, retry
            // bookkeeping and heartbeat progress watermarks carry no
            // state that resume needs — checkpoints and cell-done
            // records are authoritative.
            Some("cell-start" | "cell-crashed" | "cell-retried" | "heartbeat") => {}
            Some("run-done") => run_done = true,
            Some("checkpoint") => {
                let (dc, kind) = cell_key(&mut toks, i)?;
                let ckpt = ReplayCheckpoint::decode(body)?;
                ckpts.insert((dc.letter(), kind.label()), ckpt);
            }
            Some("cell-done") => {
                let (dc, kind) = cell_key(&mut toks, i)?;
                let outcome_word = toks.next().ok_or_else(|| SuperviseError::Spec {
                    detail: format!("journal record {i}: missing cell outcome"),
                })?;
                let cell = match outcome_word {
                    "aborted" => CellReport {
                        dc,
                        kind,
                        outcome: CellOutcome::Aborted {
                            error: toks.collect::<Vec<_>>().join(" "),
                        },
                        report: None,
                        cost: None,
                    },
                    "crashed" => CellReport {
                        dc,
                        kind,
                        outcome: CellOutcome::Crashed {
                            message: toks.collect::<Vec<_>>().join(" "),
                            backtrace: body.to_owned(),
                        },
                        report: None,
                        cost: None,
                    },
                    "quarantined" => {
                        let attempts = toks
                            .next()
                            .and_then(|a| a.parse().ok())
                            .ok_or_else(|| SuperviseError::Spec {
                                detail: format!("journal record {i}: bad quarantine attempts"),
                            })?;
                        let incidents = if body.is_empty() {
                            Vec::new()
                        } else {
                            body.lines().map(str::to_owned).collect()
                        };
                        CellReport {
                            dc,
                            kind,
                            outcome: CellOutcome::Quarantined {
                                attempts,
                                incidents,
                            },
                            report: None,
                            cost: None,
                        }
                    }
                    word @ ("completed" | "degraded") => {
                        let outcome = if word == "completed" {
                            CellOutcome::Completed
                        } else {
                            let hours_done = toks
                                .next()
                                .and_then(|h| h.parse().ok())
                                .ok_or_else(|| SuperviseError::Spec {
                                    detail: format!("journal record {i}: bad degraded hours"),
                                })?;
                            CellOutcome::Degraded {
                                reason: toks.collect::<Vec<_>>().join(" "),
                                hours_done,
                            }
                        };
                        let (cost_line, report_wire) =
                            body.split_once('\n').ok_or_else(|| SuperviseError::Spec {
                                detail: format!("journal record {i}: missing cell body"),
                            })?;
                        CellReport {
                            dc,
                            kind,
                            outcome,
                            report: Some(decode_report(report_wire)?),
                            cost: Some(decode_cost(cost_line)?),
                        }
                    }
                    other => {
                        return Err(SuperviseError::Spec {
                            detail: format!("journal record {i}: unknown outcome `{other}`"),
                        })
                    }
                };
                ckpts.remove(&(dc.letter(), kind.label()));
                done.insert((dc.letter(), kind.label()), cell);
            }
            other => {
                return Err(SuperviseError::Spec {
                    detail: format!("journal record {i}: unknown record `{other:?}`"),
                })
            }
        }
    }

    drive(spec, journal, done, ckpts, run_done, tail, dir, token, opts)
}

fn cell_key<'a>(
    toks: &mut impl Iterator<Item = &'a str>,
    record: usize,
) -> Result<(DataCenterId, PlannerKind), SuperviseError> {
    let bad = |detail: String| SuperviseError::Spec { detail };
    let letter = toks
        .next()
        .and_then(|s| (s.len() == 1).then(|| s.chars().next().unwrap()))
        .ok_or_else(|| bad(format!("journal record {record}: missing data-center letter")))?;
    let dc = dc_from_letter(letter)
        .ok_or_else(|| bad(format!("journal record {record}: unknown data center `{letter}`")))?;
    let kind = toks
        .next()
        .and_then(PlannerKind::parse)
        .ok_or_else(|| bad(format!("journal record {record}: unknown planner")))?;
    Ok((dc, kind))
}

thread_local! {
    /// Whether the *current thread* is inside a supervised cell body
    /// (panics are captured instead of printed).
    static PANIC_ARMED: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
    /// Backtrace captured by the hook for the most recent armed panic.
    static CELL_PANIC: std::cell::RefCell<Option<String>> =
        const { std::cell::RefCell::new(None) };
}

/// Installs (once, process-wide) a panic hook that captures the
/// backtrace of supervised-cell panics into a thread-local and stays
/// silent, while delegating every other panic to the previous hook
/// untouched.
fn install_cell_panic_hook() {
    static INSTALL: Once = Once::new();
    INSTALL.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if PANIC_ARMED.with(std::cell::Cell::get) {
                let bt = std::backtrace::Backtrace::force_capture().to_string();
                CELL_PANIC.with(|c| *c.borrow_mut() = Some(bt));
            } else {
                prev(info);
            }
        }));
    });
}

/// Runs `f` with panic isolation: a panic becomes
/// `Err((single-line message, backtrace))` instead of unwinding into
/// the supervisor.
fn catch_cell_panic<T>(f: impl FnOnce() -> T) -> Result<T, (String, String)> {
    install_cell_panic_hook();
    PANIC_ARMED.with(|a| a.set(true));
    let out = catch_unwind(AssertUnwindSafe(f));
    PANIC_ARMED.with(|a| a.set(false));
    match out {
        Ok(v) => Ok(v),
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_owned()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_owned()
            };
            let message = message.replace(['\n', '\r'], " ");
            let backtrace = CELL_PANIC.with(|c| c.borrow_mut().take()).unwrap_or_default();
            Err((message, backtrace))
        }
    }
}

/// Live telemetry and cancellation surface of one running cell attempt,
/// shared between the worker running the cell and the monitor thread.
struct CellWatch {
    dc: char,
    planner: &'static str,
    heartbeat: Arc<Heartbeat>,
    /// Replay hours completed by this attempt so far.
    hours: AtomicUsize,
    started: Instant,
    /// Watchdog verdict; the cell polls this at every hour boundary and
    /// the chaos hang loop.
    fired: AtomicBool,
    /// Why the watchdog fired (written before `fired` is set).
    reason: Mutex<Option<String>>,
    /// True while the attempt is actually executing.
    armed: AtomicBool,
    /// Last journaled heartbeat watermark: (when, hours).
    watermark: Mutex<(Instant, usize)>,
}

impl CellWatch {
    fn new(dc: DataCenterId, kind: PlannerKind) -> Self {
        Self {
            dc: dc.letter(),
            planner: kind.label(),
            heartbeat: Arc::new(Heartbeat::new()),
            hours: AtomicUsize::new(0),
            started: Instant::now(),
            fired: AtomicBool::new(false),
            reason: Mutex::new(None),
            armed: AtomicBool::new(true),
            watermark: Mutex::new((Instant::now(), 0)),
        }
    }
}

/// How one supervised attempt ended, from the supervisor's viewpoint.
enum CellRun {
    /// Terminal outcome, already journaled.
    Done(Box<CellReport>),
    /// Checkpointed and yielded to cancellation / sibling abort.
    Yielded,
    /// Transient failure (watchdog stop); the last checkpoint is intact
    /// and the cell is eligible for retry. Panics take the same path
    /// via [`catch_cell_panic`].
    Transient {
        kind: &'static str,
        message: String,
        backtrace: String,
    },
}

/// Mutable health-board entry for one cell (see [`crate::health`]).
struct CellHealthState {
    state: &'static str,
    attempt: usize,
    hours_done: usize,
    incidents: Vec<String>,
}

/// Shared per-run executor state, borrowed by every worker thread.
struct Executor<'a> {
    spec: &'a StudySpec,
    opts: &'a RunOptions,
    dir: &'a Path,
    journal: Mutex<Journal>,
    token: &'a CancelToken,
    /// Lazily prepared per-data-center studies, indexed as `spec.dcs`.
    /// `OnceLock` blocks racing workers until the first finishes the
    /// (expensive) trace generation, so each DC is prepared exactly
    /// once. A panic inside `get_or_init` leaves the lock uninitialised
    /// (not poisoned), so a retry simply prepares again.
    studies: Vec<OnceLock<Study>>,
    /// Latest known checkpoint per cell: seeded from the journal on
    /// resume, updated as cells checkpoint, and the restart point for
    /// retried attempts.
    latest: Mutex<BTreeMap<(char, &'static str), ReplayCheckpoint>>,
    /// Next position in the pending list to claim.
    next: AtomicUsize,
    /// Set when any worker hits a supervisor-fatal error; others stop at
    /// the next hour boundary (checkpointing first, so no work is lost).
    abort: AtomicBool,
    /// Set when the cancel token stopped a worker mid-grid.
    interrupted: AtomicBool,
    fatal: Mutex<Option<SuperviseError>>,
    finished: Mutex<Vec<(usize, CellReport)>>,
    /// One watch per attempt, newest last; the monitor sweeps these.
    watches: Mutex<Vec<Arc<CellWatch>>>,
    /// Health board keyed by cell, rendered to `health.json`.
    health: Mutex<BTreeMap<(char, &'static str), CellHealthState>>,
    /// One-shot chaos bookkeeping: set once the hook has fired.
    chaos_fired: AtomicBool,
    /// Tells the monitor thread to exit.
    monitor_stop: AtomicBool,
}

impl Executor<'_> {
    fn journal(&self) -> std::sync::MutexGuard<'_, Journal> {
        self.journal
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    /// Claims and runs pending cells until the grid is drained, the
    /// token fires, or a fatal error (here or in a sibling) stops the
    /// run.
    fn work(&self, grid: &[(DataCenterId, PlannerKind)], pending: &[usize]) {
        loop {
            if self.abort.load(Ordering::SeqCst) {
                return;
            }
            let slot = self.next.fetch_add(1, Ordering::SeqCst);
            let Some(&idx) = pending.get(slot) else {
                return;
            };
            let (dc, kind) = grid[idx];
            if self.token.is_cancelled() {
                self.interrupted.store(true, Ordering::SeqCst);
                return;
            }
            // A resumed spec can disagree with the journaled grid
            // (edited spec file, version skew). Degrade the cell with a
            // typed error instead of panicking and killing this worker.
            let Some(di) = self.spec.dcs.iter().position(|d| *d == dc) else {
                let error = StudyError::SpecMismatch {
                    detail: format!(
                        "grid cell {} {} names a data center absent from the spec",
                        dc.letter(),
                        kind.label()
                    ),
                }
                .to_string();
                let cell = CellReport {
                    dc,
                    kind,
                    outcome: CellOutcome::Aborted { error },
                    report: None,
                    cost: None,
                };
                let journaled = append_cell_done(&mut self.journal(), &cell);
                self.set_health(dc, kind, "aborted", 1, None);
                match journaled {
                    Ok(()) => {
                        self.finished
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .push((idx, cell));
                        continue;
                    }
                    Err(e) => {
                        self.fatal
                            .lock()
                            .unwrap_or_else(std::sync::PoisonError::into_inner)
                            .get_or_insert(e);
                        self.abort.store(true, Ordering::SeqCst);
                        return;
                    }
                }
            };
            match self.run_cell_supervised(dc, kind, di) {
                Ok(Some(cell)) => self
                    .finished
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .push((idx, cell)),
                Ok(None) => return,
                Err(e) => {
                    let mut fatal = self
                        .fatal
                        .lock()
                        .unwrap_or_else(std::sync::PoisonError::into_inner);
                    fatal.get_or_insert(e);
                    self.abort.store(true, Ordering::SeqCst);
                    return;
                }
            }
        }
    }

    /// Runs one cell to a terminal outcome (`Some`) or yields (`None`)
    /// on cancellation / sibling abort, retrying transient failures —
    /// panics and watchdog stops — from the last journaled checkpoint
    /// under the session's [`CellRetryPolicy`], and quarantining the
    /// cell once attempts are exhausted.
    fn run_cell_supervised(
        &self,
        dc: DataCenterId,
        kind: PlannerKind,
        di: usize,
    ) -> Result<Option<CellReport>, SuperviseError> {
        let max_attempts = self.opts.retry.max_attempts.max(1);
        let mut incidents: Vec<String> = Vec::new();
        let mut attempt = 1usize;
        loop {
            self.set_health(dc, kind, "running", attempt, None);
            let watch = Arc::new(CellWatch::new(dc, kind));
            self.watches
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .push(Arc::clone(&watch));
            let caught = catch_cell_panic(|| {
                let study =
                    self.studies[di].get_or_init(|| Study::prepare(&self.spec.study_config(dc)));
                self.run_attempt(dc, kind, study, &watch, attempt, attempt >= max_attempts)
            });
            watch.armed.store(false, Ordering::SeqCst);
            let run = match caught {
                Ok(r) => r?,
                Err((message, backtrace)) => CellRun::Transient {
                    kind: "panic",
                    message,
                    backtrace,
                },
            };
            match run {
                CellRun::Done(cell) => {
                    let hours = cell.report.as_ref().map_or(0, |r| r.hours);
                    self.set_health(dc, kind, cell.outcome.label(), attempt, Some(hours));
                    return Ok(Some(*cell));
                }
                CellRun::Yielded => {
                    // Record how far the attempt got so health.json
                    // carries partial progress for interrupted cells
                    // (serve's 504 body reads it back).
                    let hours = watch.hours.load(Ordering::SeqCst);
                    self.set_health(dc, kind, "interrupted", attempt, Some(hours));
                    return Ok(None);
                }
                CellRun::Transient {
                    kind: incident_kind,
                    message,
                    backtrace,
                } => {
                    append_cell_crashed(
                        &mut self.journal(),
                        dc,
                        kind,
                        attempt,
                        incident_kind,
                        &message,
                        &backtrace,
                    )?;
                    let incident = format!("attempt {attempt}: {incident_kind}: {message}");
                    incidents.push(incident.clone());
                    self.push_incident(dc, kind, incident);
                    if attempt >= max_attempts {
                        let cell = CellReport {
                            dc,
                            kind,
                            outcome: CellOutcome::Quarantined {
                                attempts: attempt,
                                incidents: incidents.clone(),
                            },
                            report: None,
                            cost: None,
                        };
                        append_cell_done(&mut self.journal(), &cell)?;
                        self.set_health(dc, kind, "quarantined", attempt, None);
                        return Ok(Some(cell));
                    }
                    let next = attempt + 1;
                    append_cell_retried(&mut self.journal(), dc, kind, next)?;
                    self.set_health(dc, kind, "backoff", attempt, None);
                    let delay =
                        self.opts
                            .retry
                            .backoff_secs(self.spec.seed, dc.letter(), kind.label(), next);
                    if !self.backoff(delay) {
                        if self.token.is_cancelled() {
                            self.interrupted.store(true, Ordering::SeqCst);
                        }
                        let hours = watch.hours.load(Ordering::SeqCst);
                        self.set_health(dc, kind, "interrupted", attempt, Some(hours));
                        return Ok(None);
                    }
                    attempt = next;
                }
            }
        }
    }

    /// Sleeps `secs` in small slices so cancellation stays responsive;
    /// `false` means the wait was cut short by the token or an abort.
    fn backoff(&self, secs: f64) -> bool {
        let secs = if secs.is_finite() { secs.max(0.0) } else { 0.0 };
        let deadline = Instant::now() + Duration::from_secs_f64(secs);
        while Instant::now() < deadline {
            if self.token.is_cancelled() || self.abort.load(Ordering::SeqCst) {
                return false;
            }
            std::thread::sleep(Duration::from_millis(20));
        }
        true
    }

    fn latest_ckpt(&self, dc: DataCenterId, kind: PlannerKind) -> Option<ReplayCheckpoint> {
        self.latest
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .get(&(dc.letter(), kind.label()))
            .cloned()
    }

    fn remember_ckpt(&self, dc: DataCenterId, kind: PlannerKind, ck: ReplayCheckpoint) {
        self.latest
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .insert((dc.letter(), kind.label()), ck);
    }

    /// Whether the chaos hook should fire now (consumes the one-shot).
    fn chaos_take(&self, chaos: &ChaosConfig) -> bool {
        if chaos.one_shot {
            !self.chaos_fired.swap(true, Ordering::SeqCst)
        } else {
            true
        }
    }

    /// Runs one attempt of one cell. Journal appends take the lock per
    /// record and never hold it across replay work. On a watchdog stop
    /// with retries left, checkpoints and reports `Transient`; on the
    /// final attempt the cell degrades with its partial report instead.
    fn run_attempt(
        &self,
        dc: DataCenterId,
        kind: PlannerKind,
        study: &Study,
        watch: &CellWatch,
        attempt: usize,
        final_attempt: bool,
    ) -> Result<CellRun, SuperviseError> {
        let spec = self.spec;
        let abort_cell = |error: String| CellReport {
            dc,
            kind,
            outcome: CellOutcome::Aborted { error },
            report: None,
            cost: None,
        };
        let config = *study.config();
        let plan = match study.plan(kind) {
            Ok(p) => p,
            Err(e) => {
                let cell = abort_cell(e.to_string());
                append_cell_done(&mut self.journal(), &cell)?;
                return Ok(CellRun::Done(Box::new(cell)));
            }
        };
        let n_hosts = plan.dc.len();
        let mut scratch = CheckScratch::default();
        let mut prev_ckpt = self.latest_ckpt(dc, kind);
        if attempt > 1 {
            // The previous attempt died uncleanly; re-validate the
            // restart point before trusting it.
            if let Some(ck) = prev_ckpt.as_ref() {
                if let Err(violation) = check_retry_checkpoint(ck, n_hosts) {
                    let record = self.journal().records().len();
                    return Err(SuperviseError::Invariant { violation, record });
                }
            }
        }
        let mut replay = match prev_ckpt.as_ref() {
            Some(ck) => Replay::resume(
                study.input(),
                &plan,
                &config.emulator,
                spec.faults.as_ref(),
                ck,
            )?,
            None => {
                if attempt == 1 {
                    self.journal().append(
                        format!("cell-start {} {}", dc.letter(), kind.label()).as_bytes(),
                    )?;
                }
                match Replay::new(
                    study.input(),
                    &plan,
                    &config.emulator,
                    spec.faults.as_ref(),
                ) {
                    Ok(r) => r,
                    Err(e) => {
                        let cell = abort_cell(e.to_string());
                        append_cell_done(&mut self.journal(), &cell)?;
                        return Ok(CellRun::Done(Box::new(cell)));
                    }
                }
            }
        };
        replay.set_heartbeat(Arc::clone(&watch.heartbeat));
        watch.hours.store(replay.hour(), Ordering::SeqCst);
        watch.heartbeat.beat();
        let chaos = self.opts.chaos.as_ref().filter(|c| c.matches(dc, kind));

        let cell_started = Instant::now();
        let outcome = loop {
            if self.token.is_cancelled() || self.abort.load(Ordering::SeqCst) {
                let ck = replay.checkpoint();
                append_checkpoint(&mut self.journal(), dc, kind, &ck)?;
                self.remember_ckpt(dc, kind, ck);
                if self.token.is_cancelled() {
                    self.interrupted.store(true, Ordering::SeqCst);
                }
                return Ok(CellRun::Yielded);
            }
            if watch.fired.load(Ordering::SeqCst) {
                let reason = watch
                    .reason
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .take()
                    .unwrap_or_else(|| "watchdog fired".to_owned());
                if final_attempt {
                    // No retries left: keep the partial work as a
                    // degraded cell instead of quarantining silence.
                    break CellOutcome::Degraded {
                        reason,
                        hours_done: replay.hour(),
                    };
                }
                let ck = replay.checkpoint();
                append_checkpoint(&mut self.journal(), dc, kind, &ck)?;
                self.remember_ckpt(dc, kind, ck);
                return Ok(CellRun::Transient {
                    kind: "watchdog",
                    message: reason,
                    backtrace: String::new(),
                });
            }
            if replay.is_done() {
                break CellOutcome::Completed;
            }
            if let Some(max_hours) = spec.budget.max_hours {
                if replay.hour() >= max_hours {
                    break CellOutcome::Degraded {
                        reason: format!("step budget of {max_hours} hours exhausted"),
                        hours_done: replay.hour(),
                    };
                }
            }
            if let Some(max_secs) = spec.budget.max_wall_secs {
                let elapsed = cell_started.elapsed().as_secs_f64();
                if elapsed > max_secs {
                    break CellOutcome::Degraded {
                        reason: format!("wall-clock budget of {max_secs}s exhausted"),
                        hours_done: replay.hour(),
                    };
                }
            }
            if let Some(c) = chaos {
                if replay.hour() == c.hour && self.chaos_take(c) {
                    match c.mode {
                        ChaosMode::Panic => panic!(
                            "chaos: injected panic in cell {}/{} before hour {}",
                            dc.letter(),
                            kind.label(),
                            c.hour
                        ),
                        ChaosMode::Hang => {
                            // Go silent until the watchdog (or a
                            // cancellation) notices; bounded so a
                            // watchdog-less run cannot wedge forever.
                            let hung = Instant::now();
                            while !watch.fired.load(Ordering::SeqCst)
                                && !self.token.is_cancelled()
                                && !self.abort.load(Ordering::SeqCst)
                                && hung.elapsed() < Duration::from_secs(30)
                            {
                                std::thread::sleep(Duration::from_millis(10));
                            }
                            continue;
                        }
                    }
                }
            }
            if let Err(e) = replay.step() {
                break CellOutcome::Aborted {
                    error: e.to_string(),
                };
            }
            self.token.note_hour();
            watch.hours.store(replay.hour(), Ordering::SeqCst);
            if replay.hour() % spec.checkpoint_every_hours == 0 || replay.is_done() {
                let ck = replay.checkpoint();
                if let Err(violation) =
                    check_checkpoint_with(&mut scratch, &ck, n_hosts, prev_ckpt.as_ref())
                {
                    let record = self.journal().records().len();
                    return Err(SuperviseError::Invariant { violation, record });
                }
                append_checkpoint(&mut self.journal(), dc, kind, &ck)?;
                self.remember_ckpt(dc, kind, ck.clone());
                prev_ckpt = Some(ck);
            }
        };

        let cell = match outcome {
            CellOutcome::Aborted { error } => abort_cell(error),
            outcome => {
                let report = replay.into_report();
                let cost = cost_summary(&report, &config.cost_model);
                CellReport {
                    dc,
                    kind,
                    outcome,
                    report: Some(report),
                    cost: Some(cost),
                }
            }
        };
        append_cell_done(&mut self.journal(), &cell)?;
        Ok(CellRun::Done(Box::new(cell)))
    }

    fn set_health(
        &self,
        dc: DataCenterId,
        kind: PlannerKind,
        state: &'static str,
        attempt: usize,
        hours_done: Option<usize>,
    ) {
        let mut health = self
            .health
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let entry = health
            .entry((dc.letter(), kind.label()))
            .or_insert_with(|| CellHealthState {
                state: "pending",
                attempt: 0,
                hours_done: 0,
                incidents: Vec::new(),
            });
        entry.state = state;
        entry.attempt = attempt;
        if let Some(hours) = hours_done {
            entry.hours_done = hours;
        }
    }

    fn push_incident(&self, dc: DataCenterId, kind: PlannerKind, incident: String) {
        let mut health = self
            .health
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if let Some(entry) = health.get_mut(&(dc.letter(), kind.label())) {
            entry.incidents.push(incident);
        }
    }

    /// Composes the health board and live watch telemetry into one
    /// snapshot, grid order.
    fn health_snapshot(&self, status: &str) -> HealthSnapshot {
        let hours_total = self.spec.eval_days * 24;
        let watches = self
            .watches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let health = self
            .health
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let mut cells = Vec::new();
        for &dc in &self.spec.dcs {
            for &kind in &self.spec.planners {
                let key = (dc.letter(), kind.label());
                let (state, attempt, mut hours_done, incidents) = match health.get(&key) {
                    Some(h) => (h.state, h.attempt, h.hours_done, h.incidents.clone()),
                    None => ("pending", 0, 0, Vec::new()),
                };
                let mut steps = 0;
                let mut beat_age_secs = 0.0;
                let mut steps_per_sec = 0.0;
                if let Some(w) = watches
                    .iter()
                    .rev()
                    .find(|w| w.dc == key.0 && w.planner == key.1)
                {
                    steps = w.heartbeat.steps();
                    beat_age_secs = w.heartbeat.secs_since_last_beat();
                    let elapsed = w.started.elapsed().as_secs_f64();
                    if elapsed > 0.0 {
                        steps_per_sec = steps as f64 / elapsed;
                    }
                    if state == "running" {
                        hours_done = w.hours.load(Ordering::SeqCst);
                    }
                }
                cells.push(CellHealth {
                    cell: format!("{}/{}", key.0, key.1),
                    state: state.to_owned(),
                    attempt,
                    hours_done,
                    hours_total,
                    steps,
                    beat_age_secs,
                    steps_per_sec,
                    incidents,
                });
            }
        }
        HealthSnapshot {
            status: status.to_owned(),
            cells,
            serve: None,
        }
    }

    /// Atomically (re)writes `health.json`. Telemetry is best-effort by
    /// design: a failed write never fails the study.
    fn write_health(&self, status: &str) {
        let snapshot = self.health_snapshot(status);
        let _ = write_atomic(&self.dir.join(HEALTH_FILE), snapshot.to_json().as_bytes());
    }

    /// Monitor loop: watchdog sweep, heartbeat watermarks, periodic
    /// `health.json` rewrites. Exits when `monitor_stop` is set.
    fn monitor(&self) {
        let mut last_health = Instant::now();
        loop {
            if self.monitor_stop.load(Ordering::SeqCst) {
                return;
            }
            self.sweep_watchdog();
            self.journal_watermarks();
            if last_health.elapsed() >= Duration::from_millis(500) {
                let status = if self.token.is_cancelled() {
                    "interrupted"
                } else {
                    "running"
                };
                self.write_health(status);
                last_health = Instant::now();
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Fires the cooperative watchdog on any armed cell whose heartbeat
    /// is older than the session deadline.
    fn sweep_watchdog(&self) {
        let Some(timeout) = self.opts.heartbeat_timeout_secs else {
            return;
        };
        let watches = self
            .watches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for w in watches.iter() {
            if !w.armed.load(Ordering::SeqCst) || w.fired.load(Ordering::SeqCst) {
                continue;
            }
            let age = w.heartbeat.secs_since_last_beat();
            if age > timeout {
                *w.reason
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(format!(
                    "watchdog: no heartbeat for {age:.1}s (timeout {timeout}s)"
                ));
                w.fired.store(true, Ordering::SeqCst);
            }
        }
    }

    /// Journals a `heartbeat` progress watermark (at most one per cell
    /// per ~2s, only when hours advanced) so a post-mortem can tell how
    /// far a dead cell actually got between checkpoints. Best-effort.
    fn journal_watermarks(&self) {
        let watches = self
            .watches
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        for w in watches.iter() {
            if !w.armed.load(Ordering::SeqCst) {
                continue;
            }
            let hours = w.hours.load(Ordering::SeqCst);
            let mut wm = w
                .watermark
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if wm.0.elapsed() >= Duration::from_secs(2) && hours > wm.1 {
                *wm = (Instant::now(), hours);
                drop(wm);
                let _ = self
                    .journal()
                    .append(format!("heartbeat {} {} {hours}", w.dc, w.planner).as_bytes());
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn drive(
    spec: StudySpec,
    journal: Journal,
    done: BTreeMap<(char, &'static str), CellReport>,
    ckpts: BTreeMap<(char, &'static str), ReplayCheckpoint>,
    run_done: bool,
    tail_dropped: Option<TailCorruption>,
    dir: &Path,
    token: &CancelToken,
    opts: &RunOptions,
) -> Result<StudyReport, SuperviseError> {
    // The grid in output order (data center major, planner minor); done
    // cells slot straight in, the rest are claimed by workers.
    let grid: Vec<(DataCenterId, PlannerKind)> = spec
        .dcs
        .iter()
        .flat_map(|&dc| spec.planners.iter().map(move |&kind| (dc, kind)))
        .collect();
    let mut slots: Vec<Option<CellReport>> = grid
        .iter()
        .map(|&(dc, kind)| done.get(&(dc.letter(), kind.label())).cloned())
        .collect();
    let mut pending: Vec<usize> = (0..grid.len()).filter(|&i| slots[i].is_none()).collect();

    let workers = opts.jobs.max(1).min(pending.len().max(1));
    if workers > 1 {
        // Claim planner-major so concurrent workers start on *different*
        // data centers and their `Study::prepare` calls overlap instead
        // of serialising on one `OnceLock`. Output order is unaffected:
        // finished cells are merged back by grid index.
        let planners = spec.planners.len().max(1);
        pending.sort_by_key(|&idx| (idx % planners, idx / planners));
    }

    let exec = Executor {
        spec: &spec,
        opts,
        dir,
        journal: Mutex::new(journal),
        token,
        studies: spec.dcs.iter().map(|_| OnceLock::new()).collect(),
        latest: Mutex::new(ckpts),
        next: AtomicUsize::new(0),
        abort: AtomicBool::new(false),
        interrupted: AtomicBool::new(false),
        fatal: Mutex::new(None),
        finished: Mutex::new(Vec::new()),
        watches: Mutex::new(Vec::new()),
        health: Mutex::new(BTreeMap::new()),
        chaos_fired: AtomicBool::new(false),
        monitor_stop: AtomicBool::new(false),
    };

    // Seed the health board with terminal outcomes restored from the
    // journal, so a resumed run's health.json covers the whole grid.
    for cell in slots.iter().flatten() {
        let attempt = match &cell.outcome {
            CellOutcome::Quarantined { attempts, .. } => *attempts,
            _ => 1,
        };
        let hours = cell.report.as_ref().map_or(0, |r| r.hours);
        exec.set_health(cell.dc, cell.kind, cell.outcome.label(), attempt, Some(hours));
    }
    exec.write_health(if pending.is_empty() { "completed" } else { "running" });

    if !pending.is_empty() {
        if token.is_cancelled() {
            exec.interrupted.store(true, Ordering::SeqCst);
        } else {
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| s.spawn(|| exec.work(&grid, &pending)))
                    .collect();
                let monitor = s.spawn(|| exec.monitor());
                let mut worker_panic = None;
                for h in handles {
                    if let Err(p) = h.join() {
                        worker_panic = Some(p);
                    }
                }
                exec.monitor_stop.store(true, Ordering::SeqCst);
                if let Err(p) = monitor.join() {
                    worker_panic = Some(p);
                }
                // Cell panics are caught inside the workers; anything
                // arriving here is a supervisor bug and must surface.
                if let Some(p) = worker_panic {
                    std::panic::resume_unwind(p);
                }
            });
        }
    }

    if let Some(e) = exec
        .fatal
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .take()
    {
        exec.write_health("failed");
        return Err(e);
    }
    for (idx, cell) in exec
        .finished
        .lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
        .drain(..)
    {
        slots[idx] = Some(cell);
    }
    let cells: Vec<CellReport> = slots.into_iter().flatten().collect();

    let status = if exec.interrupted.load(Ordering::SeqCst) {
        StudyStatus::Interrupted
    } else {
        StudyStatus::Completed
    };
    if status == StudyStatus::Completed {
        if !run_done {
            exec.journal().append(b"run-done")?;
        }
        exec.write_health("completed");
        let report = StudyReport {
            spec,
            status,
            cells,
            tail_dropped,
        };
        write_outputs(dir, &report)?;
        return Ok(report);
    }
    exec.write_health("interrupted");
    Ok(StudyReport {
        spec,
        status,
        cells,
        tail_dropped,
    })
}

fn append_checkpoint(
    journal: &mut Journal,
    dc: DataCenterId,
    kind: PlannerKind,
    ck: &ReplayCheckpoint,
) -> Result<(), SuperviseError> {
    let payload = format!(
        "checkpoint {} {}\n{}",
        dc.letter(),
        kind.label(),
        ck.encode()
    );
    journal.append(payload.as_bytes())?;
    Ok(())
}

fn append_cell_done(journal: &mut Journal, cell: &CellReport) -> Result<(), SuperviseError> {
    let head = match &cell.outcome {
        CellOutcome::Completed => {
            format!("cell-done {} {} completed", cell.dc.letter(), cell.kind.label())
        }
        CellOutcome::Degraded { reason, hours_done } => format!(
            "cell-done {} {} degraded {hours_done} {reason}",
            cell.dc.letter(),
            cell.kind.label()
        ),
        CellOutcome::Aborted { error } => format!(
            "cell-done {} {} aborted {error}",
            cell.dc.letter(),
            cell.kind.label()
        ),
        CellOutcome::Crashed { message, .. } => format!(
            "cell-done {} {} crashed {message}",
            cell.dc.letter(),
            cell.kind.label()
        ),
        CellOutcome::Quarantined { attempts, .. } => format!(
            "cell-done {} {} quarantined {attempts}",
            cell.dc.letter(),
            cell.kind.label()
        ),
    };
    let payload = match &cell.outcome {
        CellOutcome::Quarantined { incidents, .. } if !incidents.is_empty() => {
            format!("{head}\n{}", incidents.join("\n"))
        }
        CellOutcome::Crashed { backtrace, .. } if !backtrace.is_empty() => {
            format!("{head}\n{backtrace}")
        }
        _ => match (&cell.cost, &cell.report) {
            (Some(cost), Some(report)) => {
                format!("{head}\n{}\n{}", encode_cost(cost), encode_report(report))
            }
            _ => head,
        },
    };
    journal.append(payload.as_bytes())?;
    Ok(())
}

/// Journals a `cell-crashed` incident: head carries the attempt number,
/// incident kind (`panic` | `watchdog`) and single-line message, the
/// body the backtrace.
fn append_cell_crashed(
    journal: &mut Journal,
    dc: DataCenterId,
    kind: PlannerKind,
    attempt: usize,
    incident_kind: &str,
    message: &str,
    backtrace: &str,
) -> Result<(), SuperviseError> {
    let head = format!(
        "cell-crashed {} {} {attempt} {incident_kind} {message}",
        dc.letter(),
        kind.label()
    );
    let payload = if backtrace.is_empty() {
        head
    } else {
        format!("{head}\n{backtrace}")
    };
    journal.append(payload.as_bytes())?;
    Ok(())
}

/// Journals the decision to re-run a cell as `attempt`.
fn append_cell_retried(
    journal: &mut Journal,
    dc: DataCenterId,
    kind: PlannerKind,
    attempt: usize,
) -> Result<(), SuperviseError> {
    journal.append(format!("cell-retried {} {} {attempt}", dc.letter(), kind.label()).as_bytes())?;
    Ok(())
}

/// Renders the per-cell results table (`cells.csv`). Deterministic: no
/// timestamps or timings, and the digest column is the FNV-1a of the
/// cell report's canonical encoding, so two bit-identical runs produce
/// byte-identical CSVs.
#[must_use]
pub fn cells_table(report: &StudyReport) -> Table {
    let mut t = Table::new(
        "cells",
        &[
            "dc",
            "planner",
            "outcome",
            "hours",
            "hosts",
            "energy_kwh",
            "migrations",
            "crashes",
            "evacuations",
            "downtime_vm_hours",
            "stale_sample_hours",
            "space_cost",
            "power_cost",
            "digest",
        ],
    );
    for cell in &report.cells {
        let (hours, hosts, energy, migrations, crashes, evac, down, stale, digest) =
            match &cell.report {
                Some(r) => (
                    r.hours.to_string(),
                    r.provisioned_hosts.to_string(),
                    fnum(r.energy_kwh, 3),
                    r.migrations.to_string(),
                    r.faults.host_crashes.to_string(),
                    r.faults.evacuations.to_string(),
                    r.faults.downtime_vm_hours.to_string(),
                    r.faults.stale_sample_hours.to_string(),
                    format!("{:016x}", fnv1a(encode_report(r).as_bytes())),
                ),
                None => (
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                    "-".into(),
                ),
            };
        let (space, power) = match &cell.cost {
            Some(c) => (fnum(c.space_cost, 2), fnum(c.power_cost, 2)),
            None => ("-".into(), "-".into()),
        };
        t.push_row([
            cell.dc.letter().to_string(),
            cell.kind.label().to_owned(),
            cell.outcome.label().to_owned(),
            hours,
            hosts,
            energy,
            migrations,
            crashes,
            evac,
            down,
            stale,
            space,
            power,
            digest,
        ]);
    }
    t
}

fn write_outputs(dir: &Path, report: &StudyReport) -> Result<(), SuperviseError> {
    let io_err = |path: &Path| {
        let path = path.to_path_buf();
        move |source| {
            SuperviseError::Journal(JournalError::Io {
                path: path.clone(),
                source,
            })
        }
    };
    let csv_path = dir.join("cells.csv");
    write_atomic(&csv_path, cells_table(report).to_csv().as_bytes())
        .map_err(io_err(&csv_path))?;
    let md_path = dir.join("STUDY.md");
    let md = crate::experiments::study_markdown(report);
    write_atomic(&md_path, md.as_bytes()).map_err(io_err(&md_path))?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("vmcw-supervise-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn tiny_spec() -> StudySpec {
        StudySpec {
            dcs: vec![DataCenterId::Airlines],
            planners: vec![PlannerKind::SemiStatic, PlannerKind::Dynamic],
            ..StudySpec::new(0.02, 5, 5, 1)
        }
    }

    #[test]
    fn spec_round_trips_through_its_encoding() {
        let mut spec = StudySpec::new(0.05, 42, 7, 5);
        spec.faults = Some(FaultConfig::baseline(31));
        spec.budget = CellBudget {
            max_wall_secs: Some(12.5),
            max_hours: Some(48),
        };
        let decoded = StudySpec::decode(&spec.encode()).unwrap();
        assert_eq!(spec, decoded);
        // And the none-variants too.
        let plain = StudySpec::new(1.0, 0, 30, 14);
        assert_eq!(plain, StudySpec::decode(&plain.encode()).unwrap());
    }

    #[test]
    fn fresh_study_completes_and_writes_outputs() {
        let dir = tmp_dir("fresh");
        let report = run_study(&tiny_spec(), &dir, &CancelToken::new()).unwrap();
        assert_eq!(report.status, StudyStatus::Completed);
        assert_eq!(report.cells.len(), 2);
        for cell in &report.cells {
            assert_eq!(cell.outcome, CellOutcome::Completed);
            assert_eq!(cell.report.as_ref().unwrap().hours, 24);
        }
        assert!(dir.join("cells.csv").exists());
        assert!(dir.join("STUDY.md").exists());
        // Starting over in the same directory is refused.
        let err = run_study(&tiny_spec(), &dir, &CancelToken::new()).unwrap_err();
        assert!(matches!(
            err,
            SuperviseError::Journal(JournalError::AlreadyExists { .. })
        ));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn over_budget_cells_degrade_instead_of_killing_the_study() {
        let dir = tmp_dir("degraded");
        let mut spec = tiny_spec();
        spec.budget.max_hours = Some(10);
        let report = run_study(&spec, &dir, &CancelToken::new()).unwrap();
        assert_eq!(report.status, StudyStatus::Completed);
        for cell in &report.cells {
            match &cell.outcome {
                CellOutcome::Degraded { hours_done, .. } => assert_eq!(*hours_done, 10),
                other => panic!("expected degraded, got {other:?}"),
            }
            let r = cell.report.as_ref().unwrap();
            assert_eq!(r.hours, 10, "partial report covers completed hours");
            assert!(cell.cost.is_some());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancelled_study_resumes_to_identical_reports() {
        let clean_dir = tmp_dir("clean");
        let spec = tiny_spec();
        let clean = run_study(&spec, &clean_dir, &CancelToken::new()).unwrap();

        let killed_dir = tmp_dir("killed");
        let token = CancelToken::new();
        token.cancel_after_hours(30); // mid second cell
        let partial = run_study(&spec, &killed_dir, &token).unwrap();
        assert_eq!(partial.status, StudyStatus::Interrupted);
        assert!(partial.cells.len() < clean.cells.len() || partial.cells.is_empty());

        let resumed = resume_study(&killed_dir, None, &CancelToken::new()).unwrap();
        assert_eq!(resumed.status, StudyStatus::Completed);
        assert_eq!(resumed.cells.len(), clean.cells.len());
        for (a, b) in clean.cells.iter().zip(&resumed.cells) {
            assert_eq!(
                encode_report(a.report.as_ref().unwrap()),
                encode_report(b.report.as_ref().unwrap()),
                "cell {}/{} diverged",
                a.dc.letter(),
                a.kind.label()
            );
        }
        // cells.csv must be byte-identical too.
        assert_eq!(
            std::fs::read(clean_dir.join("cells.csv")).unwrap(),
            std::fs::read(killed_dir.join("cells.csv")).unwrap()
        );
        // Resuming a completed journal is idempotent.
        let again = resume_study(&killed_dir, None, &CancelToken::new()).unwrap();
        assert_eq!(again.cells.len(), clean.cells.len());
        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&killed_dir);
    }

    #[test]
    fn worker_count_does_not_change_outputs() {
        let spec = StudySpec {
            dcs: vec![DataCenterId::Airlines, DataCenterId::Banking],
            planners: vec![PlannerKind::SemiStatic, PlannerKind::Dynamic],
            ..StudySpec::new(0.02, 5, 5, 1)
        };
        let serial_dir = tmp_dir("jobs-serial");
        let serial = run_study_jobs(&spec, &serial_dir, &CancelToken::new(), 1).unwrap();
        let parallel_dir = tmp_dir("jobs-parallel");
        let parallel = run_study_jobs(&spec, &parallel_dir, &CancelToken::new(), 4).unwrap();
        assert_eq!(serial.status, StudyStatus::Completed);
        assert_eq!(parallel.status, StudyStatus::Completed);
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!((a.dc, a.kind), (b.dc, b.kind), "grid order must match");
            assert_eq!(
                encode_report(a.report.as_ref().unwrap()),
                encode_report(b.report.as_ref().unwrap()),
                "cell {}/{} diverged across worker counts",
                a.dc.letter(),
                a.kind.label()
            );
        }
        for file in ["cells.csv", "STUDY.md"] {
            assert_eq!(
                std::fs::read(serial_dir.join(file)).unwrap(),
                std::fs::read(parallel_dir.join(file)).unwrap(),
                "{file} differs between --jobs 1 and --jobs 4"
            );
        }
        let _ = std::fs::remove_dir_all(&serial_dir);
        let _ = std::fs::remove_dir_all(&parallel_dir);
    }

    #[test]
    fn parallel_study_killed_and_resumed_matches_serial() {
        let spec = StudySpec {
            dcs: vec![DataCenterId::Airlines, DataCenterId::Banking],
            planners: vec![PlannerKind::SemiStatic, PlannerKind::Dynamic],
            ..StudySpec::new(0.02, 5, 5, 1)
        };
        let clean_dir = tmp_dir("par-clean");
        let clean = run_study_jobs(&spec, &clean_dir, &CancelToken::new(), 1).unwrap();

        let killed_dir = tmp_dir("par-killed");
        let token = CancelToken::new();
        token.cancel_after_hours(30); // fires with several cells in flight
        let partial = run_study_jobs(&spec, &killed_dir, &token, 4).unwrap();
        assert_eq!(partial.status, StudyStatus::Interrupted);

        // Resume under a different worker count than the original run.
        let resumed = resume_study_jobs(&killed_dir, None, &CancelToken::new(), 2).unwrap();
        assert_eq!(resumed.status, StudyStatus::Completed);
        assert_eq!(resumed.cells.len(), clean.cells.len());
        for (a, b) in clean.cells.iter().zip(&resumed.cells) {
            assert_eq!(
                encode_report(a.report.as_ref().unwrap()),
                encode_report(b.report.as_ref().unwrap()),
                "cell {}/{} diverged after parallel kill+resume",
                a.dc.letter(),
                a.kind.label()
            );
        }
        assert_eq!(
            std::fs::read(clean_dir.join("cells.csv")).unwrap(),
            std::fs::read(killed_dir.join("cells.csv")).unwrap()
        );
        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&killed_dir);
    }

    #[test]
    fn resume_without_journal_fails_cleanly() {
        let dir = tmp_dir("nojournal");
        std::fs::create_dir_all(&dir).unwrap();
        let err = resume_study(&dir, None, &CancelToken::new()).unwrap_err();
        assert!(matches!(err, SuperviseError::Journal(_)), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cancel_token_fires_after_armed_hours() {
        let t = CancelToken::new();
        t.cancel_after_hours(3);
        assert!(!t.is_cancelled());
        t.note_hour();
        t.note_hour();
        assert!(!t.is_cancelled());
        t.note_hour();
        assert!(t.is_cancelled());
    }

    #[test]
    fn chaos_cell_ids_parse_and_reject() {
        let c = ChaosConfig::for_cell("B/Dynamic", 3, ChaosMode::Panic, true).unwrap();
        assert_eq!((c.dc, c.planner.as_str(), c.hour), ('B', "Dynamic", 3));
        assert!(c.one_shot);
        // Case-insensitive letter, whitespace tolerated.
        assert!(ChaosConfig::for_cell(" a / Semi-Static ", 0, ChaosMode::Hang, false).is_some());
        for bad in ["", "Dynamic", "Z/Dynamic", "A/NoSuchPlanner", "A/"] {
            assert!(
                ChaosConfig::for_cell(bad, 0, ChaosMode::Panic, false).is_none(),
                "`{bad}` should not parse"
            );
        }
    }

    #[test]
    fn backoff_is_deterministic_exponential_and_jittered() {
        let p = CellRetryPolicy::default_policy();
        let a = p.backoff_secs(5, 'B', "Dynamic", 2);
        assert_eq!(a, p.backoff_secs(5, 'B', "Dynamic", 2), "same key, same wait");
        // Jitter stays within [0.5, 1.5) of the base.
        assert!(a >= p.base_backoff_secs * 0.5 && a < p.base_backoff_secs * 1.5);
        // Distinct cells de-synchronise.
        assert_ne!(a, p.backoff_secs(5, 'A', "Dynamic", 2));
        // Later attempts wait longer on average (factor 2 beats jitter's
        // worst case 1.5/0.5 only after two doublings, so compare 2 vs 4).
        assert!(p.backoff_secs(5, 'B', "Dynamic", 4) > a);
    }

    /// A cell whose every attempt panics is quarantined with its
    /// incident log; its sibling completes untouched; the journal holds
    /// the crash/retry records and resumes idempotently.
    #[test]
    fn panicking_cell_quarantines_and_spares_siblings() {
        let dir = tmp_dir("quarantine");
        let opts = RunOptions {
            retry: CellRetryPolicy {
                max_attempts: 2,
                base_backoff_secs: 0.01,
                backoff_factor: 2.0,
            },
            chaos: ChaosConfig::for_cell("B/Dynamic", 2, ChaosMode::Panic, false),
            ..RunOptions::default()
        };
        let report = run_study_opts(&tiny_spec(), &dir, &CancelToken::new(), &opts).unwrap();
        assert_eq!(report.status, StudyStatus::Completed);
        assert_eq!(report.cells.len(), 2);
        let semi = &report.cells[0];
        assert_eq!(semi.kind, PlannerKind::SemiStatic);
        assert_eq!(semi.outcome, CellOutcome::Completed, "sibling must be spared");
        let dynamic = &report.cells[1];
        match &dynamic.outcome {
            CellOutcome::Quarantined {
                attempts,
                incidents,
            } => {
                assert_eq!(*attempts, 2);
                assert_eq!(incidents.len(), 2);
                assert!(incidents[0].starts_with("attempt 1: panic:"), "{incidents:?}");
                assert!(incidents[1].contains("chaos: injected panic"), "{incidents:?}");
            }
            other => panic!("expected quarantine, got {other:?}"),
        }
        assert!(dynamic.report.is_none());

        // The journal narrates the incident.
        let (journal, tail) = Journal::open(&dir.join(JOURNAL_FILE)).unwrap();
        assert!(tail.is_none());
        let texts: Vec<String> = journal
            .records()
            .iter()
            .map(|r| String::from_utf8_lossy(r).into_owned())
            .collect();
        assert_eq!(
            texts.iter().filter(|t| t.starts_with("cell-crashed B Dynamic")).count(),
            2
        );
        assert!(texts.iter().any(|t| t.starts_with("cell-retried B Dynamic 2")));
        assert!(texts.iter().any(|t| t.starts_with("cell-done B Dynamic quarantined 2")));

        // Health telemetry reflects the quarantine.
        let health_text = std::fs::read_to_string(dir.join(HEALTH_FILE)).unwrap();
        let health = HealthSnapshot::parse(&health_text).unwrap();
        assert_eq!(health.status, "completed");
        let cell = health.cells.iter().find(|c| c.cell == "B/Dynamic").unwrap();
        assert_eq!(cell.state, "quarantined");
        assert_eq!(cell.attempt, 2);
        assert_eq!(cell.incidents.len(), 2);

        // STUDY.md carries the failure matrix.
        let md = std::fs::read_to_string(dir.join("STUDY.md")).unwrap();
        assert!(md.contains("## Failure matrix"), "{md}");

        // Resuming the quarantined study is idempotent.
        let again = resume_study(&dir, None, &CancelToken::new()).unwrap();
        assert_eq!(again.status, StudyStatus::Completed);
        assert_eq!(again.cells[1].outcome, dynamic.outcome);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// One transient panic heals through retry: the final outputs are
    /// byte-identical to a run that never crashed.
    #[test]
    fn one_shot_panic_heals_byte_identically() {
        let clean_dir = tmp_dir("heal-clean");
        let spec = tiny_spec();
        let clean = run_study(&spec, &clean_dir, &CancelToken::new()).unwrap();

        let chaos_dir = tmp_dir("heal-chaos");
        let opts = RunOptions {
            retry: CellRetryPolicy {
                max_attempts: 3,
                base_backoff_secs: 0.01,
                backoff_factor: 2.0,
            },
            chaos: ChaosConfig::for_cell("B/Dynamic", 7, ChaosMode::Panic, true),
            ..RunOptions::default()
        };
        let healed = run_study_opts(&spec, &chaos_dir, &CancelToken::new(), &opts).unwrap();
        assert_eq!(healed.status, StudyStatus::Completed);
        for (a, b) in clean.cells.iter().zip(&healed.cells) {
            assert_eq!(a.outcome, CellOutcome::Completed);
            assert_eq!(b.outcome, CellOutcome::Completed, "healed run must complete");
            assert_eq!(
                encode_report(a.report.as_ref().unwrap()),
                encode_report(b.report.as_ref().unwrap()),
                "cell {}/{} diverged after a healed crash",
                a.dc.letter(),
                a.kind.label()
            );
        }
        for file in ["cells.csv", "STUDY.md"] {
            assert_eq!(
                std::fs::read(clean_dir.join(file)).unwrap(),
                std::fs::read(chaos_dir.join(file)).unwrap(),
                "{file} differs between clean and healed runs"
            );
        }
        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&chaos_dir);
    }

    /// A hang is detected by the watchdog, retried, and heals to a
    /// byte-identical result; a *persistent* hang degrades with the
    /// partial report instead of wedging or quarantining silence.
    #[test]
    fn watchdog_turns_hangs_into_retries_or_degraded() {
        let clean_dir = tmp_dir("hang-clean");
        let spec = tiny_spec();
        let clean = run_study(&spec, &clean_dir, &CancelToken::new()).unwrap();

        // One-shot hang: watchdog fires, the retry heals the cell.
        let healed_dir = tmp_dir("hang-healed");
        let opts = RunOptions {
            retry: CellRetryPolicy {
                max_attempts: 2,
                base_backoff_secs: 0.01,
                backoff_factor: 2.0,
            },
            heartbeat_timeout_secs: Some(1.5),
            chaos: ChaosConfig::for_cell("B/Dynamic", 2, ChaosMode::Hang, true),
            ..RunOptions::default()
        };
        let healed = run_study_opts(&spec, &healed_dir, &CancelToken::new(), &opts).unwrap();
        assert_eq!(healed.status, StudyStatus::Completed);
        for (a, b) in clean.cells.iter().zip(&healed.cells) {
            assert_eq!(b.outcome, CellOutcome::Completed, "{:?}", b.outcome);
            assert_eq!(
                encode_report(a.report.as_ref().unwrap()),
                encode_report(b.report.as_ref().unwrap())
            );
        }
        assert_eq!(
            std::fs::read(clean_dir.join("cells.csv")).unwrap(),
            std::fs::read(healed_dir.join("cells.csv")).unwrap()
        );
        let (journal, _) = Journal::open(&healed_dir.join(JOURNAL_FILE)).unwrap();
        assert!(
            journal.records().iter().any(|r| {
                std::str::from_utf8(r).is_ok_and(|t| {
                    t.starts_with("cell-crashed B Dynamic 1 watchdog")
                })
            }),
            "watchdog stop must be journaled as a crash incident"
        );

        // Persistent hang: the final attempt keeps the completed prefix.
        let degraded_dir = tmp_dir("hang-degraded");
        let opts = RunOptions {
            chaos: ChaosConfig::for_cell("B/Dynamic", 2, ChaosMode::Hang, false),
            ..opts
        };
        let report = run_study_opts(&spec, &degraded_dir, &CancelToken::new(), &opts).unwrap();
        assert_eq!(report.status, StudyStatus::Completed);
        let dynamic = &report.cells[1];
        match &dynamic.outcome {
            CellOutcome::Degraded { reason, hours_done } => {
                assert!(reason.contains("watchdog"), "{reason}");
                assert_eq!(*hours_done, 2);
            }
            other => panic!("expected watchdog degradation, got {other:?}"),
        }
        assert_eq!(
            dynamic.report.as_ref().unwrap().hours,
            2,
            "partial report covers the completed prefix"
        );
        let _ = std::fs::remove_dir_all(&clean_dir);
        let _ = std::fs::remove_dir_all(&healed_dir);
        let _ = std::fs::remove_dir_all(&degraded_dir);
    }
}
