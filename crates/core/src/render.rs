//! Plain-text and CSV rendering of experiment outputs.
//!
//! Every experiment in [`crate::experiments`] produces a [`Table`]; the
//! `figures` harness writes them as CSV into `results/` and prints a
//! short console summary. Keeping the output format this simple avoids
//! pulling plotting dependencies into the workspace — any external tool
//! can render the CSVs.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io;
use std::path::Path;

/// A rectangular, string-typed result table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    /// Identifier, e.g. `fig7` — used as the output file stem.
    pub name: String,
    /// Column headers.
    pub columns: Vec<String>,
    /// Rows; each must have `columns.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    ///
    /// # Panics
    ///
    /// Panics if `columns` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, columns: &[&str]) -> Self {
        assert!(!columns.is_empty(), "a table needs at least one column");
        Self {
            name: name.into(),
            columns: columns.iter().map(|&c| c.to_owned()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width does not match the header.
    pub fn push_row<I, S>(&mut self, row: I)
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(
            row.len(),
            self.columns.len(),
            "row width {} does not match {} columns",
            row.len(),
            self.columns.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders as CSV (RFC-4180-style quoting for cells containing
    /// commas, quotes or newlines).
    #[must_use]
    pub fn to_csv(&self) -> String {
        fn field(s: &str) -> String {
            if s.contains([',', '"', '\n']) {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.to_owned()
            }
        }
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.columns
                .iter()
                .map(|c| field(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| field(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders as a Markdown table.
    #[must_use]
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.columns.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.columns
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as fixed-width aligned text for terminal output.
    #[must_use]
    pub fn to_aligned_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let render_row = |cells: &[String], widths: &[usize], out: &mut String| {
            let line: Vec<String> = cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:<w$}"))
                .collect();
            let _ = writeln!(out, "{}", line.join("  ").trim_end());
        };
        render_row(&self.columns, &widths, &mut out);
        for row in &self.rows {
            render_row(row, &widths, &mut out);
        }
        out
    }

    /// Writes `<dir>/<name>.csv` atomically (temp file + fsync +
    /// rename), so a crash mid-write never leaves a torn CSV behind.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors from creating the directory or writing the
    /// file.
    pub fn write_csv(&self, dir: &Path) -> io::Result<std::path::PathBuf> {
        let path = dir.join(format!("{}.csv", self.name));
        crate::journal::write_atomic(&path, self.to_csv().as_bytes())?;
        Ok(path)
    }
}

/// Formats a float with `digits` decimal places (helper for table rows).
#[must_use]
pub fn fnum(value: f64, digits: usize) -> String {
    format!("{value:.digits$}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_round_trip_basics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(["1", "2"]);
        t.push_row(["x,y", "q\"z"]);
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n1,2\n"));
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"q\"\"z\""));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn markdown_has_separator() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(["1", "2"]);
        let md = t.to_markdown();
        assert!(md.contains("|---|---|"));
        assert!(md.contains("| 1 | 2 |"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(["only-one"]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        let _ = Table::new("demo", &[]);
    }

    #[test]
    fn write_csv_creates_file() {
        let dir = std::env::temp_dir().join("vmcw-render-test");
        let mut t = Table::new("unit", &["v"]);
        t.push_row(["42"]);
        let path = t.write_csv(&dir).unwrap();
        assert_eq!(std::fs::read_to_string(path).unwrap(), "v\n42\n");
    }

    #[test]
    fn aligned_text_pads_columns() {
        let mut t = Table::new("demo", &["name", "v"]);
        t.push_row(["a", "1"]);
        t.push_row(["longer", "22"]);
        let txt = t.to_aligned_text();
        let lines: Vec<&str> = txt.lines().collect();
        assert_eq!(lines[0], "name    v");
        assert_eq!(lines[1], "a       1");
        assert_eq!(lines[2], "longer  22");
    }

    #[test]
    fn fnum_formats() {
        assert_eq!(fnum(1.23456, 2), "1.23");
        assert_eq!(fnum(1.0, 0), "1");
    }
}
