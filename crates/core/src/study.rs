//! End-to-end consolidation studies.
//!
//! A [`Study`] is the unit of the paper's evaluation (§5): generate (or
//! receive) a data-center workload, plan it with a consolidation variant,
//! replay the evaluation window through the emulator, and compute costs.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use vmcw_cluster::cost::FacilityCostModel;
use vmcw_consolidation::input::{PlanningInput, VirtualizationModel};
use vmcw_consolidation::placement::PackError;
use vmcw_consolidation::planner::{ConsolidationPlan, Planner, PlannerKind};
use vmcw_emulator::engine::{emulate, emulate_with_faults, EmulationReport, EmulatorConfig};
use vmcw_emulator::engine::EmulatorError;
use vmcw_emulator::faults::FaultConfig;
use vmcw_emulator::report::{cost_summary, CostSummary};
use vmcw_trace::datacenters::{DataCenterId, GeneratedWorkload, GeneratorConfig};

/// Errors a study can produce: planning or replay.
#[derive(Debug, Clone, PartialEq)]
pub enum StudyError {
    /// The planner failed to pack the VMs.
    Pack(PackError),
    /// The emulator rejected the plan or its fault configuration.
    Emulator(EmulatorError),
    /// A resumed or externally-supplied study references cells the
    /// spec does not contain (corrupted journal, edited spec, version
    /// skew). Degrades the cell instead of killing the supervisor.
    SpecMismatch {
        /// Human-readable description of the inconsistency.
        detail: String,
    },
}

impl fmt::Display for StudyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StudyError::Pack(e) => e.fmt(f),
            StudyError::Emulator(e) => e.fmt(f),
            StudyError::SpecMismatch { detail } => {
                write!(f, "study spec mismatch: {detail}")
            }
        }
    }
}

impl Error for StudyError {}

impl From<PackError> for StudyError {
    fn from(e: PackError) -> Self {
        StudyError::Pack(e)
    }
}

impl From<EmulatorError> for StudyError {
    fn from(e: EmulatorError) -> Self {
        StudyError::Emulator(e)
    }
}

/// Configuration of one study.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StudyConfig {
    /// The modelled data center.
    pub dc: DataCenterId,
    /// Server-count scale (1.0 = the Table 2 population).
    pub scale: f64,
    /// Planning-history length in days (paper: 30).
    pub history_days: usize,
    /// Evaluation length in days (Table 3: 14).
    pub eval_days: usize,
    /// Generator seed.
    pub seed: u64,
    /// Planner configuration (Table 3 baseline by default).
    pub planner: Planner,
    /// Virtualisation overhead model.
    pub virt: VirtualizationModel,
    /// Emulator configuration.
    pub emulator: EmulatorConfig,
    /// Facilities cost model.
    pub cost_model: FacilityCostModel,
}

impl StudyConfig {
    /// The paper's baseline (Table 3): full scale, 30-day history,
    /// 14-day evaluation, 2-hour dynamic interval, 20% reservation.
    #[must_use]
    pub fn paper_baseline(dc: DataCenterId, seed: u64) -> Self {
        Self {
            dc,
            scale: 1.0,
            history_days: 30,
            eval_days: 14,
            seed,
            planner: Planner::baseline(),
            virt: VirtualizationModel::baseline(),
            emulator: EmulatorConfig::default(),
            cost_model: FacilityCostModel::default_blades(),
        }
    }

    /// A shrunk configuration for tests and quick sweeps: 5% of the
    /// servers, 7-day history, 5-day evaluation.
    #[must_use]
    pub fn quick(dc: DataCenterId, seed: u64) -> Self {
        Self {
            scale: 0.05,
            history_days: 7,
            eval_days: 5,
            ..Self::paper_baseline(dc, seed)
        }
    }

    /// Total trace length in days.
    #[must_use]
    pub fn total_days(&self) -> usize {
        self.history_days + self.eval_days
    }
}

/// One planner's outcome within a study.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StudyRun {
    /// The planner variant.
    pub kind: PlannerKind,
    /// The plan (placements, migrations, provisioned hosts).
    pub plan: ConsolidationPlan,
    /// The emulated statistics.
    pub report: EmulationReport,
    /// Space/power costs under the study's cost model.
    pub cost: CostSummary,
}

/// A prepared study: workload generated, planning input built.
#[derive(Debug, Clone)]
pub struct Study {
    config: StudyConfig,
    workload: GeneratedWorkload,
    input: PlanningInput,
}

impl Study {
    /// Generates the workload and builds the planning input.
    #[must_use]
    pub fn prepare(config: &StudyConfig) -> Self {
        let workload = GeneratorConfig::new(config.dc)
            .scale(config.scale)
            .days(config.total_days())
            .generate(config.seed);
        let input = PlanningInput::from_workload(&workload, config.history_days, config.virt);
        Self {
            config: *config,
            workload,
            input,
        }
    }

    /// Builds a study around an existing workload (e.g. one loaded from a
    /// file or shared across configurations).
    #[must_use]
    pub fn from_workload(config: &StudyConfig, workload: GeneratedWorkload) -> Self {
        let input = PlanningInput::from_workload(&workload, config.history_days, config.virt);
        Self {
            config: *config,
            workload,
            input,
        }
    }

    /// The study configuration.
    #[must_use]
    pub fn config(&self) -> &StudyConfig {
        &self.config
    }

    /// The generated workload.
    #[must_use]
    pub fn workload(&self) -> &GeneratedWorkload {
        &self.workload
    }

    /// The planning input.
    #[must_use]
    pub fn input(&self) -> &PlanningInput {
        &self.input
    }

    /// Plans with `kind` without emulating — for callers that drive the
    /// replay themselves (the crash-safe supervisor steps a
    /// [`Replay`](vmcw_emulator::Replay) hour by hour under budgets and
    /// checkpoints).
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from the planner.
    pub fn plan(&self, kind: PlannerKind) -> Result<ConsolidationPlan, StudyError> {
        Ok(self.config.planner.plan(kind, &self.input)?)
    }

    /// Plans with `kind` and emulates the evaluation window.
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from the planner and [`EmulatorError`]
    /// from the replay.
    pub fn run(&self, kind: PlannerKind) -> Result<StudyRun, StudyError> {
        let plan = self.config.planner.plan(kind, &self.input)?;
        let report = emulate(&self.input, &plan, &self.config.emulator)?;
        let cost = cost_summary(&report, &self.config.cost_model);
        Ok(StudyRun {
            kind,
            plan,
            report,
            cost,
        })
    }

    /// Plans with `kind` and replays the evaluation window under fault
    /// injection. Runs sharing `faults.seed` face the identical fault
    /// timeline, so ledgers are comparable across planners.
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from the planner and [`EmulatorError`]
    /// from the faulted replay.
    pub fn run_faulted(
        &self,
        kind: PlannerKind,
        faults: &FaultConfig,
    ) -> Result<StudyRun, StudyError> {
        let plan = self.config.planner.plan(kind, &self.input)?;
        let report = emulate_with_faults(&self.input, &plan, &self.config.emulator, faults)?;
        let cost = cost_summary(&report, &self.config.cost_model);
        Ok(StudyRun {
            kind,
            plan,
            report,
            cost,
        })
    }

    /// Runs the three evaluated planners (Semi-Static, Stochastic,
    /// Dynamic).
    ///
    /// # Errors
    ///
    /// Propagates the first [`StudyError`].
    pub fn run_evaluated(&self) -> Result<BTreeMap<&'static str, StudyRun>, StudyError> {
        PlannerKind::EVALUATED
            .iter()
            .map(|&k| Ok((k.label(), self.run(k)?)))
            .collect()
    }
}

/// A labelled what-if scenario: one planner configuration to compare.
#[derive(Debug, Clone)]
pub struct Scenario {
    /// Label shown in the comparison.
    pub label: String,
    /// Planner variant to run.
    pub kind: PlannerKind,
    /// Planner configuration (reservation, predictors, packing, ...).
    pub planner: Planner,
}

impl Scenario {
    /// Creates a scenario.
    #[must_use]
    pub fn new(label: impl Into<String>, kind: PlannerKind, planner: Planner) -> Self {
        Self {
            label: label.into(),
            kind,
            planner,
        }
    }
}

/// One row of a what-if comparison.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ComparisonRow {
    /// Scenario label.
    pub label: String,
    /// Provisioned hosts.
    pub hosts: usize,
    /// Energy over the evaluation, kWh.
    pub energy_kwh: f64,
    /// Live migrations scheduled.
    pub migrations: usize,
    /// Fraction of host-hours with contention.
    pub contention_fraction: f64,
}

/// Runs several planner configurations against one workload — the
/// side-by-side a consolidation engagement presents to the customer.
///
/// All scenarios share the study's traces, emulator and cost model; only
/// the planner differs.
///
/// # Errors
///
/// Propagates the first [`StudyError`].
pub fn compare(study: &Study, scenarios: &[Scenario]) -> Result<Vec<ComparisonRow>, StudyError> {
    scenarios
        .iter()
        .map(|s| {
            let mut config = *study.config();
            config.planner = s.planner;
            let run = Study::from_workload(&config, study.workload().clone()).run(s.kind)?;
            Ok(ComparisonRow {
                label: s.label.clone(),
                hosts: run.cost.provisioned_hosts,
                energy_kwh: run.cost.energy_kwh,
                migrations: run.report.migrations,
                contention_fraction: run.report.contention_time_fraction(),
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(dc: DataCenterId) -> Study {
        Study::prepare(&StudyConfig::quick(dc, 3))
    }

    #[test]
    fn quick_study_runs_all_planners() {
        let study = quick(DataCenterId::Airlines);
        let runs = study.run_evaluated().unwrap();
        assert_eq!(runs.len(), 3);
        for run in runs.values() {
            assert!(run.cost.provisioned_hosts > 0);
            assert!(run.cost.energy_kwh > 0.0);
            assert_eq!(run.report.hours, 5 * 24);
        }
    }

    #[test]
    fn config_arithmetic() {
        let c = StudyConfig::paper_baseline(DataCenterId::Banking, 1);
        assert_eq!(c.total_days(), 44);
        assert_eq!(
            StudyConfig::quick(DataCenterId::Banking, 1).total_days(),
            12
        );
    }

    #[test]
    fn study_is_deterministic() {
        let a = quick(DataCenterId::Beverage)
            .run(PlannerKind::SemiStatic)
            .unwrap();
        let b = quick(DataCenterId::Beverage)
            .run(PlannerKind::SemiStatic)
            .unwrap();
        assert_eq!(a.cost.provisioned_hosts, b.cost.provisioned_hosts);
        assert_eq!(a.report.energy_kwh, b.report.energy_kwh);
    }

    #[test]
    fn from_workload_reuses_traces() {
        let config = StudyConfig::quick(DataCenterId::Airlines, 8);
        let study_a = Study::prepare(&config);
        let study_b = Study::from_workload(&config, study_a.workload().clone());
        assert_eq!(study_a.workload(), study_b.workload());
    }

    #[test]
    fn compare_runs_labelled_scenarios() {
        let study = quick(DataCenterId::Banking);
        let rows = compare(
            &study,
            &[
                Scenario::new("stochastic", PlannerKind::Stochastic, Planner::baseline()),
                Scenario::new(
                    "dynamic@0.8",
                    PlannerKind::Dynamic,
                    Planner::baseline().with_utilization_bound(0.8),
                ),
                Scenario::new(
                    "dynamic@1.0",
                    PlannerKind::Dynamic,
                    Planner::baseline().with_utilization_bound(1.0),
                ),
            ],
        )
        .unwrap();
        assert_eq!(rows.len(), 3);
        assert_eq!(rows[0].label, "stochastic");
        assert_eq!(rows[0].migrations, 0);
        assert!(rows[1].migrations > 0);
        // Removing the reservation never increases the footprint.
        assert!(rows[2].hosts <= rows[1].hosts);
    }

    #[test]
    fn faulted_runs_are_deterministic_and_zero_rate_matches_plain() {
        use vmcw_emulator::faults::FaultConfig;
        let study = quick(DataCenterId::Banking);
        // Zero-rate fault replay reproduces the plain run bit-for-bit.
        let plain = study.run(PlannerKind::Dynamic).unwrap();
        let zero = study
            .run_faulted(PlannerKind::Dynamic, &FaultConfig::disabled())
            .unwrap();
        assert_eq!(plain.report, zero.report);
        // A faulted run is reproducible from its seed.
        let faults = FaultConfig::baseline(9);
        let a = study.run_faulted(PlannerKind::Dynamic, &faults).unwrap();
        let b = study.run_faulted(PlannerKind::Dynamic, &faults).unwrap();
        assert_eq!(a.report, b.report);
        // All planners run under the same fault schedule.
        for kind in PlannerKind::EVALUATED {
            let run = study.run_faulted(kind, &faults).unwrap();
            assert_eq!(run.report.hours, 5 * 24);
        }
    }

    #[test]
    fn dynamic_saves_energy_on_bursty_banking() {
        let study = quick(DataCenterId::Banking);
        let semi = study.run(PlannerKind::SemiStatic).unwrap();
        let dynamic = study.run(PlannerKind::Dynamic).unwrap();
        assert!(
            dynamic.cost.energy_kwh < semi.cost.energy_kwh,
            "dynamic {} kWh vs semi-static {} kWh",
            dynamic.cost.energy_kwh,
            semi.cost.energy_kwh
        );
    }
}
