//! Minimal SIGTERM/SIGINT plumbing shared by `vmcw study` and
//! `vmcw serve`.
//!
//! The policy is the classic two-strike shutdown:
//!
//! 1. **First signal** — cooperative drain. The process keeps running;
//!    callers poll [`signals_seen`] (or register a callback with
//!    [`on_first_signal`]) and cancel work through the existing
//!    [`CancelToken`](crate::supervise::CancelToken) machinery, which
//!    checkpoints in-flight replays so they resume later.
//! 2. **Second signal** — hard exit with [`HARD_EXIT_CODE`]. The
//!    operator asked twice; don't make them reach for `kill -9`.
//!
//! The handler itself is async-signal-safe: it only touches an atomic
//! counter and (on the second strike) calls `_exit`. All real work —
//! cancelling tokens, flipping `/readyz`, joining workers — happens on
//! ordinary threads that *observe* the counter.
//!
//! This workspace is offline and carries no `libc`/`signal-hook`
//! dependency, so the two required syscalls are declared by hand in a
//! tightly-scoped `#[allow(unsafe_code)]` module; on non-Unix targets
//! installation is a no-op and [`install`] reports `false`.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::Duration;

/// Exit status used when a second signal hard-exits the process:
/// 128 + SIGINT(2), the conventional "killed by signal" encoding.
pub const HARD_EXIT_CODE: i32 = 130;

/// What the process should do in response to its `nth` delivered
/// signal (1-based).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SignalAction {
    /// Stop accepting new work, checkpoint in-flight work, exit 0.
    Drain,
    /// Exit immediately with [`HARD_EXIT_CODE`].
    HardExit,
}

/// The two-strike policy: first signal drains, everything after
/// hard-exits. Factored out of the handler so it is unit-testable
/// without delivering real signals.
#[must_use]
pub fn action_for(nth: usize) -> SignalAction {
    if nth <= 1 {
        SignalAction::Drain
    } else {
        SignalAction::HardExit
    }
}

/// Signals delivered so far (SIGTERM + SIGINT combined).
static SIGNAL_COUNT: AtomicUsize = AtomicUsize::new(0);
static INSTALLED: AtomicBool = AtomicBool::new(false);

/// How many termination signals the process has received.
#[must_use]
pub fn signals_seen() -> usize {
    SIGNAL_COUNT.load(Ordering::SeqCst)
}

/// Installs the SIGTERM/SIGINT handler (idempotent). Returns `true`
/// when the handler is active, `false` on targets without POSIX
/// signals — callers must treat signal-driven drain as best-effort.
pub fn install() -> bool {
    if INSTALLED.swap(true, Ordering::SeqCst) {
        return ffi::SUPPORTED;
    }
    ffi::install_handlers();
    ffi::SUPPORTED
}

/// Spawns a watcher thread that invokes `on_drain` once, as soon as the
/// first signal lands. Returns immediately; the thread exits after
/// firing (or never, if no signal arrives — it is a daemon-style
/// observer and never joined).
pub fn on_first_signal<F>(on_drain: F)
where
    F: FnOnce() + Send + 'static,
{
    std::thread::Builder::new()
        .name("vmcw-signal-watch".into())
        .spawn(move || {
            while signals_seen() == 0 {
                std::thread::sleep(Duration::from_millis(25));
            }
            on_drain();
        })
        .expect("spawn signal watcher");
}

/// Test hook: simulates a delivered signal without raising one, so the
/// drain paths are exercisable on any target and under `cargo test`.
pub fn simulate_signal() {
    handle_signal();
}

/// Shared handler body. Async-signal-safe: atomics and `_exit` only.
fn handle_signal() {
    let nth = SIGNAL_COUNT.fetch_add(1, Ordering::SeqCst) + 1;
    if action_for(nth) == SignalAction::HardExit {
        ffi::hard_exit(HARD_EXIT_CODE);
    }
}

#[cfg(unix)]
#[allow(unsafe_code)]
mod ffi {
    //! The only unsafe code in the crate: `signal(2)` registration and
    //! `_exit(2)`. Both are declared by hand because the workspace is
    //! offline (no `libc` crate).

    pub(super) const SUPPORTED: bool = true;

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn _exit(status: i32) -> !;
    }

    extern "C" fn trampoline(_signum: i32) {
        super::handle_signal();
    }

    pub(super) fn install_handlers() {
        // SAFETY: `signal` is async-signal-safe to call from normal
        // context; the registered trampoline only performs an atomic
        // fetch_add and (second strike) `_exit`, both of which are on
        // the POSIX async-signal-safe list.
        unsafe {
            signal(SIGTERM, trampoline);
            signal(SIGINT, trampoline);
        }
    }

    pub(super) fn hard_exit(code: i32) -> ! {
        // SAFETY: `_exit` terminates the process without running
        // libc/atexit teardown — exactly what a second strike wants
        // (no flushing, no destructors that could hang).
        unsafe { _exit(code) }
    }
}

#[cfg(not(unix))]
mod ffi {
    pub(super) const SUPPORTED: bool = false;

    pub(super) fn install_handlers() {}

    pub(super) fn hard_exit(code: i32) -> ! {
        std::process::exit(code)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_strike_policy() {
        assert_eq!(action_for(0), SignalAction::Drain);
        assert_eq!(action_for(1), SignalAction::Drain);
        assert_eq!(action_for(2), SignalAction::HardExit);
        assert_eq!(action_for(7), SignalAction::HardExit);
    }

    #[test]
    fn hard_exit_code_is_128_plus_sigint() {
        assert_eq!(HARD_EXIT_CODE, 128 + 2);
    }
}
