//! Write-ahead journal for crash-safe studies.
//!
//! A journal is a sequence of length-prefixed, CRC-checksummed records
//! behind a magic header. Appends go straight to the file and are
//! fsynced, so a SIGKILL can lose at most the record being written —
//! and a partial or bit-flipped tail is *detected by checksum* on open,
//! reported with its byte offset, and never deserialized into state.
//! Everything before the first bad frame is a trusted prefix the study
//! resumes from.
//!
//! Frame layout after the 8-byte magic `VMCWJ01\n`:
//!
//! ```text
//! [u32 LE payload length][u32 LE CRC-32 (IEEE) of payload][payload]
//! ```

use std::error::Error;
use std::fmt;
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};

/// Magic header identifying a study journal (and its framing version).
pub const MAGIC: &[u8; 8] = b"VMCWJ01\n";

/// Upper bound on a single record's payload; a length field above this
/// is treated as corruption rather than attempted as an allocation.
pub const MAX_RECORD_LEN: usize = 64 << 20;

/// CRC-32 (IEEE 802.3, reflected) of `bytes`.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = !0;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Writes `bytes` to `path` atomically: a sibling temp file is written,
/// fsynced, and renamed over the target, so readers (and crashes) see
/// either the old content or the new — never a truncated file.
///
/// Parent directories are created as needed.
///
/// # Errors
///
/// Any underlying I/O error.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = path.parent().filter(|p| !p.as_os_str().is_empty());
    if let Some(dir) = dir {
        fs::create_dir_all(dir)?;
    }
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let mut tmp = path.to_path_buf();
    tmp.set_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
    {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    fs::rename(&tmp, path)
}

/// A corrupt or truncated journal tail: everything from `offset` on was
/// discarded, the records before it form the trusted prefix.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TailCorruption {
    /// Byte offset (from the start of the file) of the first bad frame.
    pub offset: usize,
    /// What was wrong with it.
    pub detail: String,
}

impl fmt::Display for TailCorruption {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "journal tail discarded at byte offset {}: {}",
            self.offset, self.detail
        )
    }
}

/// Errors opening or writing a journal.
#[derive(Debug)]
pub enum JournalError {
    /// Underlying I/O failure.
    Io {
        /// The journal path.
        path: PathBuf,
        /// The failure.
        source: io::Error,
    },
    /// The file exists but does not start with [`MAGIC`].
    BadMagic {
        /// The journal path.
        path: PathBuf,
    },
    /// `create` was asked to overwrite an existing journal.
    AlreadyExists {
        /// The journal path.
        path: PathBuf,
    },
}

impl fmt::Display for JournalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JournalError::Io { path, source } => {
                write!(f, "journal {}: {source}", path.display())
            }
            JournalError::BadMagic { path } => {
                write!(f, "{} is not a study journal (bad magic)", path.display())
            }
            JournalError::AlreadyExists { path } => {
                write!(
                    f,
                    "{} already holds a journal (resume it instead of starting over)",
                    path.display()
                )
            }
        }
    }
}

impl Error for JournalError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            JournalError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// Splits raw journal bytes into records.
///
/// Returns the trusted prefix of records plus, when the tail is
/// truncated or fails its checksum, a [`TailCorruption`] naming the byte
/// offset of the first bad frame. Bad frames are never returned as
/// records.
///
/// # Errors
///
/// [`JournalError::BadMagic`] when the bytes don't start with [`MAGIC`]
/// (reported against an empty path; [`Journal::open`] fills the real
/// one).
pub fn decode(bytes: &[u8]) -> Result<(Vec<Vec<u8>>, Option<TailCorruption>), JournalError> {
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        return Err(JournalError::BadMagic {
            path: PathBuf::new(),
        });
    }
    let mut records = Vec::new();
    let mut at = MAGIC.len();
    while at < bytes.len() {
        let bad = |detail: String| TailCorruption { offset: at, detail };
        let rest = &bytes[at..];
        if rest.len() < 8 {
            return Ok((
                records,
                Some(bad(format!("{} header bytes of 8", rest.len()))),
            ));
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap()) as usize;
        let want = u32::from_le_bytes(rest[4..8].try_into().unwrap());
        if len > MAX_RECORD_LEN {
            return Ok((records, Some(bad(format!("implausible length {len}")))));
        }
        if rest.len() < 8 + len {
            return Ok((
                records,
                Some(bad(format!(
                    "payload truncated: {} bytes of {len}",
                    rest.len() - 8
                ))),
            ));
        }
        let payload = &rest[8..8 + len];
        let got = crc32(payload);
        if got != want {
            return Ok((
                records,
                Some(bad(format!(
                    "checksum mismatch: {got:08x} != recorded {want:08x}"
                ))),
            ));
        }
        records.push(payload.to_vec());
        at += 8 + len;
    }
    Ok((records, None))
}

/// Frames `records` into journal bytes (the inverse of [`decode`]).
#[must_use]
pub fn encode_records<R: AsRef<[u8]>>(records: &[R]) -> Vec<u8> {
    let mut out = MAGIC.to_vec();
    for r in records {
        out.extend_from_slice(&frame(r.as_ref()));
    }
    out
}

fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + payload.len());
    out.extend_from_slice(&u32::try_from(payload.len()).expect("record fits u32").to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// An append-only, checksummed record log on disk.
#[derive(Debug)]
pub struct Journal {
    path: PathBuf,
    records: Vec<Vec<u8>>,
}

impl Journal {
    /// Creates a fresh journal at `path` (parent directories included).
    ///
    /// # Errors
    ///
    /// [`JournalError::AlreadyExists`] if `path` exists, otherwise I/O
    /// errors.
    pub fn create(path: &Path) -> Result<Self, JournalError> {
        let io_err = |source| JournalError::Io {
            path: path.to_path_buf(),
            source,
        };
        if path.exists() {
            return Err(JournalError::AlreadyExists {
                path: path.to_path_buf(),
            });
        }
        write_atomic(path, MAGIC).map_err(io_err)?;
        Ok(Self {
            path: path.to_path_buf(),
            records: Vec::new(),
        })
    }

    /// Opens an existing journal, returning the trusted record prefix
    /// and, if the tail was truncated or corrupt, what was discarded.
    ///
    /// A discarded tail is also *physically* truncated from the file so
    /// subsequent appends extend the trusted prefix.
    ///
    /// # Errors
    ///
    /// [`JournalError::BadMagic`] for non-journal files, otherwise I/O
    /// errors.
    pub fn open(path: &Path) -> Result<(Self, Option<TailCorruption>), JournalError> {
        let io_err = |source| JournalError::Io {
            path: path.to_path_buf(),
            source,
        };
        let bytes = fs::read(path).map_err(io_err)?;
        let (records, tail) = decode(&bytes).map_err(|e| match e {
            JournalError::BadMagic { .. } => JournalError::BadMagic {
                path: path.to_path_buf(),
            },
            other => other,
        })?;
        let journal = Self {
            path: path.to_path_buf(),
            records,
        };
        if tail.is_some() {
            // Drop the bad tail on disk too (atomically), so the journal
            // ends at the last good frame.
            write_atomic(path, &encode_records(&journal.records)).map_err(io_err)?;
        }
        Ok((journal, tail))
    }

    /// The journal's records, oldest first.
    #[must_use]
    pub fn records(&self) -> &[Vec<u8>] {
        &self.records
    }

    /// The on-disk path.
    #[must_use]
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Appends one record and fsyncs it.
    ///
    /// # Errors
    ///
    /// I/O errors; the in-memory record list is only extended on success.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), JournalError> {
        let io_err = |source| JournalError::Io {
            path: self.path.clone(),
            source,
        };
        let mut f = fs::OpenOptions::new()
            .append(true)
            .open(&self.path)
            .map_err(io_err)?;
        f.write_all(&frame(payload)).map_err(io_err)?;
        f.sync_all().map_err(io_err)?;
        self.records.push(payload.to_vec());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("vmcw-journal-{name}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE 802.3 check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn create_append_reopen_round_trips() {
        let dir = tmp_dir("roundtrip");
        let path = dir.join("journal.vmcwj");
        let mut j = Journal::create(&path).unwrap();
        j.append(b"config hello").unwrap();
        j.append(b"checkpoint world").unwrap();
        let (reopened, tail) = Journal::open(&path).unwrap();
        assert!(tail.is_none());
        assert_eq!(reopened.records().len(), 2);
        assert_eq!(reopened.records()[0], b"config hello");
        assert_eq!(reopened.records()[1], b"checkpoint world");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_refuses_existing_file() {
        let dir = tmp_dir("exists");
        let path = dir.join("journal.vmcwj");
        let _ = Journal::create(&path).unwrap();
        assert!(matches!(
            Journal::create(&path),
            Err(JournalError::AlreadyExists { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn truncated_tail_is_discarded_with_offset() {
        let dir = tmp_dir("truncate");
        let path = dir.join("journal.vmcwj");
        let mut j = Journal::create(&path).unwrap();
        j.append(b"first").unwrap();
        let good_len = fs::metadata(&path).unwrap().len();
        j.append(b"second-record-gets-cut").unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let (reopened, tail) = Journal::open(&path).unwrap();
        assert_eq!(reopened.records().len(), 1);
        let tail = tail.unwrap();
        assert_eq!(tail.offset as u64, good_len);
        // The bad tail was physically removed.
        assert_eq!(fs::metadata(&path).unwrap().len(), good_len);
        // And appends extend the trusted prefix cleanly.
        let mut reopened = reopened;
        reopened.append(b"third").unwrap();
        let (again, tail) = Journal::open(&path).unwrap();
        assert!(tail.is_none());
        assert_eq!(again.records().len(), 2);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn flipped_bit_is_caught_by_checksum() {
        let dir = tmp_dir("bitflip");
        let path = dir.join("journal.vmcwj");
        let mut j = Journal::create(&path).unwrap();
        j.append(b"aaaa").unwrap();
        j.append(b"bbbb").unwrap();
        let mut bytes = fs::read(&path).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x40; // corrupt the last payload byte
        fs::write(&path, &bytes).unwrap();
        let (reopened, tail) = Journal::open(&path).unwrap();
        assert_eq!(reopened.records().len(), 1);
        assert!(tail.unwrap().detail.contains("checksum mismatch"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn non_journal_file_is_rejected() {
        let dir = tmp_dir("magic");
        let path = dir.join("not-a-journal");
        fs::write(&path, b"definitely not").unwrap();
        assert!(matches!(
            Journal::open(&path),
            Err(JournalError::BadMagic { .. })
        ));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn write_atomic_replaces_content() {
        let dir = tmp_dir("atomic");
        let path = dir.join("nested").join("out.csv");
        write_atomic(&path, b"v1").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v1");
        write_atomic(&path, b"v2-longer").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"v2-longer");
        // No temp litter left behind.
        let entries: Vec<_> = fs::read_dir(path.parent().unwrap())
            .unwrap()
            .map(|e| e.unwrap().file_name())
            .collect();
        assert_eq!(entries.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }
}
