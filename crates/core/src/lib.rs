//! High-level facade of the reproduction of *Virtual Machine Consolidation
//! in the Wild* (Middleware 2014).
//!
//! This crate ties the substrates together:
//!
//! * [`study`] — a [`Study`](study::Study) generates a data-center
//!   workload, plans it with any of the consolidation variants and
//!   emulates the result, yielding costs and statistics.
//! * [`experiments`] — one function per table and figure of the paper,
//!   producing [`Table`](render::Table)s that the `vmcw-bench` harness
//!   writes to `results/`.
//! * [`render`] — plain-text/CSV rendering of experiment outputs.
//! * [`journal`] — checksummed write-ahead journal and atomic file
//!   writes backing crash-safe studies.
//! * [`supervise`] — budgeted, resumable execution of planner ×
//!   data-center study grids with checkpoint/restore and degraded
//!   partial reports.
//! * [`serve`] — long-running HTTP service mode with bounded admission,
//!   load shedding, per-request deadlines, a circuit breaker and
//!   graceful drain.
//! * [`signals`] — minimal SIGTERM/SIGINT plumbing shared by the batch
//!   and service entry points (first signal drains, second hard-exits).
//!
//! The lower layers are re-exported so that downstream users only need
//! this crate:
//!
//! ```
//! use vmcw_core::prelude::*;
//!
//! let config = StudyConfig::quick(DataCenterId::Airlines, 1);
//! let study = Study::prepare(&config);
//! let run = study.run(PlannerKind::Stochastic)?;
//! assert!(run.cost.provisioned_hosts > 0);
//! # Ok::<(), vmcw_core::study::StudyError>(())
//! ```

// `deny`, not `forbid`: the signal handler in [`signals`] needs two
// libc FFI declarations (`signal`, `_exit`) — there is no safe,
// dependency-free way to catch SIGTERM. Everything else stays safe;
// the single exemption is scoped with `#[allow(unsafe_code)]` there.
#![deny(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod health;
pub mod journal;
pub mod render;
pub mod serve;
pub mod signals;
pub mod study;
pub mod supervise;

pub use vmcw_cluster as cluster;
pub use vmcw_consolidation as consolidation;
pub use vmcw_emulator as emulator;
pub use vmcw_migration as migration;
pub use vmcw_trace as trace;

/// Convenient glob-import of the most used types.
pub mod prelude {
    pub use crate::health::{CellHealth, HealthSnapshot};
    pub use crate::journal::{write_atomic, Journal};
    pub use crate::render::Table;
    pub use crate::study::{Study, StudyConfig, StudyError, StudyRun};
    pub use crate::supervise::{
        resume_study, run_study, run_study_opts, CancelToken, CellBudget, CellOutcome,
        CellRetryPolicy, RunOptions, StudyReport, StudySpec,
    };
    pub use vmcw_cluster::cost::FacilityCostModel;
    pub use vmcw_cluster::server::ServerModel;
    pub use vmcw_consolidation::input::{PlanningInput, VirtualizationModel};
    pub use vmcw_consolidation::planner::{ConsolidationPlan, Planner, PlannerKind};
    pub use vmcw_emulator::engine::{emulate, EmulationReport, EmulatorConfig};
    pub use vmcw_trace::datacenters::{DataCenterId, GeneratedWorkload, GeneratorConfig};
}
