//! `vmcw serve` — a long-running consolidation-study service.
//!
//! The batch supervisor ([`supervise`](crate::supervise)) already knows
//! how to run, checkpoint, retry and resume a study; this module puts a
//! small hand-rolled HTTP/1.1 front end (see [`http`]) on top of it and
//! adds the control-plane robustness the ROADMAP's "heavy traffic"
//! north star demands:
//!
//! * **Bounded admission** — `POST`ed jobs wait in a queue of at most
//!   [`ServeConfig::queue_depth`]; beyond that the server *sheds* with
//!   `503` + `Retry-After` instead of buffering unboundedly.
//! * **Per-request deadlines** — a job's `deadline_ms` is armed on the
//!   existing [`CancelToken`] ([`CancelToken::cancel_at`]), so the
//!   replay checkpoints cooperatively at the next hour boundary and the
//!   client gets `504` with partial progress; the job stays resumable.
//! * **Circuit breaker** — K consecutive worker failures (panics that
//!   exhaust retries, quarantines, supervisor errors) trip the breaker;
//!   while open, submissions fail fast with `503`, and a single
//!   half-open probe decides when to close again. Cooldowns are
//!   deterministic, seeded like
//!   [`CellRetryPolicy::backoff_secs`](crate::supervise::CellRetryPolicy::backoff_secs).
//! * **Graceful drain** — the first SIGTERM/SIGINT (via
//!   [`signals`](crate::signals)) stops admission, cooperatively
//!   cancels in-flight replays (checkpointing them), flips `/readyz`
//!   to 503 and exits 0; interrupted jobs resume at next boot.
//!
//! Every job is a one-cell-or-more supervised study in its own
//! directory under `DIR/jobs/<id>/`, so crash-safety, retries, the
//! watchdog and `health.json` telemetry all come from the existing
//! machinery rather than a parallel implementation.
//!
//! # Endpoints
//!
//! | Route | Semantics |
//! |---|---|
//! | `POST /v1/plan` | plan + replay without fault injection |
//! | `POST /v1/replay` | same, `"faults": true` allowed |
//! | `GET /v1/jobs/<id>` | job status (registry + on-disk telemetry) |
//! | `GET /healthz` | `vmcw-health/v1` snapshot with a `serve` block |
//! | `GET /readyz` | `200` accepting, `503` draining |

pub mod http;

use std::collections::{BTreeMap, VecDeque};
use std::fmt;
use std::net::{TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use vmcw_consolidation::planner::PlannerKind;
use vmcw_emulator::checkpoint::fnv1a;
use vmcw_emulator::faults::FaultConfig;
use vmcw_trace::datacenters::DataCenterId;

use crate::health::{
    json_string, opt, HealthSnapshot, InflightJob, Json, ServeHealth, HEALTH_FILE,
};
use crate::journal::{write_atomic, Journal};
use crate::supervise::{
    resume_study_opts, run_study_opts, CancelToken, CellOutcome, CellRetryPolicy, ChaosConfig,
    RunOptions, StudyReport, StudySpec, StudyStatus, JOURNAL_FILE,
};

use self::http::{read_request, HttpError, Request, Response};

/// Subdirectory of the serve dir holding one study directory per job.
pub const JOBS_DIR: &str = "jobs";

/// Tuning knobs of one [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// State directory: job studies under `jobs/`, service telemetry in
    /// `health.json`.
    pub dir: PathBuf,
    /// TCP port to bind on 127.0.0.1; `0` picks a free port.
    pub port: u16,
    /// Worker pool size.
    pub workers: usize,
    /// Admission-queue bound; submissions beyond it are shed.
    pub queue_depth: usize,
    /// Consecutive failures that trip the circuit breaker.
    pub breaker_trip_after: usize,
    /// Base breaker cooldown, seconds (doubles per consecutive trip,
    /// with deterministic seeded jitter).
    pub breaker_cooldown_secs: f64,
    /// Deadline applied to jobs that don't carry their own, if any.
    pub default_deadline_ms: Option<u64>,
    /// Retry policy for crashed cells inside each job.
    pub retry: CellRetryPolicy,
    /// Watchdog deadline per job cell (see
    /// [`RunOptions::heartbeat_timeout_secs`]).
    pub heartbeat_timeout_secs: Option<f64>,
    /// Seed of the breaker's deterministic cooldown jitter.
    pub seed: u64,
    /// Supervisor fault injection, forwarded to every job (tests/CI).
    pub chaos: Option<ChaosConfig>,
    /// How long to keep answering `/readyz` (with 503) and `/healthz`
    /// after the workers have drained, before the listener stops and
    /// the process exits. Load balancers poll readiness on an
    /// interval; without a grace window they can't observe the flip
    /// before the socket disappears. `0` (the default) exits as soon
    /// as the workers are done.
    pub drain_grace_secs: f64,
}

impl ServeConfig {
    /// Defaults: 2 workers, queue of 8, breaker trips after 3 failures
    /// with a 1 s base cooldown, no default deadline.
    #[must_use]
    pub fn new(dir: impl Into<PathBuf>, port: u16) -> Self {
        Self {
            dir: dir.into(),
            port,
            workers: 2,
            queue_depth: 8,
            breaker_trip_after: 3,
            breaker_cooldown_secs: 1.0,
            default_deadline_ms: None,
            retry: CellRetryPolicy::default_policy(),
            heartbeat_timeout_secs: None,
            seed: 42,
            chaos: None,
            drain_grace_secs: 0.0,
        }
    }

    fn validate(&self) -> Result<(), ServeError> {
        let bad = |detail: String| Err(ServeError::Config { detail });
        if self.workers == 0 {
            return bad("workers must be >= 1".into());
        }
        if self.queue_depth == 0 {
            return bad("queue depth must be >= 1".into());
        }
        if self.breaker_trip_after == 0 {
            return bad("breaker trip threshold must be >= 1".into());
        }
        if !self.breaker_cooldown_secs.is_finite() || self.breaker_cooldown_secs < 0.0 {
            return bad(format!(
                "breaker cooldown must be finite and >= 0, got {}",
                self.breaker_cooldown_secs
            ));
        }
        if !self.drain_grace_secs.is_finite() || self.drain_grace_secs < 0.0 {
            return bad(format!(
                "drain grace must be finite and >= 0, got {}",
                self.drain_grace_secs
            ));
        }
        Ok(())
    }
}

/// Why the server could not start or shut down.
#[derive(Debug)]
pub enum ServeError {
    /// Socket or filesystem failure.
    Io {
        /// What the server was doing.
        context: String,
        /// The underlying error.
        source: std::io::Error,
    },
    /// The configuration is unusable.
    Config {
        /// What was wrong.
        detail: String,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::Io { context, source } => write!(f, "{context}: {source}"),
            ServeError::Config { detail } => write!(f, "bad serve config: {detail}"),
        }
    }
}

impl std::error::Error for ServeError {}

/// Circuit-breaker states, in the textbook shape.
#[derive(Debug, Clone, Copy, PartialEq)]
enum BreakerState {
    /// Healthy: admit everything.
    Closed,
    /// Failing fast until the cooldown elapses.
    Open { until: Instant },
    /// One probe is in flight; its outcome decides.
    HalfOpen,
}

/// Trips after `trip_after` *consecutive* failures; while open every
/// submission is rejected with the remaining cooldown as `Retry-After`.
/// Cooldowns double per consecutive trip with a deterministic jitter in
/// `[0.5, 1.5)` keyed on the config seed and the trip ordinal — the
/// same scheme as `CellRetryPolicy::backoff_secs`, so tests can predict
/// exact bounds.
#[derive(Debug)]
struct Breaker {
    trip_after: usize,
    base_cooldown_secs: f64,
    seed: u64,
    state: BreakerState,
    consecutive_failures: usize,
    trips: u64,
}

impl Breaker {
    fn new(trip_after: usize, base_cooldown_secs: f64, seed: u64) -> Self {
        Self {
            trip_after: trip_after.max(1),
            base_cooldown_secs,
            seed,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            trips: 0,
        }
    }

    fn cooldown_secs(&self, trips: u64) -> f64 {
        let exp = trips.saturating_sub(1).min(32) as i32;
        let key = fnv1a(format!("breaker {} {}", self.seed, trips).as_bytes());
        let jitter = 0.5 + key as f64 / (u64::MAX as f64 + 1.0);
        self.base_cooldown_secs * 2f64.powi(exp) * jitter
    }

    /// Whether a new submission may proceed. `Ok(probe)` admits it
    /// (`probe` marks the one half-open canary); `Err(secs)` rejects
    /// with the suggested retry delay.
    fn admit(&mut self) -> Result<bool, f64> {
        match self.state {
            BreakerState::Closed => Ok(false),
            BreakerState::HalfOpen => Err(self.cooldown_secs(self.trips.max(1))),
            BreakerState::Open { until } => {
                let now = Instant::now();
                if now >= until {
                    self.state = BreakerState::HalfOpen;
                    Ok(true)
                } else {
                    Err((until - now).as_secs_f64())
                }
            }
        }
    }

    fn record_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.trips = 0;
    }

    fn record_failure(&mut self) {
        self.consecutive_failures += 1;
        let trip = matches!(self.state, BreakerState::HalfOpen)
            || self.consecutive_failures >= self.trip_after;
        if trip {
            self.trips += 1;
            self.consecutive_failures = 0;
            self.state = BreakerState::Open {
                until: Instant::now() + Duration::from_secs_f64(self.cooldown_secs(self.trips)),
            };
        }
    }

    fn label(&self) -> &'static str {
        match self.state {
            BreakerState::Closed => "closed",
            BreakerState::Open { .. } => "open",
            BreakerState::HalfOpen => "half-open",
        }
    }
}

/// What a client asked the service to run.
#[derive(Debug, Clone, PartialEq)]
struct JobSpec {
    id: Option<String>,
    spec: StudySpec,
    deadline_ms: Option<u64>,
}

fn spec_err(detail: impl Into<String>) -> String {
    detail.into()
}

/// Parses a `POST /v1/plan` / `POST /v1/replay` JSON body. All fields
/// optional; defaults are the paper baseline grid. `allow_faults`
/// distinguishes the two endpoints.
fn parse_job_spec(body: &[u8], allow_faults: bool) -> Result<JobSpec, String> {
    let text =
        std::str::from_utf8(body).map_err(|_| spec_err("request body is not UTF-8"))?;
    let value = Json::parse(text).map_err(|e| e.to_string())?;
    let obj = value.as_object("request body").map_err(|e| e.to_string())?;

    let id = match opt(obj, "id") {
        None => None,
        Some(v) => {
            let raw = v.as_str("id").map_err(|e| e.to_string())?;
            if raw.is_empty()
                || raw.len() > 64
                || !raw
                    .bytes()
                    .all(|b| b.is_ascii_alphanumeric() || matches!(b, b'.' | b'_' | b'-'))
            {
                return Err(spec_err(
                    "id must be 1-64 chars of [A-Za-z0-9._-] (it names a directory)",
                ));
            }
            Some(raw.to_owned())
        }
    };

    let num = |key: &str, default: f64| -> Result<f64, String> {
        match opt(obj, key) {
            None => Ok(default),
            Some(v) => v.as_number(key).map_err(|e| e.to_string()),
        }
    };
    let scale = num("scale", 1.0)?;
    if !(scale.is_finite() && scale > 0.0) {
        return Err(spec_err(format!("scale must be finite and > 0, got {scale}")));
    }
    let seed = num("seed", 42.0)? as u64;
    let history_days = num("history_days", 30.0)? as usize;
    let eval_days = num("eval_days", 14.0)? as usize;
    if history_days == 0 || eval_days == 0 {
        return Err(spec_err("history_days and eval_days must be >= 1"));
    }
    let checkpoint_every_hours = (num("checkpoint_every_hours", 6.0)? as usize).max(1);
    let deadline_ms = match opt(obj, "deadline_ms") {
        None => None,
        Some(v) => {
            let ms = v.as_number("deadline_ms").map_err(|e| e.to_string())?;
            if !(ms.is_finite() && ms >= 1.0) {
                return Err(spec_err("deadline_ms must be >= 1"));
            }
            Some(ms as u64)
        }
    };

    let dcs: Vec<DataCenterId> = match opt(obj, "dcs") {
        None => DataCenterId::ALL.to_vec(),
        Some(v) => {
            let letters = v.as_str("dcs").map_err(|e| e.to_string())?;
            let mut out = Vec::new();
            for c in letters.chars() {
                let c = c.to_ascii_uppercase();
                let dc = DataCenterId::ALL
                    .into_iter()
                    .find(|d| d.letter() == c)
                    .ok_or_else(|| spec_err(format!("unknown data center `{c}`")))?;
                if !out.contains(&dc) {
                    out.push(dc);
                }
            }
            if out.is_empty() {
                return Err(spec_err("dcs must name at least one data center"));
            }
            out
        }
    };
    let planners: Vec<PlannerKind> = match opt(obj, "planners") {
        None => PlannerKind::EVALUATED.to_vec(),
        Some(v) => {
            let arr = v.as_array("planners").map_err(|e| e.to_string())?;
            let mut out = Vec::new();
            for p in arr {
                let label = p.as_str("planner").map_err(|e| e.to_string())?;
                let kind = PlannerKind::parse(label)
                    .ok_or_else(|| spec_err(format!("unknown planner `{label}`")))?;
                if !out.contains(&kind) {
                    out.push(kind);
                }
            }
            if out.is_empty() {
                return Err(spec_err("planners must name at least one planner"));
            }
            out
        }
    };

    let faults = match opt(obj, "faults") {
        None => None,
        Some(v) => {
            let wanted = v.as_bool("faults").map_err(|e| e.to_string())?;
            if wanted && !allow_faults {
                return Err(spec_err(
                    "fault injection is only available on /v1/replay",
                ));
            }
            wanted.then(|| FaultConfig::baseline(seed))
        }
    };

    let mut spec = StudySpec::new(scale, seed, history_days, eval_days);
    spec.dcs = dcs;
    spec.planners = planners;
    spec.faults = faults;
    spec.checkpoint_every_hours = checkpoint_every_hours;
    Ok(JobSpec {
        id,
        spec,
        deadline_ms,
    })
}

/// One queued unit of work.
struct QueuedJob {
    id: String,
    /// `None` resumes the journal already in the job directory (boot
    /// recovery); `Some` starts fresh.
    spec: Option<StudySpec>,
    deadline: Option<Instant>,
    /// Synchronous responder of the waiting connection handler; `None`
    /// for boot-resume jobs nobody is waiting on.
    respond: Option<mpsc::Sender<Response>>,
    /// This job is the breaker's half-open canary.
    probe: bool,
}

/// Registry entry for `GET /v1/jobs/<id>` and `/healthz` inflight rows.
#[derive(Debug, Clone)]
struct JobRecord {
    state: &'static str,
    resumable: bool,
    detail: String,
    hours_done: usize,
    deadline: Option<Instant>,
    token: Option<CancelToken>,
}

impl JobRecord {
    fn queued(deadline: Option<Instant>) -> Self {
        Self {
            state: "queued",
            resumable: false,
            detail: String::new(),
            hours_done: 0,
            deadline,
            token: None,
        }
    }
}

/// State shared by the accept loop, connection handlers, workers and
/// the telemetry sweeper.
struct Shared {
    config: ServeConfig,
    queue: Mutex<VecDeque<QueuedJob>>,
    queue_cv: Condvar,
    jobs: Mutex<BTreeMap<String, JobRecord>>,
    breaker: Mutex<Breaker>,
    next_id: AtomicU64,
    shed_total: AtomicU64,
    deadline_timeouts: AtomicU64,
    draining: AtomicBool,
    stop: AtomicBool,
}

impl Shared {
    fn lock_queue(&self) -> std::sync::MutexGuard<'_, VecDeque<QueuedJob>> {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_jobs(&self) -> std::sync::MutexGuard<'_, BTreeMap<String, JobRecord>> {
        self.jobs
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn lock_breaker(&self) -> std::sync::MutexGuard<'_, Breaker> {
        self.breaker
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    fn draining(&self) -> bool {
        self.draining.load(Ordering::SeqCst)
    }

    fn job_dir(&self, id: &str) -> PathBuf {
        self.config.dir.join(JOBS_DIR).join(id)
    }

    /// The `vmcw-health/v1` snapshot `/healthz` and `health.json` share.
    fn health_snapshot(&self) -> HealthSnapshot {
        let queue_depth = self.lock_queue().len();
        let (breaker, breaker_failures) = {
            let b = self.lock_breaker();
            (b.label().to_owned(), b.consecutive_failures)
        };
        let now = Instant::now();
        let inflight = self
            .lock_jobs()
            .iter()
            .filter(|(_, r)| matches!(r.state, "queued" | "running"))
            .map(|(id, r)| InflightJob {
                job: id.clone(),
                state: r.state.to_owned(),
                deadline_ms_remaining: r.deadline.map(|d| {
                    if d >= now {
                        (d - now).as_millis().min(i64::MAX as u128) as i64
                    } else {
                        -((now - d).as_millis().min(i64::MAX as u128) as i64)
                    }
                }),
            })
            .collect();
        HealthSnapshot {
            status: if self.draining() { "draining" } else { "running" }.to_owned(),
            cells: Vec::new(),
            serve: Some(ServeHealth {
                queue_depth,
                queue_limit: self.config.queue_depth,
                workers: self.config.workers,
                shed_total: self.shed_total.load(Ordering::SeqCst),
                deadline_timeouts: self.deadline_timeouts.load(Ordering::SeqCst),
                breaker,
                breaker_failures,
                inflight,
            }),
        }
    }

    fn write_health(&self) {
        let snap = self.health_snapshot();
        let _ = write_atomic(&self.config.dir.join(HEALTH_FILE), snap.to_json().as_bytes());
    }

    /// Updates a registry entry in place.
    fn set_job<F: FnOnce(&mut JobRecord)>(&self, id: &str, f: F) {
        if let Some(rec) = self.lock_jobs().get_mut(id) {
            f(rec);
        }
    }

    /// Best-effort partial progress: total replay hours done across the
    /// job's cells, read back from the study's own `health.json`.
    fn job_hours_done(&self, id: &str) -> usize {
        let Ok(bytes) = std::fs::read(self.job_dir(id).join(HEALTH_FILE)) else {
            return 0;
        };
        let Ok(snap) = HealthSnapshot::parse_bytes(&bytes) else {
            return 0;
        };
        snap.cells.iter().map(|c| c.hours_done).sum()
    }
}

/// Separable handle that triggers a graceful drain; cloneable into the
/// signal watcher without moving the [`Server`].
#[derive(Clone)]
pub struct DrainHandle {
    shared: Arc<Shared>,
}

impl DrainHandle {
    /// Initiates drain: stop admitting, cancel running jobs
    /// (cooperatively — they checkpoint), answer queued jobs with 503.
    /// Idempotent.
    pub fn drain(&self) {
        drain(&self.shared);
    }
}

fn drain(shared: &Arc<Shared>) {
    if shared.draining.swap(true, Ordering::SeqCst) {
        return;
    }
    // Cancel in-flight replays; they checkpoint at the next hour
    // boundary and yield, leaving the journal resumable.
    for rec in shared.lock_jobs().values() {
        if let Some(token) = &rec.token {
            token.cancel();
        }
    }
    // Nobody will pop the queue for real work anymore: fail the waiting
    // clients fast so their connections don't hang out the drain.
    let drained: Vec<QueuedJob> = shared.lock_queue().drain(..).collect();
    for job in drained {
        if job.probe {
            // An unresolved half-open probe would wedge the breaker in
            // HalfOpen forever; count the flushed probe as failed so
            // the breaker re-opens and can retry after its cooldown.
            shared.lock_breaker().record_failure();
        }
        shared.set_job(&job.id, |r| {
            r.state = "cancelled";
            r.detail = "shed during drain".into();
        });
        if let Some(tx) = job.respond {
            let _ = tx.send(
                Response::json(
                    503,
                    "{\"status\": \"cancelled\", \"error\": \"server is draining\"}",
                )
                .header("Retry-After", 1),
            );
        }
    }
    shared.queue_cv.notify_all();
}

/// A running `vmcw serve` instance.
pub struct Server {
    shared: Arc<Shared>,
    port: u16,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    sweeper: Option<JoinHandle<()>>,
}

impl Server {
    /// Creates the state directory, recovers interrupted jobs from a
    /// previous process (their journals re-enter the queue as resume
    /// work), binds `127.0.0.1:port` and spawns the accept loop, the
    /// worker pool and the telemetry sweeper.
    ///
    /// # Errors
    ///
    /// [`ServeError::Config`] for unusable knobs, [`ServeError::Io`]
    /// for directory or socket failures.
    pub fn bind(config: ServeConfig) -> Result<Self, ServeError> {
        config.validate()?;
        let jobs_dir = config.dir.join(JOBS_DIR);
        std::fs::create_dir_all(&jobs_dir).map_err(|source| ServeError::Io {
            context: format!("create {}", jobs_dir.display()),
            source,
        })?;

        let shared = Arc::new(Shared {
            breaker: Mutex::new(Breaker::new(
                config.breaker_trip_after,
                config.breaker_cooldown_secs,
                config.seed,
            )),
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            shed_total: AtomicU64::new(0),
            deadline_timeouts: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        });

        recover_jobs(&shared, &jobs_dir);

        let listener = TcpListener::bind(("127.0.0.1", shared.config.port)).map_err(
            |source| ServeError::Io {
                context: format!("bind 127.0.0.1:{}", shared.config.port),
                source,
            },
        )?;
        let port = listener
            .local_addr()
            .map_err(|source| ServeError::Io {
                context: "read bound address".into(),
                source,
            })?
            .port();
        listener
            .set_nonblocking(true)
            .map_err(|source| ServeError::Io {
                context: "set listener nonblocking".into(),
                source,
            })?;

        let workers = (0..shared.config.workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("vmcw-serve-worker-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn serve worker")
            })
            .collect();
        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vmcw-serve-accept".into())
                .spawn(move || accept_loop(&shared, &listener))
                .expect("spawn serve accept loop")
        };
        let sweeper = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("vmcw-serve-sweeper".into())
                .spawn(move || sweeper_loop(&shared))
                .expect("spawn serve sweeper")
        };

        shared.write_health();
        Ok(Self {
            shared,
            port,
            accept: Some(accept),
            workers,
            sweeper: Some(sweeper),
        })
    }

    /// The bound port (useful with `port: 0`).
    #[must_use]
    pub fn port(&self) -> u16 {
        self.port
    }

    /// A cloneable handle that triggers graceful drain — hand it to
    /// [`signals::on_first_signal`](crate::signals::on_first_signal).
    #[must_use]
    pub fn drain_handle(&self) -> DrainHandle {
        DrainHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Blocks until the server has drained: workers finish their
    /// current job and exit once [`DrainHandle::drain`] has run and the
    /// queue is empty; then the accept loop and sweeper stop and a
    /// final `health.json` is written.
    pub fn join(mut self) {
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        // Keep the listener (and therefore `/readyz` → 503) up through
        // the grace window so external health checkers can observe the
        // drain before the socket disappears.
        if self.shared.draining() && self.shared.config.drain_grace_secs > 0.0 {
            std::thread::sleep(Duration::from_secs_f64(
                self.shared.config.drain_grace_secs,
            ));
        }
        self.shared.stop.store(true, Ordering::SeqCst);
        self.shared.queue_cv.notify_all();
        if let Some(a) = self.accept.take() {
            let _ = a.join();
        }
        if let Some(s) = self.sweeper.take() {
            let _ = s.join();
        }
        self.shared.write_health();
    }
}

/// Boot recovery: a job directory whose journal never reached
/// `run-done` is re-enqueued as resume work (nobody waits on the
/// response; `GET /v1/jobs/<id>` observes it). Completed jobs are
/// registered so their status survives restarts.
fn recover_jobs(shared: &Arc<Shared>, jobs_dir: &Path) {
    let Ok(entries) = std::fs::read_dir(jobs_dir) else {
        return;
    };
    let mut ids: Vec<String> = entries
        .flatten()
        .filter(|e| e.path().join(JOURNAL_FILE).is_file())
        .filter_map(|e| e.file_name().into_string().ok())
        .collect();
    ids.sort(); // deterministic recovery order
    for id in ids {
        let done = Journal::open(&jobs_dir.join(&id).join(JOURNAL_FILE))
            .map(|(j, _)| {
                j.records()
                    .iter()
                    .any(|r| r.starts_with(b"run-done"))
            })
            .unwrap_or(false);
        let mut jobs = shared.lock_jobs();
        if done {
            jobs.insert(
                id,
                JobRecord {
                    state: "completed",
                    resumable: false,
                    detail: "recovered from a previous run".into(),
                    hours_done: 0,
                    deadline: None,
                    token: None,
                },
            );
        } else {
            jobs.insert(id.clone(), JobRecord::queued(None));
            drop(jobs);
            shared.lock_queue().push_back(QueuedJob {
                id,
                spec: None,
                deadline: None,
                respond: None,
                probe: false,
            });
            shared.queue_cv.notify_all();
        }
    }
}

/// Accept loop: nonblocking accept + 25 ms poll so `stop` is observed
/// promptly; one detached handler thread per connection
/// (`Connection: close`, so handlers are short-lived — at most one
/// queued job wait each).
fn accept_loop(shared: &Arc<Shared>, listener: &TcpListener) {
    loop {
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        match listener.accept() {
            Ok((stream, _addr)) => {
                let shared = Arc::clone(shared);
                let _ = std::thread::Builder::new()
                    .name("vmcw-serve-conn".into())
                    .spawn(move || handle_connection(&shared, stream));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(25));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(25)),
        }
    }
}

/// Telemetry sweeper: rewrites `DIR/health.json` four times a second
/// while the server runs.
fn sweeper_loop(shared: &Arc<Shared>) {
    while !shared.stop.load(Ordering::SeqCst) {
        shared.write_health();
        std::thread::sleep(Duration::from_millis(250));
    }
}

fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) {
    let response = match read_request(&mut stream) {
        Ok(req) => Some(route(shared, &req)),
        Err(e) => error_response(&e),
    };
    if let Some(response) = response {
        let _ = response.write_to(&mut stream);
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// `None` when the transport itself broke mid-request: there is no
/// coherent peer to answer, and a 4xx would mislabel a server/network
/// condition as a client syntax error in telemetry.
fn error_response(e: &HttpError) -> Option<Response> {
    let status = match e {
        HttpError::Bad { .. } => 400,
        HttpError::Io { timeout: true, .. } => 408,
        HttpError::Io { timeout: false, .. } => return None,
        HttpError::TooLarge { detail } if detail.contains("body") => 413,
        HttpError::TooLarge { .. } => 431,
    };
    Some(Response::json(
        status,
        format!("{{\"error\": {}}}", json_string(&e.to_string())),
    ))
}

fn route(shared: &Arc<Shared>, req: &Request) -> Response {
    let method = req.head.method.as_str();
    let path = req.head.path.split('?').next().unwrap_or("");
    match (method, path) {
        ("GET", "/healthz") => Response::json(200, shared.health_snapshot().to_json()),
        ("GET", "/readyz") => {
            if shared.draining() {
                Response::json(503, "{\"ready\": false, \"reason\": \"draining\"}")
            } else {
                Response::json(200, "{\"ready\": true}")
            }
        }
        ("GET", p) if p.starts_with("/v1/jobs/") => {
            job_status(shared, p.trim_start_matches("/v1/jobs/"))
        }
        ("POST", "/v1/plan") => submit(shared, &req.body, false),
        ("POST", "/v1/replay") => submit(shared, &req.body, true),
        (_, "/healthz" | "/readyz" | "/v1/plan" | "/v1/replay") => Response::json(
            405,
            format!(
                "{{\"error\": {}}}",
                json_string(&format!("method {method} not allowed here"))
            ),
        ),
        _ => Response::json(
            404,
            format!(
                "{{\"error\": {}}}",
                json_string(&format!("no route for {method} {path}"))
            ),
        ),
    }
}

fn job_status(shared: &Arc<Shared>, id: &str) -> Response {
    let rec = shared.lock_jobs().get(id).cloned();
    let Some(rec) = rec else {
        return Response::json(404, "{\"error\": \"no such job\"}");
    };
    let hours_done = match rec.state {
        "running" | "timeout" | "interrupted" => shared.job_hours_done(id).max(rec.hours_done),
        _ => rec.hours_done,
    };
    Response::json(
        200,
        format!(
            "{{\"job\": {}, \"state\": {}, \"resumable\": {}, \"hours_done\": {}, \
             \"detail\": {}}}",
            json_string(id),
            json_string(rec.state),
            rec.resumable,
            hours_done,
            json_string(&rec.detail),
        ),
    )
}

/// `POST /v1/plan` / `POST /v1/replay`: admission control, then block
/// until a worker finishes (or sheds) the job.
fn submit(shared: &Arc<Shared>, body: &[u8], allow_faults: bool) -> Response {
    if shared.draining() {
        return Response::json(503, "{\"error\": \"server is draining\"}")
            .header("Retry-After", 1);
    }
    let job = match parse_job_spec(body, allow_faults) {
        Ok(j) => j,
        Err(detail) => {
            return Response::json(
                400,
                format!("{{\"error\": {}}}", json_string(&detail)),
            );
        }
    };

    let (tx, rx) = mpsc::channel();
    {
        // Registry insert and queue push under a consistent order
        // (jobs lock first, then queue, then breaker) — the duplicate
        // check and the shed decision must be atomic with the insert,
        // and the breaker is consulted *last*, after every other
        // reject, so no early return can consume its half-open probe
        // without a job carrying it into the queue.
        let mut jobs = shared.lock_jobs();
        let exists = |id: &str| {
            jobs.contains_key(id) || shared.job_dir(id).join(JOURNAL_FILE).exists()
        };
        let id = match job.id {
            Some(id) => {
                if exists(&id) {
                    return Response::json(
                        409,
                        format!(
                            "{{\"error\": {}}}",
                            json_string(&format!("job `{id}` already exists"))
                        ),
                    );
                }
                id
            }
            // Generated ids must skip jobs recovered from a previous
            // process (next_id restarts at 1 every boot) and anything
            // else already on disk.
            None => loop {
                let id =
                    format!("job-{:04}", shared.next_id.fetch_add(1, Ordering::SeqCst));
                if !exists(&id) {
                    break id;
                }
            },
        };
        let deadline = job
            .deadline_ms
            .or(shared.config.default_deadline_ms)
            .map(|ms| Instant::now() + Duration::from_millis(ms));
        let mut queue = shared.lock_queue();
        // drain() sets the flag before flushing the queue under this
        // lock, so re-checking here closes the entry-check race: either
        // the flag is visible now, or our push lands before the flush
        // and the flush answers the client with the drain 503.
        if shared.draining() {
            return Response::json(503, "{\"error\": \"server is draining\"}")
                .header("Retry-After", 1);
        }
        if queue.len() >= shared.config.queue_depth {
            shared.shed_total.fetch_add(1, Ordering::SeqCst);
            return Response::json(
                503,
                format!(
                    "{{\"error\": {}}}",
                    json_string(&format!(
                        "admission queue is full ({} waiting)",
                        queue.len()
                    ))
                ),
            )
            .header("Retry-After", shared.config.queue_depth.max(1));
        }
        let probe = match shared.lock_breaker().admit() {
            Ok(probe) => probe,
            Err(retry_secs) => {
                return Response::json(
                    503,
                    "{\"error\": \"circuit breaker is open: recent jobs failed\"}",
                )
                .header("Retry-After", retry_secs.ceil().max(1.0) as u64);
            }
        };
        jobs.insert(id.clone(), JobRecord::queued(deadline));
        queue.push_back(QueuedJob {
            id: id.clone(),
            spec: Some(job.spec),
            deadline,
            respond: Some(tx),
            probe,
        });
    }
    shared.queue_cv.notify_all();

    // Synchronous API: hold the connection until the job resolves.
    // Every path that consumes the job sends exactly one response
    // (worker result, deadline shed, drain flush); a disconnected
    // channel means a worker died un-catchably.
    match rx.recv() {
        Ok(resp) => resp,
        Err(_) => Response::json(500, "{\"error\": \"worker disappeared\"}"),
    }
}

/// Worker: pop → enforce deadline → run as a supervised study → map the
/// outcome onto an HTTP response + breaker verdict. Exits when draining
/// with an empty queue, or on `stop`.
fn worker_loop(shared: &Arc<Shared>) {
    loop {
        let job = {
            let mut queue = shared.lock_queue();
            loop {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                if let Some(job) = queue.pop_front() {
                    break job;
                }
                if shared.draining() {
                    return;
                }
                let (q, _) = shared
                    .queue_cv
                    .wait_timeout(queue, Duration::from_millis(50))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                queue = q;
            }
        };
        run_job(shared, job);
    }
}

fn run_job(shared: &Arc<Shared>, job: QueuedJob) {
    // A job whose deadline elapsed while it queued never starts: that
    // is the cheapest possible shed.
    if job.deadline.is_some_and(|d| Instant::now() >= d) {
        if job.probe {
            // Same as the drain flush: a probe that never runs must not
            // leave the breaker stuck in HalfOpen.
            shared.lock_breaker().record_failure();
        }
        shared.deadline_timeouts.fetch_add(1, Ordering::SeqCst);
        let resumable = job.spec.is_none(); // resume work keeps its journal
        shared.set_job(&job.id, |r| {
            r.state = "timeout";
            r.resumable = resumable;
            r.detail = "deadline elapsed while queued".into();
        });
        if let Some(tx) = job.respond {
            let _ = tx.send(Response::json(
                504,
                format!(
                    "{{\"status\": \"timeout\", \"resumable\": {resumable}, \
                     \"hours_done\": 0, \"detail\": \"deadline elapsed while queued\"}}"
                ),
            ));
        }
        return;
    }

    let token = CancelToken::new();
    if let Some(d) = job.deadline {
        token.cancel_at(d);
    }
    shared.set_job(&job.id, |r| {
        r.state = "running";
        r.token = Some(token.clone());
    });
    // A drain that swept the registry between our pop and the token
    // landing above would miss this job; re-check so the job still
    // observes the drain instead of running to completion.
    if shared.draining() {
        token.cancel();
    }

    let dir = shared.job_dir(&job.id);
    let opts = RunOptions {
        jobs: 1,
        retry: shared.config.retry,
        heartbeat_timeout_secs: shared.config.heartbeat_timeout_secs,
        chaos: shared.config.chaos.clone(),
    };
    let result = match &job.spec {
        Some(spec) => run_study_opts(spec, &dir, &token, &opts),
        None => resume_study_opts(&dir, None, &token, &opts),
    };

    let (response, verdict) = conclude(shared, &job.id, job.deadline, result);
    shared.set_job(&job.id, |r| r.token = None);
    match verdict {
        Verdict::Success => shared.lock_breaker().record_success(),
        Verdict::Failure => shared.lock_breaker().record_failure(),
        Verdict::Neutral => {
            // Timeouts and drain interruptions say nothing about worker
            // health; a half-open probe stays unresolved, so re-open.
            if job.probe {
                shared.lock_breaker().record_failure();
            }
        }
    }
    if let Some(tx) = job.respond {
        let _ = tx.send(response);
    }
}

/// Whether a finished job counts for or against the circuit breaker.
enum Verdict {
    Success,
    Failure,
    /// Deadline/drain interruptions: not the worker's fault.
    Neutral,
}

/// Maps a supervised-study result onto the response + breaker verdict,
/// updating the job registry.
fn conclude(
    shared: &Arc<Shared>,
    id: &str,
    deadline: Option<Instant>,
    result: Result<StudyReport, crate::supervise::SuperviseError>,
) -> (Response, Verdict) {
    match result {
        Ok(report) if report.status == StudyStatus::Completed => {
            let sick: Vec<String> = report
                .cells
                .iter()
                .filter(|c| {
                    matches!(
                        c.outcome,
                        CellOutcome::Quarantined { .. } | CellOutcome::Crashed { .. }
                    )
                })
                .map(|c| format!("{}/{}", c.dc.letter(), c.kind.label()))
                .collect();
            let hours: usize = report
                .cells
                .iter()
                .filter_map(|c| c.report.as_ref())
                .map(|r| r.hours)
                .sum();
            if sick.is_empty() {
                let cells: Vec<String> = report
                    .cells
                    .iter()
                    .map(|c| {
                        format!(
                            "{{\"cell\": {}, \"outcome\": {}}}",
                            json_string(&format!("{}/{}", c.dc.letter(), c.kind.label())),
                            json_string(c.outcome.label()),
                        )
                    })
                    .collect();
                shared.set_job(id, |r| {
                    r.state = "completed";
                    r.resumable = false;
                    r.hours_done = hours;
                });
                (
                    Response::json(
                        200,
                        format!(
                            "{{\"status\": \"completed\", \"job\": {}, \"hours_done\": {}, \
                             \"cells\": [{}]}}",
                            json_string(id),
                            hours,
                            cells.join(", "),
                        ),
                    ),
                    Verdict::Success,
                )
            } else {
                let detail = format!("cells failed permanently: {}", sick.join(", "));
                shared.set_job(id, |r| {
                    r.state = "failed";
                    r.resumable = false;
                    r.detail = detail.clone();
                    r.hours_done = hours;
                });
                (
                    Response::json(
                        500,
                        format!(
                            "{{\"status\": \"failed\", \"job\": {}, \"error\": {}}}",
                            json_string(id),
                            json_string(&detail),
                        ),
                    ),
                    Verdict::Failure,
                )
            }
        }
        Ok(_) => {
            // Interrupted: the cancel token fired — either this job's
            // deadline or a server-wide drain. Both leave a resumable
            // journal behind.
            let hours = shared.job_hours_done(id);
            if deadline.is_some_and(|d| Instant::now() >= d) {
                shared.deadline_timeouts.fetch_add(1, Ordering::SeqCst);
                shared.set_job(id, |r| {
                    r.state = "timeout";
                    r.resumable = true;
                    r.hours_done = hours;
                    r.detail = "deadline exceeded; checkpointed".into();
                });
                (
                    Response::json(
                        504,
                        format!(
                            "{{\"status\": \"timeout\", \"job\": {}, \"resumable\": true, \
                             \"hours_done\": {hours}, \
                             \"detail\": \"cancelled at deadline; resume by rebooting \
                             the server or re-posting the id\"}}",
                            json_string(id),
                        ),
                    ),
                    Verdict::Neutral,
                )
            } else {
                shared.set_job(id, |r| {
                    r.state = "interrupted";
                    r.resumable = true;
                    r.hours_done = hours;
                    r.detail = "interrupted by drain; checkpointed".into();
                });
                (
                    Response::json(
                        503,
                        format!(
                            "{{\"status\": \"interrupted\", \"job\": {}, \
                             \"resumable\": true, \"hours_done\": {hours}}}",
                            json_string(id),
                        ),
                    )
                    .header("Retry-After", 1),
                    Verdict::Neutral,
                )
            }
        }
        Err(e) => {
            let detail = e.to_string();
            shared.set_job(id, |r| {
                r.state = "failed";
                r.resumable = false;
                r.detail = detail.clone();
            });
            (
                Response::json(
                    500,
                    format!(
                        "{{\"status\": \"failed\", \"job\": {}, \"error\": {}}}",
                        json_string(id),
                        json_string(&detail),
                    ),
                ),
                Verdict::Failure,
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn breaker_trips_after_consecutive_failures_and_half_open_probes() {
        let mut b = Breaker::new(2, 0.05, 7);
        assert_eq!(b.label(), "closed");
        assert_eq!(b.admit(), Ok(false));
        b.record_failure();
        assert_eq!(b.label(), "closed"); // 1 of 2
        b.record_success();
        b.record_failure();
        b.record_failure(); // 2 consecutive → trip
        assert_eq!(b.label(), "open");
        assert!(b.admit().is_err());
        std::thread::sleep(Duration::from_millis(120)); // > 0.05 * 1.5
        assert_eq!(b.admit(), Ok(true)); // half-open probe
        assert_eq!(b.label(), "half-open");
        assert!(b.admit().is_err()); // only one probe at a time
        b.record_failure(); // probe failed → open again, escalated
        assert_eq!(b.label(), "open");
        std::thread::sleep(Duration::from_millis(240)); // > 0.05 * 2 * 1.5
        assert_eq!(b.admit(), Ok(true));
        b.record_success();
        assert_eq!(b.label(), "closed");
        assert_eq!(b.admit(), Ok(false));
    }

    #[test]
    fn breaker_cooldowns_are_deterministic_and_escalate() {
        let a = Breaker::new(3, 1.0, 42);
        let b = Breaker::new(3, 1.0, 42);
        for trips in 1..=4 {
            assert_eq!(a.cooldown_secs(trips), b.cooldown_secs(trips));
            let lo = 1.0 * 2f64.powi(trips as i32 - 1) * 0.5;
            let hi = 1.0 * 2f64.powi(trips as i32 - 1) * 1.5;
            let c = a.cooldown_secs(trips);
            assert!((lo..hi).contains(&c), "trip {trips}: {c} not in [{lo},{hi})");
        }
        // A different seed jitters differently (with overwhelming odds).
        let c = Breaker::new(3, 1.0, 43);
        assert_ne!(a.cooldown_secs(1), c.cooldown_secs(1));
    }

    #[test]
    fn job_specs_parse_with_defaults_and_reject_garbage() {
        let j = parse_job_spec(b"{}", false).unwrap();
        assert_eq!(j.spec.dcs.len(), 4);
        assert_eq!(j.spec.planners.len(), 3);
        assert_eq!(j.spec.seed, 42);
        assert!(j.spec.faults.is_none());
        assert_eq!(j.id, None);
        assert_eq!(j.deadline_ms, None);

        let j = parse_job_spec(
            b"{\"id\": \"a-1\", \"dcs\": \"ba\", \"planners\": [\"Dynamic\"], \
              \"scale\": 0.5, \"seed\": 7, \"history_days\": 2, \"eval_days\": 1, \
              \"deadline_ms\": 250, \"faults\": true}",
            true,
        )
        .unwrap();
        assert_eq!(j.id.as_deref(), Some("a-1"));
        assert_eq!(j.spec.dcs.len(), 2);
        assert_eq!(j.spec.planners, vec![PlannerKind::Dynamic]);
        assert!(j.spec.faults.is_some());
        assert_eq!(j.deadline_ms, Some(250));

        for (body, allow) in [
            (&b"not json"[..], false),
            (&b"[]"[..], false),
            (&b"{\"id\": \"../escape\"}"[..], false),
            (&b"{\"id\": \"\"}"[..], false),
            (&b"{\"dcs\": \"Z\"}"[..], false),
            (&b"{\"planners\": [\"Fancy\"]}"[..], false),
            (&b"{\"scale\": 0}"[..], false),
            (&b"{\"eval_days\": 0}"[..], false),
            (&b"{\"deadline_ms\": 0}"[..], false),
            (&b"{\"faults\": true}"[..], false), // plan endpoint
            (&b"\xff\xfe"[..], false),
        ] {
            assert!(
                parse_job_spec(body, allow).is_err(),
                "accepted {:?}",
                String::from_utf8_lossy(body)
            );
        }
        // The same faulted body is fine on /v1/replay.
        assert!(parse_job_spec(b"{\"faults\": true}", true).is_ok());
    }

    #[test]
    fn http_errors_map_to_statuses_without_blaming_the_client_for_io() {
        let bad = HttpError::Bad { detail: "x".into() };
        assert_eq!(error_response(&bad).expect("response").status, 400);
        let timeout = HttpError::Io {
            detail: "timed out".into(),
            timeout: true,
        };
        assert_eq!(error_response(&timeout).expect("response").status, 408);
        // A broken transport mid-request gets no response at all: there
        // is nobody coherent to answer.
        let broken = HttpError::Io {
            detail: "connection reset".into(),
            timeout: false,
        };
        assert!(error_response(&broken).is_none());
        let head = HttpError::TooLarge {
            detail: "request head over 16384 bytes".into(),
        };
        assert_eq!(error_response(&head).expect("response").status, 431);
        let body = HttpError::TooLarge {
            detail: "declared body of 9 bytes over 8".into(),
        };
        assert_eq!(error_response(&body).expect("response").status, 413);
    }

    /// A [`Shared`] with no threads attached, for exercising queue and
    /// breaker bookkeeping directly.
    fn bare_shared() -> Arc<Shared> {
        let config = ServeConfig::new(std::env::temp_dir().join("vmcw-serve-unit"), 0);
        Arc::new(Shared {
            breaker: Mutex::new(Breaker::new(
                config.breaker_trip_after,
                config.breaker_cooldown_secs,
                config.seed,
            )),
            config,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            jobs: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            shed_total: AtomicU64::new(0),
            deadline_timeouts: AtomicU64::new(0),
            draining: AtomicBool::new(false),
            stop: AtomicBool::new(false),
        })
    }

    /// A queued job carrying the breaker's half-open probe that is
    /// consumed *without running* (drain flush, queued-deadline shed)
    /// must resolve the probe — otherwise the breaker stays HalfOpen
    /// forever and every future submission is rejected until restart.
    #[test]
    fn drain_flush_resolves_an_unrun_half_open_probe() {
        let shared = bare_shared();
        shared.lock_breaker().state = BreakerState::HalfOpen;
        shared.lock_queue().push_back(QueuedJob {
            id: "probe".into(),
            spec: None,
            deadline: None,
            respond: None,
            probe: true,
        });
        drain(&shared);
        assert_eq!(shared.lock_breaker().label(), "open");
    }

    #[test]
    fn queued_deadline_shed_resolves_an_unrun_half_open_probe() {
        let shared = bare_shared();
        shared.lock_breaker().state = BreakerState::HalfOpen;
        run_job(
            &shared,
            QueuedJob {
                id: "probe".into(),
                spec: None,
                deadline: Some(Instant::now() - Duration::from_millis(1)),
                respond: None,
                probe: true,
            },
        );
        assert_eq!(shared.lock_breaker().label(), "open");
        assert_eq!(shared.deadline_timeouts.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn serve_config_validation() {
        assert!(ServeConfig::new("/tmp/x", 0).validate().is_ok());
        let mut c = ServeConfig::new("/tmp/x", 0);
        c.workers = 0;
        assert!(c.validate().is_err());
        let mut c = ServeConfig::new("/tmp/x", 0);
        c.queue_depth = 0;
        assert!(c.validate().is_err());
        let mut c = ServeConfig::new("/tmp/x", 0);
        c.breaker_cooldown_secs = f64::NAN;
        assert!(c.validate().is_err());
    }
}
