//! Regression tests: corrupt trace CSVs must come back as typed
//! [`TraceIoError`]s with a line number, never a panic or a silently
//! poisoned workload.

use vmcw_trace::datacenters::DataCenterId;
use vmcw_trace::io::{read_csv, TraceIoError, HEADER};

fn fixture(name: &str) -> std::path::PathBuf {
    std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn corrupt_fixture_is_rejected_with_line_numbers() {
    // The checked-in fixture has a NaN memory sample on line 3 and a
    // truncated row on line 4; the first defect wins and is reported
    // by line.
    let raw = std::fs::read(fixture("corrupt.csv")).unwrap();
    let err = read_csv(DataCenterId::Banking, raw.as_slice()).unwrap_err();
    match err {
        TraceIoError::Parse(line, msg) => {
            assert_eq!(line, 3, "NaN memory is the first corrupt row: {msg}");
            assert!(msg.contains("memory"), "{msg}");
        }
        other => panic!("expected a parse error, got {other}"),
    }
}

#[test]
fn truncated_row_is_rejected() {
    let csv = format!("{HEADER}\na,web,1000,4096,50,0,0.1\n");
    let err = read_csv(DataCenterId::Banking, csv.as_bytes()).unwrap_err();
    match err {
        TraceIoError::Parse(2, msg) => assert!(msg.contains("8 fields"), "{msg}"),
        other => panic!("expected a parse error on line 2, got {other}"),
    }
}

#[test]
fn non_finite_values_are_rejected_everywhere() {
    for (field, row) in [
        ("cpu capacity", "a,web,NaN,4096,50,0,0.1,100"),
        ("mem capacity", "a,web,1000,inf,50,0,0.1,100"),
        ("network peak", "a,web,1000,4096,-1,0,0.1,100"),
        ("memory", "a,web,1000,4096,50,0,0.1,NaN"),
        ("cpu fraction", "a,web,1000,4096,50,0,NaN,100"),
    ] {
        let csv = format!("{HEADER}\n{row}\n");
        let err = read_csv(DataCenterId::Banking, csv.as_bytes()).unwrap_err();
        assert!(
            matches!(err, TraceIoError::Parse(2, _)),
            "{field}: expected line-2 parse error, got {err}"
        );
    }
}
