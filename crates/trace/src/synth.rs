//! Random primitives behind the synthetic workload generator.
//!
//! Enterprise CPU demand is heavy-tailed (the paper cites Crovella et al.
//! for web workloads and measures CoV up to 10); the generator produces
//! those tails with a [`BoundedPareto`] spike-magnitude distribution, and
//! uses Gaussian noise ([`gaussian`]) plus smoothed spike trains for the
//! body of the demand.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A Pareto distribution truncated to `[lo, hi]`.
///
/// Sampling uses the inverse-CDF of the bounded Pareto. Small `alpha`
/// (≈1) gives the heavy tails of web workloads; large `alpha` (≳3) gives
/// the milder variability of batch jobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Creates a bounded Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 0` and `0 < lo < hi`.
    #[must_use]
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0, "alpha must be positive, got {alpha}");
        assert!(lo > 0.0 && lo < hi, "need 0 < lo < hi, got lo={lo} hi={hi}");
        Self { alpha, lo, hi }
    }

    /// Shape parameter.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Lower bound of the support.
    #[must_use]
    pub fn lo(&self) -> f64 {
        self.lo
    }

    /// Upper bound of the support.
    #[must_use]
    pub fn hi(&self) -> f64 {
        self.hi
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF of the bounded Pareto:
        //   x = (-(u*hi^a - u*lo^a - hi^a) / (hi^a * lo^a))^(-1/a)
        let u: f64 = rng.random();
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        let x = (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / self.alpha);
        x.clamp(self.lo, self.hi)
    }
}

/// Draws a standard-normal sample via the Box–Muller transform, scaled to
/// `mean` and `std`.
pub fn gaussian<R: Rng + ?Sized>(rng: &mut R, mean: f64, std: f64) -> f64 {
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random();
    let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    mean + std * z
}

/// A spike train: for each step, with probability `rate`, a spike of
/// magnitude drawn from `magnitude` starts and persists for a geometric
/// number of steps with mean `mean_width` (≥1).
///
/// Returns a multiplicative series (1.0 where no spike is active, the spike
/// magnitude where one is). Overlapping spikes take the maximum magnitude,
/// modelling saturation rather than unbounded stacking.
pub fn spike_train<R: Rng + ?Sized>(
    rng: &mut R,
    len: usize,
    rate: f64,
    magnitude: BoundedPareto,
    mean_width: f64,
) -> Vec<f64> {
    assert!(
        mean_width >= 1.0,
        "mean spike width must be at least one step"
    );
    let mut out = vec![1.0_f64; len];
    let continue_p = 1.0 - 1.0 / mean_width;
    for start in 0..len {
        if rng.random::<f64>() < rate {
            let mag = magnitude.sample(rng);
            let mut t = start;
            loop {
                out[t] = out[t].max(mag);
                t += 1;
                if t >= len || rng.random::<f64>() >= continue_p {
                    break;
                }
            }
        }
    }
    out
}

/// Simple exponential smoothing with factor `alpha` in `(0, 1]`
/// (`alpha = 1` returns the input unchanged).
///
/// Used to give generated traces the autocorrelation of real monitored
/// utilisation (hourly averages are already smooth in reality).
#[must_use]
pub fn smooth(values: &[f64], alpha: f64) -> Vec<f64> {
    assert!(
        alpha > 0.0 && alpha <= 1.0,
        "smoothing factor must be in (0, 1]"
    );
    let mut out = Vec::with_capacity(values.len());
    let mut prev: Option<f64> = None;
    for &v in values {
        let s = match prev {
            None => v,
            Some(p) => alpha * v + (1.0 - alpha) * p,
        };
        out.push(s);
        prev = Some(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xC0FFEE)
    }

    #[test]
    fn bounded_pareto_respects_support() {
        let dist = BoundedPareto::new(1.2, 1.0, 50.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = dist.sample(&mut r);
            assert!((1.0..=50.0).contains(&x), "sample {x} out of support");
        }
    }

    #[test]
    fn bounded_pareto_is_heavy_tailed_for_small_alpha() {
        let dist = BoundedPareto::new(1.0, 1.0, 100.0);
        let mut r = rng();
        let samples: Vec<f64> = (0..20_000).map(|_| dist.sample(&mut r)).collect();
        let above_10 = samples.iter().filter(|&&x| x > 10.0).count() as f64 / samples.len() as f64;
        // P(X > 10) for bounded Pareto(1, 1, 100) is ~0.0909.
        assert!(above_10 > 0.05 && above_10 < 0.15, "tail mass {above_10}");
    }

    #[test]
    fn larger_alpha_means_lighter_tail() {
        let mut r = rng();
        let heavy = BoundedPareto::new(0.9, 1.0, 100.0);
        let light = BoundedPareto::new(3.0, 1.0, 100.0);
        let mean = |d: &BoundedPareto, r: &mut StdRng| {
            (0..20_000).map(|_| d.sample(r)).sum::<f64>() / 20_000.0
        };
        assert!(mean(&heavy, &mut r) > mean(&light, &mut r));
    }

    #[test]
    #[should_panic(expected = "alpha must be positive")]
    fn pareto_rejects_zero_alpha() {
        let _ = BoundedPareto::new(0.0, 1.0, 2.0);
    }

    #[test]
    #[should_panic(expected = "0 < lo < hi")]
    fn pareto_rejects_inverted_support() {
        let _ = BoundedPareto::new(1.0, 5.0, 2.0);
    }

    #[test]
    fn gaussian_moments_roughly_match() {
        let mut r = rng();
        let samples: Vec<f64> = (0..50_000).map(|_| gaussian(&mut r, 10.0, 2.0)).collect();
        let m = crate::stats::mean(&samples).unwrap();
        let s = crate::stats::std_dev(&samples).unwrap();
        assert!((m - 10.0).abs() < 0.1, "mean {m}");
        assert!((s - 2.0).abs() < 0.1, "std {s}");
    }

    #[test]
    fn spike_train_is_one_where_quiet() {
        let mut r = rng();
        let dist = BoundedPareto::new(1.5, 2.0, 20.0);
        let train = spike_train(&mut r, 1000, 0.0, dist, 2.0);
        assert!(train.iter().all(|&v| v == 1.0));
    }

    #[test]
    fn spike_train_rate_controls_spike_mass() {
        let mut r = rng();
        let dist = BoundedPareto::new(1.5, 2.0, 20.0);
        let train = spike_train(&mut r, 10_000, 0.05, dist, 1.0);
        let frac = train.iter().filter(|&&v| v > 1.0).count() as f64 / 10_000.0;
        assert!(frac > 0.02 && frac < 0.12, "spike fraction {frac}");
        assert!(train.iter().all(|&v| (1.0..=20.0).contains(&v)));
    }

    #[test]
    fn smooth_identity_at_alpha_one() {
        let v = vec![1.0, 5.0, 2.0];
        assert_eq!(smooth(&v, 1.0), v);
    }

    #[test]
    fn smooth_reduces_variance() {
        let mut r = rng();
        let v: Vec<f64> = (0..1000).map(|_| gaussian(&mut r, 0.0, 1.0)).collect();
        let sm = smooth(&v, 0.3);
        assert!(crate::stats::variance(&sm).unwrap() < crate::stats::variance(&v).unwrap());
    }

    #[test]
    fn smooth_empty_is_empty() {
        assert!(smooth(&[], 0.5).is_empty());
    }
}
