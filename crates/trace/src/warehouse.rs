//! Monitoring agent and central data-warehouse substrate.
//!
//! Section 3.1 of the paper: "Each source server periodically collects
//! system usage data and sends it to a central server. The central server
//! acts as a data warehouse for the monitored data and maintains data with
//! policies on retention and expiration. ... The data warehouse uses the
//! monitored data to collect aggregates and stores the aggregate data at
//! different granularity. In our work, we use hourly averages of the
//! monitored data for the most recent 30 days."
//!
//! [`DataWarehouse`] reproduces that pipeline: per-minute samples are
//! ingested, folded into hourly aggregates, and both tiers are expired
//! according to a [`RetentionPolicy`]. Consolidation planning reads
//! [`DataWarehouse::hourly_series`].

use crate::metrics::{Metric, Sample};
use crate::series::{StepSecs, TimeSeries};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Identifier of a monitored source server (physical or virtual).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SourceId(pub u32);

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "src-{}", self.0)
    }
}

/// Retention and expiration policy of the warehouse.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetentionPolicy {
    /// How long raw per-minute samples are kept, in days.
    pub raw_days: u32,
    /// How long hourly aggregates are kept, in days.
    pub aggregate_days: u32,
}

impl RetentionPolicy {
    /// The policy used for the paper's consolidation studies: raw data for
    /// 7 days, hourly aggregates for 30 days ("the most recent 30 days").
    #[must_use]
    pub fn planning_default() -> Self {
        Self {
            raw_days: 7,
            aggregate_days: 30,
        }
    }
}

impl Default for RetentionPolicy {
    fn default() -> Self {
        Self::planning_default()
    }
}

/// Aggregate of all samples that fell into one hour.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HourlyAggregate {
    /// Mean of the samples.
    pub avg: f64,
    /// Maximum sample.
    pub max: f64,
    /// Minimum sample.
    pub min: f64,
    /// Number of samples aggregated.
    pub count: u32,
}

impl HourlyAggregate {
    fn from_first(value: f64) -> Self {
        Self {
            avg: value,
            max: value,
            min: value,
            count: 1,
        }
    }

    fn absorb(&mut self, value: f64) {
        let n = f64::from(self.count);
        self.avg = (self.avg * n + value) / (n + 1.0);
        self.max = self.max.max(value);
        self.min = self.min.min(value);
        self.count += 1;
    }
}

/// The central data warehouse.
///
/// # Example
///
/// ```
/// use vmcw_trace::metrics::{Metric, Sample};
/// use vmcw_trace::warehouse::{DataWarehouse, SourceId};
///
/// let mut wh = DataWarehouse::new(Default::default());
/// let src = SourceId(1);
/// for minute in 0..120 {
///     wh.ingest(src, Metric::TotalProcessorTime, Sample::new(minute, 10.0));
/// }
/// let hourly = wh.hourly_series(src, Metric::TotalProcessorTime).unwrap();
/// assert_eq!(hourly.len(), 2);
/// assert!((hourly.get(0).unwrap() - 10.0).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DataWarehouse {
    policy: RetentionPolicy,
    /// Raw per-minute samples, per (source, metric), keyed by minute.
    raw: HashMap<(SourceId, Metric), BTreeMap<u64, f64>>,
    /// Hourly aggregates, per (source, metric), keyed by hour.
    hourly: HashMap<(SourceId, Metric), BTreeMap<u64, HourlyAggregate>>,
    /// Latest minute seen, used by [`Self::expire`].
    now_minute: u64,
}

impl DataWarehouse {
    /// Creates an empty warehouse with the given retention policy.
    #[must_use]
    pub fn new(policy: RetentionPolicy) -> Self {
        Self {
            policy,
            ..Self::default()
        }
    }

    /// The active retention policy.
    #[must_use]
    pub fn policy(&self) -> RetentionPolicy {
        self.policy
    }

    /// Ingests one monitored sample, updating the hourly aggregate tier.
    ///
    /// A duplicate sample for the same minute overwrites the raw tier but is
    /// still absorbed into the aggregate (matching the at-least-once
    /// delivery of the real agent pipeline).
    pub fn ingest(&mut self, source: SourceId, metric: Metric, sample: Sample) {
        self.now_minute = self.now_minute.max(sample.minute);
        self.raw
            .entry((source, metric))
            .or_default()
            .insert(sample.minute, sample.value);
        self.hourly
            .entry((source, metric))
            .or_default()
            .entry(sample.hour())
            .and_modify(|agg| agg.absorb(sample.value))
            .or_insert_with(|| HourlyAggregate::from_first(sample.value));
    }

    /// Ingests a whole per-minute series starting at `start_minute`.
    ///
    /// # Panics
    ///
    /// Panics if the series step is not one minute.
    pub fn ingest_series(
        &mut self,
        source: SourceId,
        metric: Metric,
        start_minute: u64,
        series: &TimeSeries,
    ) {
        assert_eq!(
            series.step(),
            StepSecs::MINUTE,
            "the monitoring agent collects per-minute samples"
        );
        for (i, value) in series.iter().enumerate() {
            self.ingest(source, metric, Sample::new(start_minute + i as u64, value));
        }
    }

    /// All sources that have reported at least one sample.
    #[must_use]
    pub fn sources(&self) -> Vec<SourceId> {
        let mut out: Vec<SourceId> = self.hourly.keys().map(|(s, _)| *s).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// Hourly-average series for a (source, metric), covering every hour
    /// from the first to the last retained aggregate. Hours with no samples
    /// are filled with 0 (the agent reports zero usage when idle).
    ///
    /// Returns `None` when the pair has never reported.
    #[must_use]
    pub fn hourly_series(&self, source: SourceId, metric: Metric) -> Option<TimeSeries> {
        let aggs = self.hourly.get(&(source, metric))?;
        let (&first, _) = aggs.iter().next()?;
        let (&last, _) = aggs.iter().next_back()?;
        let mut values = Vec::with_capacity((last - first + 1) as usize);
        for hour in first..=last {
            values.push(aggs.get(&hour).map_or(0.0, |a| a.avg));
        }
        Some(TimeSeries::new(StepSecs::HOUR, values))
    }

    /// The hourly aggregate for one specific hour, if retained.
    #[must_use]
    pub fn hourly_aggregate(
        &self,
        source: SourceId,
        metric: Metric,
        hour: u64,
    ) -> Option<HourlyAggregate> {
        self.hourly.get(&(source, metric))?.get(&hour).copied()
    }

    /// Raw per-minute samples currently retained for a (source, metric).
    #[must_use]
    pub fn raw_samples(&self, source: SourceId, metric: Metric) -> Vec<Sample> {
        self.raw
            .get(&(source, metric))
            .map(|m| {
                m.iter()
                    .map(|(&minute, &value)| Sample { minute, value })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Applies the retention policy relative to the latest ingested minute,
    /// dropping raw samples older than `raw_days` and aggregates older than
    /// `aggregate_days`.
    ///
    /// Returns the number of (raw, aggregate) records expired.
    pub fn expire(&mut self) -> (usize, usize) {
        let raw_cutoff = self
            .now_minute
            .saturating_sub(u64::from(self.policy.raw_days) * 24 * 60);
        let hour_cutoff =
            (self.now_minute / 60).saturating_sub(u64::from(self.policy.aggregate_days) * 24);
        let mut raw_dropped = 0;
        for map in self.raw.values_mut() {
            let keep = map.split_off(&raw_cutoff);
            raw_dropped += map.len();
            *map = keep;
        }
        let mut agg_dropped = 0;
        for map in self.hourly.values_mut() {
            let keep = map.split_off(&hour_cutoff);
            agg_dropped += map.len();
            *map = keep;
        }
        (raw_dropped, agg_dropped)
    }

    /// Percentile of a source's hourly averages for a metric (the query a
    /// sizing engine issues, e.g. the stochastic planner's P90 body).
    ///
    /// Returns `None` when the pair has never reported.
    #[must_use]
    pub fn hourly_percentile(&self, source: SourceId, metric: Metric, p: f64) -> Option<f64> {
        let series = self.hourly_series(source, metric)?;
        crate::stats::percentile(series.values(), p)
    }

    /// The `k` sources with the highest mean hourly value for `metric`,
    /// descending — the "top consumers" report of a capacity review.
    #[must_use]
    pub fn top_consumers(&self, metric: Metric, k: usize) -> Vec<(SourceId, f64)> {
        let mut out: Vec<(SourceId, f64)> = self
            .sources()
            .into_iter()
            .filter_map(|s| {
                let series = self.hourly_series(s, metric)?;
                Some((s, series.mean()?))
            })
            .collect();
        out.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        out.truncate(k);
        out
    }

    /// Monitoring coverage of a (source, metric): the fraction of hours
    /// between the first and last aggregate that actually received
    /// samples. Gaps flag agent outages — the paper filters out servers
    /// "for which monitoring data ... is not available".
    ///
    /// Returns `None` when the pair has never reported.
    #[must_use]
    pub fn coverage(&self, source: SourceId, metric: Metric) -> Option<f64> {
        let aggs = self.hourly.get(&(source, metric))?;
        let (&first, _) = aggs.iter().next()?;
        let (&last, _) = aggs.iter().next_back()?;
        let span = (last - first + 1) as f64;
        Some(aggs.len() as f64 / span)
    }

    /// Total number of retained raw samples (for observability/tests).
    #[must_use]
    pub fn raw_len(&self) -> usize {
        self.raw.values().map(BTreeMap::len).sum()
    }

    /// Total number of retained hourly aggregates.
    #[must_use]
    pub fn hourly_len(&self) -> usize {
        self.hourly.values().map(BTreeMap::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cpu() -> Metric {
        Metric::TotalProcessorTime
    }

    #[test]
    fn hourly_aggregation_averages_minutes() {
        let mut wh = DataWarehouse::default();
        let src = SourceId(7);
        // Hour 0: values 0..60 -> mean 29.5; hour 1: constant 5.
        for m in 0..60 {
            wh.ingest(src, cpu(), Sample::new(m, m as f64));
        }
        for m in 60..120 {
            wh.ingest(src, cpu(), Sample::new(m, 5.0));
        }
        let s = wh.hourly_series(src, cpu()).unwrap();
        assert_eq!(s.len(), 2);
        assert!((s.get(0).unwrap() - 29.5).abs() < 1e-9);
        assert!((s.get(1).unwrap() - 5.0).abs() < 1e-9);
        let agg = wh.hourly_aggregate(src, cpu(), 0).unwrap();
        assert_eq!(agg.count, 60);
        assert_eq!(agg.max, 59.0);
        assert_eq!(agg.min, 0.0);
    }

    #[test]
    fn gaps_are_filled_with_zero() {
        let mut wh = DataWarehouse::default();
        let src = SourceId(1);
        wh.ingest(src, cpu(), Sample::new(0, 10.0));
        wh.ingest(src, cpu(), Sample::new(180, 20.0)); // hour 3
        let s = wh.hourly_series(src, cpu()).unwrap();
        assert_eq!(s.len(), 4);
        assert_eq!(s.values()[1], 0.0);
        assert_eq!(s.values()[2], 0.0);
    }

    #[test]
    fn unknown_source_returns_none() {
        let wh = DataWarehouse::default();
        assert!(wh.hourly_series(SourceId(99), cpu()).is_none());
    }

    #[test]
    fn expiration_honours_policy() {
        let policy = RetentionPolicy {
            raw_days: 1,
            aggregate_days: 2,
        };
        let mut wh = DataWarehouse::new(policy);
        let src = SourceId(3);
        // 3 days of hourly-spaced samples (one per hour to keep it small).
        for day in 0..3u64 {
            for hour in 0..24u64 {
                let minute = (day * 24 + hour) * 60;
                wh.ingest(src, cpu(), Sample::new(minute, 1.0));
            }
        }
        let (raw_dropped, agg_dropped) = wh.expire();
        assert!(raw_dropped > 0, "raw samples older than 1 day must expire");
        // now = minute 4260 (hour 71); aggregate cutoff = hour 71 - 48 = 23,
        // so the first day's hours 0..23 expire.
        assert_eq!(agg_dropped, 23);
        // Raw retention window is 1 day = 1440 minutes back from minute 2940.
        let remaining = wh.raw_samples(src, cpu());
        assert!(remaining.iter().all(|s| s.minute >= 2940 - 1440));
    }

    #[test]
    fn ingest_series_requires_minute_step() {
        let mut wh = DataWarehouse::default();
        let s = TimeSeries::new(StepSecs::MINUTE, vec![1.0, 2.0, 3.0]);
        wh.ingest_series(SourceId(1), cpu(), 58, &s);
        // Minutes 58,59 are hour 0, minute 60 is hour 1.
        assert_eq!(wh.hourly_aggregate(SourceId(1), cpu(), 0).unwrap().count, 2);
        assert_eq!(wh.hourly_aggregate(SourceId(1), cpu(), 1).unwrap().count, 1);
    }

    #[test]
    #[should_panic(expected = "per-minute")]
    fn ingest_series_rejects_hourly_step() {
        let mut wh = DataWarehouse::default();
        let s = TimeSeries::new(StepSecs::HOUR, vec![1.0]);
        wh.ingest_series(SourceId(1), cpu(), 0, &s);
    }

    #[test]
    fn sources_lists_reporters() {
        let mut wh = DataWarehouse::default();
        wh.ingest(SourceId(2), cpu(), Sample::new(0, 1.0));
        wh.ingest(SourceId(1), cpu(), Sample::new(0, 1.0));
        wh.ingest(
            SourceId(1),
            Metric::MemoryCommittedMb,
            Sample::new(0, 512.0),
        );
        assert_eq!(wh.sources(), vec![SourceId(1), SourceId(2)]);
    }

    #[test]
    fn hourly_percentile_matches_series() {
        let mut wh = DataWarehouse::default();
        let src = SourceId(4);
        // Hourly values 0..100 (one sample per hour).
        for h in 0..100u64 {
            wh.ingest(src, cpu(), Sample::new(h * 60, h as f64));
        }
        let p90 = wh.hourly_percentile(src, cpu(), 90.0).unwrap();
        assert!((p90 - 89.1).abs() < 1e-9, "p90 {p90}");
        assert!(wh.hourly_percentile(SourceId(99), cpu(), 50.0).is_none());
    }

    #[test]
    fn top_consumers_rank_by_mean() {
        let mut wh = DataWarehouse::default();
        for (id, level) in [(1u32, 10.0), (2, 50.0), (3, 30.0)] {
            for h in 0..24u64 {
                wh.ingest(SourceId(id), cpu(), Sample::new(h * 60, level));
            }
        }
        let top = wh.top_consumers(cpu(), 2);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].0, SourceId(2));
        assert_eq!(top[1].0, SourceId(3));
        assert!((top[0].1 - 50.0).abs() < 1e-9);
        // k larger than the population returns everyone.
        assert_eq!(wh.top_consumers(cpu(), 10).len(), 3);
    }

    #[test]
    fn coverage_detects_agent_gaps() {
        let mut wh = DataWarehouse::default();
        let src = SourceId(6);
        // Hours 0, 1 and 4 report; 2 and 3 are an outage.
        for h in [0u64, 1, 4] {
            wh.ingest(src, cpu(), Sample::new(h * 60, 1.0));
        }
        let c = wh.coverage(src, cpu()).unwrap();
        assert!((c - 3.0 / 5.0).abs() < 1e-9, "coverage {c}");
        // A fully covered source reports 1.0.
        let full = SourceId(7);
        for h in 0..10u64 {
            wh.ingest(full, cpu(), Sample::new(h * 60, 1.0));
        }
        assert!((wh.coverage(full, cpu()).unwrap() - 1.0).abs() < 1e-9);
        assert!(wh.coverage(SourceId(99), cpu()).is_none());
    }

    #[test]
    fn duplicate_minute_overwrites_raw() {
        let mut wh = DataWarehouse::default();
        wh.ingest(SourceId(1), cpu(), Sample::new(5, 1.0));
        wh.ingest(SourceId(1), cpu(), Sample::new(5, 9.0));
        let raw = wh.raw_samples(SourceId(1), cpu());
        assert_eq!(raw.len(), 1);
        assert_eq!(raw[0].value, 9.0);
    }
}
