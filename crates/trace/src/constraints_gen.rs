//! Synthesis of realistic deployment-constraint sets.
//!
//! §2.2.4: "Enterprise applications often have deployment constraints,
//! which consolidation algorithms need to take into account." The paper's
//! engagements see affinity (app server + cache), anti-affinity (HA
//! pairs), license host pinning and DMZ subnet pinning. Since the real
//! constraint inventories are as proprietary as the traces, this module
//! synthesises a constraint mix with the knobs an engagement would
//! recognise, deterministically from a seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Relative frequencies of the §2.2.4 constraint kinds, as fractions of
/// the server population.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ConstraintMix {
    /// Fraction of servers that form an HA anti-affinity pair with a
    /// randomly chosen partner.
    pub ha_pair_frac: f64,
    /// Fraction of servers colocated with a companion (cache, sidecar).
    pub affinity_frac: f64,
    /// Fraction of servers pinned to a subnet (DMZ-style zoning).
    pub subnet_pin_frac: f64,
    /// Number of subnets the pins draw from.
    pub subnets: u16,
}

impl ConstraintMix {
    /// A typical enterprise mix: ~6% HA pairs, ~4% affinity companions,
    /// ~5% subnet-zoned, over 4 subnets.
    #[must_use]
    pub fn typical() -> Self {
        Self {
            ha_pair_frac: 0.06,
            affinity_frac: 0.04,
            subnet_pin_frac: 0.05,
            subnets: 4,
        }
    }

    /// No constraints at all.
    #[must_use]
    pub fn none() -> Self {
        Self {
            ha_pair_frac: 0.0,
            affinity_frac: 0.0,
            subnet_pin_frac: 0.0,
            subnets: 1,
        }
    }

    /// A heavily constrained estate (regulated industries).
    #[must_use]
    pub fn heavy() -> Self {
        Self {
            ha_pair_frac: 0.15,
            affinity_frac: 0.10,
            subnet_pin_frac: 0.15,
            subnets: 4,
        }
    }
}

impl Default for ConstraintMix {
    fn default() -> Self {
        Self::typical()
    }
}

/// A synthesised constraint list over `n` server indices (`0..n`), to be
/// mapped onto VM ids by the caller.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct SynthesisedConstraints {
    /// Anti-affinity pairs (HA).
    pub anti_pairs: Vec<(u32, u32)>,
    /// Affinity pairs (colocated companions).
    pub affinity_pairs: Vec<(u32, u32)>,
    /// Subnet pins `(server, subnet)`.
    pub subnet_pins: Vec<(u32, u16)>,
}

impl SynthesisedConstraints {
    /// Total number of constraints.
    #[must_use]
    pub fn len(&self) -> usize {
        self.anti_pairs.len() + self.affinity_pairs.len() + self.subnet_pins.len()
    }

    /// Whether no constraints were synthesised.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Synthesises a constraint set over `n` servers.
///
/// Each server participates in at most one pairwise constraint (HA *or*
/// affinity), mirroring the disjoint application boundaries real
/// inventories have — and guaranteeing the result is internally
/// consistent (no colocate/anti-colocate contradictions, no oversized
/// affinity groups).
#[must_use]
pub fn synthesise(n: usize, mix: &ConstraintMix, seed: u64) -> SynthesisedConstraints {
    let mut rng = StdRng::seed_from_u64(seed ^ 0xC0_57_A1_57);
    let mut out = SynthesisedConstraints::default();
    if n < 2 {
        return out;
    }
    let mut unpaired: Vec<u32> = (0..n as u32).collect();
    // Fisher–Yates-style pair drawing.
    let draw_pair = |unpaired: &mut Vec<u32>, rng: &mut StdRng| -> Option<(u32, u32)> {
        if unpaired.len() < 2 {
            return None;
        }
        let i = rng.random_range(0..unpaired.len());
        let a = unpaired.swap_remove(i);
        let j = rng.random_range(0..unpaired.len());
        let b = unpaired.swap_remove(j);
        Some((a, b))
    };
    let ha_pairs = ((n as f64 * mix.ha_pair_frac / 2.0).round() as usize).min(n / 2);
    for _ in 0..ha_pairs {
        let Some(pair) = draw_pair(&mut unpaired, &mut rng) else {
            break;
        };
        out.anti_pairs.push(pair);
    }
    let affinity_pairs = ((n as f64 * mix.affinity_frac / 2.0).round() as usize).min(n / 2);
    for _ in 0..affinity_pairs {
        let Some(pair) = draw_pair(&mut unpaired, &mut rng) else {
            break;
        };
        out.affinity_pairs.push(pair);
    }
    // Subnet pins: zoning may hit any server, but colocated companions
    // must land in the same zone — a split-zone affinity pair would be
    // unsatisfiable.
    let companion: std::collections::BTreeMap<u32, u32> = out
        .affinity_pairs
        .iter()
        .flat_map(|&(a, b)| [(a, b), (b, a)])
        .collect();
    let pins = (n as f64 * mix.subnet_pin_frac).round() as usize;
    let mut pinned = std::collections::BTreeMap::new();
    let mut guard = 0;
    while pinned.len() < pins.min(n) && guard < n * 10 {
        guard += 1;
        let s = rng.random_range(0..n as u32);
        if pinned.contains_key(&s) {
            continue;
        }
        let subnet = companion
            .get(&s)
            .and_then(|c| pinned.get(c).copied())
            .unwrap_or_else(|| rng.random_range(0..mix.subnets.max(1)));
        pinned.insert(s, subnet);
    }
    out.subnet_pins = pinned.into_iter().collect();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typical_mix_produces_expected_counts() {
        let c = synthesise(1000, &ConstraintMix::typical(), 7);
        assert_eq!(c.anti_pairs.len(), 30, "6% of 1000 servers = 30 pairs");
        assert_eq!(c.affinity_pairs.len(), 20);
        assert_eq!(c.subnet_pins.len(), 50);
        assert!(!c.is_empty());
    }

    #[test]
    fn servers_participate_in_at_most_one_pair() {
        let c = synthesise(500, &ConstraintMix::heavy(), 3);
        let mut seen = std::collections::BTreeSet::new();
        for &(a, b) in c.anti_pairs.iter().chain(&c.affinity_pairs) {
            assert_ne!(a, b);
            assert!(seen.insert(a), "server {a} in two pairs");
            assert!(seen.insert(b), "server {b} in two pairs");
        }
    }

    #[test]
    fn subnet_pins_are_unique_and_in_range() {
        let mix = ConstraintMix {
            subnets: 3,
            ..ConstraintMix::heavy()
        };
        let c = synthesise(200, &mix, 9);
        let mut servers = std::collections::BTreeSet::new();
        for &(s, subnet) in &c.subnet_pins {
            assert!(servers.insert(s), "duplicate pin for {s}");
            assert!(subnet < 3);
        }
    }

    #[test]
    fn colocated_companions_share_their_zone() {
        // Exhaustively over seeds: a pinned affinity pair never splits.
        for seed in 0..20 {
            let c = synthesise(400, &ConstraintMix::heavy(), seed);
            let pins: std::collections::BTreeMap<u32, u16> =
                c.subnet_pins.iter().copied().collect();
            for &(a, b) in &c.affinity_pairs {
                if let (Some(&sa), Some(&sb)) = (pins.get(&a), pins.get(&b)) {
                    assert_eq!(sa, sb, "seed {seed}: pair ({a},{b}) split across zones");
                }
            }
        }
    }

    #[test]
    fn none_mix_is_empty_and_tiny_populations_are_safe() {
        assert!(synthesise(1000, &ConstraintMix::none(), 1).is_empty());
        assert!(synthesise(1, &ConstraintMix::heavy(), 1).is_empty());
        assert!(synthesise(0, &ConstraintMix::heavy(), 1).is_empty());
    }

    #[test]
    fn synthesis_is_deterministic() {
        let a = synthesise(300, &ConstraintMix::typical(), 42);
        let b = synthesise(300, &ConstraintMix::typical(), 42);
        assert_eq!(a, b);
        let c = synthesise(300, &ConstraintMix::typical(), 43);
        assert_ne!(a, c);
    }
}
