//! Per-server workload component models.
//!
//! The paper classifies all applications "as either web-based workloads or
//! computational/batch processing jobs" (§3.2). This module provides
//! generative models for both classes:
//!
//! * [`WebProfile`] — diurnal business-hours traffic with weekend dips and
//!   heavy-tailed load spikes (web workloads are heavy-tailed, Crovella et
//!   al. \[7\]).
//! * [`BatchProfile`] — scheduled jobs at fixed hours, with optional
//!   month-end intensification ("payroll workloads need peak resource
//!   demand on the first and last day of a month", §1).
//! * [`MemoryProfile`] — a large static commit plus a component weakly
//!   coupled to CPU activity; the coupling is deliberately sublinear,
//!   reproducing the paper's Olio observation that a 6× throughput increase
//!   raised CPU 7.9× but memory only 3×.
//!
//! Time convention: hour 0 is midnight on a Monday that is also the first
//! day of a 30-day month.

use crate::series::{StepSecs, TimeSeries};
use crate::synth::{gaussian, smooth, spike_train, BoundedPareto};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Hours per day.
pub const HOURS_PER_DAY: usize = 24;
/// Days per (synthetic) week.
pub const DAYS_PER_WEEK: usize = 7;
/// Days per (synthetic) month, matching the paper's 30-day planning data.
pub const DAYS_PER_MONTH: usize = 30;

/// Workload class of a server (§3.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WorkloadClass {
    /// Web-based application component (incl. its database servers).
    Web,
    /// Computational / batch processing job.
    Batch,
}

impl WorkloadClass {
    /// Short lowercase label, used in CSV output.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            WorkloadClass::Web => "web",
            WorkloadClass::Batch => "batch",
        }
    }
}

/// Position of an hour within the synthetic calendar.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CalendarHour {
    /// Hour of day, `0..24`.
    pub hour_of_day: usize,
    /// Day of week, `0..7` with 0 = Monday.
    pub day_of_week: usize,
    /// Day of month, `0..30`.
    pub day_of_month: usize,
}

impl CalendarHour {
    /// Decomposes an absolute hour index.
    #[must_use]
    pub fn from_hour_index(h: usize) -> Self {
        let day = h / HOURS_PER_DAY;
        Self {
            hour_of_day: h % HOURS_PER_DAY,
            day_of_week: day % DAYS_PER_WEEK,
            day_of_month: day % DAYS_PER_MONTH,
        }
    }

    /// Whether this hour falls on a weekend (Saturday/Sunday).
    #[must_use]
    pub fn is_weekend(self) -> bool {
        self.day_of_week >= 5
    }

    /// Whether this hour falls on the first or last day of the month —
    /// the payroll window of §1.
    #[must_use]
    pub fn is_month_boundary(self) -> bool {
        self.day_of_month == 0 || self.day_of_month == DAYS_PER_MONTH - 1
    }
}

/// Normalised business-hours curve: 0 at dead of night, 1 at mid-day peak.
///
/// The curve has a morning ramp (07–10), a lunchtime plateau, an afternoon
/// peak (14–17) and an evening decay — the canonical enterprise diurnal
/// pattern seen in the traces of Fig. 1.
#[must_use]
pub fn business_curve(hour_of_day: usize) -> f64 {
    const CURVE: [f64; HOURS_PER_DAY] = [
        0.05, 0.03, 0.02, 0.02, 0.03, 0.06, 0.12, 0.30, 0.55, 0.80, 0.92, 0.95, 0.85, 0.90, 1.00,
        0.98, 0.90, 0.75, 0.55, 0.40, 0.30, 0.20, 0.12, 0.08,
    ];
    CURVE[hour_of_day % HOURS_PER_DAY]
}

/// Generative model of a web-based server's CPU demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebProfile {
    /// Baseline CPU fraction at dead of night.
    pub base_frac: f64,
    /// Additional CPU fraction at the daily peak (scaled by
    /// [`business_curve`]).
    pub diurnal_amp: f64,
    /// Multiplier applied to the diurnal component on weekends.
    pub weekend_factor: f64,
    /// Per-hour probability that an idiosyncratic load spike starts.
    pub spike_rate: f64,
    /// Spike magnitude distribution (multiplier on the current level).
    pub spike_magnitude: BoundedPareto,
    /// Mean spike width in hours.
    pub spike_width_hours: f64,
    /// Response gain to data-center-wide load events (0 = immune; 1 =
    /// full exposure). Correlated events — a fare sale, a market move, a
    /// product launch — hit every exposed server of an enterprise at the
    /// same hours, which is what makes the *aggregate* demand bursty and
    /// lets the stochastic planner's peak clustering matter.
    pub event_gain: f64,
    /// Standard deviation of multiplicative Gaussian noise.
    pub noise_std: f64,
}

impl WebProfile {
    /// Generates an hourly CPU-fraction series of length `hours`.
    ///
    /// `events` is the data-center-wide event train (a multiplicative
    /// series with 1.0 = no event, produced by
    /// [`spike_train`]); pass `&[]` for an event-free
    /// server. Values are clamped to `[0.001, 1.0]` — a pegged CPU
    /// reports 100%.
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        hours: usize,
        events: &[f64],
    ) -> TimeSeries {
        let spikes = spike_train(
            rng,
            hours,
            self.spike_rate,
            self.spike_magnitude,
            self.spike_width_hours,
        );
        let mut values = Vec::with_capacity(hours);
        #[allow(clippy::needless_range_loop)] // h drives calendar math too
        for h in 0..hours {
            let cal = CalendarHour::from_hour_index(h);
            let week = if cal.is_weekend() {
                self.weekend_factor
            } else {
                1.0
            };
            let level = self.base_frac + self.diurnal_amp * business_curve(cal.hour_of_day) * week;
            let event = events.get(h).copied().unwrap_or(1.0);
            let event_mult = 1.0 + self.event_gain * (event - 1.0);
            let noisy = level * (1.0 + gaussian(rng, 0.0, self.noise_std));
            // An idiosyncratic spike and a data-center event are
            // alternative demand sources; load saturates at the larger of
            // the two rather than compounding.
            values.push((noisy * spikes[h].max(event_mult)).clamp(0.001, 1.0));
        }
        TimeSeries::new(StepSecs::HOUR, smooth(&values, 0.85))
    }
}

/// Generative model of a batch/computational server's CPU demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BatchProfile {
    /// CPU fraction outside job windows.
    pub idle_frac: f64,
    /// Hour-of-day at which the daily job window starts.
    pub job_start_hour: usize,
    /// Length of the daily job window in hours.
    pub job_hours: usize,
    /// CPU fraction during the job window.
    pub job_frac: f64,
    /// Per-day probability that the job is skipped (no run that day).
    pub skip_probability: f64,
    /// Multiplier applied to `job_frac` on the first/last day of the month
    /// (payroll-style month-end processing). 1.0 disables it.
    pub month_end_boost: f64,
    /// Relative demand growth per day (organic data growth makes batch
    /// jobs slowly heavier — the reason a placement sized on last month's
    /// peak can contend this month). 0 disables it.
    pub daily_growth: f64,
    /// Standard deviation of multiplicative Gaussian noise.
    pub noise_std: f64,
}

impl BatchProfile {
    /// Generates an hourly CPU-fraction series of length `hours`.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, hours: usize) -> TimeSeries {
        let days = hours.div_ceil(HOURS_PER_DAY);
        let runs: Vec<bool> = (0..days)
            .map(|_| rng.random::<f64>() >= self.skip_probability)
            .collect();
        let mut values = Vec::with_capacity(hours);
        for h in 0..hours {
            let cal = CalendarHour::from_hour_index(h);
            let day = h / HOURS_PER_DAY;
            let in_window = {
                let end = self.job_start_hour + self.job_hours;
                let hod = cal.hour_of_day;
                // Job windows may wrap past midnight.
                if end <= HOURS_PER_DAY {
                    hod >= self.job_start_hour && hod < end
                } else {
                    hod >= self.job_start_hour || hod < end - HOURS_PER_DAY
                }
            };
            let mut level = self.idle_frac;
            if in_window && runs[day] {
                let boost = if cal.is_month_boundary() {
                    self.month_end_boost
                } else {
                    1.0
                };
                level = (self.job_frac * boost).max(level);
            }
            let growth = 1.0 + self.daily_growth * day as f64;
            let noisy = level * growth * (1.0 + gaussian(rng, 0.0, self.noise_std));
            values.push(noisy.clamp(0.001, 1.0));
        }
        TimeSeries::new(StepSecs::HOUR, values)
    }
}

/// Generative model of a server's committed-memory demand.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryProfile {
    /// Static committed memory (OS, resident services), in MB.
    pub base_mb: f64,
    /// Memory added at full CPU activity, in MB.
    pub cpu_coupled_mb: f64,
    /// Exponent of the coupling (sublinear: < 1). The paper's Olio
    /// measurement (6× throughput → 3× memory vs 7.9× CPU) corresponds to
    /// an exponent around 0.6.
    pub coupling_exponent: f64,
    /// Standard deviation of additive Gaussian noise in MB.
    pub noise_std_mb: f64,
}

impl MemoryProfile {
    /// Generates the committed-memory series (MB) driven by a CPU-fraction
    /// series.
    ///
    /// The CPU activity is normalised by the series' 95th percentile (a
    /// typical busy hour) and saturates at 1 — committed memory tracks
    /// sustained load, not transient CPU extremes — so the coupled
    /// component spans `0..=cpu_coupled_mb` on an ordinary busy day.
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, cpu: &TimeSeries) -> TimeSeries {
        let typical_peak = crate::stats::percentile(cpu.values(), 95.0)
            .unwrap_or(1.0)
            .max(1e-9);
        let values: Vec<f64> = cpu
            .iter()
            .map(|u| {
                let act = (u / typical_peak).clamp(0.0, 1.0);
                let mem = self.base_mb
                    + self.cpu_coupled_mb * act.powf(self.coupling_exponent)
                    + gaussian(rng, 0.0, self.noise_std_mb);
                mem.max(1.0)
            })
            .collect();
        TimeSeries::new(cpu.step(), smooth(&values, 0.75))
    }
}

/// CPU demand model of a server: one of the two workload classes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CpuProfile {
    /// Web-based workload.
    Web(WebProfile),
    /// Batch workload.
    Batch(BatchProfile),
}

impl CpuProfile {
    /// The workload class of this profile.
    #[must_use]
    pub fn class(&self) -> WorkloadClass {
        match self {
            CpuProfile::Web(_) => WorkloadClass::Web,
            CpuProfile::Batch(_) => WorkloadClass::Batch,
        }
    }

    /// Generates an hourly CPU-fraction series of length `hours`.
    ///
    /// `events` is the data-center-wide event train (batch workloads
    /// ignore it — scheduled jobs do not follow user-facing load).
    pub fn generate<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        hours: usize,
        events: &[f64],
    ) -> TimeSeries {
        match self {
            CpuProfile::Web(p) => p.generate(rng, hours, events),
            CpuProfile::Batch(p) => p.generate(rng, hours),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn bursty_web() -> WebProfile {
        WebProfile {
            base_frac: 0.01,
            diurnal_amp: 0.05,
            weekend_factor: 0.5,
            spike_rate: 0.03,
            spike_magnitude: BoundedPareto::new(1.1, 3.0, 25.0),
            spike_width_hours: 2.0,
            event_gain: 0.0,
            noise_std: 0.15,
        }
    }

    fn steady_batch() -> BatchProfile {
        BatchProfile {
            idle_frac: 0.08,
            job_start_hour: 1,
            job_hours: 6,
            job_frac: 0.28,
            skip_probability: 0.05,
            month_end_boost: 1.0,
            daily_growth: 0.0,
            noise_std: 0.05,
        }
    }

    #[test]
    fn calendar_decomposition() {
        let c = CalendarHour::from_hour_index(0);
        assert_eq!((c.hour_of_day, c.day_of_week, c.day_of_month), (0, 0, 0));
        let c = CalendarHour::from_hour_index(24 * 5 + 3);
        assert_eq!(c.day_of_week, 5);
        assert!(c.is_weekend());
        let c = CalendarHour::from_hour_index(24 * 29);
        assert!(c.is_month_boundary());
        let c = CalendarHour::from_hour_index(24 * 30);
        assert_eq!(c.day_of_month, 0);
        assert!(c.is_month_boundary());
    }

    #[test]
    fn business_curve_peaks_in_afternoon() {
        assert!(business_curve(14) > business_curve(3));
        assert_eq!(business_curve(14), 1.0);
        assert!(business_curve(24) == business_curve(0));
    }

    #[test]
    fn web_profile_is_bursty() {
        let mut r = rng(1);
        let s = bursty_web().generate(&mut r, 24 * 30, &[]);
        assert_eq!(s.len(), 720);
        let pa = stats::peak_to_average(s.values()).unwrap();
        assert!(pa > 3.0, "expected bursty web trace, P/A = {pa}");
        assert!(s.values().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }

    #[test]
    fn web_weekends_are_quieter() {
        let mut r = rng(2);
        let mut profile = bursty_web();
        profile.spike_rate = 0.0; // isolate the diurnal component
        profile.noise_std = 0.0;
        let s = profile.generate(&mut r, 24 * 7, &[]);
        let weekday_noon = s.get(12).unwrap(); // Monday 12:00
        let weekend_noon = s.get(24 * 5 + 12).unwrap(); // Saturday 12:00
        assert!(weekend_noon < weekday_noon);
    }

    #[test]
    fn batch_profile_moderate_cov() {
        let mut r = rng(3);
        let s = steady_batch().generate(&mut r, 24 * 30);
        let cov = stats::coefficient_of_variability(s.values()).unwrap();
        assert!(
            cov < 1.0,
            "batch workloads should not be heavy-tailed, CoV = {cov}"
        );
        let pa = stats::peak_to_average(s.values()).unwrap();
        assert!(pa > 1.5 && pa < 4.0, "P/A = {pa}");
    }

    #[test]
    fn batch_job_window_wraps_midnight() {
        let mut r = rng(4);
        let profile = BatchProfile {
            job_start_hour: 22,
            job_hours: 4, // 22:00–02:00
            skip_probability: 0.0,
            noise_std: 0.0,
            ..steady_batch()
        };
        let s = profile.generate(&mut r, 48);
        assert!(s.get(23).unwrap() > 0.2, "23:00 inside window");
        assert!(s.get(25).unwrap() > 0.2, "01:00 next day inside window");
        assert!(s.get(12).unwrap() < 0.1, "noon outside window");
    }

    #[test]
    fn month_end_boost_raises_boundary_days() {
        let mut r = rng(5);
        let profile = BatchProfile {
            month_end_boost: 2.5,
            skip_probability: 0.0,
            noise_std: 0.0,
            ..steady_batch()
        };
        let s = profile.generate(&mut r, 24 * 30);
        let normal_day_peak = s.slice(24 * 10..24 * 11).max().unwrap();
        let month_end_peak = s.slice(24 * 29..24 * 30).max().unwrap();
        assert!(month_end_peak > normal_day_peak * 1.5);
    }

    #[test]
    fn memory_is_much_less_bursty_than_cpu() {
        let mut r = rng(6);
        let cpu = bursty_web().generate(&mut r, 24 * 30, &[]);
        let mem_profile = MemoryProfile {
            base_mb: 1500.0,
            cpu_coupled_mb: 600.0,
            coupling_exponent: 0.6,
            noise_std_mb: 20.0,
        };
        let mem = mem_profile.generate(&mut r, &cpu);
        let cpu_pa = stats::peak_to_average(cpu.values()).unwrap();
        let mem_pa = stats::peak_to_average(mem.values()).unwrap();
        assert!(mem_pa < 1.6, "memory P/A should be small, got {mem_pa}");
        assert!(cpu_pa / mem_pa > 2.0, "cpu {cpu_pa} vs mem {mem_pa}");
        let mem_cov = stats::coefficient_of_variability(mem.values()).unwrap();
        assert!(mem_cov < 0.5, "memory CoV should be < 0.5, got {mem_cov}");
    }

    #[test]
    fn memory_never_below_one_mb() {
        let mut r = rng(7);
        let cpu = TimeSeries::new(StepSecs::HOUR, vec![0.0; 48]);
        let mem_profile = MemoryProfile {
            base_mb: 2.0,
            cpu_coupled_mb: 0.0,
            coupling_exponent: 1.0,
            noise_std_mb: 50.0,
        };
        let mem = mem_profile.generate(&mut r, &cpu);
        assert!(mem.values().iter().all(|&v| v >= 1.0));
    }

    #[test]
    fn cpu_profile_dispatch() {
        let mut r = rng(8);
        let web = CpuProfile::Web(bursty_web());
        let batch = CpuProfile::Batch(steady_batch());
        assert_eq!(web.class(), WorkloadClass::Web);
        assert_eq!(batch.class(), WorkloadClass::Batch);
        assert_eq!(web.generate(&mut r, 24, &[]).len(), 24);
        assert_eq!(batch.generate(&mut r, 24, &[]).len(), 24);
        assert_eq!(WorkloadClass::Web.label(), "web");
    }
}
