//! Workload statistics used throughout the paper.
//!
//! Section 4 of the paper characterises burstiness with two metrics: the
//! **peak-to-average ratio** ([`peak_to_average`]) and the **coefficient of
//! variability** ([`coefficient_of_variability`], CoV = σ/μ; "a CoV of 1 or
//! more indicates a heavy-tailed distribution"). Figures 2–6 and 9–12 are
//! cumulative distribution functions, modelled here by [`Cdf`]. The
//! stochastic (PCP) planner additionally relies on [`pearson`] correlation
//! and [`percentile`] sizing.

use serde::{Deserialize, Serialize};

/// Arithmetic mean, or `None` for an empty slice.
#[must_use]
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Population variance, or `None` for an empty slice.
#[must_use]
pub fn variance(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    Some(values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64)
}

/// Population standard deviation, or `None` for an empty slice.
#[must_use]
pub fn std_dev(values: &[f64]) -> Option<f64> {
    variance(values).map(f64::sqrt)
}

/// Coefficient of variability: σ/μ.
///
/// Returns `None` for an empty slice or when the mean is not strictly
/// positive (utilisation traces are non-negative, so a zero mean means a
/// completely idle server for which burstiness is undefined).
#[must_use]
pub fn coefficient_of_variability(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    if m <= 0.0 {
        return None;
    }
    Some(std_dev(values)? / m)
}

/// Peak-to-average ratio: max / mean.
///
/// Returns `None` for an empty slice or a non-positive mean (see
/// [`coefficient_of_variability`]).
#[must_use]
pub fn peak_to_average(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    if m <= 0.0 {
        return None;
    }
    let peak = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    Some(peak / m)
}

/// Percentile with linear interpolation between closest ranks.
///
/// `p` is in percent (`90.0` = 90th percentile, the "body of the
/// distribution" parameter of the PCP planner). Returns `None` for an empty
/// slice.
///
/// # Panics
///
/// Panics if `p` is outside `0.0..=100.0` or NaN.
#[must_use]
pub fn percentile(values: &[f64], p: f64) -> Option<f64> {
    assert!(
        (0.0..=100.0).contains(&p),
        "percentile must be within 0..=100, got {p}"
    );
    if values.is_empty() {
        return None;
    }
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in percentile input"));
    let rank = p / 100.0 * (sorted.len() - 1) as f64;
    let lo = rank.floor() as usize;
    let hi = rank.ceil() as usize;
    if lo == hi {
        Some(sorted[lo])
    } else {
        let frac = rank - lo as f64;
        Some(sorted[lo] * (1.0 - frac) + sorted[hi] * frac)
    }
}

/// Pearson correlation coefficient between two equally long slices.
///
/// Returns `None` when the slices are empty, have different lengths, or
/// either has zero variance (correlation undefined).
#[must_use]
pub fn pearson(a: &[f64], b: &[f64]) -> Option<f64> {
    if a.is_empty() || a.len() != b.len() {
        return None;
    }
    let ma = mean(a)?;
    let mb = mean(b)?;
    let mut cov = 0.0;
    let mut va = 0.0;
    let mut vb = 0.0;
    for (x, y) in a.iter().zip(b) {
        cov += (x - ma) * (y - mb);
        va += (x - ma) * (x - ma);
        vb += (y - mb) * (y - mb);
    }
    if va == 0.0 || vb == 0.0 {
        return None;
    }
    Some(cov / (va.sqrt() * vb.sqrt()))
}

/// The five-number summary of a sample (min, Q1, median, Q3, max) — the
/// compact description the `vmcw analyze` CLI prints.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FiveNumberSummary {
    /// Minimum.
    pub min: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Maximum.
    pub max: f64,
}

impl FiveNumberSummary {
    /// Computes the summary, or `None` for an empty slice.
    #[must_use]
    pub fn of(values: &[f64]) -> Option<Self> {
        Some(Self {
            min: values.iter().copied().reduce(f64::min)?,
            q1: percentile(values, 25.0)?,
            median: percentile(values, 50.0)?,
            q3: percentile(values, 75.0)?,
            max: values.iter().copied().reduce(f64::max)?,
        })
    }

    /// Interquartile range.
    #[must_use]
    pub fn iqr(&self) -> f64 {
        self.q3 - self.q1
    }
}

/// An empirical cumulative distribution function.
///
/// Every figure in the paper's workload study (Figs 2–6) and most of the
/// evaluation figures (Figs 9–12) are CDFs; this type is both the analysis
/// tool and the output format of the figure-reproduction harness.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds a CDF from samples. NaN samples are dropped.
    #[must_use]
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().filter(|v| !v.is_nan()).collect();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaNs were filtered"));
        Self { sorted }
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the CDF holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of samples `<= x` (the CDF value at `x`).
    ///
    /// Returns 0 for an empty CDF.
    #[must_use]
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Fraction of samples strictly above `x` — the paper's "more than N%
    /// of workloads exhibit a ratio greater than R" phrasing.
    #[must_use]
    pub fn fraction_above(&self, x: f64) -> f64 {
        1.0 - self.fraction_at_or_below(x)
    }

    /// Quantile `q` in `0.0..=1.0` (nearest-rank).
    ///
    /// Returns `None` for an empty CDF.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `0.0..=1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> Option<f64> {
        assert!(
            (0.0..=1.0).contains(&q),
            "quantile must be within 0..=1, got {q}"
        );
        if self.sorted.is_empty() {
            return None;
        }
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).saturating_sub(1);
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// Median (50th percentile).
    #[must_use]
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// The sorted samples.
    #[must_use]
    pub fn sorted_samples(&self) -> &[f64] {
        &self.sorted
    }

    /// Plot points `(x, F(x))` for rendering, one per sample.
    #[must_use]
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, (i + 1) as f64 / n))
            .collect()
    }

    /// Plot points downsampled to at most `max_points` evenly spaced
    /// quantiles — what the figure harness writes to CSV.
    #[must_use]
    pub fn points_downsampled(&self, max_points: usize) -> Vec<(f64, f64)> {
        let pts = self.points();
        if pts.len() <= max_points || max_points == 0 {
            return pts;
        }
        let stride = pts.len() as f64 / max_points as f64;
        (0..max_points)
            .map(|i| pts[((i as f64 + 1.0) * stride) as usize - 1])
            .chain(std::iter::once(*pts.last().expect("non-empty")))
            .collect()
    }
}

impl FromIterator<f64> for Cdf {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        Cdf::from_samples(iter)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance_basics() {
        assert_eq!(mean(&[]), None);
        assert_eq!(mean(&[2.0, 4.0]), Some(3.0));
        assert_eq!(variance(&[1.0, 1.0, 1.0]), Some(0.0));
        assert_eq!(variance(&[2.0, 4.0]), Some(1.0));
        assert_eq!(std_dev(&[2.0, 4.0]), Some(1.0));
    }

    #[test]
    fn cov_of_constant_series_is_zero() {
        assert_eq!(coefficient_of_variability(&[5.0, 5.0, 5.0]), Some(0.0));
    }

    #[test]
    fn cov_undefined_for_idle_server() {
        assert_eq!(coefficient_of_variability(&[0.0, 0.0]), None);
        assert_eq!(peak_to_average(&[0.0, 0.0]), None);
    }

    #[test]
    fn heavy_tail_has_cov_above_one() {
        // One large spike among mostly idle samples: classic heavy tail.
        let mut v = vec![0.1; 99];
        v.push(50.0);
        assert!(coefficient_of_variability(&v).unwrap() > 1.0);
        assert!(peak_to_average(&v).unwrap() > 10.0);
    }

    #[test]
    fn peak_to_average_of_flat_series_is_one() {
        assert!((peak_to_average(&[3.0, 3.0]).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn percentile_interpolates() {
        let v = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(percentile(&v, 0.0), Some(10.0));
        assert_eq!(percentile(&v, 100.0), Some(40.0));
        assert_eq!(percentile(&v, 50.0), Some(25.0));
        assert_eq!(percentile(&[], 50.0), None);
    }

    #[test]
    #[should_panic(expected = "percentile must be within")]
    fn percentile_rejects_out_of_range() {
        let _ = percentile(&[1.0], 101.0);
    }

    #[test]
    fn pearson_detects_perfect_correlation() {
        let a = [1.0, 2.0, 3.0];
        let b = [2.0, 4.0, 6.0];
        let c = [6.0, 4.0, 2.0];
        assert!((pearson(&a, &b).unwrap() - 1.0).abs() < 1e-12);
        assert!((pearson(&a, &c).unwrap() + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&a, &[1.0]), None);
        assert_eq!(pearson(&a, &[5.0, 5.0, 5.0]), None);
    }

    #[test]
    fn five_number_summary_orders() {
        let v: Vec<f64> = (0..101).map(f64::from).collect();
        let s = FiveNumberSummary::of(&v).unwrap();
        assert_eq!(s.min, 0.0);
        assert_eq!(s.q1, 25.0);
        assert_eq!(s.median, 50.0);
        assert_eq!(s.q3, 75.0);
        assert_eq!(s.max, 100.0);
        assert_eq!(s.iqr(), 50.0);
        assert!(FiveNumberSummary::of(&[]).is_none());
    }

    #[test]
    fn cdf_fraction_and_quantiles() {
        let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
        assert_eq!(cdf.len(), 4);
        assert_eq!(cdf.fraction_at_or_below(2.0), 0.5);
        assert_eq!(cdf.fraction_at_or_below(0.5), 0.0);
        assert_eq!(cdf.fraction_at_or_below(10.0), 1.0);
        assert_eq!(cdf.fraction_above(3.0), 0.25);
        assert_eq!(cdf.quantile(0.5), Some(2.0));
        assert_eq!(cdf.quantile(1.0), Some(4.0));
        assert_eq!(cdf.quantile(0.0), Some(1.0));
        assert_eq!(cdf.median(), Some(2.0));
    }

    #[test]
    fn cdf_drops_nans() {
        let cdf = Cdf::from_samples([1.0, f64::NAN, 2.0]);
        assert_eq!(cdf.len(), 2);
    }

    #[test]
    fn cdf_empty_behaviour() {
        let cdf = Cdf::from_samples(std::iter::empty());
        assert!(cdf.is_empty());
        assert_eq!(cdf.fraction_at_or_below(1.0), 0.0);
        assert_eq!(cdf.quantile(0.5), None);
    }

    #[test]
    fn cdf_points_are_monotone() {
        let cdf: Cdf = [3.0, 1.0, 2.0].into_iter().collect();
        let pts = cdf.points();
        assert_eq!(pts.len(), 3);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0 && w[0].1 <= w[1].1));
        assert_eq!(pts.last().unwrap().1, 1.0);
    }

    #[test]
    fn cdf_downsampling_keeps_last_point() {
        let cdf = Cdf::from_samples((0..1000).map(f64::from));
        let pts = cdf.points_downsampled(50);
        assert!(pts.len() <= 51);
        assert_eq!(pts.last().unwrap().0, 999.0);
        assert!(pts.windows(2).all(|w| w[0].0 <= w[1].0));
    }
}
