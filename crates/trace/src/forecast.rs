//! Long-term demand forecasting (§2.1, "Prediction").
//!
//! The paper's Prediction step "uses the historical resource usage data
//! and estimates the resource usage for the future. Prediction may be
//! short-term or long-term in nature." Short-term (per-window) predictors
//! live in the consolidation crate; this module provides the *long-term*
//! side used by semi-static sizing: a linear trend over daily means
//! ([`linear_trend`]) and a trend-adjusted seasonal forecast
//! ([`trend_adjusted_seasonal`]). Organic growth is what makes a
//! placement sized on last month's peak contend this month — the
//! forecast-aware sizing hook in the planner exists to absorb exactly
//! that.

use crate::series::TimeSeries;
use serde::{Deserialize, Serialize};

/// A fitted linear trend `value ≈ intercept + slope × step`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinearTrend {
    /// Value at step 0.
    pub intercept: f64,
    /// Change per step.
    pub slope: f64,
}

impl LinearTrend {
    /// The trend's value at `step` (may be fractional/extrapolated).
    #[must_use]
    pub fn at(&self, step: f64) -> f64 {
        self.intercept + self.slope * step
    }

    /// Multiplicative growth between two steps, clamped to `min_ratio..`
    /// (a shrinking trend still forecasts at least `min_ratio` of the
    /// current level — capacity planners do not *shrink* reservations on
    /// a fitted line alone).
    #[must_use]
    pub fn growth_ratio(&self, from_step: f64, to_step: f64, min_ratio: f64) -> f64 {
        let from = self.at(from_step);
        let to = self.at(to_step);
        if from <= 0.0 {
            return min_ratio.max(1.0);
        }
        (to / from).max(min_ratio)
    }
}

/// Least-squares linear trend over the samples.
///
/// Returns `None` for fewer than 2 samples.
#[must_use]
pub fn linear_trend(values: &[f64]) -> Option<LinearTrend> {
    let n = values.len();
    if n < 2 {
        return None;
    }
    let n_f = n as f64;
    let mean_x = (n_f - 1.0) / 2.0;
    let mean_y = values.iter().sum::<f64>() / n_f;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    for (i, &y) in values.iter().enumerate() {
        let dx = i as f64 - mean_x;
        sxy += dx * (y - mean_y);
        sxx += dx * dx;
    }
    let slope = if sxx > 0.0 { sxy / sxx } else { 0.0 };
    Some(LinearTrend {
        intercept: mean_y - slope * mean_x,
        slope,
    })
}

/// Linear trend of the *daily means* of an hourly series — the robust way
/// to detect organic growth under strong diurnal structure.
///
/// Returns `None` for series shorter than two full days.
#[must_use]
pub fn daily_trend(series: &TimeSeries) -> Option<LinearTrend> {
    let days = series.len() / 24;
    if days < 2 {
        return None;
    }
    let daily_means: Vec<f64> = series.values()[..days * 24]
        .chunks(24)
        .map(|day| day.iter().sum::<f64>() / 24.0)
        .collect();
    linear_trend(&daily_means)
}

/// Seasonal-naive forecast: repeats the last full `period` of the series
/// for `horizon` samples.
///
/// Returns `None` if the series is shorter than one period.
///
/// # Panics
///
/// Panics if `period == 0`.
#[must_use]
pub fn seasonal_naive(series: &TimeSeries, period: usize, horizon: usize) -> Option<TimeSeries> {
    assert!(period > 0, "period must be positive");
    if series.len() < period {
        return None;
    }
    let last = &series.values()[series.len() - period..];
    let values: Vec<f64> = (0..horizon).map(|i| last[i % period]).collect();
    Some(TimeSeries::new(series.step(), values))
}

/// Seasonal-naive forecast scaled by the fitted daily growth trend: the
/// long-term forecast used by growth-aware semi-static sizing.
///
/// Returns `None` if the series is shorter than one period or two days.
#[must_use]
pub fn trend_adjusted_seasonal(
    series: &TimeSeries,
    period: usize,
    horizon: usize,
) -> Option<TimeSeries> {
    let base = seasonal_naive(series, period, horizon)?;
    let trend = daily_trend(series)?;
    let days = (series.len() / 24) as f64;
    let values: Vec<f64> = base
        .iter()
        .enumerate()
        .map(|(i, v)| {
            let future_day = days + i as f64 / 24.0;
            v * trend.growth_ratio(days - 1.0, future_day, 1.0)
        })
        .collect();
    Some(TimeSeries::new(series.step(), values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::series::StepSecs;

    fn hourly(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(StepSecs::HOUR, values)
    }

    #[test]
    fn linear_trend_recovers_exact_line() {
        let values: Vec<f64> = (0..50).map(|i| 3.0 + 0.5 * i as f64).collect();
        let t = linear_trend(&values).unwrap();
        assert!((t.slope - 0.5).abs() < 1e-9);
        assert!((t.intercept - 3.0).abs() < 1e-9);
        assert!((t.at(100.0) - 53.0).abs() < 1e-9);
    }

    #[test]
    fn flat_series_has_zero_slope() {
        let t = linear_trend(&[7.0; 30]).unwrap();
        assert_eq!(t.slope, 0.0);
        assert_eq!(t.intercept, 7.0);
        assert!(linear_trend(&[1.0]).is_none());
    }

    #[test]
    fn growth_ratio_clamps_shrinkage() {
        let shrinking = LinearTrend {
            intercept: 10.0,
            slope: -1.0,
        };
        assert_eq!(shrinking.growth_ratio(0.0, 5.0, 1.0), 1.0);
        let growing = LinearTrend {
            intercept: 10.0,
            slope: 1.0,
        };
        assert!((growing.growth_ratio(0.0, 10.0, 1.0) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn daily_trend_sees_through_diurnal_swings() {
        // Strong diurnal wave plus 2% daily growth.
        let mut values = Vec::new();
        for day in 0..20 {
            for hour in 0..24 {
                let wave = 1.0 + 0.8 * (hour as f64 / 24.0 * std::f64::consts::TAU).sin();
                values.push(wave * (1.0 + 0.02 * day as f64));
            }
        }
        let t = daily_trend(&hourly(values)).unwrap();
        // Daily means grow by ~0.02 of the base level per day.
        assert!((t.slope - 0.02).abs() < 0.003, "slope {}", t.slope);
    }

    #[test]
    fn seasonal_naive_repeats_last_period() {
        let s = hourly((0..48).map(f64::from).collect());
        let f = seasonal_naive(&s, 24, 30).unwrap();
        assert_eq!(f.len(), 30);
        assert_eq!(f.get(0), Some(24.0));
        assert_eq!(f.get(23), Some(47.0));
        assert_eq!(f.get(24), Some(24.0), "wraps to the period start");
        assert!(seasonal_naive(&hourly(vec![1.0; 10]), 24, 5).is_none());
    }

    #[test]
    fn trend_adjusted_forecast_grows() {
        let mut values = Vec::new();
        for day in 0..10 {
            for _ in 0..24 {
                values.push(10.0 * (1.0 + 0.05 * day as f64));
            }
        }
        let s = hourly(values);
        let f = trend_adjusted_seasonal(&s, 24, 24 * 5).unwrap();
        // Five days out the forecast exceeds the last observed level.
        let last_observed = s.values().last().copied().unwrap();
        assert!(f.values().last().copied().unwrap() > last_observed * 1.1);
        // And forecasts never start below the seasonal base.
        assert!(f.get(0).unwrap() >= last_observed * 0.99);
    }

    #[test]
    fn trend_adjusted_on_flat_series_is_flat() {
        let s = hourly(vec![5.0; 24 * 7]);
        let f = trend_adjusted_seasonal(&s, 24, 48).unwrap();
        assert!(f.iter().all(|v| (v - 5.0).abs() < 1e-9));
    }
}
