//! Fixed-interval time series.
//!
//! All monitored and generated data in this workspace is represented as a
//! [`TimeSeries`]: a vector of `f64` samples spaced at a fixed step width.
//! The paper works with hourly averages ("we use hourly averages of the
//! monitored data for the most recent 30 days"), and folds them into
//! consolidation windows of 1, 2 or 4 hours; [`TimeSeries::fold_windows`]
//! and the resampling helpers implement exactly those operations.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Step width between consecutive samples of a [`TimeSeries`], in seconds.
///
/// A newtype is used so that a step width can never be confused with a
/// sample index or a duration measured in other units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct StepSecs(pub u32);

impl StepSecs {
    /// One minute — the collection granularity of the monitoring agent.
    pub const MINUTE: StepSecs = StepSecs(60);
    /// One hour — the granularity of the warehouse aggregates used for
    /// consolidation planning.
    pub const HOUR: StepSecs = StepSecs(3600);

    /// Number of whole steps of `self` that fit in one step of `coarser`.
    ///
    /// Returns `None` when `coarser` is not an integer multiple of `self`.
    #[must_use]
    pub fn steps_per(self, coarser: StepSecs) -> Option<usize> {
        if self.0 == 0 || !coarser.0.is_multiple_of(self.0) {
            None
        } else {
            Some((coarser.0 / self.0) as usize)
        }
    }
}

impl fmt::Display for StepSecs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_multiple_of(3600) {
            write!(f, "{}h", self.0 / 3600)
        } else if self.0.is_multiple_of(60) {
            write!(f, "{}min", self.0 / 60)
        } else {
            write!(f, "{}s", self.0)
        }
    }
}

/// A time series with a fixed step width.
///
/// The series is anchored at sample index 0; the absolute epoch is carried
/// by the surrounding context (the generator and the emulator both treat
/// index 0 as "midnight, Monday, first day of the month" so that diurnal,
/// weekly and monthly structure line up across servers).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TimeSeries {
    step: StepSecs,
    values: Vec<f64>,
}

impl TimeSeries {
    /// Creates a series from raw values.
    #[must_use]
    pub fn new(step: StepSecs, values: Vec<f64>) -> Self {
        Self { step, values }
    }

    /// Creates an empty series with the given step width.
    #[must_use]
    pub fn empty(step: StepSecs) -> Self {
        Self {
            step,
            values: Vec::new(),
        }
    }

    /// Creates a series of `len` copies of `value`.
    #[must_use]
    pub fn constant(step: StepSecs, len: usize, value: f64) -> Self {
        Self {
            step,
            values: vec![value; len],
        }
    }

    /// The step width between samples.
    #[must_use]
    pub fn step(&self) -> StepSecs {
        self.step
    }

    /// Number of samples.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the series holds no samples.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw sample slice.
    #[must_use]
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Sample at `idx`, or `None` past the end.
    #[must_use]
    pub fn get(&self, idx: usize) -> Option<f64> {
        self.values.get(idx).copied()
    }

    /// Appends a sample.
    pub fn push(&mut self, value: f64) {
        self.values.push(value);
    }

    /// Iterates over the samples.
    pub fn iter(&self) -> impl Iterator<Item = f64> + '_ {
        self.values.iter().copied()
    }

    /// Consumes the series, returning its raw values.
    #[must_use]
    pub fn into_values(self) -> Vec<f64> {
        self.values
    }

    /// Returns the sub-series of samples `range.start..range.end`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    #[must_use]
    pub fn slice(&self, range: std::ops::Range<usize>) -> TimeSeries {
        TimeSeries {
            step: self.step,
            values: self.values[range].to_vec(),
        }
    }

    /// Element-wise sum of two series.
    ///
    /// The result has the length of the longer operand; missing samples are
    /// treated as zero.
    ///
    /// # Panics
    ///
    /// Panics if the step widths differ.
    #[must_use]
    pub fn add(&self, other: &TimeSeries) -> TimeSeries {
        assert_eq!(
            self.step, other.step,
            "cannot add series with different steps"
        );
        let len = self.len().max(other.len());
        let values = (0..len)
            .map(|i| self.get(i).unwrap_or(0.0) + other.get(i).unwrap_or(0.0))
            .collect();
        TimeSeries {
            step: self.step,
            values,
        }
    }

    /// Returns a new series scaled by `factor`.
    #[must_use]
    pub fn scale(&self, factor: f64) -> TimeSeries {
        TimeSeries {
            step: self.step,
            values: self.values.iter().map(|v| v * factor).collect(),
        }
    }

    /// Folds consecutive windows of `window` samples with `f` and returns
    /// the coarser series of fold results.
    ///
    /// A trailing partial window is folded as well; this matches the paper's
    /// handling of month boundaries (the last, possibly short, consolidation
    /// window still gets a demand estimate).
    ///
    /// # Panics
    ///
    /// Panics if `window == 0`.
    #[must_use]
    pub fn fold_windows<F>(&self, window: usize, f: F) -> TimeSeries
    where
        F: FnMut(&[f64]) -> f64,
    {
        assert!(window > 0, "window must be positive");
        let step = StepSecs(self.step.0.saturating_mul(window as u32));
        let values = self.values.chunks(window).map(f).collect();
        TimeSeries { step, values }
    }

    /// Downsamples by averaging consecutive groups of `window` samples.
    #[must_use]
    pub fn resample_mean(&self, window: usize) -> TimeSeries {
        self.fold_windows(window, |c| c.iter().sum::<f64>() / c.len() as f64)
    }

    /// Downsamples by taking the maximum of consecutive groups of `window`
    /// samples.
    #[must_use]
    pub fn resample_max(&self, window: usize) -> TimeSeries {
        self.fold_windows(window, |c| {
            c.iter().copied().fold(f64::NEG_INFINITY, f64::max)
        })
    }

    /// Mean of the samples, or `None` for an empty series.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        crate::stats::mean(&self.values)
    }

    /// Maximum of the samples, or `None` for an empty series.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::max)
    }

    /// Minimum of the samples, or `None` for an empty series.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.values.iter().copied().reduce(f64::min)
    }
}

impl FromIterator<f64> for TimeSeries {
    /// Collects hourly samples into a series (the most common granularity).
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        TimeSeries::new(StepSecs::HOUR, iter.into_iter().collect())
    }
}

impl Extend<f64> for TimeSeries {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        self.values.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hourly(values: &[f64]) -> TimeSeries {
        TimeSeries::new(StepSecs::HOUR, values.to_vec())
    }

    #[test]
    fn steps_per_divides_evenly() {
        assert_eq!(StepSecs::MINUTE.steps_per(StepSecs::HOUR), Some(60));
        assert_eq!(StepSecs::HOUR.steps_per(StepSecs::HOUR), Some(1));
        assert_eq!(StepSecs(7).steps_per(StepSecs::HOUR), None);
        assert_eq!(StepSecs(0).steps_per(StepSecs::HOUR), None);
    }

    #[test]
    fn step_display_uses_natural_units() {
        assert_eq!(StepSecs::HOUR.to_string(), "1h");
        assert_eq!(StepSecs(7200).to_string(), "2h");
        assert_eq!(StepSecs::MINUTE.to_string(), "1min");
        assert_eq!(StepSecs(90).to_string(), "90s");
    }

    #[test]
    fn fold_windows_max_matches_consolidation_window_sizing() {
        let s = hourly(&[1.0, 5.0, 2.0, 3.0, 9.0]);
        let folded = s.resample_max(2);
        assert_eq!(folded.values(), &[5.0, 3.0, 9.0]);
        assert_eq!(folded.step(), StepSecs(7200));
    }

    #[test]
    fn resample_mean_averages_groups() {
        let s = hourly(&[2.0, 4.0, 6.0, 8.0]);
        assert_eq!(s.resample_mean(2).values(), &[3.0, 7.0]);
    }

    #[test]
    fn trailing_partial_window_is_folded() {
        let s = hourly(&[1.0, 2.0, 3.0]);
        assert_eq!(s.resample_mean(2).values(), &[1.5, 3.0]);
    }

    #[test]
    fn add_handles_unequal_lengths() {
        let a = hourly(&[1.0, 2.0]);
        let b = hourly(&[10.0, 20.0, 30.0]);
        assert_eq!(a.add(&b).values(), &[11.0, 22.0, 30.0]);
    }

    #[test]
    #[should_panic(expected = "different steps")]
    fn add_rejects_mismatched_steps() {
        let a = hourly(&[1.0]);
        let b = TimeSeries::new(StepSecs::MINUTE, vec![1.0]);
        let _ = a.add(&b);
    }

    #[test]
    fn scale_multiplies_all_samples() {
        let s = hourly(&[1.0, -2.0]);
        assert_eq!(s.scale(2.5).values(), &[2.5, -5.0]);
    }

    #[test]
    fn min_max_mean_on_empty_are_none() {
        let s = TimeSeries::empty(StepSecs::HOUR);
        assert!(s.mean().is_none());
        assert!(s.max().is_none());
        assert!(s.min().is_none());
        assert!(s.is_empty());
    }

    #[test]
    fn slice_preserves_step() {
        let s = hourly(&[1.0, 2.0, 3.0, 4.0]);
        let sub = s.slice(1..3);
        assert_eq!(sub.values(), &[2.0, 3.0]);
        assert_eq!(sub.step(), StepSecs::HOUR);
    }

    #[test]
    fn collect_and_extend() {
        let mut s: TimeSeries = [1.0, 2.0].into_iter().collect();
        s.extend([3.0]);
        assert_eq!(s.values(), &[1.0, 2.0, 3.0]);
        assert_eq!(s.step(), StepSecs::HOUR);
    }

    #[test]
    fn constant_series() {
        let s = TimeSeries::constant(StepSecs::HOUR, 3, 7.0);
        assert_eq!(s.values(), &[7.0, 7.0, 7.0]);
    }
}
