//! CSV import/export of workload traces.
//!
//! The generator stands in for proprietary traces, but a downstream user
//! with *real* monitoring data should be able to feed it straight into
//! the planners. This module defines a simple, documented CSV schema and
//! round-trip serialisation for [`GeneratedWorkload`]:
//!
//! ```csv
//! server,class,cpu_capacity_rpe2,mem_capacity_mb,net_peak_mbps,hour,cpu_used_frac,mem_used_mb
//! bank-0000,web,6100,8192,72.5,0,0.031,1742.0
//! ```
//!
//! One row per server-hour; servers may appear in any order but each
//! server's hours must be dense (0..n). [`write_csv`]/[`read_csv`] work
//! on any `io::Write`/`io::Read`; [`save`]/[`load`] wrap files.

use crate::datacenters::{DataCenterId, GeneratedWorkload, SourceServer};
use crate::series::{StepSecs, TimeSeries};
use crate::warehouse::SourceId;
use crate::workload::{WorkloadClass, HOURS_PER_DAY};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

/// Hard cap on per-server trace hours accepted from an external CSV
/// (five leap years of hourly samples — far beyond any study horizon).
pub const MAX_TRACE_HOURS: usize = 24 * 366 * 5;

/// Hard cap on distinct servers accepted from an external CSV.
pub const MAX_TRACE_SERVERS: usize = 100_000;

/// Hard cap on total data rows accepted from an external CSV.
pub const MAX_TRACE_ROWS: usize = 10_000_000;

/// Errors produced when parsing a trace CSV.
#[derive(Debug)]
pub enum TraceIoError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// A malformed row (line number, message).
    Parse(usize, String),
    /// Structural problem after parsing (e.g. ragged hour ranges).
    Structure(String),
    /// The input exceeds a hard resource cap. Untrusted CSVs are sized
    /// before they are buffered, so a hostile or corrupt file fails with
    /// a typed error instead of exhausting memory.
    TooLarge {
        /// Which dimension blew the cap (`hours`, `servers`, `rows`).
        what: &'static str,
        /// The offending value.
        value: usize,
        /// The cap it exceeded.
        cap: usize,
    },
    /// A failure reading a specific file, carrying its path.
    File {
        /// The file being read.
        path: PathBuf,
        /// What went wrong.
        source: Box<TraceIoError>,
    },
}

impl fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceIoError::Io(e) => write!(f, "trace I/O failed: {e}"),
            TraceIoError::Parse(line, msg) => write!(f, "line {line}: {msg}"),
            TraceIoError::Structure(msg) => write!(f, "inconsistent trace: {msg}"),
            TraceIoError::TooLarge { what, value, cap } => write!(
                f,
                "trace too large: {what} {value} exceeds the hard cap of {cap}"
            ),
            TraceIoError::File { path, source } => {
                write!(f, "failed to read {}: {source}", path.display())
            }
        }
    }
}

impl Error for TraceIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            TraceIoError::Io(e) => Some(e),
            TraceIoError::File { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceIoError {
    fn from(e: io::Error) -> Self {
        TraceIoError::Io(e)
    }
}

/// The CSV header line.
pub const HEADER: &str =
    "server,class,cpu_capacity_rpe2,mem_capacity_mb,net_peak_mbps,hour,cpu_used_frac,mem_used_mb";

/// Writes a workload as CSV.
///
/// # Errors
///
/// Propagates I/O errors from the writer.
pub fn write_csv<W: Write>(workload: &GeneratedWorkload, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "{HEADER}")?;
    for server in &workload.servers {
        for (hour, (cpu, mem)) in server
            .cpu_used_frac
            .iter()
            .zip(server.mem_used_mb.iter())
            .enumerate()
        {
            writeln!(
                w,
                "{},{},{},{},{:.3},{},{:.6},{:.3}",
                server.name,
                server.class.label(),
                server.cpu_capacity_rpe2,
                server.mem_capacity_mb,
                server.net_peak_mbps,
                hour,
                cpu,
                mem
            )?;
        }
    }
    w.flush()
}

/// Reads a workload from CSV.
///
/// The resulting workload is tagged with `dc` (the CSV schema carries no
/// data-center identity). Trace length is rounded down to whole days.
///
/// # Errors
///
/// Returns [`TraceIoError`] for I/O failures, malformed rows, ragged
/// per-server hour ranges, or inputs exceeding the [`MAX_TRACE_HOURS`] /
/// [`MAX_TRACE_SERVERS`] / [`MAX_TRACE_ROWS`] hard caps.
pub fn read_csv<R: Read>(dc: DataCenterId, reader: R) -> Result<GeneratedWorkload, TraceIoError> {
    struct Partial {
        class: WorkloadClass,
        cpu_capacity_rpe2: f64,
        mem_capacity_mb: f64,
        net_peak_mbps: f64,
        cpu: Vec<(usize, f64)>,
        mem: Vec<(usize, f64)>,
    }
    let mut servers: BTreeMap<String, Partial> = BTreeMap::new();
    let mut rows = 0usize;
    for (idx, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        if idx == 0 {
            if line.trim() != HEADER {
                return Err(TraceIoError::Parse(
                    lineno,
                    format!("expected header `{HEADER}`"),
                ));
            }
            continue;
        }
        if line.trim().is_empty() {
            continue;
        }
        rows += 1;
        if rows > MAX_TRACE_ROWS {
            return Err(TraceIoError::TooLarge {
                what: "rows",
                value: rows,
                cap: MAX_TRACE_ROWS,
            });
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() != 8 {
            return Err(TraceIoError::Parse(
                lineno,
                format!("expected 8 fields, got {}", fields.len()),
            ));
        }
        let parse_f = |s: &str, what: &str| -> Result<f64, TraceIoError> {
            s.trim()
                .parse()
                .map_err(|e| TraceIoError::Parse(lineno, format!("bad {what} `{s}`: {e}")))
        };
        let class = match fields[1].trim() {
            "web" => WorkloadClass::Web,
            "batch" => WorkloadClass::Batch,
            other => {
                return Err(TraceIoError::Parse(
                    lineno,
                    format!("unknown class `{other}`"),
                ));
            }
        };
        let cpu_capacity = parse_f(fields[2], "cpu capacity")?;
        let mem_capacity = parse_f(fields[3], "mem capacity")?;
        let net_peak = parse_f(fields[4], "network peak")?;
        let hour: usize = fields[5]
            .trim()
            .parse()
            .map_err(|e| TraceIoError::Parse(lineno, format!("bad hour `{}`: {e}", fields[5])))?;
        let cpu = parse_f(fields[6], "cpu fraction")?;
        let mem = parse_f(fields[7], "memory")?;
        // `f64::parse` happily accepts "NaN" and "inf"; a single such
        // sample would silently poison every downstream aggregate, so
        // reject non-finite and negative values here with a line number.
        let finite = |v: f64, what: &str| -> Result<(), TraceIoError> {
            if v.is_finite() && v >= 0.0 {
                Ok(())
            } else {
                Err(TraceIoError::Parse(
                    lineno,
                    format!("{what} `{v}` is not a finite non-negative number"),
                ))
            }
        };
        finite(cpu_capacity, "cpu capacity")?;
        finite(mem_capacity, "mem capacity")?;
        finite(net_peak, "network peak")?;
        finite(mem, "memory")?;
        if !(0.0..=1.0).contains(&cpu) {
            return Err(TraceIoError::Parse(
                lineno,
                format!("cpu fraction {cpu} outside 0..=1"),
            ));
        }
        // Size checks before buffering: the hour bound caps what any one
        // server can allocate, the server bound caps the map itself.
        if hour >= MAX_TRACE_HOURS {
            return Err(TraceIoError::TooLarge {
                what: "hours",
                value: hour.saturating_add(1),
                cap: MAX_TRACE_HOURS,
            });
        }
        let name = fields[0].trim();
        if !servers.contains_key(name) && servers.len() >= MAX_TRACE_SERVERS {
            return Err(TraceIoError::TooLarge {
                what: "servers",
                value: servers.len() + 1,
                cap: MAX_TRACE_SERVERS,
            });
        }
        let entry = servers.entry(name.to_owned()).or_insert_with(|| Partial {
            class,
            cpu_capacity_rpe2: cpu_capacity,
            mem_capacity_mb: mem_capacity,
            net_peak_mbps: net_peak,
            cpu: Vec::new(),
            mem: Vec::new(),
        });
        entry.cpu.push((hour, cpu));
        entry.mem.push((hour, mem));
    }
    if servers.is_empty() {
        return Err(TraceIoError::Structure("no servers in trace".to_owned()));
    }

    let mut out = Vec::with_capacity(servers.len());
    let mut hours_seen: Option<usize> = None;
    for (i, (name, mut p)) in servers.into_iter().enumerate() {
        p.cpu.sort_by_key(|&(h, _)| h);
        p.mem.sort_by_key(|&(h, _)| h);
        for (expected, &(h, _)) in p.cpu.iter().enumerate() {
            if h != expected {
                return Err(TraceIoError::Structure(format!(
                    "server {name}: hour {expected} missing or duplicated"
                )));
            }
        }
        let n = p.cpu.len();
        match hours_seen {
            None => hours_seen = Some(n),
            Some(m) if m != n => {
                return Err(TraceIoError::Structure(format!(
                    "server {name} has {n} hours, others have {m}"
                )));
            }
            _ => {}
        }
        out.push(SourceServer {
            id: SourceId(i as u32),
            name,
            class: p.class,
            cpu_capacity_rpe2: p.cpu_capacity_rpe2,
            mem_capacity_mb: p.mem_capacity_mb,
            net_peak_mbps: p.net_peak_mbps,
            cpu_used_frac: TimeSeries::new(
                StepSecs::HOUR,
                p.cpu.into_iter().map(|(_, v)| v).collect(),
            ),
            mem_used_mb: TimeSeries::new(
                StepSecs::HOUR,
                p.mem.into_iter().map(|(_, v)| v).collect(),
            ),
        });
    }
    let days = hours_seen.unwrap_or(0) / HOURS_PER_DAY;
    if days == 0 {
        return Err(TraceIoError::Structure(
            "trace shorter than one day".to_owned(),
        ));
    }
    // Truncate to whole days so calendar-based analysis stays aligned.
    for s in &mut out {
        s.cpu_used_frac = s.cpu_used_frac.slice(0..days * HOURS_PER_DAY);
        s.mem_used_mb = s.mem_used_mb.slice(0..days * HOURS_PER_DAY);
    }
    Ok(GeneratedWorkload {
        dc,
        days,
        servers: out,
    })
}

/// Saves a workload to a CSV file.
///
/// # Errors
///
/// Propagates file-creation and write errors.
pub fn save(workload: &GeneratedWorkload, path: &Path) -> io::Result<()> {
    // Atomic: write a sibling temp file, fsync, then rename over the
    // target, so a crash mid-save never leaves a torn trace behind.
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = path.with_file_name(format!(".{}.tmp", file_name.to_string_lossy()));
    let file = std::fs::File::create(&tmp)?;
    write_csv(workload, &file)?;
    file.sync_all()?;
    std::fs::rename(&tmp, path)
}

/// Loads a workload from a CSV file.
///
/// # Errors
///
/// See [`read_csv`]; every error is wrapped in
/// [`TraceIoError::File`] so it names the offending path end-to-end
/// (`failed to read <path>: <cause>`).
pub fn load(dc: DataCenterId, path: &Path) -> Result<GeneratedWorkload, TraceIoError> {
    let wrap = |source: TraceIoError| TraceIoError::File {
        path: path.to_path_buf(),
        source: Box::new(source),
    };
    let file = std::fs::File::open(path).map_err(|e| wrap(TraceIoError::Io(e)))?;
    read_csv(dc, file).map_err(wrap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenters::GeneratorConfig;

    fn sample() -> GeneratedWorkload {
        GeneratorConfig::new(DataCenterId::Beverage)
            .scale(0.005)
            .days(2)
            .generate(3)
    }

    #[test]
    fn round_trip_preserves_structure() {
        let original = sample();
        let mut buf = Vec::new();
        write_csv(&original, &mut buf).unwrap();
        let loaded = read_csv(DataCenterId::Beverage, buf.as_slice()).unwrap();
        assert_eq!(loaded.days, original.days);
        assert_eq!(loaded.servers.len(), original.servers.len());
        // Server identity is by name after a round trip; values match to
        // the serialised precision.
        for s in &original.servers {
            let l = loaded
                .servers
                .iter()
                .find(|x| x.name == s.name)
                .expect("name kept");
            assert_eq!(l.class, s.class);
            assert_eq!(l.cpu_used_frac.len(), s.cpu_used_frac.len());
            for (a, b) in l.cpu_used_frac.iter().zip(s.cpu_used_frac.iter()) {
                assert!((a - b).abs() < 1e-5);
            }
            for (a, b) in l.mem_used_mb.iter().zip(s.mem_used_mb.iter()) {
                assert!((a - b).abs() < 5e-3);
            }
        }
    }

    #[test]
    fn header_mismatch_is_rejected() {
        let err = read_csv(DataCenterId::Banking, "wrong,header\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(1, _)));
    }

    #[test]
    fn ragged_hours_are_rejected() {
        let csv = format!(
            "{HEADER}\n\
             a,web,1000,4096,50,0,0.1,100\n\
             a,web,1000,4096,50,2,0.1,100\n"
        );
        let err = read_csv(DataCenterId::Banking, csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Structure(_)), "{err}");
    }

    #[test]
    fn unequal_server_lengths_are_rejected() {
        let mut csv = format!("{HEADER}\n");
        for h in 0..24 {
            csv.push_str(&format!("a,web,1000,4096,50,{h},0.1,100\n"));
        }
        for h in 0..25 {
            csv.push_str(&format!("b,web,1000,4096,50,{h},0.1,100\n"));
        }
        let err = read_csv(DataCenterId::Banking, csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Structure(_)));
    }

    #[test]
    fn cpu_fraction_bounds_are_enforced() {
        let csv = format!("{HEADER}\na,web,1000,4096,50,0,1.5,100\n");
        let err = read_csv(DataCenterId::Banking, csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(2, _)));
    }

    #[test]
    fn unknown_class_is_rejected() {
        let csv = format!("{HEADER}\na,gpu,1000,4096,50,0,0.5,100\n");
        let err = read_csv(DataCenterId::Banking, csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse(2, _)));
    }

    #[test]
    fn sub_day_traces_are_rejected() {
        let mut csv = format!("{HEADER}\n");
        for h in 0..12 {
            csv.push_str(&format!("a,web,1000,4096,50,{h},0.1,100\n"));
        }
        let err = read_csv(DataCenterId::Banking, csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Structure(_)));
    }

    #[test]
    fn file_round_trip() {
        let dir = std::env::temp_dir().join("vmcw-trace-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trace.csv");
        let original = sample();
        save(&original, &path).unwrap();
        let loaded = load(DataCenterId::Beverage, &path).unwrap();
        assert_eq!(loaded.servers.len(), original.servers.len());
    }

    #[test]
    fn error_display_is_informative() {
        let err = TraceIoError::Parse(7, "bad hour".into());
        assert!(err.to_string().contains("line 7"));
        let err = TraceIoError::Structure("ragged".into());
        assert!(err.to_string().contains("inconsistent"));
        let err = TraceIoError::TooLarge {
            what: "hours",
            value: 99,
            cap: 10,
        };
        assert!(err.to_string().contains("hard cap"), "{err}");
    }

    #[test]
    fn absurd_hour_indices_are_capped() {
        let csv = format!("{HEADER}\na,web,1000,4096,50,{},0.1,100\n", usize::MAX);
        let err = read_csv(DataCenterId::Banking, csv.as_bytes()).unwrap_err();
        assert!(
            matches!(err, TraceIoError::TooLarge { what: "hours", .. }),
            "{err}"
        );
    }

    #[test]
    fn load_errors_carry_the_file_path() {
        let path = std::env::temp_dir().join("vmcw-no-such-trace.csv");
        let err = load(DataCenterId::Banking, &path).unwrap_err();
        match &err {
            TraceIoError::File { path: p, source } => {
                assert_eq!(p, &path);
                assert!(matches!(**source, TraceIoError::Io(_)));
            }
            other => panic!("expected File error, got {other:?}"),
        }
        assert!(err.to_string().contains("vmcw-no-such-trace.csv"), "{err}");
        assert!(std::error::Error::source(&err).is_some());
    }
}
