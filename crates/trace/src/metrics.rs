//! The monitored-metric catalog (Table 1 of the paper).
//!
//! The paper's monitoring agent "collects a wide variety of metrics every
//! minute for each operating system instance"; Table 1 lists them. The
//! consolidation planner only *optimises* CPU and memory, but the other
//! metrics flow through the warehouse as constraints (network/disk
//! throughput identify hosts with sufficient link bandwidth).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the metrics collected by the monitoring agent (Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[non_exhaustive]
pub enum Metric {
    /// `% Total Processor Time` — total processor time.
    TotalProcessorTime,
    /// `% Priv` — percent time spent in system (privileged) mode.
    PrivilegedTime,
    /// `% User` — percent time spent in user mode.
    UserTime,
    /// `Proc Queue Length` — processor queue length.
    ProcessorQueueLength,
    /// `Pages Per Sec` — pages in per second.
    PagesPerSec,
    /// `Memory Committed` — memory committed in bytes (reported in MB).
    MemoryCommittedMb,
    /// `Memory Average` — % of committed memory used.
    MemoryCommittedPct,
    /// `DASD % Free` — % time the direct-access storage device is free.
    DasdFreePct,
    /// `# Log Vol Red` — logical volume reads.
    LogicalVolumeReads,
    /// `TCP/IP Conn` — number of TCP/IP packets transferred.
    TcpPackets,
    /// `TCP/IP Conn v6` — number of IPv6 packets transferred.
    TcpPacketsV6,
}

impl Metric {
    /// All metrics of Table 1, in the paper's order.
    pub const ALL: [Metric; 11] = [
        Metric::TotalProcessorTime,
        Metric::PrivilegedTime,
        Metric::UserTime,
        Metric::ProcessorQueueLength,
        Metric::PagesPerSec,
        Metric::MemoryCommittedMb,
        Metric::MemoryCommittedPct,
        Metric::DasdFreePct,
        Metric::LogicalVolumeReads,
        Metric::TcpPackets,
        Metric::TcpPacketsV6,
    ];

    /// The metric's name as printed in Table 1.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Metric::TotalProcessorTime => "% Total Processor Time",
            Metric::PrivilegedTime => "% Priv",
            Metric::UserTime => "% User",
            Metric::ProcessorQueueLength => "Proc Queue Length",
            Metric::PagesPerSec => "Pages Per Sec",
            Metric::MemoryCommittedMb => "Memory Committed",
            Metric::MemoryCommittedPct => "Memory Average",
            Metric::DasdFreePct => "DASD % Free",
            Metric::LogicalVolumeReads => "# Log Vol Red",
            Metric::TcpPackets => "TCP/IP Conn",
            Metric::TcpPacketsV6 => "TCP/IP Conn v6",
        }
    }

    /// The metric's description as printed in Table 1.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Metric::TotalProcessorTime => "Total Processor Time",
            Metric::PrivilegedTime => "Percent time spent in System mode",
            Metric::UserTime => "Percent time spent in User mode",
            Metric::ProcessorQueueLength => "Processor Queue Length",
            Metric::PagesPerSec => "Pages In Per Second",
            Metric::MemoryCommittedMb => "Memory Committed in Bytes (MB)",
            Metric::MemoryCommittedPct => "% of Memory Committed Used",
            Metric::DasdFreePct => "% time DAS Device is free",
            Metric::LogicalVolumeReads => "Logical Volume Reads",
            Metric::TcpPackets => "Number of TCP/IP Packets transferred",
            Metric::TcpPacketsV6 => "Number of IPv6 Packets transferred",
        }
    }

    /// The unit in which samples of this metric are expressed.
    #[must_use]
    pub fn unit(self) -> MetricUnit {
        match self {
            Metric::TotalProcessorTime
            | Metric::PrivilegedTime
            | Metric::UserTime
            | Metric::MemoryCommittedPct
            | Metric::DasdFreePct => MetricUnit::Percent,
            Metric::ProcessorQueueLength => MetricUnit::Count,
            Metric::PagesPerSec | Metric::TcpPackets | Metric::TcpPacketsV6 => {
                MetricUnit::PerSecond
            }
            Metric::MemoryCommittedMb => MetricUnit::Megabytes,
            Metric::LogicalVolumeReads => MetricUnit::Count,
        }
    }

    /// Whether the consolidation planner optimises this metric (CPU and
    /// memory) as opposed to using it only as a constraint.
    #[must_use]
    pub fn is_planning_resource(self) -> bool {
        matches!(self, Metric::TotalProcessorTime | Metric::MemoryCommittedMb)
    }
}

impl fmt::Display for Metric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Unit of a monitored metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MetricUnit {
    /// A percentage in `0..=100`.
    Percent,
    /// A dimensionless count.
    Count,
    /// Events per second.
    PerSecond,
    /// Megabytes.
    Megabytes,
}

impl fmt::Display for MetricUnit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MetricUnit::Percent => "%",
            MetricUnit::Count => "count",
            MetricUnit::PerSecond => "1/s",
            MetricUnit::Megabytes => "MB",
        };
        f.write_str(s)
    }
}

/// A single monitored observation: a minute timestamp and a value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Sample {
    /// Minutes since the monitoring epoch.
    pub minute: u64,
    /// Observed value, in the metric's [`MetricUnit`].
    pub value: f64,
}

impl Sample {
    /// Creates a sample.
    #[must_use]
    pub fn new(minute: u64, value: f64) -> Self {
        Self { minute, value }
    }

    /// The hour (since epoch) this sample falls into.
    #[must_use]
    pub fn hour(self) -> u64 {
        self.minute / 60
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_has_eleven_metrics() {
        assert_eq!(Metric::ALL.len(), 11);
    }

    #[test]
    fn names_are_unique() {
        let mut names: Vec<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Metric::ALL.len());
    }

    #[test]
    fn planning_resources_are_cpu_and_memory() {
        let planning: Vec<Metric> = Metric::ALL
            .iter()
            .copied()
            .filter(|m| m.is_planning_resource())
            .collect();
        assert_eq!(
            planning,
            vec![Metric::TotalProcessorTime, Metric::MemoryCommittedMb]
        );
    }

    #[test]
    fn units_match_semantics() {
        assert_eq!(Metric::TotalProcessorTime.unit(), MetricUnit::Percent);
        assert_eq!(Metric::MemoryCommittedMb.unit(), MetricUnit::Megabytes);
        assert_eq!(Metric::PagesPerSec.unit(), MetricUnit::PerSecond);
    }

    #[test]
    fn sample_hour_truncates() {
        assert_eq!(Sample::new(59, 1.0).hour(), 0);
        assert_eq!(Sample::new(60, 1.0).hour(), 1);
        assert_eq!(Sample::new(125, 1.0).hour(), 2);
    }

    #[test]
    fn display_matches_table() {
        assert_eq!(Metric::MemoryCommittedMb.to_string(), "Memory Committed");
        assert_eq!(MetricUnit::Megabytes.to_string(), "MB");
    }
}
