//! Workload-trace substrate for the reproduction of *Virtual Machine
//! Consolidation in the Wild* (Middleware 2014).
//!
//! The paper analyses proprietary agent-monitored traces from four enterprise
//! data centers. Those traces cannot be redistributed, so this crate rebuilds
//! the whole data path from scratch:
//!
//! * [`series`] — fixed-interval [`series::TimeSeries`] with
//!   resampling and window folds (hourly data, consolidation windows).
//! * [`stats`] — the statistics the paper reports: peak-to-average ratio,
//!   coefficient of variability (CoV), percentiles, empirical CDFs and
//!   Pearson correlation.
//! * [`metrics`] — the monitored-metric catalog of Table 1.
//! * [`warehouse`] — the monitoring agent + central data-warehouse substrate
//!   (per-minute collection, hourly aggregation, retention policies).
//! * [`workload`] — per-server workload component models (diurnal web
//!   traffic, scheduled batch jobs, month-end payroll, heavy-tailed spikes).
//! * [`synth`] — the random primitives behind the generator (bounded Pareto,
//!   Gaussian noise, spike trains).
//! * [`datacenters`] — the four calibrated data-center workloads (Banking,
//!   Airlines, Natural Resources, Beverage) matching the distributions
//!   published in the paper (Table 2, Figs 2–6).
//! * [`analysis`] — engagement-style analyses: autocorrelation, peak-hour
//!   histograms, correlation matrices and correlation *stability* (the
//!   premise of stochastic consolidation).
//! * [`constraints_gen`] — synthesis of realistic §2.2.4 constraint mixes
//!   (HA pairs, affinity companions, subnet zoning).
//! * [`forecast`] — long-term prediction (linear trends over daily means,
//!   trend-adjusted seasonal forecasts) for growth-aware sizing.
//! * [`io`] — CSV import/export so real monitored traces can replace the
//!   synthetic generator.
//!
//! # Example
//!
//! Generate the Airlines data center at 1/10th scale and look at the CPU
//! burstiness of its first server:
//!
//! ```
//! use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};
//! use vmcw_trace::stats;
//!
//! let cfg = GeneratorConfig::new(DataCenterId::Airlines).scale(0.1).days(7);
//! let workload = cfg.generate(42);
//! let server = &workload.servers[0];
//! let ratio = stats::peak_to_average(server.cpu_used_frac.values()).unwrap();
//! assert!(ratio >= 1.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod constraints_gen;
pub mod datacenters;
pub mod forecast;
pub mod io;
pub mod metrics;
pub mod series;
pub mod stats;
pub mod synth;
pub mod warehouse;
pub mod workload;

pub use datacenters::{DataCenterId, GeneratedWorkload, GeneratorConfig, SourceServer};
pub use series::TimeSeries;
pub use stats::Cdf;
