//! Workload analysis beyond the basic statistics.
//!
//! These are the analyses a consolidation engagement runs before choosing
//! a strategy (§7: "Our work also establishes the need of a comprehensive
//! consolidation planning analysis prior to VM consolidation in the
//! wild"):
//!
//! * [`autocorrelation`] — how predictable is a demand series at a given
//!   lag (24 h autocorrelation is what makes the recent+periodic
//!   predictor work).
//! * [`peak_hour_histogram`] — when do servers peak (the raw material of
//!   peak clustering).
//! * [`correlation_matrix`] — pairwise Pearson correlation between
//!   servers.
//! * [`correlation_stability`] — Observation 5's justification: "we
//!   believe that one of the primary reason that semi-static
//!   consolidation performs well is because correlation between
//!   workloads is stable over time \[27\]". The function compares pairwise
//!   correlations between two halves of the history.

use crate::series::TimeSeries;
use crate::stats;
use crate::workload::HOURS_PER_DAY;

/// Sample autocorrelation of a series at `lag` (in samples).
///
/// Returns `None` for series shorter than `lag + 2` samples or with zero
/// variance.
#[must_use]
pub fn autocorrelation(series: &TimeSeries, lag: usize) -> Option<f64> {
    let v = series.values();
    if v.len() < lag + 2 {
        return None;
    }
    stats::pearson(&v[..v.len() - lag], &v[lag..])
}

/// Histogram of each server's most loaded hour of day: `out[h]` counts
/// the servers whose mean demand peaks at hour `h`.
///
/// Series shorter than a day are skipped.
#[must_use]
pub fn peak_hour_histogram<'a, I>(series: I) -> [usize; HOURS_PER_DAY]
where
    I: IntoIterator<Item = &'a TimeSeries>,
{
    let mut out = [0usize; HOURS_PER_DAY];
    for s in series {
        if s.len() < HOURS_PER_DAY {
            continue;
        }
        let mut by_hour = [0.0f64; HOURS_PER_DAY];
        let mut counts = [0usize; HOURS_PER_DAY];
        for (i, v) in s.iter().enumerate() {
            by_hour[i % HOURS_PER_DAY] += v;
            counts[i % HOURS_PER_DAY] += 1;
        }
        let peak = (0..HOURS_PER_DAY)
            .max_by(|&a, &b| {
                let ma = by_hour[a] / counts[a].max(1) as f64;
                let mb = by_hour[b] / counts[b].max(1) as f64;
                ma.partial_cmp(&mb).expect("finite means")
            })
            .expect("24 hours");
        out[peak] += 1;
    }
    out
}

/// Pairwise Pearson correlation matrix of the given series.
///
/// Entry `(i, j)` is the correlation between series `i` and `j`;
/// undefined correlations (constant series) are reported as 0. The matrix
/// is symmetric with a unit diagonal.
#[must_use]
pub fn correlation_matrix(series: &[&TimeSeries]) -> Vec<Vec<f64>> {
    let n = series.len();
    let mut m = vec![vec![0.0; n]; n];
    for i in 0..n {
        m[i][i] = 1.0;
        for j in i + 1..n {
            let r = stats::pearson(series[i].values(), series[j].values()).unwrap_or(0.0);
            m[i][j] = r;
            m[j][i] = r;
        }
    }
    m
}

/// Measures how stable pairwise correlations are across time.
///
/// The series are split at `split` (a sample index); pairwise
/// correlations are computed independently on both halves and compared.
/// Returns the Pearson correlation *between the two sets of pairwise
/// correlations* — 1.0 means the correlation structure is perfectly
/// stable, ~0 means it is noise.
///
/// Returns `None` with fewer than two series or an out-of-range split.
#[must_use]
pub fn correlation_stability(series: &[&TimeSeries], split: usize) -> Option<f64> {
    if series.len() < 2 {
        return None;
    }
    let len = series.iter().map(|s| s.len()).min()?;
    if split == 0 || split >= len {
        return None;
    }
    let mut first = Vec::new();
    let mut second = Vec::new();
    for i in 0..series.len() {
        for j in i + 1..series.len() {
            let a = stats::pearson(&series[i].values()[..split], &series[j].values()[..split])
                .unwrap_or(0.0);
            let b = stats::pearson(
                &series[i].values()[split..len],
                &series[j].values()[split..len],
            )
            .unwrap_or(0.0);
            first.push(a);
            second.push(b);
        }
    }
    stats::pearson(&first, &second)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datacenters::{DataCenterId, GeneratorConfig};
    use crate::series::StepSecs;

    fn hourly(values: Vec<f64>) -> TimeSeries {
        TimeSeries::new(StepSecs::HOUR, values)
    }

    #[test]
    fn autocorrelation_of_periodic_series_peaks_at_period() {
        let v: Vec<f64> = (0..240)
            .map(|h| (h % 24) as f64 + 0.1 * ((h * 7) % 5) as f64)
            .collect();
        let s = hourly(v);
        let ac24 = autocorrelation(&s, 24).unwrap();
        let ac11 = autocorrelation(&s, 11).unwrap();
        assert!(ac24 > 0.95, "24h autocorrelation {ac24}");
        assert!(ac24 > ac11);
    }

    #[test]
    fn autocorrelation_edge_cases() {
        let s = hourly(vec![1.0, 2.0]);
        assert!(autocorrelation(&s, 5).is_none());
        let flat = hourly(vec![3.0; 100]);
        assert!(autocorrelation(&flat, 1).is_none(), "zero variance");
    }

    #[test]
    fn peak_hour_histogram_finds_the_diurnal_peak() {
        // Two servers peaking at hour 14, one at hour 2.
        let day_peak: Vec<f64> = (0..72)
            .map(|h| if h % 24 == 14 { 10.0 } else { 1.0 })
            .collect();
        let night_peak: Vec<f64> = (0..72)
            .map(|h| if h % 24 == 2 { 10.0 } else { 1.0 })
            .collect();
        let a = hourly(day_peak.clone());
        let b = hourly(day_peak);
        let c = hourly(night_peak);
        let hist = peak_hour_histogram([&a, &b, &c]);
        assert_eq!(hist[14], 2);
        assert_eq!(hist[2], 1);
        assert_eq!(hist.iter().sum::<usize>(), 3);
    }

    #[test]
    fn peak_hour_histogram_skips_short_series() {
        let short = hourly(vec![1.0; 5]);
        let hist = peak_hour_histogram([&short]);
        assert_eq!(hist.iter().sum::<usize>(), 0);
    }

    #[test]
    fn correlation_matrix_is_symmetric_with_unit_diagonal() {
        let a = hourly((0..48).map(f64::from).collect());
        let b = hourly((0..48).map(|h| f64::from(h) * 2.0).collect());
        let c = hourly((0..48).map(|h| 48.0 - f64::from(h)).collect());
        let m = correlation_matrix(&[&a, &b, &c]);
        assert_eq!(m.len(), 3);
        for (i, row) in m.iter().enumerate() {
            assert!((row[i] - 1.0).abs() < 1e-12);
            for (j, v) in row.iter().enumerate() {
                assert!((v - m[j][i]).abs() < 1e-12);
            }
        }
        assert!((m[0][1] - 1.0).abs() < 1e-9, "a and b perfectly correlated");
        assert!((m[0][2] + 1.0).abs() < 1e-9, "a and c anti-correlated");
    }

    #[test]
    fn correlation_structure_of_generated_workloads_is_stable() {
        // Observation 5's premise, validated on the generator: pairwise
        // correlations measured on the first half of the month predict
        // those on the second half.
        let w = GeneratorConfig::new(DataCenterId::Banking)
            .scale(0.02)
            .days(28)
            .generate(11);
        let series: Vec<&TimeSeries> = w.servers.iter().map(|s| &s.cpu_used_frac).collect();
        let stability = correlation_stability(&series, 14 * 24).unwrap();
        assert!(
            stability > 0.5,
            "correlation structure unstable: {stability}"
        );
    }

    #[test]
    fn correlation_stability_edge_cases() {
        let a = hourly(vec![1.0; 48]);
        assert!(correlation_stability(&[&a], 24).is_none());
        let b = hourly(vec![2.0; 48]);
        assert!(correlation_stability(&[&a, &b], 0).is_none());
        assert!(correlation_stability(&[&a, &b], 48).is_none());
    }
}
