//! The four calibrated data-center workloads (Table 2).
//!
//! The paper studies four production data centers:
//!
//! | Name | Industry          | # servers | mean CPU util |
//! |------|-------------------|-----------|---------------|
//! | A    | Banking           | 816       | 5%            |
//! | B    | Airlines          | 445       | 1%            |
//! | C    | Natural Resources | 1390      | 12%           |
//! | D    | Beverage          | 722       | 6%            |
//!
//! The raw traces are proprietary, so [`GeneratorConfig::generate`]
//! synthesises statistically equivalent ones. The per-data-center parameter
//! distributions below are calibrated against every distribution the paper
//! publishes: the CPU peak-to-average and CoV CDFs (Figs 2–3), the memory
//! equivalents (Figs 4–5), the CPU/memory resource-ratio CDFs (Fig 6) and
//! the Table 2 server counts and utilisations. Integration tests in the
//! workspace (`tests/figure_shapes.rs`) assert those targets.

use crate::series::TimeSeries;
use crate::stats;
use crate::synth::BoundedPareto;
use crate::warehouse::SourceId;
use crate::workload::{
    BatchProfile, CpuProfile, MemoryProfile, WebProfile, WorkloadClass, HOURS_PER_DAY,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the four studied data centers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataCenterId {
    /// Workload A — production data center of a Fortune 100 bank.
    Banking,
    /// Workload B — data center of one of the largest airlines.
    Airlines,
    /// Workload C — primary data center of a Fortune 500 mining company.
    NaturalResources,
    /// Workload D — one of the largest beverage companies.
    Beverage,
}

impl DataCenterId {
    /// All four data centers in the paper's order (A–D).
    pub const ALL: [DataCenterId; 4] = [
        DataCenterId::Banking,
        DataCenterId::Airlines,
        DataCenterId::NaturalResources,
        DataCenterId::Beverage,
    ];

    /// The paper's single-letter name (A–D).
    #[must_use]
    pub fn letter(self) -> char {
        match self {
            DataCenterId::Banking => 'A',
            DataCenterId::Airlines => 'B',
            DataCenterId::NaturalResources => 'C',
            DataCenterId::Beverage => 'D',
        }
    }

    /// Industry label from Table 2.
    #[must_use]
    pub fn industry(self) -> &'static str {
        match self {
            DataCenterId::Banking => "Banking",
            DataCenterId::Airlines => "Airlines",
            DataCenterId::NaturalResources => "Natural Resources",
            DataCenterId::Beverage => "Beverage",
        }
    }

    /// Number of source servers (Table 2).
    #[must_use]
    pub fn server_count(self) -> usize {
        match self {
            DataCenterId::Banking => 816,
            DataCenterId::Airlines => 445,
            DataCenterId::NaturalResources => 1390,
            DataCenterId::Beverage => 722,
        }
    }

    /// Mean CPU utilisation in percent (Table 2).
    #[must_use]
    pub fn table2_cpu_util_pct(self) -> f64 {
        match self {
            DataCenterId::Banking => 5.0,
            DataCenterId::Airlines => 1.0,
            DataCenterId::NaturalResources => 12.0,
            DataCenterId::Beverage => 6.0,
        }
    }

    /// Fraction of servers hosting web-based workloads. §3.2: "Workload A
    /// has the highest fraction of web-based workload servers, followed by
    /// D, B and C."
    #[must_use]
    pub fn web_fraction(self) -> f64 {
        match self {
            DataCenterId::Banking => 0.75,
            DataCenterId::Airlines => 0.40,
            DataCenterId::NaturalResources => 0.20,
            DataCenterId::Beverage => 0.60,
        }
    }
}

impl fmt::Display for DataCenterId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.industry())
    }
}

/// A monitored source server: hardware capacity plus 30+ days of hourly
/// CPU and memory demand.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceServer {
    /// Warehouse identifier.
    pub id: SourceId,
    /// Human-readable name, e.g. `bank-0042`.
    pub name: String,
    /// Web or batch (§3.2 labelling).
    pub class: WorkloadClass,
    /// CPU capacity in RPE2 units (IDEAS Relative Performance Estimate 2).
    pub cpu_capacity_rpe2: f64,
    /// Installed memory in MB.
    pub mem_capacity_mb: f64,
    /// Peak network throughput this server drives, in Mbit/s. The
    /// planners use it as an admission constraint: §3.1, "using network
    /// and disk throughput as constraints to identify hosts with
    /// sufficient link bandwidth".
    pub net_peak_mbps: f64,
    /// Hourly CPU utilisation as a fraction of this server's capacity.
    pub cpu_used_frac: TimeSeries,
    /// Hourly committed memory in MB.
    pub mem_used_mb: TimeSeries,
}

impl SourceServer {
    /// Hourly CPU demand in absolute RPE2 units.
    #[must_use]
    pub fn cpu_demand_rpe2(&self) -> TimeSeries {
        self.cpu_used_frac.scale(self.cpu_capacity_rpe2)
    }

    /// Mean CPU utilisation over the whole trace, in percent.
    #[must_use]
    pub fn mean_cpu_util_pct(&self) -> f64 {
        self.cpu_used_frac.mean().unwrap_or(0.0) * 100.0
    }
}

/// A generated data-center workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GeneratedWorkload {
    /// Which data center this models.
    pub dc: DataCenterId,
    /// Trace length in days.
    pub days: usize,
    /// The source servers with their traces.
    pub servers: Vec<SourceServer>,
}

impl GeneratedWorkload {
    /// Trace length in hours.
    #[must_use]
    pub fn hours(&self) -> usize {
        self.days * HOURS_PER_DAY
    }

    /// Hourly aggregate CPU demand across all servers, in RPE2.
    #[must_use]
    pub fn aggregate_cpu_rpe2(&self) -> TimeSeries {
        self.servers
            .iter()
            .map(SourceServer::cpu_demand_rpe2)
            .reduce(|a, b| a.add(&b))
            .unwrap_or_else(|| TimeSeries::empty(crate::series::StepSecs::HOUR))
    }

    /// Hourly aggregate memory demand across all servers, in MB.
    #[must_use]
    pub fn aggregate_mem_mb(&self) -> TimeSeries {
        self.servers
            .iter()
            .map(|s| s.mem_used_mb.clone())
            .reduce(|a, b| a.add(&b))
            .unwrap_or_else(|| TimeSeries::empty(crate::series::StepSecs::HOUR))
    }

    /// Mean CPU utilisation across servers, in percent (the Table 2 figure).
    #[must_use]
    pub fn mean_cpu_util_pct(&self) -> f64 {
        stats::mean(
            &self
                .servers
                .iter()
                .map(SourceServer::mean_cpu_util_pct)
                .collect::<Vec<_>>(),
        )
        .unwrap_or(0.0)
    }

    /// Number of servers of each class `(web, batch)`.
    #[must_use]
    pub fn class_counts(&self) -> (usize, usize) {
        let web = self
            .servers
            .iter()
            .filter(|s| s.class == WorkloadClass::Web)
            .count();
        (web, self.servers.len() - web)
    }
}

/// Configuration of the synthetic workload generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    dc: DataCenterId,
    scale: f64,
    days: usize,
}

impl GeneratorConfig {
    /// Default trace length: 30 days of planning history plus the 14-day
    /// evaluation window of Table 3.
    pub const DEFAULT_DAYS: usize = 44;

    /// Full-scale configuration for a data center.
    #[must_use]
    pub fn new(dc: DataCenterId) -> Self {
        Self {
            dc,
            scale: 1.0,
            days: Self::DEFAULT_DAYS,
        }
    }

    /// Scales the server count (e.g. `0.1` for quick tests). Clamped so at
    /// least one server is generated.
    #[must_use]
    pub fn scale(mut self, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive, got {scale}");
        self.scale = scale;
        self
    }

    /// Sets the trace length in days.
    #[must_use]
    pub fn days(mut self, days: usize) -> Self {
        assert!(days > 0, "trace must cover at least one day");
        self.days = days;
        self
    }

    /// The configured data center.
    #[must_use]
    pub fn data_center(&self) -> DataCenterId {
        self.dc
    }

    /// Number of servers this configuration will generate.
    #[must_use]
    pub fn server_count(&self) -> usize {
        ((self.dc.server_count() as f64 * self.scale).round() as usize).max(1)
    }

    /// Generates the workload. Deterministic in `(config, seed)`.
    #[must_use]
    pub fn generate(&self, seed: u64) -> GeneratedWorkload {
        let salt = match self.dc {
            DataCenterId::Banking => 0xA,
            DataCenterId::Airlines => 0xB,
            DataCenterId::NaturalResources => 0xC,
            DataCenterId::Beverage => 0xD,
        };
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ salt);
        let n = self.server_count();
        let hours = self.days * HOURS_PER_DAY;
        let prefix = match self.dc {
            DataCenterId::Banking => "bank",
            DataCenterId::Airlines => "air",
            DataCenterId::NaturalResources => "mine",
            DataCenterId::Beverage => "bev",
        };
        let events = event_trains(self.dc, &mut rng, hours);
        let servers = (0..n)
            .map(|i| {
                let sampled = sample_server(self.dc, &mut rng);
                let group = rng.random_range(0..events.len());
                let cpu = sampled.cpu.generate(&mut rng, hours, &events[group]);
                let mem = sampled.mem.generate(&mut rng, &cpu);
                // Web servers push traffic proportional to their CPU peak
                // (tens to a few hundred Mbit/s); batch jobs read from SAN
                // and drive far less front-end network.
                let peak_cpu = cpu.max().unwrap_or(0.0);
                let net_peak_mbps = match sampled.cpu.class() {
                    WorkloadClass::Web => 40.0 + 500.0 * peak_cpu,
                    WorkloadClass::Batch => 10.0 + 80.0 * peak_cpu,
                };
                SourceServer {
                    id: SourceId(i as u32),
                    name: format!("{prefix}-{i:04}"),
                    class: sampled.cpu.class(),
                    cpu_capacity_rpe2: sampled.rpe2,
                    mem_capacity_mb: sampled.mem_capacity_mb,
                    net_peak_mbps,
                    cpu_used_frac: cpu,
                    mem_used_mb: mem,
                }
            })
            .collect();
        GeneratedWorkload {
            dc: self.dc,
            days: self.days,
            servers,
        }
    }
}

/// Everything sampled per server before trace generation.
struct SampledServer {
    cpu: CpuProfile,
    mem: MemoryProfile,
    rpe2: f64,
    mem_capacity_mb: f64,
}

fn uni(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    rng.random_range(lo..hi)
}

/// Builds the per-application-group correlated event trains.
///
/// Load surges — a market move for a bank, a fare sale for an airline, a
/// campaign for a beverage brand — hit every server of the affected
/// *application* in the same hours. Different applications surge at
/// different times, which is precisely the structure the stochastic
/// planner's peak clustering exploits ("correlation between workloads is
/// stable over time", Observation 5 citing \[27\]): servers of one group
/// must be provisioned for their simultaneous peaks, while servers of
/// different groups can share headroom. Individual servers additionally
/// spike idiosyncratically, but uncorrelated spikes average out across
/// hundreds of machines.
fn event_trains(dc: DataCenterId, rng: &mut StdRng, hours: usize) -> Vec<Vec<f64>> {
    struct EventParams {
        groups: usize,
        /// Range of characteristic hours-of-day events recur at.
        char_hours: std::ops::Range<usize>,
        /// Probability an event fires on a given day.
        daily_prob: f64,
        /// Range of stable per-group magnitudes.
        base_mag: (f64, f64),
        /// Day-to-day magnitude variation: the multiplier is
        /// `1 + var_span * u^var_shape` for uniform `u`, so most days sit
        /// near the base magnitude and rare days overshoot — the days that
        /// overwhelm the dynamic planner's predictions (Fig 9).
        var_span: f64,
        /// Concentration of the variation (higher = rarer big days).
        var_shape: f64,
        /// Range of event durations in hours.
        width: std::ops::Range<usize>,
    }
    let p = match dc {
        // Many trading/online-banking apps surging around market hours,
        // nearly every weekday, hard.
        DataCenterId::Banking => EventParams {
            groups: 10,
            char_hours: 11..15,
            daily_prob: 0.95,
            base_mag: (1.8, 3.4),
            var_span: 0.35,
            var_shape: 6.0,
            width: 4..7,
        },
        // Reservation load is planned capacity; rare, mild surges.
        DataCenterId::Airlines => EventParams {
            groups: 6,
            char_hours: 0..24,
            daily_prob: 0.25,
            base_mag: (1.3, 2.2),
            var_span: 0.4,
            var_shape: 4.0,
            width: 2..5,
        },
        // Mostly internal users; few external surges.
        DataCenterId::NaturalResources => EventParams {
            groups: 8,
            char_hours: 0..24,
            daily_prob: 0.2,
            base_mag: (1.3, 2.5),
            var_span: 0.4,
            var_shape: 4.0,
            width: 2..5,
        },
        // Campaign-driven spikes almost as heavy as Banking's.
        DataCenterId::Beverage => EventParams {
            groups: 8,
            char_hours: 8..21,
            daily_prob: 0.75,
            base_mag: (2.0, 5.0),
            var_span: 0.55,
            var_shape: 5.0,
            width: 2..6,
        },
    };
    let days = hours.div_ceil(HOURS_PER_DAY);
    (0..p.groups)
        .map(|_| {
            let char_hour = rng.random_range(p.char_hours.clone());
            let base = uni(rng, p.base_mag.0, p.base_mag.1);
            let mut train = vec![1.0_f64; hours];
            for day in 0..days {
                if rng.random::<f64>() >= p.daily_prob {
                    continue;
                }
                let jitter: i64 = rng.random_range(0..=1);
                let start = (day * HOURS_PER_DAY) as i64 + char_hour as i64 + jitter;
                let width = rng.random_range(p.width.clone());
                let var = 1.0 + p.var_span * rng.random::<f64>().powf(p.var_shape);
                let mag = 1.0 + (base - 1.0) * var;
                for (offset, t) in (start..start + width as i64).enumerate() {
                    if t < 0 || t as usize >= hours {
                        continue;
                    }
                    // Plateau with a soft ramp-down in the final hour.
                    let shape = if offset + 1 == width { 0.6 } else { 1.0 };
                    let level = 1.0 + (mag - 1.0) * shape;
                    train[t as usize] = train[t as usize].max(level);
                }
            }
            train
        })
        .collect()
}

/// Draws the hardware and workload profile of one server according to the
/// data center's calibrated parameter distributions.
fn sample_server(dc: DataCenterId, rng: &mut StdRng) -> SampledServer {
    let is_web = rng.random::<f64>() < dc.web_fraction();
    match dc {
        DataCenterId::Banking => sample_banking(rng, is_web),
        DataCenterId::Airlines => sample_airlines(rng, is_web),
        DataCenterId::NaturalResources => sample_natural_resources(rng, is_web),
        DataCenterId::Beverage => sample_beverage(rng, is_web),
    }
}

/// Banking (A): 75% web, very bursty CPU (P/A > 5 for half the servers,
/// CoV ≥ 1 for >50%), CPU-intensive in aggregate (resource ratio above the
/// HS23 blade's 160 for ~70% of intervals), ~20% of servers with memory
/// CoV > 1.
fn sample_banking(rng: &mut StdRng, is_web: bool) -> SampledServer {
    let rpe2 = uni(rng, 5500.0, 9500.0);
    let mem_capacity_mb = uni(rng, 4096.0, 16384.0);
    if is_web {
        // Burstiness tier: most web servers in a bank are highly spiky.
        let burst = rng.random::<f64>();
        let base = uni(rng, 0.004, 0.010);
        let amp = uni(rng, 0.035, 0.11);
        let cpu = CpuProfile::Web(WebProfile {
            base_frac: base,
            diurnal_amp: amp,
            weekend_factor: uni(rng, 0.2, 0.5),
            spike_rate: if burst > 0.55 {
                uni(rng, 0.004, 0.010)
            } else {
                0.001 + 0.004 * burst
            },
            spike_magnitude: if burst > 0.55 {
                // Fig 2(a) at 1 h windows: ~30% of servers sit at
                // P/A ≥ 10, so the top burst tier needs spikes that
                // reach an order of magnitude above the mean level.
                // The floor carries that tail; the ceiling stays
                // moderate so peak-sized (semi-static) provisioning
                // is not inflated past the Fig 13 crossings.
                BoundedPareto::new(uni(rng, 1.0, 1.4), 8.0, 16.0)
            } else {
                BoundedPareto::new(uni(rng, 1.2, 1.8), 1.5, 3.0)
            },
            spike_width_hours: uni(rng, 1.0, 3.0),
            // Market-wide events hit every exposed server at once, so a
            // stronger gain raises the *aggregate* hourly peak the
            // dynamic planner must ride without moving per-server peaks
            // (which size the semi-static plan) — that coupling is what
            // keeps the Fig 13 crossing at U = 0.70.
            event_gain: uni(rng, 0.6, 1.6),
            noise_std: uni(rng, 0.04, 0.10),
        });
        let b = mem_capacity_mb * uni(rng, 0.08, 0.18);
        let mem = MemoryProfile {
            base_mb: b,
            cpu_coupled_mb: b * uni(rng, 0.08, 0.35),
            coupling_exponent: 0.6,
            noise_std_mb: b * 0.015,
        };
        SampledServer {
            cpu,
            mem,
            rpe2,
            mem_capacity_mb,
        }
    } else {
        let cpu = CpuProfile::Batch(BatchProfile {
            idle_frac: uni(rng, 0.008, 0.03),
            job_start_hour: rng.random_range(0..7),
            job_hours: rng.random_range(2..5),
            job_frac: uni(rng, 0.10, 0.40),
            skip_probability: 0.05,
            month_end_boost: uni(rng, 1.0, 1.8),
            daily_growth: 0.0,
            noise_std: uni(rng, 0.05, 0.15),
        });
        // Batch jobs allocate a large working set while they run and
        // release it afterwards — these servers are the memory-CoV>1
        // population of Fig 5(a).
        let base_mb = uni(rng, 256.0, 512.0);
        let mem = MemoryProfile {
            base_mb,
            cpu_coupled_mb: base_mb * uni(rng, 10.0, 16.0),
            coupling_exponent: 1.0,
            noise_std_mb: base_mb * 0.01,
        };
        SampledServer {
            cpu,
            mem,
            rpe2,
            mem_capacity_mb,
        }
    }
}

/// Airlines (B): lowest utilisation (1%), modest burstiness (~30% of
/// servers heavy-tailed in CPU, none in memory), strongly memory-bound —
/// large reservation-system working sets keep the resource ratio below 50
/// at all times (Fig 6(b)).
fn sample_airlines(rng: &mut StdRng, is_web: bool) -> SampledServer {
    let rpe2 = uni(rng, 2000.0, 5000.0);
    let mem_capacity_mb = uni(rng, 16384.0, 65536.0);
    let cpu = if is_web {
        // Fig 3(b): ~30% of *all* servers are heavy-tailed (CoV ≥ 1),
        // and web servers are the only plausibly spiky population —
        // so most of the 40% web share must spike hard enough to
        // clear CoV 1 on its own.
        let spiky = rng.random::<f64>() < 0.70;
        CpuProfile::Web(WebProfile {
            base_frac: uni(rng, 0.003, 0.008),
            diurnal_amp: uni(rng, 0.004, 0.012),
            weekend_factor: uni(rng, 0.6, 0.9),
            spike_rate: if spiky {
                uni(rng, 0.03, 0.08)
            } else {
                uni(rng, 0.0, 0.004)
            },
            spike_magnitude: BoundedPareto::new(uni(rng, 1.0, 1.5), 4.0, 14.0),
            spike_width_hours: uni(rng, 1.0, 2.0),
            event_gain: uni(rng, 0.2, 0.6),
            noise_std: uni(rng, 0.05, 0.15),
        })
    } else {
        CpuProfile::Batch(BatchProfile {
            idle_frac: uni(rng, 0.004, 0.009),
            job_start_hour: rng.random_range(0..24),
            job_hours: rng.random_range(1..4),
            job_frac: uni(rng, 0.015, 0.04),
            skip_probability: 0.1,
            month_end_boost: uni(rng, 1.0, 1.3),
            daily_growth: 0.0,
            noise_std: uni(rng, 0.04, 0.1),
        })
    };
    let base_mb = mem_capacity_mb * uni(rng, 0.45, 0.75);
    let mem = MemoryProfile {
        base_mb,
        cpu_coupled_mb: base_mb * uni(rng, 0.02, 0.10),
        coupling_exponent: 0.7,
        noise_std_mb: base_mb * 0.008,
    };
    SampledServer {
        cpu,
        mem,
        rpe2,
        mem_capacity_mb,
    }
}

/// Natural Resources (C): highest server count and utilisation (12%),
/// batch-heavy custom applications with moderate, scheduled variability
/// (~15% heavy-tailed), memory-constrained for >90% of intervals.
fn sample_natural_resources(rng: &mut StdRng, is_web: bool) -> SampledServer {
    let rpe2 = uni(rng, 3000.0, 7000.0);
    let mem_capacity_mb = uni(rng, 8192.0, 32768.0);
    let cpu = if is_web {
        CpuProfile::Web(WebProfile {
            base_frac: uni(rng, 0.02, 0.06),
            diurnal_amp: uni(rng, 0.05, 0.15),
            weekend_factor: uni(rng, 0.4, 0.8),
            spike_rate: uni(rng, 0.005, 0.03),
            spike_magnitude: BoundedPareto::new(uni(rng, 1.2, 2.0), 2.0, 12.0),
            spike_width_hours: uni(rng, 1.0, 2.5),
            event_gain: uni(rng, 0.1, 0.5),
            noise_std: uni(rng, 0.08, 0.18),
        })
    } else {
        CpuProfile::Batch(BatchProfile {
            idle_frac: uni(rng, 0.04, 0.10),
            // Staggered start hours keep the aggregate flat enough that
            // the data center stays memory-constrained (Fig 6(c)).
            job_start_hour: rng.random_range(0..24),
            job_hours: rng.random_range(4..9),
            job_frac: uni(rng, 0.18, 0.45),
            skip_probability: 0.05,
            month_end_boost: uni(rng, 1.0, 2.0),
            daily_growth: uni(rng, 0.0, 0.004),
            noise_std: uni(rng, 0.05, 0.15),
        })
    };
    let base_mb = mem_capacity_mb * uni(rng, 0.30, 0.55);
    let mem = MemoryProfile {
        base_mb,
        cpu_coupled_mb: base_mb * uni(rng, 0.05, 0.25),
        coupling_exponent: 0.7,
        noise_std_mb: base_mb * 0.01,
    };
    SampledServer {
        cpu,
        mem,
        rpe2,
        mem_capacity_mb,
    }
}

/// Beverage (D): burstiness comparable to Banking (Figs 2(d), 3(d)) but
/// with larger memory commits, leaving it memory-constrained for >90% of
/// intervals while still more CPU-intensive than Airlines/Natural
/// Resources.
fn sample_beverage(rng: &mut StdRng, is_web: bool) -> SampledServer {
    let rpe2 = uni(rng, 3000.0, 7000.0);
    let mem_capacity_mb = uni(rng, 8192.0, 24576.0);
    if is_web {
        let burst = rng.random::<f64>();
        let cpu = CpuProfile::Web(WebProfile {
            base_frac: uni(rng, 0.005, 0.02),
            diurnal_amp: uni(rng, 0.02, 0.07),
            weekend_factor: uni(rng, 0.4, 0.8),
            spike_rate: 0.003 + 0.012 * burst,
            spike_magnitude: BoundedPareto::new(uni(rng, 1.1, 1.8), 2.0, 6.0),
            spike_width_hours: uni(rng, 1.0, 3.0),
            event_gain: uni(rng, 0.3, 0.9),
            noise_std: uni(rng, 0.1, 0.2),
        });
        let coupled_heavy = rng.random::<f64>() < 0.10;
        let (base_mb, coupled_mb) = if coupled_heavy {
            let b = uni(rng, 300.0, 600.0);
            (b, b * uni(rng, 1.8, 3.5))
        } else {
            let b = mem_capacity_mb * uni(rng, 0.13, 0.27);
            (b, b * uni(rng, 0.05, 0.3))
        };
        let mem = MemoryProfile {
            base_mb,
            cpu_coupled_mb: coupled_mb,
            coupling_exponent: 0.6,
            noise_std_mb: base_mb * 0.012,
        };
        SampledServer {
            cpu,
            mem,
            rpe2,
            mem_capacity_mb,
        }
    } else {
        let cpu = CpuProfile::Batch(BatchProfile {
            idle_frac: uni(rng, 0.01, 0.05),
            job_start_hour: rng.random_range(0..8),
            job_hours: rng.random_range(2..7),
            job_frac: uni(rng, 0.15, 0.5),
            skip_probability: 0.05,
            month_end_boost: uni(rng, 1.0, 2.2),
            daily_growth: 0.0,
            noise_std: uni(rng, 0.05, 0.15),
        });
        let base_mb = mem_capacity_mb * uni(rng, 0.14, 0.28);
        let mem = MemoryProfile {
            base_mb,
            cpu_coupled_mb: base_mb * uni(rng, 0.1, 0.35),
            coupling_exponent: 0.7,
            noise_std_mb: base_mb * 0.01,
        };
        SampledServer {
            cpu,
            mem,
            rpe2,
            mem_capacity_mb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(dc: DataCenterId) -> GeneratedWorkload {
        GeneratorConfig::new(dc).scale(0.08).days(14).generate(7)
    }

    #[test]
    fn table2_metadata() {
        assert_eq!(DataCenterId::Banking.server_count(), 816);
        assert_eq!(DataCenterId::Airlines.server_count(), 445);
        assert_eq!(DataCenterId::NaturalResources.server_count(), 1390);
        assert_eq!(DataCenterId::Beverage.server_count(), 722);
        assert_eq!(DataCenterId::Banking.letter(), 'A');
        assert_eq!(DataCenterId::Beverage.letter(), 'D');
        assert_eq!(DataCenterId::ALL.len(), 4);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small(DataCenterId::Banking);
        let b = small(DataCenterId::Banking);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = GeneratorConfig::new(DataCenterId::Banking)
            .scale(0.02)
            .days(3);
        assert_ne!(cfg.generate(1), cfg.generate(2));
    }

    #[test]
    fn scale_controls_server_count() {
        let cfg = GeneratorConfig::new(DataCenterId::Airlines).scale(0.1);
        assert_eq!(cfg.server_count(), 45);
        let tiny = GeneratorConfig::new(DataCenterId::Airlines).scale(0.0001);
        assert_eq!(tiny.server_count(), 1);
    }

    #[test]
    fn traces_have_requested_length() {
        let w = small(DataCenterId::Beverage);
        assert_eq!(w.hours(), 14 * 24);
        for s in &w.servers {
            assert_eq!(s.cpu_used_frac.len(), w.hours());
            assert_eq!(s.mem_used_mb.len(), w.hours());
        }
    }

    #[test]
    fn utilisation_fractions_are_valid() {
        for dc in DataCenterId::ALL {
            let w = small(dc);
            for s in &w.servers {
                assert!(
                    s.cpu_used_frac.iter().all(|v| (0.0..=1.0).contains(&v)),
                    "{dc}: cpu fraction out of range"
                );
                assert!(
                    s.mem_used_mb.iter().all(|v| v >= 1.0),
                    "{dc}: memory below 1 MB"
                );
            }
        }
    }

    #[test]
    fn mean_utilisation_tracks_table2() {
        // Full server counts but short traces keep this fast while giving
        // enough servers for the mean to stabilise.
        for dc in DataCenterId::ALL {
            let w = GeneratorConfig::new(dc).scale(0.25).days(10).generate(11);
            let measured = w.mean_cpu_util_pct();
            let expected = dc.table2_cpu_util_pct();
            assert!(
                (measured - expected).abs() / expected < 0.5,
                "{dc}: measured {measured:.2}% vs Table 2 {expected}%"
            );
        }
    }

    #[test]
    fn web_fraction_is_respected() {
        let w = GeneratorConfig::new(DataCenterId::Banking)
            .scale(0.5)
            .days(2)
            .generate(3);
        let (web, batch) = w.class_counts();
        let frac = web as f64 / (web + batch) as f64;
        assert!((frac - 0.75).abs() < 0.08, "web fraction {frac}");
    }

    #[test]
    fn banking_is_burstier_than_airlines() {
        let banking = small(DataCenterId::Banking);
        let airlines = small(DataCenterId::Airlines);
        let median_cov = |w: &GeneratedWorkload| {
            let covs: Vec<f64> = w
                .servers
                .iter()
                .filter_map(|s| stats::coefficient_of_variability(s.cpu_used_frac.values()))
                .collect();
            stats::percentile(&covs, 50.0).unwrap()
        };
        assert!(median_cov(&banking) > median_cov(&airlines));
    }

    #[test]
    fn memory_less_bursty_than_cpu_everywhere() {
        for dc in DataCenterId::ALL {
            let w = small(dc);
            let mut cpu_pa = Vec::new();
            let mut mem_pa = Vec::new();
            for s in &w.servers {
                cpu_pa.extend(stats::peak_to_average(s.cpu_used_frac.values()));
                mem_pa.extend(stats::peak_to_average(s.mem_used_mb.values()));
            }
            let cpu_med = stats::percentile(&cpu_pa, 50.0).unwrap();
            let mem_med = stats::percentile(&mem_pa, 50.0).unwrap();
            assert!(
                mem_med < cpu_med,
                "{dc}: memory median P/A {mem_med} not below CPU {cpu_med}"
            );
        }
    }

    #[test]
    fn airlines_is_memory_bound() {
        let w = small(DataCenterId::Airlines);
        let cpu = w.aggregate_cpu_rpe2();
        let mem = w.aggregate_mem_mb();
        for (c, m) in cpu.iter().zip(mem.iter()) {
            let ratio = c / (m / 1024.0);
            assert!(ratio < 50.0, "Airlines resource ratio {ratio} not < 50");
        }
    }

    #[test]
    fn aggregates_have_trace_length() {
        let w = small(DataCenterId::NaturalResources);
        assert_eq!(w.aggregate_cpu_rpe2().len(), w.hours());
        assert_eq!(w.aggregate_mem_mb().len(), w.hours());
    }

    #[test]
    #[should_panic(expected = "scale must be positive")]
    fn zero_scale_is_rejected() {
        let _ = GeneratorConfig::new(DataCenterId::Banking).scale(0.0);
    }
}
