//! Cost-aware dynamic consolidation.
//!
//! §5.1: "We use a state-of-the-art dynamic consolidation scheme that
//! compares various adaptation actions possible and selects the one with
//! least cost. The actual sizing function used in this case is the
//! estimated peak demand in the consolidation window." The scheme
//! "captures the salient features of \[26\] (pMapper-style power-aware
//! placement) and \[15\] (cost-sensitive adaptation)" (§2.2.3).
//!
//! Each consolidation interval the planner:
//!
//! 1. **Predicts** every VM's peak demand for the window
//!    ([`crate::prediction::Predictor`]).
//! 2. **Repairs overloads**: hosts whose predicted demand exceeds the
//!    utilization bound shed their cheapest (smallest-memory) groups to
//!    the most-loaded host that still fits — keeping the footprint tight.
//! 3. **Consolidates**: starting from the least-loaded host, it evacuates
//!    hosts entirely whenever the power saved by switching the host off
//!    for one interval exceeds the modelled migration cost
//!    ([`vmcw_migration::MigrationCostModel`]) — the "least cost
//!    adaptation action" comparison.
//!
//! Live migrations are simulated with the pre-copy model against the
//! *source host's* load; migrations launched from hosts beyond the
//! reliability thresholds may fail to converge, which the emulator
//! reports (§4.3's risk in action).

use crate::ffd::{self, OrderKey};
use crate::input::PlanningInput;
use crate::placement::{PackError, Placement};
use crate::prediction::Predictor;
use crate::sizing::SizingFunction;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vmcw_cluster::datacenter::{DataCenter, HostId};
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;
use vmcw_migration::cost::MigrationCostModel;
use vmcw_migration::precopy::{HostLoad, PrecopyConfig, VmMigrationProfile};
use vmcw_migration::reliability::ReservationPolicy;
use vmcw_trace::workload::HOURS_PER_DAY;

/// Configuration of the dynamic planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DynamicConfig {
    /// Consolidation-interval length in hours (Table 3: 2).
    pub window_hours: usize,
    /// Resources reserved for live migration (Table 3: 20% CPU + memory).
    pub reservation: ReservationPolicy,
    /// Predictor for the window's peak CPU demand.
    pub cpu_predictor: Predictor,
    /// Predictor for the window's peak memory demand. Committed memory is
    /// far less bursty than CPU (Observation 2), so the default carries a
    /// smaller safety margin.
    pub mem_predictor: Predictor,
    /// FFD ordering for the initial placement and eviction destinations.
    pub order: OrderKey,
    /// Only hosts whose dominant-share load is below this fraction of the
    /// effective capacity are considered for evacuation — hysteresis that
    /// keeps the planner from churning VMs between comparably loaded
    /// hosts every interval.
    pub underload_threshold: f64,
    /// Fraction of the interval each host's migration link may be busy
    /// with *consolidation* transfers (overload repair is always allowed).
    /// Keeps the per-interval migration schedule feasible — the §7
    /// practicality constraint ("the time taken by live migration today").
    pub migration_time_budget_frac: f64,
    /// Migration cost model for the least-cost action comparison.
    pub cost_model: MigrationCostModel,
    /// Pre-copy model used to simulate each migration.
    pub precopy: PrecopyConfig,
}

impl DynamicConfig {
    /// The paper's baseline: 2-hour windows, 20% reservation, the
    /// recent+periodic predictor, calibrated migration costs on GbE.
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            window_hours: 2,
            reservation: ReservationPolicy::thumb_rule(),
            cpu_predictor: Predictor::baseline(),
            mem_predictor: Predictor::RecentAndPeriodic { safety: 1.05 },
            order: OrderKey::Dominant,
            underload_threshold: 0.5,
            migration_time_budget_frac: 0.5,
            cost_model: MigrationCostModel::default_calibration(),
            precopy: PrecopyConfig::gigabit(),
        }
    }

    /// Number of consolidation windows per day.
    ///
    /// # Panics
    ///
    /// Panics unless `window_hours` divides 24.
    #[must_use]
    pub fn windows_per_day(&self) -> usize {
        assert!(
            self.window_hours > 0 && HOURS_PER_DAY.is_multiple_of(self.window_hours),
            "window must divide a day, got {}h",
            self.window_hours
        );
        HOURS_PER_DAY / self.window_hours
    }
}

impl Default for DynamicConfig {
    fn default() -> Self {
        Self::baseline()
    }
}

/// One live migration decided by the dynamic planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationEvent {
    /// Consolidation interval in which the migration runs.
    pub interval: usize,
    /// The migrated VM.
    pub vm: VmId,
    /// Source host.
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
    /// Memory moved, in MB.
    pub mem_mb: f64,
    /// Simulated duration of the migration, seconds.
    pub duration_secs: f64,
    /// Whether the pre-copy converged within the downtime budget.
    pub converged: bool,
    /// Scalar cost charged by the cost model, watt-hour equivalents.
    pub cost_wh: f64,
}

/// Output of the dynamic planner.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicOutcome {
    /// One placement per consolidation interval.
    pub placements: Vec<Placement>,
    /// All migrations, in execution order.
    pub migrations: Vec<MigrationEvent>,
    /// Window length in hours.
    pub window_hours: usize,
}

impl DynamicOutcome {
    /// Active (powered-on) host count per interval.
    #[must_use]
    pub fn active_host_counts(&self) -> Vec<usize> {
        self.placements
            .iter()
            .map(Placement::active_host_count)
            .collect()
    }

    /// Migrations that failed to converge.
    #[must_use]
    pub fn failed_migrations(&self) -> Vec<&MigrationEvent> {
        self.migrations.iter().filter(|m| !m.converged).collect()
    }

    /// Total number of migrations.
    #[must_use]
    pub fn migration_count(&self) -> usize {
        self.migrations.len()
    }
}

/// Internal: a colocation group with per-window predicted demands.
struct Group {
    vms: Vec<VmId>,
    /// Predicted demand per window (filled lazily window by window).
    predicted: Vec<Resources>,
    /// Configured memory of the group (copied on migration).
    mem_mb: f64,
    /// Peak network demand of the group, Mbit/s (link admission).
    net_mbps: f64,
    /// Whether the group is pinned (never migrated).
    pinned: bool,
    /// Peak historical CPU demand (activity normalisation for the
    /// migration dirty-rate model).
    hist_peak_cpu: f64,
}

/// Runs the dynamic planner over the evaluation window of `input`,
/// provisioning hosts in `dc` as needed.
///
/// # Errors
///
/// Propagates [`PackError`] from the initial placement or when a group can
/// no longer fit anywhere (e.g. its predicted demand exceeds an empty
/// host under the reservation bounds).
pub fn plan_dynamic(
    input: &PlanningInput,
    dc: &mut DataCenter,
    config: &DynamicConfig,
) -> Result<DynamicOutcome, PackError> {
    let w = config.window_hours;
    let eval = input.eval_range();
    let eval_hours = eval.len();
    let n_windows = eval_hours.div_ceil(w.max(1));
    let windows_per_day = config.windows_per_day();
    let capacity = dc.template().capacity();
    let bounds = (
        config.reservation.cpu_bound(),
        config.reservation.mem_bound(),
    );
    let effective = Resources::new(capacity.cpu_rpe2 * bounds.0, capacity.mem_mb * bounds.1);
    // The migration reservation also covers the host link: workload
    // traffic may only use the bounded share of it.
    let effective_net = dc.template().net_mbps * bounds.0;

    // Per-VM window-demand series (history + eval) sized with max.
    struct VmWindows {
        hist_cpu: Vec<f64>,
        hist_mem: Vec<f64>,
        eval_cpu: Vec<f64>,
        eval_mem: Vec<f64>,
        hist_peak_cpu: f64,
    }
    let mut windows: BTreeMap<VmId, VmWindows> = BTreeMap::new();
    for t in &input.vms {
        let hist_range = input.history_range();
        let fold = |values: &[f64]| -> Vec<f64> {
            values
                .chunks(w)
                .map(|c| SizingFunction::Max.size(c))
                .collect()
        };
        let hist_cpu = fold(&t.cpu_rpe2.values()[hist_range.clone()]);
        let hist_mem = fold(&t.mem_mb.values()[hist_range.clone()]);
        let eval_cpu = fold(&t.cpu_rpe2.values()[eval.clone()]);
        let eval_mem = fold(&t.mem_mb.values()[eval.clone()]);
        let hist_peak_cpu = hist_cpu.iter().copied().fold(0.0, f64::max);
        windows.insert(
            t.vm.id,
            VmWindows {
                hist_cpu,
                hist_mem,
                eval_cpu,
                eval_mem,
                hist_peak_cpu,
            },
        );
    }

    // Build colocation groups with a dummy demand map (validation only).
    let unit: BTreeMap<VmId, Resources> = input
        .vm_ids()
        .into_iter()
        .map(|v| (v, Resources::ZERO))
        .collect();
    let group_items = ffd::build_items(&unit, &input.constraints)?;
    let mut groups: Vec<Group> = group_items
        .into_iter()
        .map(|it| {
            let mem_mb = it
                .vms
                .iter()
                .map(|v| input.vm_trace(*v).map_or(0.0, |t| t.vm.configured_mem_mb))
                .sum();
            let pinned = it
                .vms
                .iter()
                .any(|&v| input.constraints.pinned_host(v).is_some());
            let hist_peak_cpu = it.vms.iter().map(|v| windows[v].hist_peak_cpu).sum();
            let net_mbps = it
                .vms
                .iter()
                .map(|v| input.vm_trace(*v).map_or(0.0, |t| t.net_peak_mbps))
                .sum();
            Group {
                vms: it.vms,
                predicted: Vec::new(),
                mem_mb,
                net_mbps,
                pinned,
                hist_peak_cpu,
            }
        })
        .collect();

    // Predict all windows for all groups up front (prediction only reads
    // actuals before the predicted index, so this is causal).
    for g in &mut groups {
        g.predicted = (0..n_windows)
            .map(|i| {
                g.vms
                    .iter()
                    .map(|v| {
                        let vw = &windows[v];
                        let cpu = config.cpu_predictor.predict(
                            &vw.hist_cpu,
                            &vw.eval_cpu,
                            i,
                            windows_per_day,
                        );
                        let mem = config.mem_predictor.predict(
                            &vw.hist_mem,
                            &vw.eval_mem,
                            i,
                            windows_per_day,
                        );
                        Resources::new(cpu, mem)
                    })
                    .sum()
            })
            .collect();
    }

    // Initial placement: FFD on window-0 predictions.
    let demands0: BTreeMap<VmId, Resources> = groups
        .iter()
        .flat_map(|g| {
            let share = g.predicted[0] * (1.0 / g.vms.len() as f64);
            g.vms.iter().map(move |&v| (v, share))
        })
        .collect();
    let net_demands: BTreeMap<VmId, f64> = input.net_demands();
    let initial = ffd::first_fit_decreasing_with_network(
        &demands0,
        &net_demands,
        dc,
        &input.constraints,
        bounds,
        config.order,
    )?;

    // Group → host assignment mirrors the per-VM placement.
    let mut assignment: Vec<HostId> = groups
        .iter()
        .map(|g| {
            initial
                .host_of(g.vms[0])
                .expect("initial placement covers all VMs")
        })
        .collect();

    let mut placements = Vec::with_capacity(n_windows);
    let mut migrations = Vec::new();
    placements.push(placement_of(&groups, &assignment));

    let idle_w = dc.template().power.idle_w();
    let interval_saving_wh = idle_w * w as f64;

    for win in 1..n_windows {
        let demand_of = |gi: usize| groups[gi].predicted[win];
        // Current load per host.
        let mut loads: BTreeMap<HostId, Resources> = BTreeMap::new();
        for (gi, &h) in assignment.iter().enumerate() {
            *loads.entry(h).or_insert(Resources::ZERO) += demand_of(gi);
        }
        // Loads under the *previous* window's demand: consolidation
        // actions run at the interval boundary, so a migration executes
        // while its source still carries the old load — this is what the
        // pre-copy simulation must see.
        let mut exec_loads: BTreeMap<HostId, Resources> = BTreeMap::new();
        for (gi, &h) in assignment.iter().enumerate() {
            *exec_loads.entry(h).or_insert(Resources::ZERO) += groups[gi].predicted[win - 1];
        }
        let mut residents: BTreeMap<HostId, Vec<usize>> = BTreeMap::new();
        for (gi, &h) in assignment.iter().enumerate() {
            residents.entry(h).or_default().push(gi);
        }
        let mut net_loads: BTreeMap<HostId, f64> = BTreeMap::new();
        for (gi, &h) in assignment.iter().enumerate() {
            *net_loads.entry(h).or_insert(0.0) += groups[gi].net_mbps;
        }

        // Per-host migration-link busy time committed this interval; the
        // planner keeps every link under `migration_time_budget_frac` of
        // the window so the migration schedule stays feasible (§7).
        let mut link_busy: BTreeMap<HostId, f64> = BTreeMap::new();
        let budget_secs = w as f64 * 3600.0 * config.migration_time_budget_frac;

        // --- Phase 1: repair predicted overloads -----------------------
        let overloaded: Vec<HostId> = loads
            .iter()
            .filter(|(_, &l)| !l.fits_within(&effective))
            .map(|(&h, _)| h)
            .collect();
        for host in overloaded {
            loop {
                let load = loads.get(&host).copied().unwrap_or(Resources::ZERO);
                if load.fits_within(&effective) {
                    break;
                }
                // Cheapest movable group on this host.
                let Some(&gi) = residents.get(&host).and_then(|list| {
                    list.iter()
                        .filter(|&&gi| !groups[gi].pinned)
                        .min_by(|&&a, &&b| {
                            groups[a]
                                .mem_mb
                                .total_cmp(&groups[b].mem_mb)
                                .then_with(|| a.cmp(&b))
                        })
                }) else {
                    break; // only pinned groups left: contention stands
                };
                let dest = find_destination(
                    gi,
                    host,
                    &groups,
                    &assignment,
                    &loads,
                    &residents,
                    dc,
                    input,
                    &effective,
                    demand_of(gi),
                    &link_busy,
                    budget_secs,
                    &net_loads,
                    effective_net,
                )?;
                record_move(
                    win,
                    gi,
                    host,
                    dest,
                    &mut assignment,
                    &mut loads,
                    &mut residents,
                    &groups,
                    demand_of(gi),
                    capacity,
                    config,
                    &mut migrations,
                    &mut link_busy,
                    &exec_loads,
                    &mut net_loads,
                );
            }
        }

        // --- Phase 2: least-cost consolidation -------------------------
        // Ascending load: cheap-to-evacuate hosts first.
        let mut by_load: Vec<(HostId, Resources)> = loads
            .iter()
            .filter(|(_, &l)| l.cpu_rpe2 > 0.0 || l.mem_mb > 0.0)
            .map(|(&h, &l)| (h, l))
            .collect();
        by_load.sort_by(|a, b| {
            a.1.dominant_share(&effective)
                .total_cmp(&b.1.dominant_share(&effective))
                .then_with(|| a.0.cmp(&b.0))
        });
        for (host, load) in by_load {
            if load.dominant_share(&effective) > config.underload_threshold {
                // This host (and every later one in ascending-load order)
                // is too full to be worth evacuating.
                break;
            }
            let Some(members) = residents.get(&host).cloned() else {
                continue;
            };
            if members.is_empty() || members.iter().any(|&gi| groups[gi].pinned) {
                continue;
            }
            // Tentative: can every group move to another *active* host?
            let mut tentative_loads = loads.clone();
            tentative_loads.remove(&host);
            let mut tentative_net = net_loads.clone();
            tentative_net.remove(&host);
            let mut moves: Vec<(usize, HostId)> = Vec::new();
            let mut ok = true;
            let mut members_sorted = members.clone();
            members_sorted.sort_by(|&a, &b| {
                demand_of(b)
                    .dominant_share(&effective)
                    .total_cmp(&demand_of(a).dominant_share(&effective))
                    .then_with(|| a.cmp(&b))
            });
            for &gi in &members_sorted {
                let mut placed = false;
                // Most-loaded first keeps the footprint minimal.
                let mut candidates: Vec<(HostId, Resources)> = tentative_loads
                    .iter()
                    .filter(|(&h, &l)| h != host && (l.cpu_rpe2 > 0.0 || l.mem_mb > 0.0))
                    .map(|(&h, &l)| (h, l))
                    .collect();
                candidates.sort_by(|a, b| {
                    b.1.dominant_share(&effective)
                        .total_cmp(&a.1.dominant_share(&effective))
                        .then_with(|| a.0.cmp(&b.0))
                });
                for (cand, cand_load) in candidates {
                    if !(cand_load + demand_of(gi)).fits_within(&effective) {
                        continue;
                    }
                    if link_busy.get(&cand).copied().unwrap_or(0.0) > budget_secs {
                        continue; // this destination's link is saturated
                    }
                    if effective_net > 0.0
                        && tentative_net.get(&cand).copied().unwrap_or(0.0) + groups[gi].net_mbps
                            > effective_net
                    {
                        continue; // §3.1 link-bandwidth admission
                    }
                    let location = dc.host(cand).expect("provisioned").location();
                    let dest_residents = residents.get(&cand).map_or_else(Vec::new, |l| {
                        l.iter()
                            .flat_map(|&g| groups[g].vms.iter().copied())
                            .collect()
                    });
                    if !input
                        .constraints
                        .allows_group(&groups[gi].vms, location, &dest_residents)
                    {
                        continue;
                    }
                    *tentative_loads.entry(cand).or_insert(Resources::ZERO) += demand_of(gi);
                    *tentative_net.entry(cand).or_insert(0.0) += groups[gi].net_mbps;
                    moves.push((gi, cand));
                    placed = true;
                    break;
                }
                if !placed {
                    ok = false;
                    break;
                }
            }
            if !ok {
                continue;
            }
            // Least-cost comparison: migration cost vs. interval power
            // saving from switching this host off.
            let src_load = exec_loads.get(&host).copied().unwrap_or(Resources::ZERO);
            let src = HostLoad::new(
                src_load.cpu_rpe2 / capacity.cpu_rpe2,
                src_load.mem_mb / capacity.mem_mb,
            );
            let mut total_cost = 0.0;
            let mut projected: BTreeMap<HostId, f64> = BTreeMap::new();
            let mut within_budget = true;
            for &(gi, dest) in &moves {
                let g = &groups[gi];
                let profile = migration_profile(g, demand_of(gi));
                let report = config.cost_model.estimate(&config.precopy, &profile, src);
                total_cost += report.cost_wh;
                for endpoint in [host, dest] {
                    let busy = projected
                        .entry(endpoint)
                        .or_insert_with(|| link_busy.get(&endpoint).copied().unwrap_or(0.0));
                    *busy += report.outcome.total_secs;
                    if *busy > budget_secs {
                        within_budget = false;
                    }
                }
            }
            if !within_budget || total_cost >= interval_saving_wh {
                continue;
            }
            for (gi, dest) in moves {
                record_move(
                    win,
                    gi,
                    host,
                    dest,
                    &mut assignment,
                    &mut loads,
                    &mut residents,
                    &groups,
                    demand_of(gi),
                    capacity,
                    config,
                    &mut migrations,
                    &mut link_busy,
                    &exec_loads,
                    &mut net_loads,
                );
            }
            let _ = projected;
        }

        placements.push(placement_of(&groups, &assignment));
    }

    Ok(DynamicOutcome {
        placements,
        migrations,
        window_hours: w,
    })
}

/// Builds the migration profile of a group for one window.
fn migration_profile(group: &Group, demand: Resources) -> VmMigrationProfile {
    let activity = if group.hist_peak_cpu > 0.0 {
        (demand.cpu_rpe2 / group.hist_peak_cpu).clamp(0.0, 1.0)
    } else {
        0.0
    };
    // Live migration copies committed memory (demand), bounded below to
    // keep tiny VMs realistic.
    VmMigrationProfile::from_demand(demand.mem_mb.max(64.0), activity)
}

/// Finds a destination for an evicted group: most-loaded active host that
/// fits, else an empty provisioned host, else a newly provisioned one.
#[allow(clippy::too_many_arguments)]
fn find_destination(
    gi: usize,
    from: HostId,
    groups: &[Group],
    _assignment: &[HostId],
    loads: &BTreeMap<HostId, Resources>,
    residents: &BTreeMap<HostId, Vec<usize>>,
    dc: &mut DataCenter,
    input: &PlanningInput,
    effective: &Resources,
    demand: Resources,
    link_busy: &BTreeMap<HostId, f64>,
    budget_secs: f64,
    net_loads: &BTreeMap<HostId, f64>,
    effective_net: f64,
) -> Result<HostId, PackError> {
    fn allowed(
        host: HostId,
        dc: &DataCenter,
        residents: &BTreeMap<HostId, Vec<usize>>,
        groups: &[Group],
        gi: usize,
        input: &PlanningInput,
    ) -> bool {
        let location = dc.host(host).expect("provisioned").location();
        let dest_residents: Vec<VmId> = residents.get(&host).map_or_else(Vec::new, |l| {
            l.iter()
                .flat_map(|&g| groups[g].vms.iter().copied())
                .collect()
        });
        input
            .constraints
            .allows_group(&groups[gi].vms, location, &dest_residents)
    }
    // Active hosts, most-loaded first.
    let mut candidates: Vec<(HostId, Resources)> = loads
        .iter()
        .filter(|(&h, &l)| h != from && (l.cpu_rpe2 > 0.0 || l.mem_mb > 0.0))
        .map(|(&h, &l)| (h, l))
        .collect();
    candidates.sort_by(|a, b| {
        b.1.dominant_share(effective)
            .total_cmp(&a.1.dominant_share(effective))
            .then_with(|| a.0.cmp(&b.0))
    });
    for (host, load) in candidates {
        if link_busy.get(&host).copied().unwrap_or(0.0) > budget_secs {
            continue; // saturated migration link: spread arrivals
        }
        if effective_net > 0.0
            && net_loads.get(&host).copied().unwrap_or(0.0) + groups[gi].net_mbps > effective_net
        {
            continue; // §3.1 link-bandwidth admission
        }
        if (load + demand).fits_within(effective) && allowed(host, dc, residents, groups, gi, input)
        {
            return Ok(host);
        }
    }
    // Empty but provisioned hosts (switched off earlier).
    for idx in 0..dc.len() {
        let host = HostId(idx as u32);
        if host == from {
            continue;
        }
        let load = loads.get(&host).copied().unwrap_or(Resources::ZERO);
        if load.cpu_rpe2 == 0.0
            && load.mem_mb == 0.0
            && demand.fits_within(effective)
            && allowed(host, dc, residents, groups, gi, input)
        {
            return Ok(host);
        }
    }
    // Provision a new host.
    if !demand.fits_within(effective) {
        return Err(PackError::ItemTooLarge {
            vm: groups[gi].vms[0],
            demand,
            capacity: *effective,
        });
    }
    let mut attempts = 0;
    loop {
        let host = dc.provision();
        if allowed(host, dc, residents, groups, gi, input) {
            return Ok(host);
        }
        attempts += 1;
        if attempts > 64 {
            return Err(PackError::PinnedHostInfeasible {
                vm: groups[gi].vms[0],
                host,
            });
        }
    }
}

/// Applies a group move and records the migration events.
#[allow(clippy::too_many_arguments)]
fn record_move(
    win: usize,
    gi: usize,
    from: HostId,
    to: HostId,
    assignment: &mut [HostId],
    loads: &mut BTreeMap<HostId, Resources>,
    residents: &mut BTreeMap<HostId, Vec<usize>>,
    groups: &[Group],
    demand: Resources,
    capacity: Resources,
    config: &DynamicConfig,
    migrations: &mut Vec<MigrationEvent>,
    link_busy: &mut BTreeMap<HostId, f64>,
    exec_loads: &BTreeMap<HostId, Resources>,
    net_loads: &mut BTreeMap<HostId, f64>,
) {
    let src_load = exec_loads.get(&from).copied().unwrap_or(Resources::ZERO);
    let src = HostLoad::new(
        src_load.cpu_rpe2 / capacity.cpu_rpe2,
        src_load.mem_mb / capacity.mem_mb,
    );
    let group = &groups[gi];
    let profile = migration_profile(group, demand);
    let report = config.cost_model.estimate(&config.precopy, &profile, src);

    assignment[gi] = to;
    if let Some(l) = loads.get_mut(&from) {
        *l = l.saturating_sub(&demand);
        if l.cpu_rpe2 == 0.0 && l.mem_mb == 0.0 {
            loads.remove(&from);
        }
    }
    *loads.entry(to).or_insert(Resources::ZERO) += demand;
    if let Some(list) = residents.get_mut(&from) {
        list.retain(|&g| g != gi);
        if list.is_empty() {
            residents.remove(&from);
        }
    }
    residents.entry(to).or_default().push(gi);

    *link_busy.entry(from).or_insert(0.0) += report.outcome.total_secs;
    *link_busy.entry(to).or_insert(0.0) += report.outcome.total_secs;
    if let Some(n) = net_loads.get_mut(&from) {
        *n = (*n - group.net_mbps).max(0.0);
    }
    *net_loads.entry(to).or_insert(0.0) += group.net_mbps;

    let per_vm_mem = demand.mem_mb / group.vms.len() as f64;
    for &vm in &group.vms {
        migrations.push(MigrationEvent {
            interval: win,
            vm,
            from,
            to,
            mem_mb: per_vm_mem,
            duration_secs: report.outcome.total_secs,
            converged: report.outcome.converged,
            cost_wh: report.cost_wh / group.vms.len() as f64,
        });
    }
}

/// Materialises the per-VM placement from the group assignment.
fn placement_of(groups: &[Group], assignment: &[HostId]) -> Placement {
    groups
        .iter()
        .zip(assignment)
        .flat_map(|(g, &h)| g.vms.iter().map(move |&v| (v, h)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::{PlanningInput, VirtualizationModel};
    use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};

    fn small_input(dc: DataCenterId) -> PlanningInput {
        let w = GeneratorConfig::new(dc).scale(0.03).days(10).generate(3);
        PlanningInput::from_workload(&w, 7, VirtualizationModel::baseline())
    }

    fn run(input: &PlanningInput, config: &DynamicConfig) -> (DynamicOutcome, DataCenter) {
        let mut dc = DataCenter::hs23_default();
        let out = plan_dynamic(input, &mut dc, config).expect("plan");
        (out, dc)
    }

    #[test]
    fn produces_one_placement_per_window() {
        let input = small_input(DataCenterId::Banking);
        let (out, _) = run(&input, &DynamicConfig::baseline());
        // 3 eval days × 12 two-hour windows.
        assert_eq!(out.placements.len(), 36);
        assert_eq!(out.window_hours, 2);
    }

    #[test]
    fn every_vm_is_always_placed() {
        let input = small_input(DataCenterId::Banking);
        let (out, _) = run(&input, &DynamicConfig::baseline());
        for p in &out.placements {
            assert_eq!(p.len(), input.vms.len());
        }
    }

    #[test]
    fn placements_respect_predicted_bounds_under_oracle() {
        // With the oracle predictor, predicted = actual, so every host's
        // actual window-peak demand must fit the effective capacity.
        let input = small_input(DataCenterId::Airlines);
        let config = DynamicConfig {
            cpu_predictor: Predictor::Oracle,
            mem_predictor: Predictor::Oracle,
            ..DynamicConfig::baseline()
        };
        let (out, dc) = run(&input, &config);
        let capacity = dc.template().capacity();
        let effective = Resources::new(capacity.cpu_rpe2 * 0.8, capacity.mem_mb * 0.8);
        let eval = input.eval_range();
        for (win, p) in out.placements.iter().enumerate() {
            let lo = eval.start + win * 2;
            let hi = (lo + 2).min(eval.end);
            for host in p.active_hosts() {
                let demand = p.demand_on(host, |vm| {
                    let t = input.vm_trace(vm).unwrap();
                    t.size_over(lo..hi, SizingFunction::Max)
                });
                assert!(
                    demand.fits_within(&(effective * 1.0001)),
                    "window {win} host {host}: {demand} exceeds {effective}"
                );
            }
        }
    }

    #[test]
    fn migrations_are_recorded_with_costs() {
        let input = small_input(DataCenterId::Banking);
        let (out, _) = run(&input, &DynamicConfig::baseline());
        // A bursty workload over 36 windows must trigger some migrations.
        assert!(out.migration_count() > 0, "expected migrations");
        for m in &out.migrations {
            assert!(m.interval >= 1);
            assert_ne!(m.from, m.to);
            assert!(m.cost_wh >= 0.0);
            assert!(m.duration_secs > 0.0);
        }
    }

    #[test]
    fn consolidation_switches_hosts_off_at_night() {
        let input = small_input(DataCenterId::Banking);
        let (out, dc) = run(&input, &DynamicConfig::baseline());
        let counts = out.active_host_counts();
        let min = counts.iter().min().copied().unwrap();
        let max = counts.iter().max().copied().unwrap();
        assert!(min < max, "active hosts should vary: min {min}, max {max}");
        assert!(dc.len() >= max);
    }

    #[test]
    fn zero_reservation_uses_fewer_hosts() {
        let input = small_input(DataCenterId::Airlines);
        let reserved = DynamicConfig::baseline();
        let unreserved = DynamicConfig {
            reservation: ReservationPolicy::none(),
            ..DynamicConfig::baseline()
        };
        let mut dc_a = DataCenter::hs23_default();
        let mut dc_b = DataCenter::hs23_default();
        plan_dynamic(&input, &mut dc_a, &reserved).unwrap();
        plan_dynamic(&input, &mut dc_b, &unreserved).unwrap();
        assert!(
            dc_b.len() <= dc_a.len(),
            "no reservation should never need more hosts ({} vs {})",
            dc_b.len(),
            dc_a.len()
        );
    }

    #[test]
    fn free_migrations_consolidate_at_least_as_hard() {
        let input = small_input(DataCenterId::Beverage);
        let costly = DynamicConfig::baseline();
        let free = DynamicConfig {
            cost_model: MigrationCostModel::free(),
            ..DynamicConfig::baseline()
        };
        let (out_costly, _) = run(&input, &costly);
        let (out_free, _) = run(&input, &free);
        let avg = |o: &DynamicOutcome| {
            let c = o.active_host_counts();
            c.iter().sum::<usize>() as f64 / c.len() as f64
        };
        assert!(avg(&out_free) <= avg(&out_costly) + 0.5);
        assert!(out_free.migration_count() >= out_costly.migration_count());
    }

    #[test]
    fn four_hour_windows_are_supported() {
        let input = small_input(DataCenterId::Airlines);
        let config = DynamicConfig {
            window_hours: 4,
            ..DynamicConfig::baseline()
        };
        let (out, _) = run(&input, &config);
        assert_eq!(out.placements.len(), 18); // 72 h / 4 h
    }

    #[test]
    fn link_budget_bounds_consolidation_transfer_time() {
        // With the budget on, no host's recorded migration time within
        // one interval exceeds the budget by more than one repair move.
        let input = small_input(DataCenterId::Banking);
        let config = DynamicConfig::baseline();
        let (out, _) = run(&input, &config);
        let budget = config.window_hours as f64 * 3600.0 * config.migration_time_budget_frac;
        let mut busy: BTreeMap<(usize, HostId), f64> = BTreeMap::new();
        for m in &out.migrations {
            *busy.entry((m.interval, m.from)).or_insert(0.0) += m.duration_secs;
            *busy.entry((m.interval, m.to)).or_insert(0.0) += m.duration_secs;
        }
        let worst = busy.values().copied().fold(0.0, f64::max);
        // Allow one transfer of slack: the budget is checked before
        // committing each move.
        assert!(
            worst <= budget + 600.0,
            "worst per-interval link busy {worst}s exceeds budget {budget}s"
        );
    }

    #[test]
    fn tighter_migration_budget_reduces_churn() {
        let input = small_input(DataCenterId::Banking);
        let loose = DynamicConfig {
            migration_time_budget_frac: 0.5,
            ..DynamicConfig::baseline()
        };
        let tight = DynamicConfig {
            migration_time_budget_frac: 0.05,
            ..DynamicConfig::baseline()
        };
        let (out_loose, _) = run(&input, &loose);
        let (out_tight, _) = run(&input, &tight);
        assert!(
            out_tight.migration_count() <= out_loose.migration_count(),
            "tight {} vs loose {}",
            out_tight.migration_count(),
            out_loose.migration_count()
        );
    }

    #[test]
    fn network_admission_holds_every_interval() {
        // Every interval's per-host summed peak network demand stays
        // within the bounded link.
        let input = small_input(DataCenterId::Banking);
        let config = DynamicConfig::baseline();
        let mut dc = DataCenter::hs23_default();
        let out = plan_dynamic(&input, &mut dc, &config).expect("plan");
        let effective_net = dc.template().net_mbps * config.reservation.cpu_bound();
        for (win, p) in out.placements.iter().enumerate() {
            for host in p.active_hosts() {
                let net: f64 = p
                    .vms_on(host)
                    .iter()
                    .map(|&vm| input.vm_trace(vm).unwrap().net_peak_mbps)
                    .sum();
                assert!(
                    net <= effective_net * 1.0001,
                    "window {win} host {host}: net {net} Mbit/s over {effective_net}"
                );
            }
        }
    }

    #[test]
    fn higher_underload_threshold_consolidates_harder() {
        let input = small_input(DataCenterId::Banking);
        let shy = DynamicConfig {
            underload_threshold: 0.1,
            ..DynamicConfig::baseline()
        };
        let eager = DynamicConfig {
            underload_threshold: 0.9,
            ..DynamicConfig::baseline()
        };
        let (out_shy, _) = run(&input, &shy);
        let (out_eager, _) = run(&input, &eager);
        let mean = |o: &DynamicOutcome| {
            let c = o.active_host_counts();
            c.iter().sum::<usize>() as f64 / c.len() as f64
        };
        assert!(
            mean(&out_eager) <= mean(&out_shy) + 0.5,
            "eager {} vs shy {}",
            mean(&out_eager),
            mean(&out_shy)
        );
    }

    #[test]
    #[should_panic(expected = "window must divide a day")]
    fn irregular_window_rejected() {
        let _ = DynamicConfig {
            window_hours: 5,
            ..DynamicConfig::baseline()
        }
        .windows_per_day();
    }
}
