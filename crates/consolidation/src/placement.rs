//! Placement representation.
//!
//! A [`Placement`] is an assignment of VMs to hosts at one point in time.
//! Semi-static plans hold one placement for the whole study; the dynamic
//! plan holds one per consolidation interval.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use vmcw_cluster::datacenter::HostId;
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;

/// An assignment of VMs to physical hosts.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Placement {
    forward: BTreeMap<VmId, HostId>,
    reverse: BTreeMap<HostId, Vec<VmId>>,
}

impl Placement {
    /// An empty placement.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns (or re-assigns) a VM to a host. Returns the previous host,
    /// if any.
    pub fn assign(&mut self, vm: VmId, host: HostId) -> Option<HostId> {
        let prev = self.forward.insert(vm, host);
        if let Some(p) = prev {
            if p == host {
                return prev;
            }
            self.remove_from_reverse(vm, p);
        }
        self.reverse.entry(host).or_default().push(vm);
        prev
    }

    /// Removes a VM from the placement. Returns its host, if it was placed.
    pub fn remove(&mut self, vm: VmId) -> Option<HostId> {
        let host = self.forward.remove(&vm)?;
        self.remove_from_reverse(vm, host);
        Some(host)
    }

    fn remove_from_reverse(&mut self, vm: VmId, host: HostId) {
        if let Some(list) = self.reverse.get_mut(&host) {
            list.retain(|&v| v != vm);
            if list.is_empty() {
                self.reverse.remove(&host);
            }
        }
    }

    /// The host a VM is placed on.
    #[must_use]
    pub fn host_of(&self, vm: VmId) -> Option<HostId> {
        self.forward.get(&vm).copied()
    }

    /// The VMs on a host (empty slice if none).
    #[must_use]
    pub fn vms_on(&self, host: HostId) -> &[VmId] {
        self.reverse.get(&host).map_or(&[], Vec::as_slice)
    }

    /// Hosts with at least one VM, ascending by id.
    #[must_use]
    pub fn active_hosts(&self) -> Vec<HostId> {
        self.reverse.keys().copied().collect()
    }

    /// Iterates active hosts and their resident VMs in ascending host
    /// order, without allocating — the replay engine walks this every
    /// emulated hour, so the `Vec` that [`Placement::active_hosts`]
    /// builds is pure churn there.
    pub fn active(&self) -> impl Iterator<Item = (HostId, &[VmId])> + '_ {
        self.reverse.iter().map(|(&h, vms)| (h, vms.as_slice()))
    }

    /// Number of hosts with at least one VM.
    #[must_use]
    pub fn active_host_count(&self) -> usize {
        self.reverse.len()
    }

    /// Number of placed VMs.
    #[must_use]
    pub fn len(&self) -> usize {
        self.forward.len()
    }

    /// Whether no VM is placed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.forward.is_empty()
    }

    /// Iterates over `(vm, host)` pairs in VM-id order.
    pub fn iter(&self) -> impl Iterator<Item = (VmId, HostId)> + '_ {
        self.forward.iter().map(|(&v, &h)| (v, h))
    }

    /// The forward map (for constraint validation).
    #[must_use]
    pub fn as_map(&self) -> std::collections::HashMap<VmId, HostId> {
        self.forward.iter().map(|(&v, &h)| (v, h)).collect()
    }

    /// Total demand on a host under a per-VM demand function.
    #[must_use]
    pub fn demand_on<F>(&self, host: HostId, mut demand_of: F) -> Resources
    where
        F: FnMut(VmId) -> Resources,
    {
        self.vms_on(host).iter().map(|&v| demand_of(v)).sum()
    }

    /// The set of VMs whose host differs between `self` (earlier) and
    /// `next` (later) — i.e. the live migrations between two intervals.
    /// VMs present in only one placement are ignored.
    #[must_use]
    pub fn moved_vms(&self, next: &Placement) -> Vec<(VmId, HostId, HostId)> {
        self.forward
            .iter()
            .filter_map(|(&vm, &from)| {
                next.host_of(vm)
                    .and_then(|to| (to != from).then_some((vm, from, to)))
            })
            .collect()
    }
}

impl FromIterator<(VmId, HostId)> for Placement {
    fn from_iter<T: IntoIterator<Item = (VmId, HostId)>>(iter: T) -> Self {
        let mut p = Placement::new();
        for (vm, host) in iter {
            p.assign(vm, host);
        }
        p
    }
}

/// Errors produced by the packing algorithms.
#[derive(Debug, Clone, PartialEq)]
pub enum PackError {
    /// A single item's demand exceeds an empty host's effective capacity;
    /// no placement can ever satisfy it.
    ItemTooLarge {
        /// First VM of the offending colocation group.
        vm: VmId,
        /// The group's demand.
        demand: Resources,
        /// The effective (bounded) host capacity.
        capacity: Resources,
    },
    /// A VM is pinned to a host that does not exist or cannot hold it.
    PinnedHostInfeasible {
        /// The pinned VM.
        vm: VmId,
        /// The host it is pinned to.
        host: HostId,
    },
    /// Anti-colocated VMs inside one colocation group — unsatisfiable.
    InconsistentConstraints {
        /// A VM of the offending group.
        vm: VmId,
    },
}

impl fmt::Display for PackError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PackError::ItemTooLarge {
                vm,
                demand,
                capacity,
            } => write!(
                f,
                "{vm} demands {demand}, more than an empty host's effective capacity {capacity}"
            ),
            PackError::PinnedHostInfeasible { vm, host } => {
                write!(f, "{vm} is pinned to {host} which is unavailable or full")
            }
            PackError::InconsistentConstraints { vm } => {
                write!(
                    f,
                    "colocation group of {vm} contains anti-colocated members"
                )
            }
        }
    }
}

impl Error for PackError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(n: u32) -> VmId {
        VmId(n)
    }
    fn host(n: u32) -> HostId {
        HostId(n)
    }

    #[test]
    fn assign_and_lookup() {
        let mut p = Placement::new();
        assert_eq!(p.assign(vm(1), host(0)), None);
        assert_eq!(p.assign(vm(2), host(0)), None);
        assert_eq!(p.host_of(vm(1)), Some(host(0)));
        assert_eq!(p.vms_on(host(0)), &[vm(1), vm(2)]);
        assert_eq!(p.active_host_count(), 1);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn reassign_moves_between_hosts() {
        let mut p = Placement::new();
        p.assign(vm(1), host(0));
        assert_eq!(p.assign(vm(1), host(1)), Some(host(0)));
        assert_eq!(p.vms_on(host(0)), &[] as &[VmId]);
        assert_eq!(p.vms_on(host(1)), &[vm(1)]);
        assert_eq!(p.active_hosts(), vec![host(1)]);
    }

    #[test]
    fn reassign_to_same_host_is_stable() {
        let mut p = Placement::new();
        p.assign(vm(1), host(0));
        assert_eq!(p.assign(vm(1), host(0)), Some(host(0)));
        assert_eq!(p.vms_on(host(0)), &[vm(1)]);
    }

    #[test]
    fn remove_clears_both_maps() {
        let mut p = Placement::new();
        p.assign(vm(1), host(0));
        assert_eq!(p.remove(vm(1)), Some(host(0)));
        assert_eq!(p.remove(vm(1)), None);
        assert!(p.is_empty());
        assert_eq!(p.active_host_count(), 0);
    }

    #[test]
    fn demand_accumulates_per_host() {
        let p: Placement = [(vm(1), host(0)), (vm(2), host(0)), (vm(3), host(1))]
            .into_iter()
            .collect();
        let d = p.demand_on(host(0), |v| Resources::new(f64::from(v.0), 10.0));
        assert_eq!(d, Resources::new(3.0, 20.0));
    }

    #[test]
    fn moved_vms_detects_migrations() {
        let a: Placement = [(vm(1), host(0)), (vm(2), host(0))].into_iter().collect();
        let b: Placement = [(vm(1), host(1)), (vm(2), host(0))].into_iter().collect();
        assert_eq!(a.moved_vms(&b), vec![(vm(1), host(0), host(1))]);
        assert!(a.moved_vms(&a).is_empty());
    }

    #[test]
    fn moved_vms_ignores_departed() {
        let a: Placement = [(vm(1), host(0))].into_iter().collect();
        let b = Placement::new();
        assert!(a.moved_vms(&b).is_empty());
    }

    #[test]
    fn pack_error_messages() {
        let e = PackError::ItemTooLarge {
            vm: vm(9),
            demand: Resources::new(10.0, 10.0),
            capacity: Resources::new(1.0, 1.0),
        };
        assert!(e.to_string().contains("vm-9"));
        let e = PackError::PinnedHostInfeasible {
            vm: vm(1),
            host: host(2),
        };
        assert!(e.to_string().contains("host-2"));
    }
}
