//! Best-Fit-Decreasing bin packing.
//!
//! A standard baseline next to the paper's FFD: items still pack in
//! decreasing order, but each goes to the *fullest* feasible host rather
//! than the first one. BFD trades a denser final packing on skewed item
//! distributions for more comparisons; on the 2-D enterprise mixes of the
//! paper the two usually land within a host of each other, which is why
//! the paper standardises on FFD — the ablation benches quantify this.

use crate::ffd::{attach_network, build_items, pack, BinPackModel, FfdModel, OrderKey, PackItem};
use crate::placement::{PackError, Placement};
use std::collections::BTreeMap;
use vmcw_cluster::constraints::ConstraintSet;
use vmcw_cluster::datacenter::DataCenter;
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;

/// Best-fit model: identical accounting to [`FfdModel`], with a
/// preference for the fullest feasible host.
#[derive(Debug, Clone)]
pub struct BfdModel {
    inner: FfdModel,
}

impl BfdModel {
    /// Creates the model (see [`FfdModel::new`]).
    #[must_use]
    pub fn new(effective_capacity: Resources, order: OrderKey, existing_hosts: usize) -> Self {
        Self {
            inner: FfdModel::new(effective_capacity, order, existing_hosts),
        }
    }

    /// Enables the host-link bandwidth constraint (see
    /// [`FfdModel::with_network_capacity`]).
    #[must_use]
    pub fn with_network_capacity(mut self, net_mbps: f64) -> Self {
        self.inner = self.inner.with_network_capacity(net_mbps);
        self
    }
}

impl BinPackModel for BfdModel {
    type Item = PackItem;

    fn vms<'a>(&self, item: &'a PackItem) -> &'a [VmId] {
        self.inner.vms(item)
    }

    fn sort_key(&self, item: &PackItem) -> f64 {
        self.inner.sort_key(item)
    }

    fn open_host(&mut self) {
        self.inner.open_host();
    }

    fn host_count(&self) -> usize {
        self.inner.host_count()
    }

    fn fits(&self, host: usize, item: &PackItem) -> bool {
        self.inner.fits(host, item)
    }

    fn fits_empty(&self, item: &PackItem) -> bool {
        self.inner.fits_empty(item)
    }

    fn preference(&self, host: usize, _item: &PackItem) -> f64 {
        // Fullest-first: the host's dominant share *before* placing.
        self.inner
            .load(host)
            .dominant_share(&self.inner.effective_capacity())
    }

    fn place(&mut self, host: usize, item: &PackItem) {
        self.inner.place(host, item);
    }

    fn demand(&self, item: &PackItem) -> Resources {
        self.inner.demand(item)
    }

    fn effective_capacity(&self) -> Resources {
        self.inner.effective_capacity()
    }
}

/// Packs per-VM scalar demands with Best-Fit-Decreasing (the counterpart
/// of [`crate::ffd::first_fit_decreasing`]).
///
/// # Errors
///
/// Same as the FFD variant.
pub fn best_fit_decreasing(
    demands: &BTreeMap<VmId, Resources>,
    dc: &mut DataCenter,
    constraints: &ConstraintSet,
    bounds: (f64, f64),
    order: OrderKey,
) -> Result<Placement, PackError> {
    let capacity = dc.template().capacity();
    let effective = Resources::new(capacity.cpu_rpe2 * bounds.0, capacity.mem_mb * bounds.1);
    let items = build_items(demands, constraints)?;
    let mut model = BfdModel::new(effective, order, dc.len());
    pack(&mut model, items, dc, constraints)
}

/// [`best_fit_decreasing`] with the §3.1 host-link bandwidth constraint.
///
/// # Errors
///
/// See [`best_fit_decreasing`].
pub fn best_fit_decreasing_with_network(
    demands: &BTreeMap<VmId, Resources>,
    net: &BTreeMap<VmId, f64>,
    dc: &mut DataCenter,
    constraints: &ConstraintSet,
    bounds: (f64, f64),
    order: OrderKey,
) -> Result<Placement, PackError> {
    let capacity = dc.template().capacity();
    let effective = Resources::new(capacity.cpu_rpe2 * bounds.0, capacity.mem_mb * bounds.1);
    let mut items = build_items(demands, constraints)?;
    attach_network(&mut items, net);
    let mut model =
        BfdModel::new(effective, order, dc.len()).with_network_capacity(dc.template().net_mbps);
    pack(&mut model, items, dc, constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ffd::first_fit_decreasing;
    use vmcw_cluster::power::PowerModel;
    use vmcw_cluster::server::ServerModel;

    fn dc() -> DataCenter {
        DataCenter::new(
            ServerModel {
                name: "test".into(),
                cpu_rpe2: 100.0,
                mem_mb: 1000.0,
                net_mbps: 1000.0,
                power: PowerModel::new(100.0, 200.0),
            },
            4,
            2,
        )
    }

    fn demands(list: &[(u32, f64, f64)]) -> BTreeMap<VmId, Resources> {
        list.iter()
            .map(|&(id, c, m)| (VmId(id), Resources::new(c, m)))
            .collect()
    }

    #[test]
    fn bfd_prefers_the_fullest_host() {
        // Pack 70 then 20: FFD and BFD agree so far (host 0: 90). Then 25
        // opens host 1 (75). A following 10 fits both; best-fit puts it on
        // host 0 (90 full) — first-fit also picks host 0 here, so craft a
        // case where they differ: after 60 and 50 on separate hosts, a 30
        // fits only host 1 (50+30=80): both agree. Use 35: fits host 1
        // only. Use 25: fits host 0 (60→85) and host 1 (50→75); best-fit
        // picks host 0... as does first-fit. The observable difference
        // needs the *fuller* host to have the *higher id*:
        // items 60, 50 → host0:60, host1:50? No: FFD places 50 on host 0?
        // 60+50 > 100 → host 1. Then item 45: fits host 1 (95) not host 0
        // (105): both agree. Item 38: fits host1 (88) and host0 (98)?
        // 60+38=98 ✓ fits. first-fit → host 0 (98). best-fit → host 0 too
        // (60 > 50). Flip: make host 1 fuller: 45, 55 → FFD sorts desc:
        // 55 → host0, 45 → host0? 55+45=100 ✓ same host. Use 55, 48, then
        // 46: 55→h0, 48→h0 (103 ✗) → h1, 46→ h0? 101 ✗ → h1 (94) ✓.
        // Now 5: first-fit → h0 (60); best-fit → h1 (94, fuller).
        let d = demands(&[
            (0, 55.0, 1.0),
            (1, 48.0, 1.0),
            (2, 46.0, 1.0),
            (3, 5.0, 1.0),
        ]);
        let mut dc_ffd = dc();
        let mut dc_bfd = dc();
        let cs = ConstraintSet::new();
        let ffd = first_fit_decreasing(&d, &mut dc_ffd, &cs, (1.0, 1.0), OrderKey::Cpu).unwrap();
        let bfd = best_fit_decreasing(&d, &mut dc_bfd, &cs, (1.0, 1.0), OrderKey::Cpu).unwrap();
        assert_eq!(
            ffd.host_of(VmId(3)).unwrap().0,
            0,
            "first-fit takes the first hole"
        );
        assert_eq!(
            bfd.host_of(VmId(3)).unwrap().0,
            1,
            "best-fit takes the snuggest hole"
        );
    }

    #[test]
    fn bfd_never_overloads() {
        let d = demands(
            &(0..30)
                .map(|i| (i, 7.0 + f64::from(i % 5), 90.0))
                .collect::<Vec<_>>(),
        );
        let mut dc = dc();
        let p = best_fit_decreasing(
            &d,
            &mut dc,
            &ConstraintSet::new(),
            (0.8, 0.8),
            OrderKey::Dominant,
        )
        .unwrap();
        for host in p.active_hosts() {
            let load = p.demand_on(host, |vm| d[&vm]);
            assert!(load.fits_within(&Resources::new(80.0, 800.0)));
        }
        assert_eq!(p.len(), 30);
    }

    #[test]
    fn bfd_matches_or_beats_ffd_on_host_count_for_1d_instances() {
        // On classical 1-D instances BFD ≤ FFD + small constant; check a
        // handful of deterministic instances.
        for seed in 0..5u32 {
            let items: Vec<(u32, f64, f64)> = (0..40)
                .map(|i| {
                    let size = 10.0 + f64::from((i * 7 + seed * 13) % 45);
                    (i, size, 1.0)
                })
                .collect();
            let d = demands(&items);
            let cs = ConstraintSet::new();
            let mut dc_a = dc();
            let mut dc_b = dc();
            let ffd = first_fit_decreasing(&d, &mut dc_a, &cs, (1.0, 1.0), OrderKey::Cpu).unwrap();
            let bfd = best_fit_decreasing(&d, &mut dc_b, &cs, (1.0, 1.0), OrderKey::Cpu).unwrap();
            assert!(
                bfd.active_host_count() <= ffd.active_host_count() + 1,
                "seed {seed}: bfd {} vs ffd {}",
                bfd.active_host_count(),
                ffd.active_host_count()
            );
        }
    }

    #[test]
    fn bfd_respects_constraints() {
        use vmcw_cluster::constraints::Constraint;
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::AntiColocate(VmId(0), VmId(1))).unwrap();
        let d = demands(&[(0, 10.0, 10.0), (1, 10.0, 10.0)]);
        let mut dc = dc();
        let p = best_fit_decreasing(&d, &mut dc, &cs, (1.0, 1.0), OrderKey::Dominant).unwrap();
        assert_ne!(p.host_of(VmId(0)), p.host_of(VmId(1)));
    }
}
