//! Planning inputs.
//!
//! A consolidation study takes, per VM, an hourly demand trace split into a
//! *planning history* (the warehouse's "most recent 30 days", visible to
//! the planners) and an *evaluation window* (the 14 days the emulator
//! replays, Table 3). Demands are absolute: CPU in RPE2, memory in MB.

use crate::sizing::SizingFunction;
use serde::{Deserialize, Serialize};
use vmcw_cluster::constraints::ConstraintSet;
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::{Vm, VmId};
use vmcw_trace::datacenters::GeneratedWorkload;
use vmcw_trace::metrics::Metric;
use vmcw_trace::series::TimeSeries;
use vmcw_trace::warehouse::{DataWarehouse, SourceId};
use vmcw_trace::workload::HOURS_PER_DAY;

/// Overheads of running a source server as a virtual machine.
///
/// §5.2: "The emulator captures the impact of virtualization overhead as
/// well as memory savings due to deduplication in a configurable fashion."
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VirtualizationModel {
    /// Relative CPU overhead of the hypervisor (0.1 = +10%).
    pub cpu_overhead_frac: f64,
    /// Fixed per-VM memory overhead in MB (shadow page tables, device
    /// emulation, monitor).
    pub mem_overhead_mb: f64,
    /// Fraction of co-located VMs' memory recovered by page deduplication
    /// (applied at the host level by the emulator; 0 disables it).
    pub dedup_savings_frac: f64,
}

impl VirtualizationModel {
    /// The baseline used in the paper-scale studies: 10% CPU overhead,
    /// 192 MB per-VM memory overhead, no deduplication credit (monitored
    /// Windows memory is real demand, §3.2).
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            cpu_overhead_frac: 0.10,
            mem_overhead_mb: 192.0,
            dedup_savings_frac: 0.0,
        }
    }

    /// No overheads at all — useful for algorithm-level unit tests.
    #[must_use]
    pub fn none() -> Self {
        Self {
            cpu_overhead_frac: 0.0,
            mem_overhead_mb: 0.0,
            dedup_savings_frac: 0.0,
        }
    }
}

impl Default for VirtualizationModel {
    fn default() -> Self {
        Self::baseline()
    }
}

/// Hardware specification of a monitored source server, as recorded in a
/// configuration-management database. Pairs with the usage data in the
/// [`DataWarehouse`] to build a [`PlanningInput`]
/// (§3.1: "VM consolidation is performed based on resource usage and
/// configuration data").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceSpec {
    /// Server name.
    pub name: String,
    /// CPU capacity in RPE2.
    pub cpu_capacity_rpe2: f64,
    /// Installed memory in MB.
    pub mem_capacity_mb: f64,
    /// Peak network throughput driven by this server, Mbit/s.
    pub net_peak_mbps: f64,
}

/// A VM together with its absolute demand traces.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct VmTrace {
    /// The VM's static metadata.
    pub vm: Vm,
    /// Hourly CPU demand in RPE2 units (virtualisation overhead included).
    pub cpu_rpe2: TimeSeries,
    /// Hourly committed memory in MB (virtualisation overhead included).
    pub mem_mb: TimeSeries,
    /// Peak network throughput in Mbit/s — used as a host-link admission
    /// constraint (§3.1), not as an optimised resource.
    pub net_peak_mbps: f64,
}

impl VmTrace {
    /// Demand vector at hour `h` (zero past the end of the trace).
    #[must_use]
    pub fn demand_at(&self, h: usize) -> Resources {
        Resources::new(
            self.cpu_rpe2.get(h).unwrap_or(0.0),
            self.mem_mb.get(h).unwrap_or(0.0),
        )
    }

    /// Sized demand over an hour range.
    #[must_use]
    pub fn size_over(&self, range: std::ops::Range<usize>, sizing: SizingFunction) -> Resources {
        Resources::new(
            sizing.size(&self.cpu_rpe2.values()[range.clone()]),
            sizing.size(&self.mem_mb.values()[range]),
        )
    }
}

/// A complete planning input.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanningInput {
    /// VM demand traces (history ++ evaluation, hourly).
    pub vms: Vec<VmTrace>,
    /// Length of the planning-history prefix, in hours.
    pub history_hours: usize,
    /// Deployment constraints (§2.2.4).
    pub constraints: ConstraintSet,
}

impl PlanningInput {
    /// Builds the input from a generated data-center workload: each
    /// non-virtualised source server becomes one VM; demands gain the
    /// virtualisation overheads; the first `history_days` form the
    /// planning history.
    ///
    /// # Panics
    ///
    /// Panics if the workload is shorter than `history_days`.
    #[must_use]
    pub fn from_workload(
        workload: &GeneratedWorkload,
        history_days: usize,
        virt: VirtualizationModel,
    ) -> Self {
        assert!(
            workload.days >= history_days,
            "workload covers {} days, history needs {history_days}",
            workload.days
        );
        let vms = workload
            .servers
            .iter()
            .map(|s| {
                let cpu_rpe2 = s.cpu_demand_rpe2().scale(1.0 + virt.cpu_overhead_frac);
                let mem_values: Vec<f64> = s
                    .mem_used_mb
                    .iter()
                    .map(|m| m + virt.mem_overhead_mb)
                    .collect();
                VmTrace {
                    vm: Vm::new(
                        VmId(s.id.0),
                        s.name.clone(),
                        // VMs are configured at the source server's
                        // installed memory.
                        s.mem_capacity_mb,
                    ),
                    cpu_rpe2,
                    mem_mb: TimeSeries::new(s.mem_used_mb.step(), mem_values),
                    net_peak_mbps: s.net_peak_mbps,
                }
            })
            .collect();
        Self {
            vms,
            history_hours: history_days * HOURS_PER_DAY,
            constraints: ConstraintSet::new(),
        }
    }

    /// Builds the input from the monitoring warehouse plus configuration
    /// data — the paper's production flow: "We get monitored data for
    /// consolidation planning from the data warehouse hosted by the
    /// central server" (§3.1). CPU is read from
    /// [`Metric::TotalProcessorTime`] (percent) and memory from
    /// [`Metric::MemoryCommittedMb`]. Sources missing either metric or a
    /// spec are skipped, mirroring the paper's "we filter out any servers
    /// for which monitoring data or the specifications of the server is
    /// not available".
    #[must_use]
    pub fn from_warehouse(
        warehouse: &DataWarehouse,
        specs: &std::collections::BTreeMap<SourceId, SourceSpec>,
        history_hours: usize,
        virt: VirtualizationModel,
    ) -> Self {
        let mut vms = Vec::new();
        for source in warehouse.sources() {
            let Some(spec) = specs.get(&source) else {
                continue;
            };
            let Some(cpu_pct) = warehouse.hourly_series(source, Metric::TotalProcessorTime) else {
                continue;
            };
            let Some(mem) = warehouse.hourly_series(source, Metric::MemoryCommittedMb) else {
                continue;
            };
            let cpu_rpe2 = cpu_pct
                .scale(spec.cpu_capacity_rpe2 / 100.0)
                .scale(1.0 + virt.cpu_overhead_frac);
            let mem_values: Vec<f64> = mem.iter().map(|m| m + virt.mem_overhead_mb).collect();
            vms.push(VmTrace {
                vm: Vm::new(VmId(source.0), spec.name.clone(), spec.mem_capacity_mb),
                cpu_rpe2,
                mem_mb: TimeSeries::new(mem.step(), mem_values),
                net_peak_mbps: spec.net_peak_mbps,
            });
        }
        Self {
            vms,
            history_hours,
            constraints: ConstraintSet::new(),
        }
    }

    /// Attaches deployment constraints.
    #[must_use]
    pub fn with_constraints(mut self, constraints: ConstraintSet) -> Self {
        self.constraints = constraints;
        self
    }

    /// Total trace length in hours.
    #[must_use]
    pub fn total_hours(&self) -> usize {
        self.vms.first().map_or(0, |v| v.cpu_rpe2.len())
    }

    /// Evaluation-window length in hours.
    #[must_use]
    pub fn eval_hours(&self) -> usize {
        self.total_hours().saturating_sub(self.history_hours)
    }

    /// The history range (what planners may look at).
    #[must_use]
    pub fn history_range(&self) -> std::ops::Range<usize> {
        0..self.history_hours.min(self.total_hours())
    }

    /// The evaluation range (what the emulator replays).
    #[must_use]
    pub fn eval_range(&self) -> std::ops::Range<usize> {
        self.history_hours.min(self.total_hours())..self.total_hours()
    }

    /// Looks up a VM trace by id.
    #[must_use]
    pub fn vm_trace(&self, id: VmId) -> Option<&VmTrace> {
        self.vms.iter().find(|t| t.vm.id == id)
    }

    /// All VM ids, in input order.
    #[must_use]
    pub fn vm_ids(&self) -> Vec<VmId> {
        self.vms.iter().map(|t| t.vm.id).collect()
    }

    /// Per-VM peak network demand, Mbit/s.
    #[must_use]
    pub fn net_demands(&self) -> std::collections::BTreeMap<VmId, f64> {
        self.vms
            .iter()
            .map(|t| (t.vm.id, t.net_peak_mbps))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};

    fn tiny_input() -> PlanningInput {
        let w = GeneratorConfig::new(DataCenterId::Airlines)
            .scale(0.01)
            .days(3)
            .generate(5);
        PlanningInput::from_workload(&w, 2, VirtualizationModel::baseline())
    }

    #[test]
    fn ranges_partition_the_trace() {
        let input = tiny_input();
        assert_eq!(input.total_hours(), 72);
        assert_eq!(input.history_range(), 0..48);
        assert_eq!(input.eval_range(), 48..72);
        assert_eq!(input.eval_hours(), 24);
    }

    #[test]
    fn virtualization_overhead_is_applied() {
        let w = GeneratorConfig::new(DataCenterId::Airlines)
            .scale(0.01)
            .days(2)
            .generate(5);
        let bare = PlanningInput::from_workload(&w, 1, VirtualizationModel::none());
        let virt = PlanningInput::from_workload(&w, 1, VirtualizationModel::baseline());
        let b = bare.vms[0].demand_at(0);
        let v = virt.vms[0].demand_at(0);
        assert!((v.cpu_rpe2 - b.cpu_rpe2 * 1.10).abs() < 1e-9);
        assert!((v.mem_mb - (b.mem_mb + 192.0)).abs() < 1e-9);
    }

    #[test]
    fn demand_past_trace_end_is_zero() {
        let input = tiny_input();
        assert_eq!(input.vms[0].demand_at(10_000), Resources::ZERO);
    }

    #[test]
    fn size_over_uses_sizing_function() {
        let input = tiny_input();
        let t = &input.vms[0];
        let max = t.size_over(0..48, SizingFunction::Max);
        let mean = t.size_over(0..48, SizingFunction::Mean);
        assert!(max.cpu_rpe2 >= mean.cpu_rpe2);
        assert!(max.mem_mb >= mean.mem_mb);
    }

    #[test]
    fn vm_lookup() {
        let input = tiny_input();
        let first = input.vm_ids()[0];
        assert!(input.vm_trace(first).is_some());
        assert!(input.vm_trace(VmId(9999)).is_none());
    }

    #[test]
    fn from_warehouse_reads_cpu_and_memory() {
        use vmcw_trace::metrics::Sample;
        let mut wh = DataWarehouse::default();
        let src = SourceId(0);
        for minute in 0..2880 {
            // 50% CPU, 2 GB committed, flat for two days.
            wh.ingest(src, Metric::TotalProcessorTime, Sample::new(minute, 50.0));
            wh.ingest(src, Metric::MemoryCommittedMb, Sample::new(minute, 2048.0));
        }
        // A second source with no memory metric must be skipped.
        wh.ingest(
            SourceId(1),
            Metric::TotalProcessorTime,
            Sample::new(0, 10.0),
        );
        let mut specs = std::collections::BTreeMap::new();
        specs.insert(
            src,
            SourceSpec {
                name: "db-01".into(),
                cpu_capacity_rpe2: 4000.0,
                mem_capacity_mb: 8192.0,
                net_peak_mbps: 120.0,
            },
        );
        specs.insert(
            SourceId(1),
            SourceSpec {
                name: "no-mem".into(),
                cpu_capacity_rpe2: 4000.0,
                mem_capacity_mb: 8192.0,
                net_peak_mbps: 10.0,
            },
        );
        let input = PlanningInput::from_warehouse(&wh, &specs, 24, VirtualizationModel::none());
        assert_eq!(input.vms.len(), 1, "source without memory metric skipped");
        let t = &input.vms[0];
        assert_eq!(t.vm.name, "db-01");
        assert_eq!(t.cpu_rpe2.len(), 48);
        assert!(
            (t.cpu_rpe2.get(0).unwrap() - 2000.0).abs() < 1e-6,
            "50% of 4000 RPE2"
        );
        assert!((t.mem_mb.get(0).unwrap() - 2048.0).abs() < 1e-6);
        assert_eq!(input.history_range(), 0..24);
        // A source missing from the spec map is also skipped.
        let empty_specs = std::collections::BTreeMap::new();
        let none =
            PlanningInput::from_warehouse(&wh, &empty_specs, 24, VirtualizationModel::none());
        assert!(none.vms.is_empty());
    }

    #[test]
    #[should_panic(expected = "history needs")]
    fn history_longer_than_trace_rejected() {
        let w = GeneratorConfig::new(DataCenterId::Airlines)
            .scale(0.01)
            .days(2)
            .generate(5);
        let _ = PlanningInput::from_workload(&w, 5, VirtualizationModel::none());
    }
}
