//! Planner facade: one entry point per consolidation variant (§5.1).

use crate::bfd::best_fit_decreasing_with_network;
use crate::correlation::{correlation_pack, CorrelationConfig};
use crate::dynamic::{plan_dynamic, DynamicConfig, MigrationEvent};
use crate::ffd::{first_fit_decreasing_with_network, OrderKey};
use crate::input::PlanningInput;
use crate::pcp::{pcp_pack, PcpConfig};
use crate::placement::{PackError, Placement};
use crate::sizing::SizingFunction;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use vmcw_cluster::datacenter::DataCenter;
use vmcw_cluster::resources::Resources;
use vmcw_cluster::server::ServerModel;
use vmcw_cluster::vm::VmId;

/// The consolidation variants compared in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PlannerKind {
    /// One-time placement sized at lifetime peak (§2.2.1).
    Static,
    /// Vanilla semi-static: history peak + FFD (§2.2.2, §5.1).
    SemiStatic,
    /// Stochastic semi-static: PCP variant, body = P90, tail = max (§5.1).
    Stochastic,
    /// Cost-aware dynamic consolidation, 2-hour intervals (§2.2.3, §5.1).
    Dynamic,
}

impl PlannerKind {
    /// The three planners of the paper's evaluation (Fig 7 onwards).
    pub const EVALUATED: [PlannerKind; 3] = [
        PlannerKind::SemiStatic,
        PlannerKind::Stochastic,
        PlannerKind::Dynamic,
    ];

    /// Display label matching the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PlannerKind::Static => "Static",
            PlannerKind::SemiStatic => "Semi-Static",
            PlannerKind::Stochastic => "Stochastic",
            PlannerKind::Dynamic => "Dynamic",
        }
    }

    /// Inverse of [`label`](Self::label), for decoding journals and CLI
    /// arguments.
    #[must_use]
    pub fn parse(label: &str) -> Option<Self> {
        [
            PlannerKind::Static,
            PlannerKind::SemiStatic,
            PlannerKind::Stochastic,
            PlannerKind::Dynamic,
        ]
        .into_iter()
        .find(|k| k.label() == label)
    }
}

impl fmt::Display for PlannerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The placements of a plan: fixed for (semi-)static variants, one per
/// consolidation interval for the dynamic variant.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PlanPlacements {
    /// A single placement for the whole study.
    Fixed(Placement),
    /// One placement per consolidation interval.
    PerInterval {
        /// The per-interval placements.
        placements: Vec<Placement>,
        /// Interval length in hours.
        window_hours: usize,
    },
}

impl PlanPlacements {
    /// The placement in effect at evaluation hour `h`.
    ///
    /// Returns the last placement for hours beyond the plan's horizon.
    #[must_use]
    pub fn at_hour(&self, h: usize) -> &Placement {
        match self {
            PlanPlacements::Fixed(p) => p,
            PlanPlacements::PerInterval {
                placements,
                window_hours,
            } => {
                let idx = (h / window_hours).min(placements.len().saturating_sub(1));
                &placements[idx]
            }
        }
    }

    /// Number of distinct intervals (1 for fixed plans).
    #[must_use]
    pub fn interval_count(&self) -> usize {
        match self {
            PlanPlacements::Fixed(_) => 1,
            PlanPlacements::PerInterval { placements, .. } => placements.len(),
        }
    }
}

/// A complete consolidation plan, ready for emulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConsolidationPlan {
    /// Which planner produced it.
    pub kind: PlannerKind,
    /// The placement(s).
    pub placements: PlanPlacements,
    /// Migrations scheduled by the dynamic planner (empty otherwise).
    pub migrations: Vec<MigrationEvent>,
    /// The data center with all hosts the plan provisioned.
    pub dc: DataCenter,
}

impl ConsolidationPlan {
    /// Number of hosts provisioned — the space/hardware footprint
    /// ("the largest number of servers provisioned across all
    /// consolidation intervals", §5.4).
    #[must_use]
    pub fn provisioned_hosts(&self) -> usize {
        self.dc.len()
    }
}

/// How scalar demands are packed onto hosts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PackingAlgorithm {
    /// First-Fit-Decreasing — the paper's choice.
    FirstFitDecreasing,
    /// Best-Fit-Decreasing — the classical alternative.
    BestFitDecreasing,
}

/// Long-term sizing policy for the semi-static planners (§2.1's
/// "long-term prediction").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum GrowthPolicy {
    /// Size on the raw history (the paper's planners).
    None,
    /// Inflate each VM's sized demand by its fitted daily growth trend,
    /// extrapolated over the evaluation horizon — absorbs the organic
    /// growth that otherwise causes the isolated semi-static contention
    /// of Fig 8.
    LinearTrend,
}

/// Which stochastic semi-static variant [`Planner::plan_stochastic`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum StochasticVariant {
    /// Bucket-envelope peak clustering (the paper's PCP variant).
    PeakClustering,
    /// Explicit pairwise-correlation charging (the CBP flavour of \[27\]).
    CorrelationAware,
}

/// Configuration shared by all planners plus per-variant settings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Planner {
    /// FFD ordering key.
    pub order: OrderKey,
    /// Bin-packing algorithm for the (semi-)static planners.
    pub packing: PackingAlgorithm,
    /// Long-term growth handling for the (semi-)static planners.
    pub growth: GrowthPolicy,
    /// Which stochastic variant to run.
    pub stochastic_variant: StochasticVariant,
    /// Stochastic-planner parameters (peak-clustering variant).
    pub pcp: PcpConfig,
    /// Stochastic-planner parameters (correlation-aware variant).
    pub correlation: CorrelationConfig,
    /// Dynamic-planner parameters.
    pub dynamic: DynamicConfig,
    /// Blades per rack when provisioning.
    pub hosts_per_rack: u32,
    /// Subnet count when provisioning.
    pub subnets: u16,
}

impl Planner {
    /// The paper's baseline (Table 3): HS23 targets, 2-hour dynamic
    /// windows, 20% reservation for the dynamic planner, PCP body = P90.
    ///
    /// The semi-static variants plan to full host capacity: they relocate
    /// VMs with downtime in maintenance windows and need no live-migration
    /// reservation — this is exactly the "handicap of about 20%" the
    /// dynamic planner starts with (§5.4).
    #[must_use]
    pub fn baseline() -> Self {
        Self {
            order: OrderKey::Dominant,
            packing: PackingAlgorithm::FirstFitDecreasing,
            growth: GrowthPolicy::None,
            stochastic_variant: StochasticVariant::PeakClustering,
            pcp: PcpConfig::paper(),
            correlation: CorrelationConfig::paper(),
            dynamic: DynamicConfig::baseline(),
            hosts_per_rack: 14,
            subnets: 4,
        }
    }

    /// Sets the utilization bound of the dynamic planner (Figs 13–16
    /// sweep this).
    #[must_use]
    pub fn with_utilization_bound(mut self, bound: f64) -> Self {
        self.dynamic.reservation =
            vmcw_migration::reliability::ReservationPolicy::from_utilization_bound(bound);
        self
    }

    fn new_dc(&self) -> DataCenter {
        DataCenter::new(ServerModel::hs23_elite(), self.hosts_per_rack, self.subnets)
    }

    fn sized_demands(
        input: &PlanningInput,
        range: std::ops::Range<usize>,
        sizing: SizingFunction,
    ) -> BTreeMap<VmId, Resources> {
        input
            .vms
            .iter()
            .map(|t| (t.vm.id, t.size_over(range.clone(), sizing)))
            .collect()
    }

    /// Static consolidation (§2.2.1): sized at the peak over the VM's
    /// whole *lifetime* — approximated by the entire available trace,
    /// history and evaluation alike — and never re-planned. This is the
    /// most conservative variant: it can only need at least as many hosts
    /// as vanilla semi-static.
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from the packer.
    pub fn plan_static(&self, input: &PlanningInput) -> Result<ConsolidationPlan, PackError> {
        self.plan_fixed(input, PlannerKind::Static)
    }

    /// Vanilla semi-static consolidation: history-peak sizing + FFD.
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from the packer.
    pub fn plan_semi_static(&self, input: &PlanningInput) -> Result<ConsolidationPlan, PackError> {
        self.plan_fixed(input, PlannerKind::SemiStatic)
    }

    /// Rolling semi-static consolidation: the placement is re-planned
    /// every `period_days` of the evaluation window using all data seen so
    /// far — the "once a week or once a month" relocation cycle of
    /// §2.2.2. Re-planning uses VM *relocation* (scheduled downtime), so
    /// no migrations are recorded and no live-migration reservation is
    /// needed.
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from the packer.
    ///
    /// # Panics
    ///
    /// Panics if `period_days == 0`.
    pub fn plan_semi_static_rolling(
        &self,
        input: &PlanningInput,
        period_days: usize,
    ) -> Result<ConsolidationPlan, PackError> {
        assert!(period_days > 0, "re-planning period must be positive");
        let period_hours = period_days * 24;
        let eval = input.eval_range();
        let mut placements = Vec::new();
        let mut dc = self.new_dc();
        let mut start = eval.start;
        while start < eval.end {
            // Size on the most recent `history_hours` of observed data —
            // the sliding "most recent 30 days" window of §3.1.
            let window_end = start.max(input.history_range().end);
            let window_start = window_end.saturating_sub(input.history_hours);
            let demands = Self::sized_demands(input, window_start..window_end, SizingFunction::Max);
            let net = input.net_demands();
            // Each period re-plans from scratch onto a fresh host pool;
            // the provisioned footprint is the largest of the periods.
            let mut period_dc = self.new_dc();
            let placement = first_fit_decreasing_with_network(
                &demands,
                &net,
                &mut period_dc,
                &input.constraints,
                (1.0, 1.0),
                self.order,
            )?;
            while dc.len() < period_dc.len() {
                dc.provision();
            }
            placements.push(placement);
            start += period_hours;
        }
        Ok(ConsolidationPlan {
            kind: PlannerKind::SemiStatic,
            placements: PlanPlacements::PerInterval {
                placements,
                window_hours: period_hours,
            },
            migrations: Vec::new(),
            dc,
        })
    }

    fn plan_fixed(
        &self,
        input: &PlanningInput,
        kind: PlannerKind,
    ) -> Result<ConsolidationPlan, PackError> {
        // Static sizes over the whole lifetime; semi-static over the
        // planning history only.
        let range = match kind {
            PlannerKind::Static => 0..input.total_hours(),
            _ => input.history_range(),
        };
        let mut demands = Self::sized_demands(input, range.clone(), SizingFunction::Max);
        if self.growth == GrowthPolicy::LinearTrend {
            let horizon_days = input.eval_hours() as f64 / 24.0;
            for t in &input.vms {
                let Some(d) = demands.get_mut(&t.vm.id) else {
                    continue;
                };
                let hist_days = (range.end - range.start) as f64 / 24.0;
                let grow = |series: &vmcw_trace::series::TimeSeries| -> f64 {
                    vmcw_trace::forecast::daily_trend(&series.slice(range.clone()))
                        .map_or(1.0, |tr| {
                            tr.growth_ratio(hist_days - 1.0, hist_days + horizon_days, 1.0)
                        })
                        // Capacity planners cap trend extrapolation.
                        .min(1.5)
                };
                d.cpu_rpe2 *= grow(&t.cpu_rpe2);
                d.mem_mb *= grow(&t.mem_mb);
            }
        }
        let net = input.net_demands();
        let mut dc = self.new_dc();
        let placement = match self.packing {
            PackingAlgorithm::FirstFitDecreasing => first_fit_decreasing_with_network(
                &demands,
                &net,
                &mut dc,
                &input.constraints,
                (1.0, 1.0),
                self.order,
            )?,
            PackingAlgorithm::BestFitDecreasing => best_fit_decreasing_with_network(
                &demands,
                &net,
                &mut dc,
                &input.constraints,
                (1.0, 1.0),
                self.order,
            )?,
        };
        Ok(ConsolidationPlan {
            kind,
            placements: PlanPlacements::Fixed(placement),
            migrations: Vec::new(),
            dc,
        })
    }

    /// Stochastic semi-static consolidation (PCP variant).
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from the packer.
    pub fn plan_stochastic(&self, input: &PlanningInput) -> Result<ConsolidationPlan, PackError> {
        let mut dc = self.new_dc();
        let placement = match self.stochastic_variant {
            StochasticVariant::PeakClustering => pcp_pack(
                &input.vms,
                input.history_range(),
                &mut dc,
                &input.constraints,
                (1.0, 1.0),
                &self.pcp,
            )?,
            StochasticVariant::CorrelationAware => correlation_pack(
                &input.vms,
                input.history_range(),
                &mut dc,
                &input.constraints,
                (1.0, 1.0),
                &self.correlation,
            )?,
        };
        Ok(ConsolidationPlan {
            kind: PlannerKind::Stochastic,
            placements: PlanPlacements::Fixed(placement),
            migrations: Vec::new(),
            dc,
        })
    }

    /// Dynamic consolidation over the evaluation window.
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from the initial placement or a stranded
    /// re-placement.
    pub fn plan_dynamic(&self, input: &PlanningInput) -> Result<ConsolidationPlan, PackError> {
        let mut dc = self.new_dc();
        let outcome = plan_dynamic(input, &mut dc, &self.dynamic)?;
        Ok(ConsolidationPlan {
            kind: PlannerKind::Dynamic,
            placements: PlanPlacements::PerInterval {
                placements: outcome.placements,
                window_hours: outcome.window_hours,
            },
            migrations: outcome.migrations,
            dc,
        })
    }

    /// Dispatches on the planner kind.
    ///
    /// # Errors
    ///
    /// Propagates [`PackError`] from the selected planner.
    pub fn plan(
        &self,
        kind: PlannerKind,
        input: &PlanningInput,
    ) -> Result<ConsolidationPlan, PackError> {
        match kind {
            PlannerKind::Static => self.plan_static(input),
            PlannerKind::SemiStatic => self.plan_semi_static(input),
            PlannerKind::Stochastic => self.plan_stochastic(input),
            PlannerKind::Dynamic => self.plan_dynamic(input),
        }
    }
}

impl Default for Planner {
    fn default() -> Self {
        Self::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::VirtualizationModel;
    use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};

    fn input(dc: DataCenterId) -> PlanningInput {
        let w = GeneratorConfig::new(dc).scale(0.03).days(10).generate(9);
        PlanningInput::from_workload(&w, 7, VirtualizationModel::baseline())
    }

    #[test]
    fn all_planners_cover_all_vms() {
        let input = input(DataCenterId::Banking);
        let planner = Planner::baseline();
        for kind in [
            PlannerKind::Static,
            PlannerKind::SemiStatic,
            PlannerKind::Stochastic,
            PlannerKind::Dynamic,
        ] {
            let plan = planner.plan(kind, &input).unwrap();
            let p0 = plan.placements.at_hour(0);
            assert_eq!(p0.len(), input.vms.len(), "{kind}");
            assert!(plan.provisioned_hosts() > 0, "{kind}");
        }
    }

    #[test]
    fn stochastic_needs_no_more_hosts_than_vanilla() {
        // The stochastic planner's envelopes are pointwise ≤ the tails the
        // vanilla planner packs, so it can only do better or equal.
        for dcid in [DataCenterId::Banking, DataCenterId::Beverage] {
            let input = input(dcid);
            let planner = Planner::baseline();
            let vanilla = planner.plan_semi_static(&input).unwrap();
            let stochastic = planner.plan_stochastic(&input).unwrap();
            assert!(
                stochastic.provisioned_hosts() <= vanilla.provisioned_hosts(),
                "{dcid:?}: stochastic {} vs vanilla {}",
                stochastic.provisioned_hosts(),
                vanilla.provisioned_hosts()
            );
        }
    }

    #[test]
    fn stochastic_beats_vanilla_on_bursty_banking() {
        // Slightly larger than the other tests: at very small scale the
        // two planners can tie on host granularity.
        let w = GeneratorConfig::new(DataCenterId::Banking)
            .scale(0.08)
            .days(12)
            .generate(9);
        let input = PlanningInput::from_workload(&w, 8, VirtualizationModel::baseline());
        let planner = Planner::baseline();
        let vanilla = planner.plan_semi_static(&input).unwrap();
        let stochastic = planner.plan_stochastic(&input).unwrap();
        assert!(
            stochastic.provisioned_hosts() < vanilla.provisioned_hosts(),
            "stochastic {} vs vanilla {}",
            stochastic.provisioned_hosts(),
            vanilla.provisioned_hosts()
        );
    }

    #[test]
    fn fixed_plan_is_constant_over_time() {
        let input = input(DataCenterId::Airlines);
        let plan = Planner::baseline().plan_semi_static(&input).unwrap();
        assert_eq!(plan.placements.at_hour(0), plan.placements.at_hour(71));
        assert_eq!(plan.placements.interval_count(), 1);
        assert!(plan.migrations.is_empty());
    }

    #[test]
    fn dynamic_plan_changes_over_time() {
        let input = input(DataCenterId::Banking);
        let plan = Planner::baseline().plan_dynamic(&input).unwrap();
        assert!(plan.placements.interval_count() > 1);
        let distinct = match &plan.placements {
            PlanPlacements::PerInterval { placements, .. } => {
                placements.windows(2).filter(|w| w[0] != w[1]).count()
            }
            PlanPlacements::Fixed(_) => 0,
        };
        assert!(
            distinct > 0,
            "dynamic placements should change across intervals"
        );
    }

    #[test]
    fn utilization_bound_setter_updates_reservation() {
        let p = Planner::baseline().with_utilization_bound(0.9);
        assert!((p.dynamic.reservation.cpu_frac - 0.1).abs() < 1e-12);
    }

    #[test]
    fn at_hour_clamps_to_last_interval() {
        let input = input(DataCenterId::Airlines);
        let plan = Planner::baseline().plan_dynamic(&input).unwrap();
        let last = plan.placements.at_hour(1_000_000);
        assert_eq!(last.len(), input.vms.len());
    }

    #[test]
    fn static_needs_at_least_as_many_hosts_as_semi_static() {
        let input = input(DataCenterId::Banking);
        let planner = Planner::baseline();
        let st = planner.plan_static(&input).unwrap();
        let semi = planner.plan_semi_static(&input).unwrap();
        assert!(
            st.provisioned_hosts() >= semi.provisioned_hosts(),
            "lifetime sizing {} vs history sizing {}",
            st.provisioned_hosts(),
            semi.provisioned_hosts()
        );
    }

    #[test]
    fn rolling_semi_static_replans_per_period() {
        let input = input(DataCenterId::Banking); // 10 days: 7 history + 3 eval
        let planner = Planner::baseline();
        let plan = planner.plan_semi_static_rolling(&input, 1).unwrap();
        assert_eq!(plan.placements.interval_count(), 3, "one placement per day");
        assert!(plan.migrations.is_empty(), "relocation, not live migration");
        // Every interval covers all VMs.
        for h in [0usize, 24, 48, 71] {
            assert_eq!(plan.placements.at_hour(h).len(), input.vms.len());
        }
        // The footprint is the max across periods and at least vanilla's.
        let vanilla = planner.plan_semi_static(&input).unwrap();
        assert!(plan.provisioned_hosts() >= vanilla.provisioned_hosts());
    }

    #[test]
    fn growth_aware_sizing_provisions_at_least_as_much() {
        let input = input(DataCenterId::NaturalResources);
        let plain = Planner::baseline().plan_semi_static(&input).unwrap();
        let grown = Planner {
            growth: GrowthPolicy::LinearTrend,
            ..Planner::baseline()
        }
        .plan_semi_static(&input)
        .unwrap();
        assert!(grown.provisioned_hosts() >= plain.provisioned_hosts());
    }

    #[test]
    fn bfd_variant_plans_all_vms() {
        let input = input(DataCenterId::NaturalResources);
        let planner = Planner {
            packing: PackingAlgorithm::BestFitDecreasing,
            ..Planner::baseline()
        };
        let plan = planner.plan_semi_static(&input).unwrap();
        assert_eq!(plan.placements.at_hour(0).len(), input.vms.len());
        // BFD lands within one host of FFD on enterprise mixes.
        let ffd = Planner::baseline().plan_semi_static(&input).unwrap();
        let diff = plan.provisioned_hosts() as i64 - ffd.provisioned_hosts() as i64;
        assert!(
            diff.abs() <= 2,
            "BFD {} vs FFD {}",
            plan.provisioned_hosts(),
            ffd.provisioned_hosts()
        );
    }

    #[test]
    fn correlation_variant_is_a_valid_stochastic_planner() {
        let input = input(DataCenterId::Banking);
        let planner = Planner {
            stochastic_variant: StochasticVariant::CorrelationAware,
            ..Planner::baseline()
        };
        let plan = planner.plan_stochastic(&input).unwrap();
        assert_eq!(plan.placements.at_hour(0).len(), input.vms.len());
        let vanilla = Planner::baseline().plan_semi_static(&input).unwrap();
        assert!(
            plan.provisioned_hosts() <= vanilla.provisioned_hosts(),
            "correlation-aware {} vs vanilla {}",
            plan.provisioned_hosts(),
            vanilla.provisioned_hosts()
        );
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(PlannerKind::SemiStatic.label(), "Semi-Static");
        assert_eq!(PlannerKind::Stochastic.to_string(), "Stochastic");
        assert_eq!(PlannerKind::EVALUATED.len(), 3);
    }
}
