//! Packing into a fixed, possibly heterogeneous host pool.
//!
//! The paper's evaluation provisions fresh HS23 blades on demand; a real
//! engagement usually starts from the opposite question — *does the
//! estate we already own hold these workloads?* [`pack_fixed`] answers it:
//! first-fit-decreasing over an existing [`DataCenter`] inventory with
//! per-host capacities, the §3.1 link-bandwidth admission and the §2.2.4
//! deployment constraints, and an explicit
//! [`FixedPoolError::PoolExhausted`] when the estate is too small.

use crate::ffd::{attach_network, build_items, OrderKey, PackItem};
use crate::placement::{PackError, Placement};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use vmcw_cluster::constraints::ConstraintSet;
use vmcw_cluster::datacenter::{DataCenter, HostId};
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;

/// Why a fixed-pool packing failed.
#[derive(Debug, Clone, PartialEq)]
pub enum FixedPoolError {
    /// The estate cannot hold this VM (group) anywhere.
    PoolExhausted {
        /// First VM of the stranded group.
        vm: VmId,
        /// The group's demand.
        demand: Resources,
    },
    /// The constraint set is internally inconsistent (see
    /// [`PackError::InconsistentConstraints`]).
    Constraints(PackError),
}

impl fmt::Display for FixedPoolError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FixedPoolError::PoolExhausted { vm, demand } => {
                write!(f, "the host pool cannot fit {vm} (demand {demand})")
            }
            FixedPoolError::Constraints(e) => write!(f, "{e}"),
        }
    }
}

impl Error for FixedPoolError {}

impl From<PackError> for FixedPoolError {
    fn from(e: PackError) -> Self {
        FixedPoolError::Constraints(e)
    }
}

/// The outcome of a fixed-pool packing.
#[derive(Debug, Clone, PartialEq)]
pub struct FixedPoolPlacement {
    /// The placement over the existing hosts.
    pub placement: Placement,
    /// Hosts of the pool left completely empty (decommission candidates).
    pub empty_hosts: Vec<HostId>,
}

/// Packs per-VM demands into the existing hosts of `dc` (no
/// provisioning), honouring per-host capacities, link bandwidth and
/// constraints. `bounds` scales every host's capacity per dimension.
///
/// # Errors
///
/// Returns [`FixedPoolError::PoolExhausted`] when a colocation group fits
/// no host, or wraps the usual constraint errors.
pub fn pack_fixed(
    demands: &BTreeMap<VmId, Resources>,
    net: &BTreeMap<VmId, f64>,
    dc: &DataCenter,
    constraints: &ConstraintSet,
    bounds: (f64, f64),
    order: OrderKey,
) -> Result<FixedPoolPlacement, FixedPoolError> {
    let mut items = build_items(demands, constraints)?;
    attach_network(&mut items, net);

    // Per-host effective capacities (heterogeneous-aware).
    let capacities: Vec<Resources> = dc
        .iter()
        .map(|h| Resources::new(h.model.cpu_rpe2 * bounds.0, h.model.mem_mb * bounds.1))
        .collect();
    let net_caps: Vec<f64> = dc.iter().map(|h| h.model.net_mbps).collect();
    let mut used = vec![Resources::ZERO; dc.len()];
    let mut used_net = vec![0.0f64; dc.len()];
    let mut placement = Placement::new();

    // Reference capacity for ordering: the biggest host.
    let reference = capacities
        .iter()
        .copied()
        .fold(Resources::ZERO, |a, b| a.max(&b));

    // Pinned items first.
    let (pinned, mut free): (Vec<PackItem>, Vec<PackItem>) = items
        .into_iter()
        .partition(|it| it.vms.iter().any(|&v| constraints.pinned_host(v).is_some()));
    for item in pinned {
        let host = item
            .vms
            .iter()
            .find_map(|&v| constraints.pinned_host(v))
            .expect("partition guarantees a pin");
        let idx = host.0 as usize;
        let feasible = idx < dc.len()
            && (used[idx] + item.demand).fits_within(&capacities[idx])
            && used_net[idx] + item.net_mbps <= net_caps[idx]
            && constraints.allows_group(
                &item.vms,
                dc.host(host).expect("checked").location(),
                placement.vms_on(host),
            );
        if !feasible {
            return Err(FixedPoolError::PoolExhausted {
                vm: item.vms[0],
                demand: item.demand,
            });
        }
        used[idx] += item.demand;
        used_net[idx] += item.net_mbps;
        for &v in &item.vms {
            placement.assign(v, host);
        }
    }

    free.sort_by(|a, b| {
        order
            .key(&b.demand, &reference)
            .total_cmp(&order.key(&a.demand, &reference))
            .then_with(|| a.vms[0].cmp(&b.vms[0]))
    });

    for item in free {
        let mut placed = false;
        for idx in 0..dc.len() {
            let host = HostId(idx as u32);
            if !(used[idx] + item.demand).fits_within(&capacities[idx]) {
                continue;
            }
            if used_net[idx] + item.net_mbps > net_caps[idx] {
                continue;
            }
            let location = dc.host(host).expect("within len").location();
            if !constraints.allows_group(&item.vms, location, placement.vms_on(host)) {
                continue;
            }
            used[idx] += item.demand;
            used_net[idx] += item.net_mbps;
            for &v in &item.vms {
                placement.assign(v, host);
            }
            placed = true;
            break;
        }
        if !placed {
            return Err(FixedPoolError::PoolExhausted {
                vm: item.vms[0],
                demand: item.demand,
            });
        }
    }

    let empty_hosts = dc
        .iter()
        .map(|h| h.id)
        .filter(|&h| placement.vms_on(h).is_empty())
        .collect();
    Ok(FixedPoolPlacement {
        placement,
        empty_hosts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcw_cluster::constraints::Constraint;
    use vmcw_cluster::power::PowerModel;
    use vmcw_cluster::server::ServerModel;

    fn model(name: &str, cpu: f64, mem: f64) -> ServerModel {
        ServerModel {
            name: name.into(),
            cpu_rpe2: cpu,
            mem_mb: mem,
            net_mbps: 1000.0,
            power: PowerModel::new(100.0, 200.0),
        }
    }

    fn demands(list: &[(u32, f64, f64)]) -> BTreeMap<VmId, Resources> {
        list.iter()
            .map(|&(id, c, m)| (VmId(id), Resources::new(c, m)))
            .collect()
    }

    fn no_net() -> BTreeMap<VmId, f64> {
        BTreeMap::new()
    }

    #[test]
    fn mixed_pool_uses_per_host_capacities() {
        // One big host (200) and one small (50): a 100-unit VM only fits
        // the big one even though it is not first.
        let dc = DataCenter::heterogeneous(
            &[
                (model("small", 50.0, 500.0), 1),
                (model("big", 200.0, 2000.0), 1),
            ],
            4,
            1,
        );
        let d = demands(&[(0, 100.0, 100.0)]);
        let out = pack_fixed(
            &d,
            &no_net(),
            &dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Cpu,
        )
        .unwrap();
        assert_eq!(out.placement.host_of(VmId(0)), Some(HostId(1)));
        assert_eq!(out.empty_hosts, vec![HostId(0)]);
    }

    #[test]
    fn exhausted_pool_is_an_error() {
        let dc = DataCenter::heterogeneous(&[(model("small", 50.0, 500.0), 2)], 4, 1);
        let d = demands(&[(0, 40.0, 100.0), (1, 40.0, 100.0), (2, 40.0, 100.0)]);
        let err = pack_fixed(
            &d,
            &no_net(),
            &dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Cpu,
        )
        .unwrap_err();
        assert!(matches!(err, FixedPoolError::PoolExhausted { .. }));
        assert!(err.to_string().contains("cannot fit"));
    }

    #[test]
    fn bounds_apply_per_host() {
        let dc = DataCenter::heterogeneous(&[(model("m", 100.0, 1000.0), 1)], 4, 1);
        let d = demands(&[(0, 90.0, 100.0)]);
        // 90 > 0.8 × 100 → exhausted under the bound, fits without it.
        assert!(pack_fixed(
            &d,
            &no_net(),
            &dc,
            &ConstraintSet::new(),
            (0.8, 0.8),
            OrderKey::Cpu
        )
        .is_err());
        assert!(pack_fixed(
            &d,
            &no_net(),
            &dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Cpu
        )
        .is_ok());
    }

    #[test]
    fn constraints_apply_in_fixed_pools() {
        let dc = DataCenter::heterogeneous(&[(model("m", 100.0, 1000.0), 2)], 4, 1);
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::AntiColocate(VmId(0), VmId(1))).unwrap();
        let d = demands(&[(0, 10.0, 10.0), (1, 10.0, 10.0)]);
        let out = pack_fixed(&d, &no_net(), &dc, &cs, (1.0, 1.0), OrderKey::Cpu).unwrap();
        assert_ne!(
            out.placement.host_of(VmId(0)),
            out.placement.host_of(VmId(1))
        );
        assert!(out.empty_hosts.is_empty());
    }

    #[test]
    fn pinned_vm_lands_on_its_host_or_fails() {
        let dc = DataCenter::heterogeneous(&[(model("m", 100.0, 1000.0), 2)], 4, 1);
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::PinToHost(VmId(0), HostId(1))).unwrap();
        let d = demands(&[(0, 10.0, 10.0)]);
        let out = pack_fixed(&d, &no_net(), &dc, &cs, (1.0, 1.0), OrderKey::Cpu).unwrap();
        assert_eq!(out.placement.host_of(VmId(0)), Some(HostId(1)));
        // Pin beyond the pool fails cleanly.
        let mut cs2 = ConstraintSet::new();
        cs2.add(Constraint::PinToHost(VmId(0), HostId(5))).unwrap();
        assert!(pack_fixed(&d, &no_net(), &dc, &cs2, (1.0, 1.0), OrderKey::Cpu).is_err());
    }

    #[test]
    fn network_admission_applies_per_host_link() {
        let dc = DataCenter::heterogeneous(&[(model("m", 100.0, 1000.0), 2)], 4, 1);
        let d = demands(&[(0, 1.0, 1.0), (1, 1.0, 1.0), (2, 1.0, 1.0)]);
        let net: BTreeMap<VmId, f64> = (0..3).map(|i| (VmId(i), 600.0)).collect();
        let out = pack_fixed(
            &d,
            &net,
            &dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Cpu,
        );
        // 3 × 600 Mbit/s over two 1 Gbit/s links: only two fit.
        assert!(matches!(out, Err(FixedPoolError::PoolExhausted { .. })));
    }

    #[test]
    fn decommission_candidates_are_reported() {
        let dc = DataCenter::heterogeneous(&[(model("m", 100.0, 1000.0), 4)], 4, 1);
        let d = demands(&[(0, 60.0, 100.0), (1, 60.0, 100.0)]);
        let out = pack_fixed(
            &d,
            &no_net(),
            &dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Cpu,
        )
        .unwrap();
        assert_eq!(
            out.empty_hosts.len(),
            2,
            "two of four hosts can be decommissioned"
        );
    }
}
