//! Sizing functions (§2.1, "Size Estimation").
//!
//! "Since a demand estimate is made for a period with potentially multiple
//! predicted data points ..., a sizing function is used to convert multiple
//! predicted values to a single demand value. The most common sizing
//! function used is max. Specific algorithms use other sizing functions
//! like 90percentile."

use serde::{Deserialize, Serialize};
use vmcw_trace::series::TimeSeries;
use vmcw_trace::stats;

/// Converts the demand samples of a period into a single demand value.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SizingFunction {
    /// Peak demand — what static and vanilla semi-static consolidation use.
    Max,
    /// A percentile of the distribution, e.g. `Percentile(90.0)` — the
    /// "body" sizing of the stochastic planner.
    Percentile(f64),
    /// Mean demand — the most aggressive sizing.
    Mean,
}

impl SizingFunction {
    /// The stochastic planner's body: the 90th percentile.
    pub const BODY_P90: SizingFunction = SizingFunction::Percentile(90.0);

    /// Sizes a slice of demand samples. Returns 0 for an empty slice.
    ///
    /// # Panics
    ///
    /// Panics if a percentile is outside `0..=100`.
    #[must_use]
    pub fn size(&self, values: &[f64]) -> f64 {
        match self {
            SizingFunction::Max => values
                .iter()
                .copied()
                .fold(f64::NEG_INFINITY, f64::max)
                .max(0.0),
            SizingFunction::Percentile(p) => stats::percentile(values, *p).unwrap_or(0.0),
            SizingFunction::Mean => stats::mean(values).unwrap_or(0.0),
        }
    }

    /// Human-readable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            SizingFunction::Max => "max".to_owned(),
            SizingFunction::Percentile(p) => format!("p{p:.0}"),
            SizingFunction::Mean => "mean".to_owned(),
        }
    }
}

/// Folds an hourly series into consolidation-window demands.
///
/// For a window of `window_hours`, each output sample is the sized demand
/// of one window — this is how the paper "estimates the CPU demand for
/// consolidation periods of duration 1 hour, 2 hours and 4 hours" before
/// computing peak-to-average ratios (Figs 2 and 4).
///
/// # Panics
///
/// Panics if `window_hours == 0`.
#[must_use]
pub fn window_demands(
    series: &TimeSeries,
    window_hours: usize,
    sizing: SizingFunction,
) -> TimeSeries {
    series.fold_windows(window_hours, |chunk| sizing.size(chunk))
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcw_trace::series::StepSecs;

    #[test]
    fn max_sizing() {
        assert_eq!(SizingFunction::Max.size(&[1.0, 5.0, 2.0]), 5.0);
        assert_eq!(SizingFunction::Max.size(&[]), 0.0);
    }

    #[test]
    fn mean_sizing() {
        assert_eq!(SizingFunction::Mean.size(&[2.0, 4.0]), 3.0);
        assert_eq!(SizingFunction::Mean.size(&[]), 0.0);
    }

    #[test]
    fn percentile_sizing_is_below_max_for_skewed_data() {
        let mut v = vec![1.0; 99];
        v.push(100.0);
        let p90 = SizingFunction::BODY_P90.size(&v);
        let max = SizingFunction::Max.size(&v);
        assert!(p90 < max / 10.0, "p90 {p90} vs max {max}");
    }

    #[test]
    fn sizing_order_invariant() {
        let v = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let mean = SizingFunction::Mean.size(&v);
        let p90 = SizingFunction::BODY_P90.size(&v);
        let max = SizingFunction::Max.size(&v);
        assert!(mean <= p90 && p90 <= max);
    }

    #[test]
    fn window_demands_fold_with_max() {
        let s = TimeSeries::new(StepSecs::HOUR, vec![1.0, 3.0, 2.0, 8.0, 0.5, 0.5]);
        let w = window_demands(&s, 2, SizingFunction::Max);
        assert_eq!(w.values(), &[3.0, 8.0, 0.5]);
    }

    #[test]
    fn one_hour_window_is_identity_under_max() {
        let s = TimeSeries::new(StepSecs::HOUR, vec![1.0, 3.0, 2.0]);
        assert_eq!(
            window_demands(&s, 1, SizingFunction::Max).values(),
            s.values()
        );
    }

    #[test]
    fn labels() {
        assert_eq!(SizingFunction::Max.label(), "max");
        assert_eq!(SizingFunction::BODY_P90.label(), "p90");
        assert_eq!(SizingFunction::Mean.label(), "mean");
    }
}
