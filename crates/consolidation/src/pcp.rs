//! Stochastic consolidation — a Peak-Clustering-Placement (PCP) variant.
//!
//! §2.2.2: "Semi-static consolidation can also leverage stochastic
//! properties of the workload. ... Ensuring that positively correlated
//! workloads are not placed together allows more aggressive sizing (e.g.,
//! using average resource demand as opposed to max). Verma et al. present
//! few stochastic semi-static algorithms in \[27\]. In this work, we use a
//! variant of the PCP algorithm described in \[27\]" with body = 90th
//! percentile and tail = max (§5.1).
//!
//! Our variant represents each VM by a two-level *demand envelope* over
//! hour-of-week buckets: `body` everywhere, lifted to `tail` in buckets
//! where the history shows a peak (demand above the body). Two workloads
//! whose peaks overlap in time thus present their combined tails to the
//! feasibility test — exactly the peak-clustering insight: only
//! *temporally correlated* peaks must be provisioned together, while VMs
//! that peak at different hours can share the same headroom.

use crate::ffd::{pack, BinPackModel, OrderKey};
use crate::input::VmTrace;
use crate::placement::{PackError, Placement};
use crate::sizing::SizingFunction;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;
use vmcw_cluster::constraints::ConstraintSet;
use vmcw_cluster::datacenter::DataCenter;
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;

/// Configuration of the stochastic (PCP-variant) planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PcpConfig {
    /// Sizing of the distribution body (paper: 90th percentile).
    pub body: SizingFunction,
    /// Sizing of the distribution tail (paper: max).
    pub tail: SizingFunction,
    /// Number of time buckets the envelope folds into. 168 (hour of week)
    /// captures diurnal and weekly peak correlation.
    pub buckets: usize,
    /// FFD ordering key for the body demand.
    pub order: OrderKey,
}

impl PcpConfig {
    /// The paper's parameters: body = P90, tail = max, hour-of-week
    /// buckets.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            body: SizingFunction::BODY_P90,
            tail: SizingFunction::Max,
            buckets: 168,
            order: OrderKey::Dominant,
        }
    }
}

impl Default for PcpConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// A packing item with per-bucket envelopes.
#[derive(Debug, Clone, PartialEq)]
pub struct PcpItem {
    /// Members of the colocation group.
    pub vms: Vec<VmId>,
    /// Total body demand of the group.
    pub body: Resources,
    /// Total tail demand of the group.
    pub tail: Resources,
    /// Per-bucket CPU envelope (RPE2).
    pub cpu_env: Vec<f64>,
    /// Per-bucket memory envelope (MB).
    pub mem_env: Vec<f64>,
    /// Peak network demand of the group, Mbit/s (link-admission
    /// constraint).
    pub net_mbps: f64,
}

/// Builds the two-level envelope of one demand series.
///
/// Bucket `b` holds `tail` if any history sample falling into `b` exceeds
/// the body, else `body`. `offset` is the absolute hour of `values\[0\]`
/// (bucket phase).
fn envelope(values: &[f64], offset: usize, buckets: usize, body: f64, tail: f64) -> Vec<f64> {
    let mut env = vec![body; buckets];
    for (i, &v) in values.iter().enumerate() {
        if v > body {
            env[(offset + i) % buckets] = tail;
        }
    }
    env
}

/// Builds PCP items from VM traces over the planning-history range,
/// merging colocation groups by summing their envelopes.
///
/// # Errors
///
/// Returns [`PackError::InconsistentConstraints`] for unsatisfiable
/// colocation groups (see [`crate::ffd::build_items`]).
///
/// # Panics
///
/// Panics if `config.buckets == 0` or the range exceeds a trace.
pub fn build_pcp_items(
    vms: &[VmTrace],
    history: Range<usize>,
    config: &PcpConfig,
    constraints: &ConstraintSet,
) -> Result<Vec<PcpItem>, PackError> {
    assert!(config.buckets > 0, "need at least one bucket");
    let per_vm: BTreeMap<VmId, PcpItem> = vms
        .iter()
        .map(|t| {
            let cpu = &t.cpu_rpe2.values()[history.clone()];
            let mem = &t.mem_mb.values()[history.clone()];
            let body = Resources::new(config.body.size(cpu), config.body.size(mem));
            let tail = Resources::new(config.tail.size(cpu), config.tail.size(mem));
            let item = PcpItem {
                vms: vec![t.vm.id],
                body,
                tail,
                cpu_env: envelope(
                    cpu,
                    history.start,
                    config.buckets,
                    body.cpu_rpe2,
                    tail.cpu_rpe2,
                ),
                mem_env: envelope(mem, history.start, config.buckets, body.mem_mb, tail.mem_mb),
                net_mbps: t.net_peak_mbps,
            };
            (t.vm.id, item)
        })
        .collect();

    // Reuse the scalar group validation (anti-colocation & pin checks).
    let scalar: BTreeMap<VmId, Resources> = per_vm.iter().map(|(&id, it)| (id, it.body)).collect();
    let groups = crate::ffd::build_items(&scalar, constraints)?;

    Ok(groups
        .into_iter()
        .map(|g| {
            let mut merged = PcpItem {
                vms: Vec::new(),
                body: Resources::ZERO,
                tail: Resources::ZERO,
                cpu_env: vec![0.0; config.buckets],
                mem_env: vec![0.0; config.buckets],
                net_mbps: 0.0,
            };
            for vm in g.vms {
                let it = &per_vm[&vm];
                merged.vms.push(vm);
                merged.body += it.body;
                merged.tail += it.tail;
                merged.net_mbps += it.net_mbps;
                for b in 0..config.buckets {
                    merged.cpu_env[b] += it.cpu_env[b];
                    merged.mem_env[b] += it.mem_env[b];
                }
            }
            merged
        })
        .collect())
}

/// Envelope-based host-state model for the FFD driver.
#[derive(Debug, Clone)]
struct PcpModel {
    effective_capacity: Resources,
    order: OrderKey,
    buckets: usize,
    cpu_load: Vec<Vec<f64>>,
    mem_load: Vec<Vec<f64>>,
    net_capacity: f64,
    net_load: Vec<f64>,
}

impl PcpModel {
    fn new(
        effective_capacity: Resources,
        order: OrderKey,
        buckets: usize,
        hosts: usize,
        net_capacity: f64,
    ) -> Self {
        Self {
            effective_capacity,
            order,
            buckets,
            cpu_load: vec![vec![0.0; buckets]; hosts],
            mem_load: vec![vec![0.0; buckets]; hosts],
            net_capacity,
            net_load: vec![0.0; hosts],
        }
    }

    fn net_fits(&self, used: f64, item: &PcpItem) -> bool {
        self.net_capacity <= 0.0 || used + item.net_mbps <= self.net_capacity
    }
}

impl BinPackModel for PcpModel {
    type Item = PcpItem;

    fn vms<'a>(&self, item: &'a PcpItem) -> &'a [VmId] {
        &item.vms
    }

    fn sort_key(&self, item: &PcpItem) -> f64 {
        self.order.key(&item.body, &self.effective_capacity)
    }

    fn open_host(&mut self) {
        self.cpu_load.push(vec![0.0; self.buckets]);
        self.mem_load.push(vec![0.0; self.buckets]);
        self.net_load.push(0.0);
    }

    fn host_count(&self) -> usize {
        self.cpu_load.len()
    }

    fn fits(&self, host: usize, item: &PcpItem) -> bool {
        let (cl, ml) = (&self.cpu_load[host], &self.mem_load[host]);
        self.net_fits(self.net_load[host], item)
            && (0..self.buckets).all(|b| {
                cl[b] + item.cpu_env[b] <= self.effective_capacity.cpu_rpe2
                    && ml[b] + item.mem_env[b] <= self.effective_capacity.mem_mb
            })
    }

    fn fits_empty(&self, item: &PcpItem) -> bool {
        self.net_fits(0.0, item)
            && (0..self.buckets).all(|b| {
                item.cpu_env[b] <= self.effective_capacity.cpu_rpe2
                    && item.mem_env[b] <= self.effective_capacity.mem_mb
            })
    }

    fn place(&mut self, host: usize, item: &PcpItem) {
        self.net_load[host] += item.net_mbps;
        for b in 0..self.buckets {
            self.cpu_load[host][b] += item.cpu_env[b];
            self.mem_load[host][b] += item.mem_env[b];
        }
    }

    fn demand(&self, item: &PcpItem) -> Resources {
        item.tail
    }

    fn effective_capacity(&self) -> Resources {
        self.effective_capacity
    }
}

/// Runs the stochastic planner: envelope construction + envelope-aware FFD.
///
/// # Errors
///
/// See [`pack`] and [`build_pcp_items`].
pub fn pcp_pack(
    vms: &[VmTrace],
    history: Range<usize>,
    dc: &mut DataCenter,
    constraints: &ConstraintSet,
    bounds: (f64, f64),
    config: &PcpConfig,
) -> Result<Placement, PackError> {
    let capacity = dc.template().capacity();
    let effective = Resources::new(capacity.cpu_rpe2 * bounds.0, capacity.mem_mb * bounds.1);
    let items = build_pcp_items(vms, history, config, constraints)?;
    let mut model = PcpModel::new(
        effective,
        config.order,
        config.buckets,
        dc.len(),
        dc.template().net_mbps,
    );
    pack(&mut model, items, dc, constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcw_cluster::power::PowerModel;
    use vmcw_cluster::server::ServerModel;
    use vmcw_cluster::vm::Vm;
    use vmcw_trace::series::{StepSecs, TimeSeries};

    fn host_model() -> ServerModel {
        ServerModel {
            name: "test".into(),
            cpu_rpe2: 100.0,
            mem_mb: 10_000.0,
            net_mbps: 1000.0,
            power: PowerModel::new(100.0, 200.0),
        }
    }

    /// A VM idling at `base` with a spike to `peak` at bucket `peak_hour`
    /// of every day, over `days` days.
    fn spiky_vm(id: u32, base: f64, peak: f64, peak_hour: usize, days: usize) -> VmTrace {
        let mut cpu = Vec::new();
        for _ in 0..days {
            for h in 0..24 {
                cpu.push(if h == peak_hour { peak } else { base });
            }
        }
        let len = cpu.len();
        VmTrace {
            vm: Vm::new(VmId(id), format!("vm{id}"), 1024.0),
            cpu_rpe2: TimeSeries::new(StepSecs::HOUR, cpu),
            mem_mb: TimeSeries::new(StepSecs::HOUR, vec![100.0; len]),
            net_peak_mbps: 0.0,
        }
    }

    fn daily_config() -> PcpConfig {
        // 24 buckets: hour-of-day envelopes for compact tests.
        PcpConfig {
            buckets: 24,
            ..PcpConfig::paper()
        }
    }

    #[test]
    fn envelope_marks_peak_buckets() {
        let values = [1.0, 9.0, 1.0, 1.0];
        let env = envelope(&values, 0, 4, 2.0, 9.0);
        assert_eq!(env, vec![2.0, 9.0, 2.0, 2.0]);
    }

    #[test]
    fn envelope_respects_offset_phase() {
        let values = [9.0, 1.0];
        let env = envelope(&values, 3, 4, 2.0, 9.0);
        assert_eq!(env, vec![2.0, 2.0, 2.0, 9.0]);
    }

    #[test]
    fn anti_correlated_peaks_share_a_host() {
        // Two VMs: tails of 60 each would overflow a 100-capacity host
        // under tail sizing, but their peaks never overlap.
        let vms = vec![spiky_vm(0, 5.0, 60.0, 2, 7), spiky_vm(1, 5.0, 60.0, 14, 7)];
        let mut dc = DataCenter::new(host_model(), 4, 1);
        let p = pcp_pack(
            &vms,
            0..168,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            &daily_config(),
        )
        .unwrap();
        assert_eq!(
            p.active_host_count(),
            1,
            "anti-correlated peaks should stack"
        );
    }

    #[test]
    fn correlated_peaks_are_separated() {
        // Same peak hour: envelopes overlap at the tail → two hosts.
        let vms = vec![spiky_vm(0, 5.0, 60.0, 2, 7), spiky_vm(1, 5.0, 60.0, 2, 7)];
        let mut dc = DataCenter::new(host_model(), 4, 1);
        let p = pcp_pack(
            &vms,
            0..168,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            &daily_config(),
        )
        .unwrap();
        assert_eq!(p.active_host_count(), 2, "correlated peaks must not stack");
    }

    #[test]
    fn stochastic_beats_tail_sizing_on_staggered_peaks() {
        // 12 VMs, peaks staggered around the clock. Tail sizing packs
        // ⌈12×60/100⌉ = 8 hosts; PCP needs far fewer.
        let vms: Vec<VmTrace> = (0..12)
            .map(|i| spiky_vm(i, 4.0, 60.0, (i as usize * 2) % 24, 7))
            .collect();
        let mut dc = DataCenter::new(host_model(), 14, 1);
        let p = pcp_pack(
            &vms,
            0..168,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            &daily_config(),
        )
        .unwrap();
        assert!(p.active_host_count() <= 4, "got {}", p.active_host_count());

        // Compare against vanilla FFD on tails.
        let demands: BTreeMap<VmId, Resources> = vms
            .iter()
            .map(|t| (t.vm.id, t.size_over(0..168, SizingFunction::Max)))
            .collect();
        let mut dc2 = DataCenter::new(host_model(), 14, 1);
        let vanilla = crate::ffd::first_fit_decreasing(
            &demands,
            &mut dc2,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Dominant,
        )
        .unwrap();
        assert!(vanilla.active_host_count() > p.active_host_count());
    }

    #[test]
    fn bodies_alone_still_limit_density() {
        // Flat high-body VMs: envelope == body; capacity still binds.
        let vms: Vec<VmTrace> = (0..4).map(|i| spiky_vm(i, 40.0, 40.0, 0, 7)).collect();
        let mut dc = DataCenter::new(host_model(), 14, 1);
        let p = pcp_pack(
            &vms,
            0..168,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            &daily_config(),
        )
        .unwrap();
        assert_eq!(p.active_host_count(), 2); // 2 × 40 ≤ 100 < 3 × 40
    }

    #[test]
    fn colocation_merges_envelopes() {
        let mut cs = ConstraintSet::new();
        cs.add(vmcw_cluster::constraints::Constraint::Colocate(
            VmId(0),
            VmId(1),
        ))
        .unwrap();
        let vms = vec![spiky_vm(0, 30.0, 60.0, 2, 7), spiky_vm(1, 30.0, 60.0, 2, 7)];
        let items = build_pcp_items(&vms, 0..168, &daily_config(), &cs).unwrap();
        assert_eq!(items.len(), 1);
        assert_eq!(items[0].vms.len(), 2);
        assert_eq!(items[0].body.cpu_rpe2, 60.0);
        assert_eq!(items[0].cpu_env[2], 120.0);
    }

    #[test]
    fn oversize_tail_on_every_bucket_errors() {
        let vms = vec![spiky_vm(0, 150.0, 150.0, 0, 7)];
        let mut dc = DataCenter::new(host_model(), 4, 1);
        let err = pcp_pack(
            &vms,
            0..168,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            &daily_config(),
        )
        .unwrap_err();
        assert!(matches!(err, PackError::ItemTooLarge { .. }));
    }

    #[test]
    fn paper_config_defaults() {
        let c = PcpConfig::paper();
        assert_eq!(c.buckets, 168);
        assert_eq!(c.body, SizingFunction::Percentile(90.0));
        assert_eq!(c.tail, SizingFunction::Max);
        assert_eq!(c, PcpConfig::default());
    }
}
