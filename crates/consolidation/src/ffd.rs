//! Constraint-aware two-dimensional First-Fit-Decreasing bin packing.
//!
//! Static and vanilla semi-static consolidation "use the maximum expected
//! resource demand for sizing and First Fit Decreasing algorithm for bin
//! packing \[26\]" (§2.2.1/§2.2.2). Items are *colocation groups* (affinity
//! constraints are satisfied structurally by packing a whole group as one
//! item); candidate hosts are filtered through the [`ConstraintSet`].
//!
//! The packing driver ([`pack`]) is generic over a [`BinPackModel`] so the
//! stochastic planner can reuse the same FFD skeleton with envelope-based
//! feasibility instead of scalar demands.

use crate::placement::{PackError, Placement};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use vmcw_cluster::constraints::ConstraintSet;
use vmcw_cluster::datacenter::{DataCenter, HostId};
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;

/// Ordering key for the "decreasing" part of FFD.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OrderKey {
    /// Larger of the CPU and memory fractions of host capacity (default —
    /// the standard choice for 2-D vector packing).
    Dominant,
    /// CPU fraction only.
    Cpu,
    /// Memory fraction only.
    Mem,
    /// Euclidean norm of the two fractions.
    L2,
}

impl OrderKey {
    /// Scalarises a demand against a capacity.
    #[must_use]
    pub fn key(self, demand: &Resources, capacity: &Resources) -> f64 {
        match self {
            OrderKey::Dominant => demand.dominant_share(capacity),
            OrderKey::Cpu => {
                if capacity.cpu_rpe2 > 0.0 {
                    demand.cpu_rpe2 / capacity.cpu_rpe2
                } else {
                    0.0
                }
            }
            OrderKey::Mem => {
                if capacity.mem_mb > 0.0 {
                    demand.mem_mb / capacity.mem_mb
                } else {
                    0.0
                }
            }
            OrderKey::L2 => demand.normalized_l2(capacity),
        }
    }
}

/// A packing item: one colocation group and its total demand.
#[derive(Debug, Clone, PartialEq)]
pub struct PackItem {
    /// Members of the group (singleton for unconstrained VMs).
    pub vms: Vec<VmId>,
    /// Total sized demand of the group.
    pub demand: Resources,
    /// Total peak network demand of the group, Mbit/s (0 when network is
    /// not constrained).
    pub net_mbps: f64,
}

/// Builds packing items from per-VM demands, merging colocation groups.
///
/// # Errors
///
/// Returns [`PackError::InconsistentConstraints`] when a colocation group
/// contains anti-colocated members or members pinned to different hosts.
pub fn build_items(
    demands: &BTreeMap<VmId, Resources>,
    constraints: &ConstraintSet,
) -> Result<Vec<PackItem>, PackError> {
    let vm_ids: Vec<VmId> = demands.keys().copied().collect();
    let groups = constraints.colocation_groups(&vm_ids);
    let mut items = Vec::with_capacity(groups.len());
    for group in groups {
        // Internal consistency: no anti-colocation, at most one host,
        // subnet and rack pin across the whole group.
        let mut pin: Option<HostId> = None;
        let mut subnet_pin = None;
        let mut rack_pin = None;
        for (i, &a) in group.iter().enumerate() {
            if let Some(h) = constraints.pinned_host(a) {
                if let Some(existing) = pin {
                    if existing != h {
                        return Err(PackError::InconsistentConstraints { vm: a });
                    }
                }
                pin = Some(h);
            }
            if let Some(sn) = constraints.pinned_subnet(a) {
                if let Some(existing) = subnet_pin {
                    if existing != sn {
                        return Err(PackError::InconsistentConstraints { vm: a });
                    }
                }
                subnet_pin = Some(sn);
            }
            if let Some(r) = constraints.pinned_rack(a) {
                if let Some(existing) = rack_pin {
                    if existing != r {
                        return Err(PackError::InconsistentConstraints { vm: a });
                    }
                }
                rack_pin = Some(r);
            }
            for &b in &group[i + 1..] {
                if constraints.are_anti_colocated(a, b) {
                    return Err(PackError::InconsistentConstraints { vm: a });
                }
            }
        }
        let demand = group.iter().map(|v| demands[v]).sum();
        items.push(PackItem {
            vms: group,
            demand,
            net_mbps: 0.0,
        });
    }
    Ok(items)
}

/// Fills in each item's network demand from a per-VM map (§3.1's link-
/// bandwidth constraint). VMs absent from the map contribute nothing.
pub fn attach_network(items: &mut [PackItem], net: &BTreeMap<VmId, f64>) {
    for item in items {
        item.net_mbps = item
            .vms
            .iter()
            .map(|v| net.get(v).copied().unwrap_or(0.0))
            .sum();
    }
}

/// Host-state model plugged into the FFD driver.
///
/// Implementations track per-host load in whatever representation their
/// feasibility test needs (scalar demands for plain FFD, time-bucket
/// envelopes for the stochastic planner).
pub trait BinPackModel {
    /// The item type being packed.
    type Item;

    /// Members of the item's colocation group.
    fn vms<'a>(&self, item: &'a Self::Item) -> &'a [VmId];
    /// Descending sort key (bigger items pack first).
    fn sort_key(&self, item: &Self::Item) -> f64;
    /// Registers a newly provisioned (empty) host at the next index.
    fn open_host(&mut self);
    /// Number of host states currently tracked.
    fn host_count(&self) -> usize;
    /// Whether `item` fits on host `host` given its current load.
    fn fits(&self, host: usize, item: &Self::Item) -> bool;
    /// Whether `item` fits on a brand-new empty host.
    fn fits_empty(&self, item: &Self::Item) -> bool;
    /// Preference for placing `item` on host `host` among the feasible
    /// hosts; the driver picks the feasible host with the highest
    /// preference (ties broken by lowest host id). The default of a
    /// constant 0 yields classic *first*-fit; best-fit models override
    /// this with the host's current fullness.
    fn preference(&self, _host: usize, _item: &Self::Item) -> f64 {
        0.0
    }
    /// Adds `item`'s load to host `host`.
    fn place(&mut self, host: usize, item: &Self::Item);
    /// The item's demand (for error reporting).
    fn demand(&self, item: &Self::Item) -> Resources;
    /// The effective host capacity (for error reporting).
    fn effective_capacity(&self) -> Resources;
}

/// First-fit-decreasing driver, generic over the host-state model.
///
/// Provisions hosts in `dc` as needed. Host-pinned items are placed first
/// (provisioning up to the pinned id if necessary); remaining items are
/// sorted by decreasing [`BinPackModel::sort_key`] and first-fit into the
/// lowest-id feasible host.
///
/// # Errors
///
/// * [`PackError::ItemTooLarge`] — an item exceeds an empty host.
/// * [`PackError::PinnedHostInfeasible`] — a pinned host cannot take its VM.
pub fn pack<M: BinPackModel>(
    model: &mut M,
    items: Vec<M::Item>,
    dc: &mut DataCenter,
    constraints: &ConstraintSet,
) -> Result<Placement, PackError> {
    debug_assert_eq!(
        model.host_count(),
        dc.len(),
        "model must mirror the data center"
    );
    let mut placement = Placement::new();

    let (pinned, mut free): (Vec<M::Item>, Vec<M::Item>) = items.into_iter().partition(|it| {
        model
            .vms(it)
            .iter()
            .any(|&v| constraints.pinned_host(v).is_some())
    });

    for item in pinned {
        let vm0 = model.vms(&item)[0];
        let host = model
            .vms(&item)
            .iter()
            .find_map(|&v| constraints.pinned_host(v))
            .expect("partition guarantees a pin");
        while dc.len() <= host.0 as usize {
            dc.provision();
            model.open_host();
        }
        let location = dc.host(host).expect("just provisioned").location();
        let idx = host.0 as usize;
        if !model.fits(idx, &item)
            || !constraints.allows_group(model.vms(&item), location, placement.vms_on(host))
        {
            return Err(PackError::PinnedHostInfeasible { vm: vm0, host });
        }
        for &v in model.vms(&item) {
            placement.assign(v, host);
        }
        model.place(idx, &item);
    }

    // Decreasing order; ties broken by first VM id for determinism.
    free.sort_by(|a, b| {
        model
            .sort_key(b)
            .total_cmp(&model.sort_key(a))
            .then_with(|| model.vms(a)[0].cmp(&model.vms(b)[0]))
    });

    for item in free {
        let group = model.vms(&item).to_vec();
        let mut best: Option<(usize, f64)> = None;
        for idx in 0..dc.len() {
            let host = HostId(idx as u32);
            let location = dc.host(host).expect("within len").location();
            if model.fits(idx, &item)
                && constraints.allows_group(&group, location, placement.vms_on(host))
            {
                let pref = model.preference(idx, &item);
                let better = match best {
                    None => true,
                    Some((_, best_pref)) => pref > best_pref,
                };
                if better {
                    best = Some((idx, pref));
                }
            }
        }
        if let Some((idx, _)) = best {
            let host = HostId(idx as u32);
            for &v in &group {
                placement.assign(v, host);
            }
            model.place(idx, &item);
            continue;
        }
        if !model.fits_empty(&item) {
            return Err(PackError::ItemTooLarge {
                vm: group[0],
                demand: model.demand(&item),
                capacity: model.effective_capacity(),
            });
        }
        // A fresh host may still be rejected by a subnet pin; hosts get
        // subnets round-robin, so provisioning at most one full cycle
        // reaches every subnet.
        let mut attempts = 0;
        loop {
            let host = dc.provision();
            model.open_host();
            let location = dc.host(host).expect("just provisioned").location();
            if constraints.allows_group(&group, location, &[]) {
                for &v in &group {
                    placement.assign(v, host);
                }
                model.place(host.0 as usize, &item);
                break;
            }
            attempts += 1;
            if attempts > 64 {
                return Err(PackError::PinnedHostInfeasible { vm: group[0], host });
            }
        }
    }
    Ok(placement)
}

/// Scalar FFD model: per-host accumulated demand against an effective
/// capacity (host capacity × utilization bounds).
#[derive(Debug, Clone)]
pub struct FfdModel {
    effective_capacity: Resources,
    order: OrderKey,
    used: Vec<Resources>,
    net_capacity: Option<f64>,
    used_net: Vec<f64>,
}

impl FfdModel {
    /// Creates the model for a data center with `existing_hosts` already
    /// provisioned (their loads start at zero).
    #[must_use]
    pub fn new(effective_capacity: Resources, order: OrderKey, existing_hosts: usize) -> Self {
        Self {
            effective_capacity,
            order,
            used: vec![Resources::ZERO; existing_hosts],
            net_capacity: None,
            used_net: vec![0.0; existing_hosts],
        }
    }

    /// Enables the host-link bandwidth constraint: no host may exceed
    /// `net_mbps` of summed peak VM traffic.
    #[must_use]
    pub fn with_network_capacity(mut self, net_mbps: f64) -> Self {
        self.net_capacity = Some(net_mbps);
        self
    }

    /// Current load of a host.
    #[must_use]
    pub fn load(&self, host: usize) -> Resources {
        self.used[host]
    }

    fn net_fits(&self, used: f64, item: &PackItem) -> bool {
        self.net_capacity
            .is_none_or(|cap| used + item.net_mbps <= cap)
    }
}

impl BinPackModel for FfdModel {
    type Item = PackItem;

    fn vms<'a>(&self, item: &'a PackItem) -> &'a [VmId] {
        &item.vms
    }

    fn sort_key(&self, item: &PackItem) -> f64 {
        self.order.key(&item.demand, &self.effective_capacity)
    }

    fn open_host(&mut self) {
        self.used.push(Resources::ZERO);
        self.used_net.push(0.0);
    }

    fn host_count(&self) -> usize {
        self.used.len()
    }

    fn fits(&self, host: usize, item: &PackItem) -> bool {
        (self.used[host] + item.demand).fits_within(&self.effective_capacity)
            && self.net_fits(self.used_net[host], item)
    }

    fn fits_empty(&self, item: &PackItem) -> bool {
        item.demand.fits_within(&self.effective_capacity) && self.net_fits(0.0, item)
    }

    fn place(&mut self, host: usize, item: &PackItem) {
        self.used[host] += item.demand;
        self.used_net[host] += item.net_mbps;
    }

    fn demand(&self, item: &PackItem) -> Resources {
        item.demand
    }

    fn effective_capacity(&self) -> Resources {
        self.effective_capacity
    }
}

/// Packs per-VM scalar demands with FFD into `dc`, honouring constraints.
///
/// `bounds` scales the host capacity per dimension (e.g. `(0.8, 0.8)` for
/// the 20% migration reservation).
///
/// # Errors
///
/// See [`pack`] and [`build_items`].
pub fn first_fit_decreasing(
    demands: &BTreeMap<VmId, Resources>,
    dc: &mut DataCenter,
    constraints: &ConstraintSet,
    bounds: (f64, f64),
    order: OrderKey,
) -> Result<Placement, PackError> {
    let capacity = dc.template().capacity();
    let effective = Resources::new(capacity.cpu_rpe2 * bounds.0, capacity.mem_mb * bounds.1);
    let items = build_items(demands, constraints)?;
    let mut model = FfdModel::new(effective, order, dc.len());
    pack(&mut model, items, dc, constraints)
}

/// [`first_fit_decreasing`] with the host-link bandwidth constraint of
/// §3.1: on every host the summed peak network demand of colocated VMs
/// must not exceed the host's link.
///
/// # Errors
///
/// See [`first_fit_decreasing`].
pub fn first_fit_decreasing_with_network(
    demands: &BTreeMap<VmId, Resources>,
    net: &BTreeMap<VmId, f64>,
    dc: &mut DataCenter,
    constraints: &ConstraintSet,
    bounds: (f64, f64),
    order: OrderKey,
) -> Result<Placement, PackError> {
    let capacity = dc.template().capacity();
    let effective = Resources::new(capacity.cpu_rpe2 * bounds.0, capacity.mem_mb * bounds.1);
    let mut items = build_items(demands, constraints)?;
    attach_network(&mut items, net);
    let mut model =
        FfdModel::new(effective, order, dc.len()).with_network_capacity(dc.template().net_mbps);
    pack(&mut model, items, dc, constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcw_cluster::constraints::Constraint;
    use vmcw_cluster::server::ServerModel;

    fn vm(n: u32) -> VmId {
        VmId(n)
    }

    fn host_model() -> ServerModel {
        ServerModel {
            name: "test".into(),
            cpu_rpe2: 100.0,
            mem_mb: 1000.0,
            net_mbps: 1000.0,
            power: vmcw_cluster::power::PowerModel::new(100.0, 200.0),
        }
    }

    fn dc() -> DataCenter {
        DataCenter::new(host_model(), 4, 2)
    }

    fn demands(list: &[(u32, f64, f64)]) -> BTreeMap<VmId, Resources> {
        list.iter()
            .map(|&(id, c, m)| (vm(id), Resources::new(c, m)))
            .collect()
    }

    #[test]
    fn packs_into_minimum_hosts_when_uniform() {
        // 8 VMs of (25, 250): exactly 4 per host on both dimensions.
        let d = demands(&(0..8).map(|i| (i, 25.0, 250.0)).collect::<Vec<_>>());
        let mut dc = dc();
        let p = first_fit_decreasing(
            &d,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Dominant,
        )
        .unwrap();
        assert_eq!(p.active_host_count(), 2);
        assert_eq!(dc.len(), 2);
        assert_eq!(p.len(), 8);
    }

    #[test]
    fn respects_both_dimensions() {
        // CPU-light but memory-heavy: memory limits to 2 per host.
        let d = demands(&(0..4).map(|i| (i, 1.0, 500.0)).collect::<Vec<_>>());
        let mut dc = dc();
        let p = first_fit_decreasing(
            &d,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Dominant,
        )
        .unwrap();
        assert_eq!(p.active_host_count(), 2);
    }

    #[test]
    fn bounds_shrink_effective_capacity() {
        let d = demands(&(0..4).map(|i| (i, 1.0, 500.0)).collect::<Vec<_>>());
        let mut dc = dc();
        // 20% reservation → only one 500 MB VM per host.
        let p = first_fit_decreasing(
            &d,
            &mut dc,
            &ConstraintSet::new(),
            (0.8, 0.8),
            OrderKey::Dominant,
        )
        .unwrap();
        assert_eq!(p.active_host_count(), 4);
    }

    #[test]
    fn oversized_item_is_an_error() {
        let d = demands(&[(0, 150.0, 10.0)]);
        let mut dc = dc();
        let err = first_fit_decreasing(
            &d,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Dominant,
        )
        .unwrap_err();
        assert!(matches!(err, PackError::ItemTooLarge { .. }));
    }

    #[test]
    fn colocation_groups_stay_together() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::Colocate(vm(0), vm(1))).unwrap();
        let d = demands(&[(0, 30.0, 100.0), (1, 30.0, 100.0), (2, 30.0, 100.0)]);
        let mut dc = dc();
        let p = first_fit_decreasing(&d, &mut dc, &cs, (1.0, 1.0), OrderKey::Dominant).unwrap();
        assert_eq!(p.host_of(vm(0)), p.host_of(vm(1)));
    }

    #[test]
    fn anti_colocation_forces_separate_hosts() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::AntiColocate(vm(0), vm(1))).unwrap();
        let d = demands(&[(0, 10.0, 100.0), (1, 10.0, 100.0)]);
        let mut dc = dc();
        let p = first_fit_decreasing(&d, &mut dc, &cs, (1.0, 1.0), OrderKey::Dominant).unwrap();
        assert_ne!(p.host_of(vm(0)), p.host_of(vm(1)));
        assert_eq!(p.active_host_count(), 2);
    }

    #[test]
    fn host_pin_is_honoured() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::PinToHost(vm(1), HostId(2))).unwrap();
        let d = demands(&[(0, 10.0, 100.0), (1, 10.0, 100.0)]);
        let mut dc = dc();
        let p = first_fit_decreasing(&d, &mut dc, &cs, (1.0, 1.0), OrderKey::Dominant).unwrap();
        assert_eq!(p.host_of(vm(1)), Some(HostId(2)));
        assert!(dc.len() >= 3, "hosts provisioned up to the pin");
    }

    #[test]
    fn subnet_pin_is_honoured() {
        let mut cs = ConstraintSet::new();
        // Subnets round-robin over 2: host 0 → subnet 0, host 1 → subnet 1.
        cs.add(Constraint::PinToSubnet(
            vm(0),
            vmcw_cluster::datacenter::SubnetId(1),
        ))
        .unwrap();
        let d = demands(&[(0, 10.0, 100.0)]);
        let mut dc = dc();
        let p = first_fit_decreasing(&d, &mut dc, &cs, (1.0, 1.0), OrderKey::Dominant).unwrap();
        let host = p.host_of(vm(0)).unwrap();
        assert_eq!(
            dc.host(host).unwrap().subnet,
            vmcw_cluster::datacenter::SubnetId(1)
        );
    }

    #[test]
    fn rack_pin_is_honoured() {
        use vmcw_cluster::datacenter::RackId;
        let mut cs = ConstraintSet::new();
        // Test dc(): 4 hosts per rack — rack 1 starts at host 4.
        cs.add(Constraint::PinToRack(vm(0), RackId(1))).unwrap();
        let d = demands(&[(0, 10.0, 100.0), (1, 10.0, 100.0)]);
        let mut dc = dc();
        let p = first_fit_decreasing(&d, &mut dc, &cs, (1.0, 1.0), OrderKey::Dominant).unwrap();
        let host = p.host_of(vm(0)).unwrap();
        assert_eq!(dc.host(host).unwrap().rack, RackId(1));
        // The unconstrained VM stays on the first host.
        assert_eq!(p.host_of(vm(1)), Some(HostId(0)));
    }

    #[test]
    fn inconsistent_group_is_rejected() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::Colocate(vm(0), vm(1))).unwrap();
        cs.add(Constraint::Colocate(vm(1), vm(2))).unwrap();
        cs.add(Constraint::AntiColocate(vm(0), vm(2))).unwrap();
        let d = demands(&[(0, 1.0, 1.0), (1, 1.0, 1.0), (2, 1.0, 1.0)]);
        assert!(matches!(
            build_items(&d, &cs),
            Err(PackError::InconsistentConstraints { .. })
        ));
    }

    #[test]
    fn conflicting_pins_in_group_rejected() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::Colocate(vm(0), vm(1))).unwrap();
        cs.add(Constraint::PinToHost(vm(0), HostId(0))).unwrap();
        cs.add(Constraint::PinToHost(vm(1), HostId(1))).unwrap();
        let d = demands(&[(0, 1.0, 1.0), (1, 1.0, 1.0)]);
        assert!(matches!(
            build_items(&d, &cs),
            Err(PackError::InconsistentConstraints { .. })
        ));
    }

    #[test]
    fn pinned_host_too_small_is_an_error() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::PinToHost(vm(0), HostId(0))).unwrap();
        cs.add(Constraint::PinToHost(vm(1), HostId(0))).unwrap();
        let d = demands(&[(0, 80.0, 10.0), (1, 80.0, 10.0)]);
        let mut dc = dc();
        let err =
            first_fit_decreasing(&d, &mut dc, &cs, (1.0, 1.0), OrderKey::Dominant).unwrap_err();
        assert!(matches!(err, PackError::PinnedHostInfeasible { .. }));
    }

    #[test]
    fn decreasing_order_beats_arbitrary_order_on_classic_instance() {
        // Classic FFD-friendly instance: big items first avoids
        // fragmentation. (60,60,40,40) into bins of 100 → 2 bins, while
        // first-fit in the order (40,40,60,60) would need 3.
        let d = demands(&[
            (0, 40.0, 1.0),
            (1, 60.0, 1.0),
            (2, 40.0, 1.0),
            (3, 60.0, 1.0),
        ]);
        let mut dc = dc();
        let p = first_fit_decreasing(
            &d,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Cpu,
        )
        .unwrap();
        assert_eq!(p.active_host_count(), 2);
    }

    #[test]
    fn network_capacity_limits_colocation() {
        // Four VMs, trivially small CPU/mem but 400 Mbit/s each on a
        // 1 Gbit/s host link: at most two share a host.
        let d = demands(&(0..4).map(|i| (i, 1.0, 10.0)).collect::<Vec<_>>());
        let net: BTreeMap<VmId, f64> = (0..4).map(|i| (vm(i), 400.0)).collect();
        let mut dc1 = dc();
        let p = first_fit_decreasing_with_network(
            &d,
            &net,
            &mut dc1,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Dominant,
        )
        .unwrap();
        assert_eq!(p.active_host_count(), 2);
        for host in p.active_hosts() {
            assert!(p.vms_on(host).len() <= 2);
        }
        // Without the constraint they all share one host.
        let mut dc2 = dc();
        let p2 = first_fit_decreasing(
            &d,
            &mut dc2,
            &ConstraintSet::new(),
            (1.0, 1.0),
            OrderKey::Dominant,
        )
        .unwrap();
        assert_eq!(p2.active_host_count(), 1);
    }

    #[test]
    fn attach_network_sums_group_members() {
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::Colocate(vm(0), vm(1))).unwrap();
        let d = demands(&[(0, 1.0, 1.0), (1, 1.0, 1.0), (2, 1.0, 1.0)]);
        let mut items = build_items(&d, &cs).unwrap();
        let net: BTreeMap<VmId, f64> = [(vm(0), 100.0), (vm(1), 50.0), (vm(2), 25.0)]
            .into_iter()
            .collect();
        attach_network(&mut items, &net);
        let merged = items.iter().find(|i| i.vms.len() == 2).unwrap();
        assert_eq!(merged.net_mbps, 150.0);
        let single = items.iter().find(|i| i.vms == vec![vm(2)]).unwrap();
        assert_eq!(single.net_mbps, 25.0);
    }

    #[test]
    fn deterministic_output() {
        let d = demands(
            &(0..20)
                .map(|i| (i, 10.0 + f64::from(i % 3), 100.0))
                .collect::<Vec<_>>(),
        );
        let run = || {
            let mut dc = dc();
            first_fit_decreasing(
                &d,
                &mut dc,
                &ConstraintSet::new(),
                (1.0, 1.0),
                OrderKey::Dominant,
            )
            .unwrap()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn order_keys_scalarise_distinctly() {
        let cap = Resources::new(100.0, 1000.0);
        let item = Resources::new(50.0, 100.0);
        assert_eq!(OrderKey::Cpu.key(&item, &cap), 0.5);
        assert_eq!(OrderKey::Mem.key(&item, &cap), 0.1);
        assert_eq!(OrderKey::Dominant.key(&item, &cap), 0.5);
        assert!((OrderKey::L2.key(&item, &cap) - (0.25f64 + 0.01).sqrt()).abs() < 1e-12);
    }
}
