//! Consolidation planners for the reproduction of *Virtual Machine
//! Consolidation in the Wild* (Middleware 2014).
//!
//! The paper compares three planning algorithms (§5.1):
//!
//! * **Semi-Static** — "vanilla semi-static algorithm that uses peak
//!   expected resource demand for sizing and first-fit-decreasing for
//!   placement" → [`planner::Planner::plan_semi_static`].
//! * **Stochastic** — "inspired from the PCP algorithm in \[27\]. Body of
//!   the distribution = 90 percentile, Tail of the distribution = Max" →
//!   [`planner::Planner::plan_stochastic`].
//! * **Dynamic** — "a state-of-the-art dynamic consolidation scheme that
//!   compares various adaptation actions possible and selects the one with
//!   least cost. The actual sizing function used in this case is the
//!   estimated peak demand in the consolidation window" →
//!   [`planner::Planner::plan_dynamic`].
//!
//! Static consolidation (§2.2.1) is also provided for completeness.
//!
//! Module map:
//!
//! * [`input`] — planning inputs: VM demand traces split into a 30-day
//!   planning history and a 14-day evaluation window, plus the
//!   virtualisation overhead model.
//! * [`sizing`] — sizing functions (max, percentile, mean) and
//!   consolidation-window demand estimation.
//! * [`prediction`] — the online predictors the dynamic planner uses for
//!   "estimated peak demand in the consolidation window".
//! * [`placement`] — placement representation and capacity accounting.
//! * [`ffd`] — constraint-aware two-dimensional First-Fit-Decreasing.
//! * [`bfd`] — Best-Fit-Decreasing baseline on the same driver.
//! * [`pcp`] — the stochastic Peak-Clustering variant.
//! * [`correlation`] — the second stochastic variant of \[27\]: explicit
//!   pairwise-correlation charging instead of bucket envelopes.
//! * [`dynamic`] — the migration-cost-aware dynamic planner.
//! * [`drain`] — host maintenance evacuation (§1.2's production use of
//!   live migration).
//! * [`fixed_pool`] — packing into an existing, possibly heterogeneous
//!   estate ("does what we own hold this workload?").
//! * [`planner`] — the facade tying everything together.
//!
//! # Example
//!
//! Plan the (shrunk) Airlines data center with the stochastic planner:
//!
//! ```
//! use vmcw_consolidation::{Planner, PlanningInput, VirtualizationModel};
//! use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};
//!
//! let workload = GeneratorConfig::new(DataCenterId::Airlines)
//!     .scale(0.05)
//!     .days(21)
//!     .generate(1);
//! let input = PlanningInput::from_workload(&workload, 14, VirtualizationModel::default());
//! let plan = Planner::baseline().plan_stochastic(&input)?;
//! assert!(plan.provisioned_hosts() > 0);
//! # Ok::<(), vmcw_consolidation::PackError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bfd;
pub mod correlation;
pub mod drain;
pub mod dynamic;
pub mod ffd;
pub mod fixed_pool;
pub mod input;
pub mod pcp;
pub mod placement;
pub mod planner;
pub mod prediction;
pub mod sizing;

pub use input::{PlanningInput, VirtualizationModel, VmTrace};
pub use placement::{PackError, Placement};
pub use planner::{
    ConsolidationPlan, PackingAlgorithm, PlanPlacements, Planner, PlannerKind, StochasticVariant,
};
pub use prediction::Predictor;
pub use sizing::SizingFunction;
