//! Host maintenance drains.
//!
//! §1.2: "VM live migration is often employed for high availability and
//! server maintenance but not for dynamic VM consolidation." This module
//! provides that production use case: evacuate one host completely —
//! respecting capacities, the link-bandwidth admission and the deployment
//! constraints — and schedule the transfers so the operator knows how
//! long the drain takes before the maintenance window starts.

use crate::input::PlanningInput;
use crate::placement::Placement;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use vmcw_cluster::datacenter::{DataCenter, HostId};
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;
use vmcw_migration::precopy::{HostLoad, PrecopyConfig, VmMigrationProfile};
use vmcw_migration::schedule::{schedule, MigrationRequest, MigrationSchedule};

/// Why a drain could not be planned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DrainError {
    /// The host is not part of the placement / data center.
    UnknownHost(HostId),
    /// A VM on the host is pinned there and cannot move.
    PinnedVm(VmId),
    /// No other host can take this VM under the capacity bounds and
    /// constraints.
    NoCapacity(VmId),
}

impl fmt::Display for DrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrainError::UnknownHost(h) => write!(f, "{h} is not a provisioned host"),
            DrainError::PinnedVm(vm) => {
                write!(f, "{vm} is pinned to the draining host and cannot move")
            }
            DrainError::NoCapacity(vm) => {
                write!(f, "no destination host has capacity for {vm}")
            }
        }
    }
}

impl Error for DrainError {}

/// A planned drain: where each VM goes and the migration schedule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DrainPlan {
    /// The host being drained.
    pub host: HostId,
    /// Planned moves `(vm, destination)` in migration order.
    pub moves: Vec<(VmId, HostId)>,
    /// The simulated, link-serialised migration schedule.
    pub schedule: MigrationSchedule,
}

impl DrainPlan {
    /// Wall-clock duration of the drain, seconds.
    #[must_use]
    pub fn duration_secs(&self) -> f64 {
        self.schedule.makespan_secs
    }
}

/// Plans the evacuation of `host` at evaluation hour `at_hour`.
///
/// Destinations are chosen most-loaded-first among the other provisioned
/// hosts (keeping the footprint tight for the post-maintenance return),
/// under the capacity `bounds`, the host-link bandwidth and the
/// deployment constraints. Anti-colocated VMs naturally spread across
/// destinations.
///
/// # Errors
///
/// See [`DrainError`].
pub fn plan_drain(
    input: &PlanningInput,
    placement: &Placement,
    host: HostId,
    dc: &DataCenter,
    at_hour: usize,
    bounds: (f64, f64),
    precopy: &PrecopyConfig,
) -> Result<DrainPlan, DrainError> {
    if dc.host(host).is_none() {
        return Err(DrainError::UnknownHost(host));
    }
    let eval = input.eval_range();
    let hour = eval.start + at_hour;
    let capacity = dc.template().capacity();
    let effective = Resources::new(capacity.cpu_rpe2 * bounds.0, capacity.mem_mb * bounds.1);
    let effective_net = dc.template().net_mbps * bounds.0;

    let demand_of = |vm: VmId| -> Resources {
        input
            .vm_trace(vm)
            .map_or(Resources::ZERO, |t| t.demand_at(hour))
    };
    let net_of = |vm: VmId| -> f64 { input.vm_trace(vm).map_or(0.0, |t| t.net_peak_mbps) };

    // Current loads of every other host.
    let mut loads: BTreeMap<HostId, Resources> = BTreeMap::new();
    let mut nets: BTreeMap<HostId, f64> = BTreeMap::new();
    let mut residents: BTreeMap<HostId, Vec<VmId>> = BTreeMap::new();
    for (vm, h) in placement.iter() {
        if h == host {
            continue;
        }
        *loads.entry(h).or_insert(Resources::ZERO) += demand_of(vm);
        *nets.entry(h).or_insert(0.0) += net_of(vm);
        residents.entry(h).or_default().push(vm);
    }

    // Evacuate big VMs first (hardest to place).
    let mut evacuees: Vec<VmId> = placement.vms_on(host).to_vec();
    for &vm in &evacuees {
        if input.constraints.pinned_host(vm) == Some(host) {
            return Err(DrainError::PinnedVm(vm));
        }
    }
    evacuees.sort_by(|&a, &b| {
        demand_of(b)
            .dominant_share(&effective)
            .total_cmp(&demand_of(a).dominant_share(&effective))
            .then_with(|| a.cmp(&b))
    });

    let src_load = {
        let total: Resources = evacuees.iter().map(|&vm| demand_of(vm)).sum();
        HostLoad::new(
            total.cpu_rpe2 / capacity.cpu_rpe2,
            total.mem_mb / capacity.mem_mb,
        )
    };

    let mut moves = Vec::with_capacity(evacuees.len());
    let mut requests = Vec::with_capacity(evacuees.len());
    for vm in evacuees {
        let demand = demand_of(vm);
        // Most-loaded first.
        let mut candidates: Vec<(HostId, Resources)> =
            loads.iter().map(|(&h, &l)| (h, l)).collect();
        candidates.sort_by(|a, b| {
            b.1.dominant_share(&effective)
                .total_cmp(&a.1.dominant_share(&effective))
                .then_with(|| a.0.cmp(&b.0))
        });
        let mut dest = None;
        for (cand, load) in candidates {
            if !(load + demand).fits_within(&effective) {
                continue;
            }
            if effective_net > 0.0
                && nets.get(&cand).copied().unwrap_or(0.0) + net_of(vm) > effective_net
            {
                continue;
            }
            let location = dc.host(cand).expect("provisioned").location();
            let empty = Vec::new();
            let dest_residents = residents.get(&cand).unwrap_or(&empty);
            if !input.constraints.allows(vm, location, dest_residents) {
                continue;
            }
            dest = Some(cand);
            break;
        }
        let Some(dest) = dest else {
            return Err(DrainError::NoCapacity(vm));
        };
        *loads.entry(dest).or_insert(Resources::ZERO) += demand;
        *nets.entry(dest).or_insert(0.0) += net_of(vm);
        residents.entry(dest).or_default().push(vm);
        moves.push((vm, dest));
        let trace = input.vm_trace(vm).expect("placed VM");
        let activity = {
            let peak = trace.cpu_rpe2.max().unwrap_or(1.0).max(1e-9);
            (demand.cpu_rpe2 / peak).clamp(0.0, 1.0)
        };
        requests.push(MigrationRequest {
            vm,
            from: host,
            to: dest,
            profile: VmMigrationProfile::from_demand(demand.mem_mb.max(64.0), activity),
            source_load: src_load,
        });
    }

    Ok(DrainPlan {
        host,
        moves,
        schedule: schedule(&requests, precopy),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::input::VirtualizationModel;
    use crate::planner::{Planner, PlannerKind};
    use vmcw_cluster::constraints::{Constraint, ConstraintSet};
    use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};

    fn setup() -> (PlanningInput, crate::planner::ConsolidationPlan) {
        let w = GeneratorConfig::new(DataCenterId::Beverage)
            .scale(0.05)
            .days(12)
            .generate(19);
        let input = PlanningInput::from_workload(&w, 8, VirtualizationModel::baseline());
        let plan = Planner::baseline()
            .plan(PlannerKind::Stochastic, &input)
            .unwrap();
        (input, plan)
    }

    #[test]
    fn drain_moves_every_vm_off_the_host() {
        let (input, plan) = setup();
        let placement = plan.placements.at_hour(0);
        let host = placement.active_hosts()[0];
        let before = placement.vms_on(host).len();
        assert!(before > 0);
        let drain = plan_drain(
            &input,
            placement,
            host,
            &plan.dc,
            0,
            (1.0, 1.0),
            &PrecopyConfig::gigabit(),
        )
        .unwrap();
        assert_eq!(drain.moves.len(), before);
        assert!(drain.moves.iter().all(|&(_, dest)| dest != host));
        assert!(drain.duration_secs() > 0.0);
        assert_eq!(drain.schedule.items.len(), before);
    }

    #[test]
    fn drain_respects_capacity_on_destinations() {
        let (input, plan) = setup();
        let placement = plan.placements.at_hour(0);
        let host = placement.active_hosts()[0];
        let drain = plan_drain(
            &input,
            placement,
            host,
            &plan.dc,
            0,
            (0.9, 0.9),
            &PrecopyConfig::gigabit(),
        )
        .unwrap();
        // Recompute destination loads after the drain.
        let eval = input.eval_range();
        let capacity = plan.dc.template().capacity();
        let mut loads: BTreeMap<HostId, Resources> = BTreeMap::new();
        for (vm, h) in placement.iter() {
            let h = if h == host {
                drain.moves.iter().find(|&&(v, _)| v == vm).unwrap().1
            } else {
                h
            };
            *loads.entry(h).or_insert(Resources::ZERO) +=
                input.vm_trace(vm).unwrap().demand_at(eval.start);
        }
        for (h, load) in loads {
            assert!(
                load.fits_within(
                    &(Resources::new(capacity.cpu_rpe2 * 0.9, capacity.mem_mb * 0.9) * 1.0001)
                ),
                "{h} overloaded after drain: {load}"
            );
        }
    }

    #[test]
    fn pinned_vm_blocks_the_drain() {
        let w = GeneratorConfig::new(DataCenterId::Airlines)
            .scale(0.03)
            .days(10)
            .generate(5);
        let mut cs = ConstraintSet::new();
        cs.add(Constraint::PinToHost(vmcw_cluster::vm::VmId(0), HostId(0)))
            .unwrap();
        let input = PlanningInput::from_workload(&w, 7, VirtualizationModel::baseline())
            .with_constraints(cs);
        let plan = Planner::baseline()
            .plan(PlannerKind::SemiStatic, &input)
            .unwrap();
        let placement = plan.placements.at_hour(0);
        let err = plan_drain(
            &input,
            placement,
            HostId(0),
            &plan.dc,
            0,
            (1.0, 1.0),
            &PrecopyConfig::gigabit(),
        )
        .unwrap_err();
        assert_eq!(err, DrainError::PinnedVm(vmcw_cluster::vm::VmId(0)));
        assert!(err.to_string().contains("pinned"));
    }

    #[test]
    fn unknown_host_is_an_error() {
        let (input, plan) = setup();
        let placement = plan.placements.at_hour(0);
        let err = plan_drain(
            &input,
            placement,
            HostId(9999),
            &plan.dc,
            0,
            (1.0, 1.0),
            &PrecopyConfig::gigabit(),
        )
        .unwrap_err();
        assert_eq!(err, DrainError::UnknownHost(HostId(9999)));
    }

    #[test]
    fn tight_bounds_can_make_a_drain_infeasible() {
        let (input, plan) = setup();
        let placement = plan.placements.at_hour(0);
        let host = placement.active_hosts()[0];
        // Absurdly tight bounds: nothing fits anywhere.
        let result = plan_drain(
            &input,
            placement,
            host,
            &plan.dc,
            0,
            (0.01, 0.01),
            &PrecopyConfig::gigabit(),
        );
        assert!(matches!(result, Err(DrainError::NoCapacity(_))));
    }
}
