//! Demand predictors for the dynamic planner.
//!
//! Dynamic consolidation sizes each VM at "the estimated peak demand in
//! the consolidation window" (§5.1). The estimate must come from data
//! available *before* the window starts — prediction error is precisely
//! what produces the resource contention of Figs 8, 9 and 11. Predictors
//! operate on the per-window demand series (one sample per consolidation
//! window, sized with max).

use serde::{Deserialize, Serialize};

/// Online predictor of the next window's peak demand.
///
/// All predictors receive the full per-window demand history as
/// `actuals[0..idx]` plus the planning-history windows and must estimate
/// `actuals[idx]`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum Predictor {
    /// Perfect foresight — the upper bound used in ablations.
    Oracle,
    /// Last window's actual demand.
    PreviousWindow,
    /// The same window one day earlier (diurnal periodicity).
    SameWindowYesterday,
    /// `safety ×` max of the previous window and the same window on the
    /// previous two days — the default, mirroring common practice in
    /// consolidation engines (short-term trend + diurnal template robust
    /// to a single skipped batch run).
    RecentAndPeriodic {
        /// Multiplicative safety margin (≥ 0; 1.1 = +10% headroom).
        safety: f64,
    },
    /// Exponentially weighted moving average of past windows.
    Ewma {
        /// Smoothing factor in `(0, 1]`.
        alpha: f64,
    },
}

impl Predictor {
    /// The baseline predictor: recent+periodic with 30% headroom (the
    /// safety margin production consolidation engines add on top of a
    /// point estimate).
    #[must_use]
    pub fn baseline() -> Self {
        Predictor::RecentAndPeriodic { safety: 1.3 }
    }

    /// Predicts window `idx` of the evaluation period.
    ///
    /// * `history` — per-window demands of the planning history (the
    ///   warehouse's 30 days), oldest first.
    /// * `actuals` — per-window demands of the evaluation period; only
    ///   `actuals[..idx]` may be read (the oracle is the one exception).
    /// * `windows_per_day` — how many consolidation windows form a day.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= actuals.len()` or `windows_per_day == 0`.
    #[must_use]
    pub fn predict(
        &self,
        history: &[f64],
        actuals: &[f64],
        idx: usize,
        windows_per_day: usize,
    ) -> f64 {
        assert!(idx < actuals.len(), "window index out of range");
        assert!(windows_per_day > 0, "a day has at least one window");
        // Value at evaluation-relative window position `p` (may be
        // negative, reaching into the history).
        let lookup = |p: isize| -> Option<f64> {
            if p >= 0 {
                let p = p as usize;
                (p < idx).then(|| actuals[p])
            } else {
                let back = (-p) as usize;
                (back <= history.len()).then(|| history[history.len() - back])
            }
        };
        let prev = lookup(idx as isize - 1);
        let yesterday = lookup(idx as isize - windows_per_day as isize);
        let fallback = history.last().copied().unwrap_or(0.0);
        match self {
            Predictor::Oracle => actuals[idx],
            Predictor::PreviousWindow => prev.unwrap_or(fallback),
            Predictor::SameWindowYesterday => yesterday.unwrap_or(fallback),
            Predictor::RecentAndPeriodic { safety } => {
                let p = prev.unwrap_or(fallback);
                let y = yesterday.unwrap_or(p);
                let y2 = lookup(idx as isize - 2 * windows_per_day as isize).unwrap_or(y);
                p.max(y).max(y2) * safety
            }
            Predictor::Ewma { alpha } => {
                assert!(
                    *alpha > 0.0 && *alpha <= 1.0,
                    "EWMA alpha must be in (0, 1]"
                );
                let mut est: Option<f64> = None;
                for &h in history {
                    est = Some(match est {
                        None => h,
                        Some(e) => alpha * h + (1.0 - alpha) * e,
                    });
                }
                for &a in &actuals[..idx] {
                    est = Some(match est {
                        None => a,
                        Some(e) => alpha * a + (1.0 - alpha) * e,
                    });
                }
                est.unwrap_or(0.0)
            }
        }
    }

    /// Human-readable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            Predictor::Oracle => "oracle".to_owned(),
            Predictor::PreviousWindow => "prev-window".to_owned(),
            Predictor::SameWindowYesterday => "yesterday".to_owned(),
            Predictor::RecentAndPeriodic { safety } => format!("recent+periodic(x{safety})"),
            Predictor::Ewma { alpha } => format!("ewma({alpha})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HISTORY: [f64; 4] = [10.0, 20.0, 30.0, 40.0];
    const ACTUALS: [f64; 6] = [5.0, 6.0, 7.0, 8.0, 9.0, 10.0];

    #[test]
    fn oracle_returns_actual() {
        assert_eq!(Predictor::Oracle.predict(&HISTORY, &ACTUALS, 3, 2), 8.0);
    }

    #[test]
    fn previous_window() {
        let p = Predictor::PreviousWindow;
        assert_eq!(p.predict(&HISTORY, &ACTUALS, 2, 2), 6.0);
        // First window falls back to the last history window.
        assert_eq!(p.predict(&HISTORY, &ACTUALS, 0, 2), 40.0);
    }

    #[test]
    fn same_window_yesterday_reaches_into_history() {
        let p = Predictor::SameWindowYesterday;
        // idx 1 with 2 windows/day → idx −1 → last history window (40).
        assert_eq!(p.predict(&HISTORY, &ACTUALS, 1, 2), 40.0);
        // idx 4 → idx 2 → actual 7.
        assert_eq!(p.predict(&HISTORY, &ACTUALS, 4, 2), 7.0);
    }

    #[test]
    fn recent_and_periodic_takes_max_with_safety() {
        let p = Predictor::RecentAndPeriodic { safety: 1.5 };
        // idx 4: prev = 8, yesterday (idx 2) = 7 → max 8 × 1.5.
        assert_eq!(p.predict(&HISTORY, &ACTUALS, 4, 2), 12.0);
    }

    #[test]
    fn ewma_converges_to_steady_state() {
        let p = Predictor::Ewma { alpha: 0.5 };
        let flat = [3.0; 10];
        let est = p.predict(&flat, &flat, 9, 2);
        assert!((est - 3.0).abs() < 1e-9);
    }

    #[test]
    fn ewma_tracks_recent_more_with_high_alpha() {
        let slow = Predictor::Ewma { alpha: 0.1 };
        let fast = Predictor::Ewma { alpha: 0.9 };
        // History low, recent actuals high.
        let est_slow = slow.predict(&[1.0; 8], &[10.0; 4], 3, 2);
        let est_fast = fast.predict(&[1.0; 8], &[10.0; 4], 3, 2);
        assert!(est_fast > est_slow);
    }

    #[test]
    fn empty_history_falls_back_to_zero() {
        assert_eq!(Predictor::PreviousWindow.predict(&[], &ACTUALS, 0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "window index")]
    fn out_of_range_idx_panics() {
        let _ = Predictor::Oracle.predict(&HISTORY, &ACTUALS, 6, 2);
    }

    #[test]
    fn labels() {
        assert_eq!(Predictor::Oracle.label(), "oracle");
        assert!(Predictor::baseline().label().contains("recent+periodic"));
    }
}
