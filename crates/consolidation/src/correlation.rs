//! Correlation-aware stochastic placement (the CBP flavour of \[27\]).
//!
//! §2.2.2: "Consolidation engagements often analyse workloads and
//! identify workloads with negative correlation. Ensuring that positively
//! correlated workloads are not placed together allows more aggressive
//! sizing (e.g., using average resource demand as opposed to max)."
//!
//! This planner is the second stochastic variant of Verma et al. \[27\],
//! complementing the bucket-envelope PCP of [`crate::pcp`]: each VM is
//! summarised by a body (aggressive sizing) and a tail, plus an
//! hour-of-week demand *signature*. On a candidate host, a VM whose
//! signature correlates above a threshold with any resident is charged
//! its tail (its peaks will coincide with theirs); uncorrelated VMs are
//! charged their body. The ablation benches compare it against PCP.

use crate::ffd::{pack, BinPackModel, OrderKey};
use crate::input::VmTrace;
use crate::placement::{PackError, Placement};
use crate::sizing::SizingFunction;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use vmcw_cluster::constraints::ConstraintSet;
use vmcw_cluster::datacenter::DataCenter;
use vmcw_cluster::resources::Resources;
use vmcw_cluster::vm::VmId;
use vmcw_trace::stats;

/// Configuration of the correlation-aware planner.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CorrelationConfig {
    /// Body sizing (aggressive; \[27\] suggests mean to P90).
    pub body: SizingFunction,
    /// Tail sizing for correlated co-residents.
    pub tail: SizingFunction,
    /// Pearson threshold above which two VMs count as positively
    /// correlated (the ablation sweeps this).
    pub threshold: f64,
    /// Signature length: demands are folded into this many hour-of-week
    /// buckets before correlating.
    pub signature_buckets: usize,
    /// FFD ordering for the body demand.
    pub order: OrderKey,
}

impl CorrelationConfig {
    /// Defaults in the spirit of \[27\]: body = P90, tail = max,
    /// correlation threshold 0.5, hour-of-week signatures.
    #[must_use]
    pub fn paper() -> Self {
        Self {
            body: SizingFunction::BODY_P90,
            tail: SizingFunction::Max,
            threshold: 0.5,
            signature_buckets: 168,
            order: OrderKey::Dominant,
        }
    }
}

impl Default for CorrelationConfig {
    fn default() -> Self {
        Self::paper()
    }
}

/// Per-group item: sized demands plus the CPU-demand signature.
#[derive(Debug, Clone, PartialEq)]
pub struct CorrelationItem {
    /// Members of the colocation group.
    pub vms: Vec<VmId>,
    /// Aggressive (body) demand.
    pub body: Resources,
    /// Conservative (tail) demand.
    pub tail: Resources,
    /// Mean CPU demand per signature bucket.
    pub signature: Vec<f64>,
    /// Peak network demand of the group, Mbit/s.
    pub net_mbps: f64,
}

/// Folds a demand series into a per-bucket mean signature.
fn signature(values: &[f64], offset: usize, buckets: usize) -> Vec<f64> {
    let mut sums = vec![0.0; buckets];
    let mut counts = vec![0usize; buckets];
    for (i, &v) in values.iter().enumerate() {
        let b = (offset + i) % buckets;
        sums[b] += v;
        counts[b] += 1;
    }
    sums.iter()
        .zip(&counts)
        .map(|(s, &c)| if c > 0 { s / c as f64 } else { 0.0 })
        .collect()
}

/// Builds correlation items from VM traces over the history range.
///
/// # Errors
///
/// Returns [`PackError::InconsistentConstraints`] for unsatisfiable
/// colocation groups.
pub fn build_correlation_items(
    vms: &[VmTrace],
    history: Range<usize>,
    config: &CorrelationConfig,
    constraints: &ConstraintSet,
) -> Result<Vec<CorrelationItem>, PackError> {
    assert!(
        config.signature_buckets > 0,
        "need at least one signature bucket"
    );
    let per_vm: std::collections::BTreeMap<VmId, CorrelationItem> = vms
        .iter()
        .map(|t| {
            let cpu = &t.cpu_rpe2.values()[history.clone()];
            let mem = &t.mem_mb.values()[history.clone()];
            let item = CorrelationItem {
                vms: vec![t.vm.id],
                body: Resources::new(config.body.size(cpu), config.body.size(mem)),
                tail: Resources::new(config.tail.size(cpu), config.tail.size(mem)),
                signature: signature(cpu, history.start, config.signature_buckets),
                net_mbps: t.net_peak_mbps,
            };
            (t.vm.id, item)
        })
        .collect();
    let scalar: std::collections::BTreeMap<VmId, Resources> =
        per_vm.iter().map(|(&id, it)| (id, it.body)).collect();
    let groups = crate::ffd::build_items(&scalar, constraints)?;
    Ok(groups
        .into_iter()
        .map(|g| {
            let mut merged = CorrelationItem {
                vms: Vec::new(),
                body: Resources::ZERO,
                tail: Resources::ZERO,
                signature: vec![0.0; config.signature_buckets],
                net_mbps: 0.0,
            };
            for vm in g.vms {
                let it = &per_vm[&vm];
                merged.vms.push(vm);
                merged.body += it.body;
                merged.tail += it.tail;
                merged.net_mbps += it.net_mbps;
                for (a, b) in merged.signature.iter_mut().zip(&it.signature) {
                    *a += b;
                }
            }
            merged
        })
        .collect())
}

/// Host-state model: residents are remembered so correlation against
/// newcomers can be evaluated, and each resident is charged body or tail
/// depending on whether anyone on the host correlates with it.
#[derive(Debug, Clone)]
struct CorrelationModel {
    effective_capacity: Resources,
    config: CorrelationConfig,
    net_capacity: f64,
    /// All items (indexed by their position in the original vector).
    items: Vec<CorrelationItem>,
    /// Resident item indices per host.
    residents: Vec<Vec<usize>>,
    /// Index of the item currently being packed (set by the driver flow:
    /// items are moved, so we track identity by the first VM id).
    index_of_first_vm: std::collections::BTreeMap<VmId, usize>,
}

impl CorrelationModel {
    fn new(
        effective_capacity: Resources,
        config: CorrelationConfig,
        items: &[CorrelationItem],
        hosts: usize,
        net_capacity: f64,
    ) -> Self {
        let index_of_first_vm = items
            .iter()
            .enumerate()
            .map(|(i, it)| (it.vms[0], i))
            .collect();
        Self {
            effective_capacity,
            config,
            net_capacity,
            items: items.to_vec(),
            residents: vec![Vec::new(); hosts],
            index_of_first_vm,
        }
    }

    fn correlated(&self, a: &CorrelationItem, b: &CorrelationItem) -> bool {
        stats::pearson(&a.signature, &b.signature).is_some_and(|r| r > self.config.threshold)
    }

    /// Charged demand of a prospective host population: every member that
    /// correlates with at least one other member is charged its tail,
    /// everyone else their body.
    fn charged_demand(&self, members: &[usize]) -> Resources {
        let mut total = Resources::ZERO;
        for (pos, &i) in members.iter().enumerate() {
            let correlated = members.iter().enumerate().any(|(other_pos, &j)| {
                other_pos != pos && self.correlated(&self.items[i], &self.items[j])
            });
            total += if correlated {
                self.items[i].tail
            } else {
                self.items[i].body
            };
        }
        total
    }

    fn item_index(&self, item: &CorrelationItem) -> usize {
        self.index_of_first_vm[&item.vms[0]]
    }
}

impl BinPackModel for CorrelationModel {
    type Item = CorrelationItem;

    fn vms<'a>(&self, item: &'a CorrelationItem) -> &'a [VmId] {
        &item.vms
    }

    fn sort_key(&self, item: &CorrelationItem) -> f64 {
        self.config.order.key(&item.body, &self.effective_capacity)
    }

    fn open_host(&mut self) {
        self.residents.push(Vec::new());
    }

    fn host_count(&self) -> usize {
        self.residents.len()
    }

    fn fits(&self, host: usize, item: &CorrelationItem) -> bool {
        if self.net_capacity > 0.0 {
            let used_net: f64 = self.residents[host]
                .iter()
                .map(|&i| self.items[i].net_mbps)
                .sum();
            if used_net + item.net_mbps > self.net_capacity {
                return false;
            }
        }
        let mut members = self.residents[host].clone();
        members.push(self.item_index(item));
        self.charged_demand(&members)
            .fits_within(&self.effective_capacity)
    }

    fn fits_empty(&self, item: &CorrelationItem) -> bool {
        // Alone on a host an item is charged its tail if its members
        // correlate internally — conservatively use the tail.
        item.tail.fits_within(&self.effective_capacity)
            || item.body.fits_within(&self.effective_capacity)
    }

    fn place(&mut self, host: usize, item: &CorrelationItem) {
        let idx = self.item_index(item);
        self.residents[host].push(idx);
    }

    fn demand(&self, item: &CorrelationItem) -> Resources {
        item.tail
    }

    fn effective_capacity(&self) -> Resources {
        self.effective_capacity
    }
}

/// Runs the correlation-aware stochastic planner.
///
/// # Errors
///
/// See [`pack`] and [`build_correlation_items`].
pub fn correlation_pack(
    vms: &[VmTrace],
    history: Range<usize>,
    dc: &mut DataCenter,
    constraints: &ConstraintSet,
    bounds: (f64, f64),
    config: &CorrelationConfig,
) -> Result<Placement, PackError> {
    let capacity = dc.template().capacity();
    let effective = Resources::new(capacity.cpu_rpe2 * bounds.0, capacity.mem_mb * bounds.1);
    let items = build_correlation_items(vms, history, config, constraints)?;
    let mut model =
        CorrelationModel::new(effective, *config, &items, dc.len(), dc.template().net_mbps);
    pack(&mut model, items, dc, constraints)
}

#[cfg(test)]
mod tests {
    use super::*;
    use vmcw_cluster::power::PowerModel;
    use vmcw_cluster::server::ServerModel;
    use vmcw_cluster::vm::Vm;
    use vmcw_trace::series::{StepSecs, TimeSeries};

    fn dc() -> DataCenter {
        DataCenter::new(
            ServerModel {
                name: "test".into(),
                cpu_rpe2: 100.0,
                mem_mb: 10_000.0,
                net_mbps: 1000.0,
                power: PowerModel::new(100.0, 200.0),
            },
            8,
            1,
        )
    }

    /// VM idling at `base`, spiking to `peak` at `peak_hour` daily.
    fn vm(id: u32, base: f64, peak: f64, peak_hour: usize) -> VmTrace {
        let cpu: Vec<f64> = (0..24 * 14)
            .map(|h| if h % 24 == peak_hour { peak } else { base })
            .collect();
        let len = cpu.len();
        VmTrace {
            vm: Vm::new(VmId(id), format!("vm{id}"), 1024.0),
            cpu_rpe2: TimeSeries::new(StepSecs::HOUR, cpu),
            mem_mb: TimeSeries::new(StepSecs::HOUR, vec![100.0; len]),
            net_peak_mbps: 0.0,
        }
    }

    fn config() -> CorrelationConfig {
        CorrelationConfig {
            signature_buckets: 24,
            ..CorrelationConfig::paper()
        }
    }

    #[test]
    fn signatures_average_by_bucket() {
        let sig = signature(&[1.0, 2.0, 3.0, 5.0], 0, 2);
        assert_eq!(sig, vec![2.0, 3.5]);
        // Offset shifts the phase.
        let sig = signature(&[1.0, 2.0], 1, 2);
        assert_eq!(sig, vec![2.0, 1.0]);
    }

    #[test]
    fn anti_correlated_vms_share_a_host_at_body_sizing() {
        // Two VMs with tails of 60 but disjoint peak hours: charged at
        // bodies (~5 each) they share one 100-unit host.
        let vms = vec![vm(0, 5.0, 60.0, 2), vm(1, 5.0, 60.0, 14)];
        let mut dc = dc();
        let p = correlation_pack(
            &vms,
            0..24 * 14,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            &config(),
        )
        .unwrap();
        assert_eq!(p.active_host_count(), 1);
    }

    #[test]
    fn correlated_vms_are_charged_tails() {
        // Same peak hour → correlated → both at tail 60 → two hosts.
        let vms = vec![vm(0, 5.0, 60.0, 2), vm(1, 5.0, 60.0, 2)];
        let mut dc = dc();
        let p = correlation_pack(
            &vms,
            0..24 * 14,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            &config(),
        )
        .unwrap();
        assert_eq!(p.active_host_count(), 2);
    }

    #[test]
    fn threshold_one_disables_correlation_charging() {
        // With an unreachable threshold every VM is charged its body.
        let vms = vec![vm(0, 5.0, 60.0, 2), vm(1, 5.0, 60.0, 2)];
        let cfg = CorrelationConfig {
            threshold: 1.1,
            ..config()
        };
        let mut dc = dc();
        let p = correlation_pack(
            &vms,
            0..24 * 14,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            &cfg,
        )
        .unwrap();
        assert_eq!(p.active_host_count(), 1, "bodies 5+5 share one host");
    }

    #[test]
    fn mixed_population_packs_between_body_and_tail_bounds() {
        let vms: Vec<VmTrace> = (0..12)
            .map(|i| vm(i, 5.0, 55.0, (i as usize * 3) % 24))
            .collect();
        let mut dc = dc();
        let p = correlation_pack(
            &vms,
            0..24 * 14,
            &mut dc,
            &ConstraintSet::new(),
            (1.0, 1.0),
            &config(),
        )
        .unwrap();
        // Tail-sizing bound: 12×55/100 → 7 hosts. Body bound: 1 host.
        assert!(p.active_host_count() <= 7);
        assert!(p.active_host_count() >= 1);
        assert_eq!(p.len(), 12);
    }

    #[test]
    fn colocation_groups_merge_signatures() {
        let mut cs = ConstraintSet::new();
        cs.add(vmcw_cluster::constraints::Constraint::Colocate(
            VmId(0),
            VmId(1),
        ))
        .unwrap();
        let vms = vec![
            vm(0, 5.0, 40.0, 2),
            vm(1, 5.0, 40.0, 14),
            vm(2, 5.0, 40.0, 20),
        ];
        let items = build_correlation_items(&vms, 0..24 * 14, &config(), &cs).unwrap();
        assert_eq!(items.len(), 2);
        let merged = items.iter().find(|i| i.vms.len() == 2).unwrap();
        assert_eq!(merged.body.cpu_rpe2, 10.0);
        // The merged signature has both peak hours.
        assert!(merged.signature[2] > 20.0 && merged.signature[14] > 20.0);
    }
}
