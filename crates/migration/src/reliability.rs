//! Migration reliability thresholds and the resource-reservation policy.
//!
//! §4.3: "We observed that if the CPU utilization is below 80% and memory
//! committed is below 85%, we can perform live migration reliably."
//! Observation 4: "In order to support dynamic consolidation, it is
//! recommended to reserve at least 20% of a physical server's resources
//! for live migration." The sensitivity studies (Figs 13–16) sweep this
//! reservation via the *utilization bound* `U` (reservation = `1 − U`).

use crate::precopy::{HostLoad, PrecopyConfig, VmMigrationProfile};
use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// A threshold or reservation fraction outside its valid domain.
///
/// All reliability thresholds and reservation fractions are utilisation
/// fractions and must lie in `[0, 1]`; NaN is always rejected.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PolicyError {
    /// The offending field.
    pub field: &'static str,
    /// The rejected value (possibly NaN).
    pub value: f64,
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} must be a finite fraction in [0, 1], got {}",
            self.field, self.value
        )
    }
}

impl Error for PolicyError {}

fn check_fraction(field: &'static str, value: f64) -> Result<f64, PolicyError> {
    if (0.0..=1.0).contains(&value) {
        Ok(value)
    } else {
        Err(PolicyError { field, value })
    }
}

/// Host-load thresholds for reliable live migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReliabilityThresholds {
    /// Maximum CPU utilisation for reliable migration.
    pub max_cpu_util: f64,
    /// Maximum committed-memory utilisation for reliable migration.
    pub max_mem_util: f64,
}

impl ReliabilityThresholds {
    /// The ESXi 4.1 values measured in §4.3: 80% CPU, 85% memory.
    #[must_use]
    pub fn esxi41() -> Self {
        Self {
            max_cpu_util: 0.80,
            max_mem_util: 0.85,
        }
    }

    /// Validates and builds thresholds.
    ///
    /// # Errors
    ///
    /// Rejects NaN and values outside `[0, 1]`.
    pub fn try_new(max_cpu_util: f64, max_mem_util: f64) -> Result<Self, PolicyError> {
        Ok(Self {
            max_cpu_util: check_fraction("max_cpu_util", max_cpu_util)?,
            max_mem_util: check_fraction("max_mem_util", max_mem_util)?,
        })
    }

    /// Whether a host at `load` can migrate reliably.
    #[must_use]
    pub fn is_reliable(&self, load: HostLoad) -> bool {
        load.cpu_util <= self.max_cpu_util && load.mem_util <= self.max_mem_util
    }
}

impl Default for ReliabilityThresholds {
    fn default() -> Self {
        Self::esxi41()
    }
}

/// Fraction of a host's CPU and memory reserved for live migration.
///
/// Placements under dynamic consolidation may only use
/// `utilization_bound = 1 − reservation` of each host resource.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReservationPolicy {
    /// Reserved CPU fraction.
    pub cpu_frac: f64,
    /// Reserved memory fraction.
    pub mem_frac: f64,
}

impl ReservationPolicy {
    /// The paper's thumb rule: 20% of CPU and memory (a "pragmatic balance"
    /// below VMware's official 30% recommendation).
    #[must_use]
    pub fn thumb_rule() -> Self {
        Self {
            cpu_frac: 0.20,
            mem_frac: 0.20,
        }
    }

    /// VMware's official recommendation (Nelson et al. \[18\] and the
    /// vSphere 5 white paper \[13\]): 30%.
    #[must_use]
    pub fn vmware_official() -> Self {
        Self {
            cpu_frac: 0.30,
            mem_frac: 0.30,
        }
    }

    /// No reservation — the (unsafe) configuration most dynamic
    /// consolidation research assumes.
    #[must_use]
    pub fn none() -> Self {
        Self {
            cpu_frac: 0.0,
            mem_frac: 0.0,
        }
    }

    /// Validates and builds a reservation policy.
    ///
    /// # Errors
    ///
    /// Rejects NaN and fractions outside `[0, 1]`.
    pub fn try_new(cpu_frac: f64, mem_frac: f64) -> Result<Self, PolicyError> {
        Ok(Self {
            cpu_frac: check_fraction("cpu_frac", cpu_frac)?,
            mem_frac: check_fraction("mem_frac", mem_frac)?,
        })
    }

    /// Builds the policy from a utilization bound `U` (both resources
    /// reserved at `1 − U`), as in the Figs 13–16 sweeps.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < bound ≤ 1`; see [`Self::try_from_utilization_bound`]
    /// for the non-panicking form.
    #[must_use]
    pub fn from_utilization_bound(bound: f64) -> Self {
        match Self::try_from_utilization_bound(bound) {
            Ok(policy) => policy,
            Err(_) => panic!("utilization bound must be in (0, 1], got {bound}"),
        }
    }

    /// Builds the policy from a utilization bound `U`.
    ///
    /// # Errors
    ///
    /// Rejects NaN and bounds outside `(0, 1]`.
    pub fn try_from_utilization_bound(bound: f64) -> Result<Self, PolicyError> {
        if bound.is_nan() || bound <= 0.0 || bound > 1.0 {
            return Err(PolicyError {
                field: "utilization_bound",
                value: bound,
            });
        }
        Self::try_new(1.0 - bound, 1.0 - bound)
    }

    /// The CPU utilization bound (1 − reserved CPU fraction).
    #[must_use]
    pub fn cpu_bound(&self) -> f64 {
        1.0 - self.cpu_frac
    }

    /// The memory utilization bound (1 − reserved memory fraction).
    #[must_use]
    pub fn mem_bound(&self) -> f64 {
        1.0 - self.mem_frac
    }
}

impl Default for ReservationPolicy {
    fn default() -> Self {
        Self::thumb_rule()
    }
}

/// Finds the minimum reservation (in 5% steps) under which a reference VM
/// still migrates reliably off a host loaded right up to the corresponding
/// utilization bound.
///
/// This derives the paper's 20% thumb rule from the pre-copy model rather
/// than asserting it: at small reservations the source host runs too close
/// to saturation and pre-copy stops converging within the downtime budget.
#[must_use]
pub fn derive_min_reservation(config: &PrecopyConfig, vm: &VmMigrationProfile) -> f64 {
    for step in 0..=10 {
        let reservation = f64::from(step) * 0.05;
        let bound = 1.0 - reservation;
        // Worst admissible case: host filled to the bound, and migration
        // load pushes it to full utilisation.
        let load = HostLoad::new(bound + 0.15, bound + 0.10);
        if config.simulate(vm, load).converged {
            return reservation;
        }
    }
    0.50
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn esxi_thresholds() {
        let t = ReliabilityThresholds::esxi41();
        assert!(t.is_reliable(HostLoad::new(0.80, 0.85)));
        assert!(!t.is_reliable(HostLoad::new(0.81, 0.5)));
        assert!(!t.is_reliable(HostLoad::new(0.5, 0.86)));
    }

    #[test]
    fn bounds_complement_reservation() {
        let p = ReservationPolicy::thumb_rule();
        assert!((p.cpu_bound() - 0.8).abs() < 1e-12);
        assert!((p.mem_bound() - 0.8).abs() < 1e-12);
        let p = ReservationPolicy::from_utilization_bound(0.9);
        assert!((p.cpu_frac - 0.1).abs() < 1e-12);
    }

    #[test]
    fn full_bound_means_no_reservation() {
        let p = ReservationPolicy::from_utilization_bound(1.0);
        assert_eq!(p.cpu_frac, 0.0);
        assert_eq!(p, ReservationPolicy::none());
    }

    #[test]
    #[should_panic(expected = "utilization bound")]
    fn zero_bound_rejected() {
        let _ = ReservationPolicy::from_utilization_bound(0.0);
    }

    #[test]
    fn construction_rejects_nan_and_out_of_range() {
        assert!(ReliabilityThresholds::try_new(0.8, 0.85).is_ok());
        for bad in [f64::NAN, -0.1, 1.1, f64::INFINITY, f64::NEG_INFINITY] {
            assert!(ReliabilityThresholds::try_new(bad, 0.85).is_err(), "cpu {bad}");
            assert!(ReliabilityThresholds::try_new(0.8, bad).is_err(), "mem {bad}");
            assert!(ReservationPolicy::try_new(bad, 0.2).is_err(), "cpu {bad}");
            assert!(ReservationPolicy::try_new(0.2, bad).is_err(), "mem {bad}");
            assert!(
                ReservationPolicy::try_from_utilization_bound(bad).is_err(),
                "bound {bad}"
            );
        }
        let err = ReliabilityThresholds::try_new(f64::NAN, 0.85).unwrap_err();
        assert_eq!(err.field, "max_cpu_util");
        assert!(err.to_string().contains("max_cpu_util"));
        assert!(ReservationPolicy::try_from_utilization_bound(0.0).is_err());
        assert_eq!(
            ReservationPolicy::try_from_utilization_bound(0.7).unwrap(),
            ReservationPolicy::from_utilization_bound(0.7)
        );
    }

    #[test]
    fn vmware_reserves_more_than_thumb_rule() {
        assert!(
            ReservationPolicy::vmware_official().cpu_frac
                > ReservationPolicy::thumb_rule().cpu_frac
        );
    }

    #[test]
    fn derived_reservation_is_meaningful() {
        // A busy 8 GB enterprise VM on GbE needs a nontrivial reservation,
        // in the ballpark of the paper's 20% rule.
        let vm = VmMigrationProfile::new(8192.0, 400.0, 1024.0);
        let r = derive_min_reservation(&PrecopyConfig::gigabit(), &vm);
        assert!((0.10..=0.35).contains(&r), "derived reservation {r}");
    }

    #[test]
    fn faster_fabric_needs_less_reservation() {
        let vm = VmMigrationProfile::new(8192.0, 400.0, 1024.0);
        let gbe = derive_min_reservation(&PrecopyConfig::gigabit(), &vm);
        let tengbe = derive_min_reservation(&PrecopyConfig::ten_gigabit(), &vm);
        assert!(tengbe <= gbe, "10GbE {tengbe} vs GbE {gbe}");
    }
}
