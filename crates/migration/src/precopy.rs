//! Iterative pre-copy live-migration simulation.
//!
//! The model follows the design shared by "all known live migration
//! implementations" (§4.3, citing Xen's \[6\] and VMware's \[18\]):
//!
//! 1. Round 0 copies the VM's entire allocated memory while it keeps
//!    running; pages dirtied during the copy are tracked.
//! 2. Each subsequent round copies the pages dirtied during the previous
//!    round.
//! 3. Pre-copy ends when the dirty set is small enough for a brief
//!    stop-and-copy (convergence), or when rounds stop making progress /
//!    the round budget is exhausted (non-convergence — a "prolonged or
//!    failed" migration in the paper's terms).
//!
//! Host load degrades migration: past the reliability thresholds the
//! hypervisor cannot sustain the copy bandwidth (CPU contention) and the
//! guest dirties pages faster (memory pressure → paging). This reproduces
//! the paper's ESXi measurements that motivate the 20% reservation rule.

use serde::{Deserialize, Serialize};

/// Load on the source host at migration time, as utilisation fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HostLoad {
    /// CPU utilisation in `0..=1` (may exceed 1 under contention).
    pub cpu_util: f64,
    /// Committed-memory utilisation in `0..=1`.
    pub mem_util: f64,
}

impl HostLoad {
    /// Creates a host-load descriptor.
    #[must_use]
    pub fn new(cpu_util: f64, mem_util: f64) -> Self {
        Self { cpu_util, mem_util }
    }

    /// An idle host.
    #[must_use]
    pub fn idle() -> Self {
        Self {
            cpu_util: 0.0,
            mem_util: 0.0,
        }
    }
}

/// Migration-relevant profile of a VM.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmMigrationProfile {
    /// Allocated memory to transfer in the first round, in MB.
    pub mem_mb: f64,
    /// Rate at which the workload dirties pages, in Mbit/s.
    pub dirty_rate_mbps: f64,
    /// Writable working set in MB — the dirty set saturates here (pages
    /// dirtied more than once per round are only copied once).
    pub writable_working_set_mb: f64,
}

impl VmMigrationProfile {
    /// Creates a profile.
    ///
    /// # Panics
    ///
    /// Panics if `mem_mb` is not positive or either rate/working set is
    /// negative.
    #[must_use]
    pub fn new(mem_mb: f64, dirty_rate_mbps: f64, writable_working_set_mb: f64) -> Self {
        assert!(mem_mb > 0.0, "a VM has positive memory");
        assert!(dirty_rate_mbps >= 0.0 && writable_working_set_mb >= 0.0);
        Self {
            mem_mb,
            dirty_rate_mbps,
            writable_working_set_mb,
        }
    }

    /// A profile derived from demand: the working set and dirty rate scale
    /// with how busy the VM is. `cpu_frac` is the VM's CPU utilisation of
    /// its own size.
    #[must_use]
    pub fn from_demand(mem_mb: f64, cpu_frac: f64) -> Self {
        let activity = cpu_frac.clamp(0.0, 1.0);
        Self {
            mem_mb: mem_mb.max(1.0),
            // A busy enterprise VM dirties tens to a few hundred Mbit/s.
            dirty_rate_mbps: 20.0 + 400.0 * activity,
            writable_working_set_mb: (mem_mb * (0.02 + 0.10 * activity)).max(8.0),
        }
    }
}

/// Configuration of the pre-copy engine.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PrecopyConfig {
    /// Link bandwidth available to migration, in Mbit/s.
    pub link_mbps: f64,
    /// Maximum number of pre-copy rounds before forcing stop-and-copy.
    pub max_rounds: u32,
    /// Dirty-set size (MB) below which stop-and-copy is triggered.
    pub stop_copy_mb: f64,
    /// A round must shrink the dirty set below this fraction of the
    /// previous round's copy, otherwise pre-copy is declared stuck.
    pub min_progress_ratio: f64,
    /// Downtime budget in ms; a forced stop-and-copy that exceeds it marks
    /// the migration as not converged (an SLA violation in production).
    pub downtime_budget_ms: f64,
}

impl PrecopyConfig {
    /// Gigabit-Ethernet defaults matching 2012-era data centers (and the
    /// paper's 2-hour consolidation interval rationale).
    #[must_use]
    pub fn gigabit() -> Self {
        Self {
            link_mbps: 1_000.0,
            max_rounds: 30,
            stop_copy_mb: 32.0,
            min_progress_ratio: 0.95,
            downtime_budget_ms: 1_000.0,
        }
    }

    /// 10-GbE fabric — the "improvements in network bandwidth" the paper's
    /// discussion section expects to enable shorter consolidation
    /// intervals.
    #[must_use]
    pub fn ten_gigabit() -> Self {
        Self {
            link_mbps: 10_000.0,
            ..Self::gigabit()
        }
    }

    /// Effective copy bandwidth in MB/s under a given host load.
    ///
    /// Below the 80% CPU threshold the link is the bottleneck; above it,
    /// the migration threads starve and throughput collapses (Verma et
    /// al. \[29\] observed exactly this cliff).
    #[must_use]
    pub fn effective_copy_mbs(&self, load: HostLoad) -> f64 {
        let base = self.link_mbps / 8.0;
        let cpu_factor = if load.cpu_util <= 0.8 {
            1.0
        } else {
            (1.0 - 2.5 * (load.cpu_util - 0.8)).max(0.10)
        };
        base * cpu_factor
    }

    /// Effective page-dirty rate in MB/s under a given host load.
    ///
    /// Memory pressure past 85% committed memory triggers paging, which
    /// dirties pages on top of the workload's own writes.
    #[must_use]
    pub fn effective_dirty_mbs(&self, vm: &VmMigrationProfile, load: HostLoad) -> f64 {
        let base = vm.dirty_rate_mbps / 8.0;
        let mem_factor = if load.mem_util <= 0.85 {
            1.0
        } else {
            1.0 + 8.0 * (load.mem_util - 0.85)
        };
        base * mem_factor
    }

    /// Runs the pre-copy simulation.
    #[must_use]
    pub fn simulate(&self, vm: &VmMigrationProfile, load: HostLoad) -> MigrationOutcome {
        let copy_mbs = self.effective_copy_mbs(load).max(1e-6);
        let dirty_mbs = self.effective_dirty_mbs(vm, load);

        let mut to_copy = vm.mem_mb;
        let mut precopy_secs = 0.0;
        let mut copied_mb = 0.0;
        let mut rounds = 0;
        let (converged, final_dirty_mb) = loop {
            rounds += 1;
            let round_secs = to_copy / copy_mbs;
            precopy_secs += round_secs;
            copied_mb += to_copy;
            let dirtied = (dirty_mbs * round_secs).min(vm.writable_working_set_mb);
            if dirtied <= self.stop_copy_mb {
                break (true, dirtied);
            }
            if rounds >= self.max_rounds || dirtied >= to_copy * self.min_progress_ratio {
                // Stuck: forced stop-and-copy with whatever is dirty.
                break (false, dirtied);
            }
            to_copy = dirtied;
        };
        let downtime_ms = final_dirty_mb / copy_mbs * 1000.0;
        copied_mb += final_dirty_mb;
        MigrationOutcome {
            converged: converged && downtime_ms <= self.downtime_budget_ms,
            rounds,
            precopy_secs,
            downtime_ms,
            total_secs: precopy_secs + downtime_ms / 1000.0,
            copied_mb,
            effective_copy_mbs: copy_mbs,
        }
    }
}

impl Default for PrecopyConfig {
    fn default() -> Self {
        Self::gigabit()
    }
}

/// Result of a simulated live migration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationOutcome {
    /// Whether pre-copy converged within the downtime budget. A `false`
    /// here is the "prolonged or failed live migration, which is
    /// unacceptable in production data centers" of §1.2.
    pub converged: bool,
    /// Number of pre-copy rounds executed.
    pub rounds: u32,
    /// Duration of the pre-copy phase in seconds.
    pub precopy_secs: f64,
    /// Stop-and-copy downtime in milliseconds.
    pub downtime_ms: f64,
    /// Total migration time in seconds.
    pub total_secs: f64,
    /// Total bytes copied, in MB (≥ the VM's memory).
    pub copied_mb: f64,
    /// Effective copy bandwidth used, MB/s.
    pub effective_copy_mbs: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn webserver() -> VmMigrationProfile {
        // SpecWeb-like: 2 GB, busy. Clark et al. report ~60 s migration
        // and ~200 ms downtime for such a VM on GbE.
        VmMigrationProfile::new(2048.0, 300.0, 256.0)
    }

    #[test]
    fn idle_host_converges_like_clark_et_al() {
        let out = PrecopyConfig::gigabit().simulate(&webserver(), HostLoad::idle());
        assert!(out.converged);
        assert!(
            out.total_secs > 10.0 && out.total_secs < 120.0,
            "total {}",
            out.total_secs
        );
        assert!(out.downtime_ms < 500.0, "downtime {}", out.downtime_ms);
        assert!(out.copied_mb >= 2048.0);
        assert!(out.rounds >= 2);
    }

    #[test]
    fn ten_gig_is_faster() {
        let slow = PrecopyConfig::gigabit().simulate(&webserver(), HostLoad::idle());
        let fast = PrecopyConfig::ten_gigabit().simulate(&webserver(), HostLoad::idle());
        assert!(fast.total_secs < slow.total_secs / 5.0);
        assert!(fast.downtime_ms <= slow.downtime_ms);
    }

    #[test]
    fn high_cpu_load_degrades_bandwidth() {
        let cfg = PrecopyConfig::gigabit();
        assert_eq!(cfg.effective_copy_mbs(HostLoad::new(0.5, 0.5)), 125.0);
        assert!(cfg.effective_copy_mbs(HostLoad::new(0.9, 0.5)) < 100.0);
        assert!(cfg.effective_copy_mbs(HostLoad::new(1.0, 0.5)) >= 12.5);
    }

    #[test]
    fn memory_pressure_inflates_dirty_rate() {
        let cfg = PrecopyConfig::gigabit();
        let vm = webserver();
        let calm = cfg.effective_dirty_mbs(&vm, HostLoad::new(0.5, 0.5));
        let pressured = cfg.effective_dirty_mbs(&vm, HostLoad::new(0.5, 0.95));
        assert!(pressured > calm * 1.5);
    }

    #[test]
    fn overloaded_host_fails_to_converge() {
        // Past both thresholds: copy bandwidth collapses while the dirty
        // rate grows — pre-copy cannot keep up.
        let vm = VmMigrationProfile::new(16_384.0, 800.0, 4_096.0);
        let out = PrecopyConfig::gigabit().simulate(&vm, HostLoad::new(0.98, 0.97));
        assert!(!out.converged);
    }

    #[test]
    fn zero_dirty_rate_converges_in_one_round() {
        let vm = VmMigrationProfile::new(1024.0, 0.0, 0.0);
        let out = PrecopyConfig::gigabit().simulate(&vm, HostLoad::idle());
        assert!(out.converged);
        assert_eq!(out.rounds, 1);
        assert_eq!(out.downtime_ms, 0.0);
    }

    #[test]
    fn duration_monotone_in_memory_size() {
        let cfg = PrecopyConfig::gigabit();
        let small = cfg.simulate(
            &VmMigrationProfile::new(1024.0, 100.0, 128.0),
            HostLoad::idle(),
        );
        let large = cfg.simulate(
            &VmMigrationProfile::new(8192.0, 100.0, 128.0),
            HostLoad::idle(),
        );
        assert!(large.total_secs > small.total_secs);
    }

    #[test]
    fn round_budget_is_respected() {
        let cfg = PrecopyConfig {
            max_rounds: 3,
            ..PrecopyConfig::gigabit()
        };
        // Dirty rate exactly balances bandwidth: rounds never shrink much.
        let vm = VmMigrationProfile::new(4096.0, 950.0, 4096.0);
        let out = cfg.simulate(&vm, HostLoad::idle());
        assert!(out.rounds <= 3);
    }

    #[test]
    fn from_demand_scales_with_activity() {
        let idle = VmMigrationProfile::from_demand(4096.0, 0.0);
        let busy = VmMigrationProfile::from_demand(4096.0, 1.0);
        assert!(busy.dirty_rate_mbps > idle.dirty_rate_mbps);
        assert!(busy.writable_working_set_mb > idle.writable_working_set_mb);
        assert_eq!(idle.mem_mb, 4096.0);
    }

    #[test]
    #[should_panic(expected = "positive memory")]
    fn zero_memory_rejected() {
        let _ = VmMigrationProfile::new(0.0, 1.0, 1.0);
    }
}
