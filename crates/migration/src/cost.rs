//! Migration cost model for the dynamic consolidation planner.
//!
//! The paper's dynamic planner "compares various adaptation actions
//! possible and selects the one with least cost" (§5.1), in the spirit of
//! pMapper \[25\] and the cost-sensitive adaptation engine of Jung et
//! al. \[15\]. Both charge a migration by the resources the pre-copy burns
//! and by the SLA risk of the blackout; the dominant term scales with the
//! VM's (active) memory.
//!
//! [`MigrationCostModel`] converts a simulated [`MigrationOutcome`] into a
//! scalar cost in watt-hour equivalents so that it can be compared against
//! the power saved by switching a host off for one consolidation interval.

use crate::precopy::{HostLoad, MigrationOutcome, PrecopyConfig, VmMigrationProfile};
use serde::{Deserialize, Serialize};

/// Converts migration work into a scalar cost comparable to power savings.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCostModel {
    /// Extra power drawn on source + target while the copy runs, in watts.
    pub copy_overhead_w: f64,
    /// Risk/SLA penalty per GB of memory moved, in watt-hour equivalents.
    /// This is the knob the ablation benchmarks sweep; 0 makes the planner
    /// migration-oblivious.
    pub risk_penalty_wh_per_gb: f64,
    /// Flat penalty for a migration that failed to converge, in watt-hour
    /// equivalents (production incident).
    pub failure_penalty_wh: f64,
}

impl MigrationCostModel {
    /// Defaults calibrated so that migrating a mid-size VM costs a few
    /// watt-hours — small against switching a ~300 W server off for a
    /// 2-hour interval (~600 Wh), large against marginal rebalancing.
    #[must_use]
    pub fn default_calibration() -> Self {
        Self {
            copy_overhead_w: 120.0,
            risk_penalty_wh_per_gb: 1.5,
            failure_penalty_wh: 2_000.0,
        }
    }

    /// A migration-oblivious model (every migration is free) — the
    /// assumption much prior dynamic-consolidation work makes implicitly.
    #[must_use]
    pub fn free() -> Self {
        Self {
            copy_overhead_w: 0.0,
            risk_penalty_wh_per_gb: 0.0,
            failure_penalty_wh: 0.0,
        }
    }

    /// Scalar cost of a simulated migration outcome for a VM of
    /// `mem_mb` MB.
    #[must_use]
    pub fn cost_wh(&self, outcome: &MigrationOutcome, mem_mb: f64) -> f64 {
        let energy = self.copy_overhead_w * outcome.total_secs / 3600.0;
        let risk = self.risk_penalty_wh_per_gb * mem_mb / 1024.0;
        let failure = if outcome.converged {
            0.0
        } else {
            self.failure_penalty_wh
        };
        energy + risk + failure
    }

    /// Convenience: simulate + cost in one call.
    #[must_use]
    pub fn estimate(
        &self,
        config: &PrecopyConfig,
        vm: &VmMigrationProfile,
        load: HostLoad,
    ) -> MigrationCostReport {
        let outcome = config.simulate(vm, load);
        MigrationCostReport {
            cost_wh: self.cost_wh(&outcome, vm.mem_mb),
            outcome,
        }
    }
}

impl Default for MigrationCostModel {
    fn default() -> Self {
        Self::default_calibration()
    }
}

/// A migration outcome together with its scalar cost.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationCostReport {
    /// Scalar cost in watt-hour equivalents.
    pub cost_wh: f64,
    /// The underlying simulated outcome.
    pub outcome: MigrationOutcome,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn vm(mem_mb: f64) -> VmMigrationProfile {
        VmMigrationProfile::new(mem_mb, 100.0, mem_mb * 0.05)
    }

    #[test]
    fn cost_grows_with_memory() {
        let model = MigrationCostModel::default_calibration();
        let cfg = PrecopyConfig::gigabit();
        let small = model.estimate(&cfg, &vm(2048.0), HostLoad::idle());
        let large = model.estimate(&cfg, &vm(16_384.0), HostLoad::idle());
        assert!(large.cost_wh > small.cost_wh * 3.0);
    }

    #[test]
    fn free_model_costs_nothing() {
        let model = MigrationCostModel::free();
        let report = model.estimate(&PrecopyConfig::gigabit(), &vm(8192.0), HostLoad::idle());
        assert_eq!(report.cost_wh, 0.0);
    }

    #[test]
    fn failed_migration_is_penalised() {
        let model = MigrationCostModel::default_calibration();
        let cfg = PrecopyConfig::gigabit();
        let hot = VmMigrationProfile::new(16_384.0, 900.0, 8_192.0);
        let report = model.estimate(&cfg, &hot, HostLoad::new(0.99, 0.99));
        assert!(!report.outcome.converged);
        assert!(report.cost_wh >= model.failure_penalty_wh);
    }

    #[test]
    fn migration_cost_is_small_versus_interval_power_savings() {
        // The dynamic planner's economics: moving a VM must be worth it
        // when it lets a ~300 W host sleep for a 2 h interval (600 Wh).
        let model = MigrationCostModel::default_calibration();
        let cfg = PrecopyConfig::gigabit();
        let report = model.estimate(&cfg, &vm(8192.0), HostLoad::new(0.5, 0.6));
        assert!(report.outcome.converged);
        assert!(report.cost_wh < 600.0 * 0.2, "cost {} Wh", report.cost_wh);
    }
}
