//! Migration retry with exponential backoff.
//!
//! Production consolidation engines do not treat a failed live migration
//! as fatal: vMotion-style orchestrators retry the transfer a bounded
//! number of times, backing off between attempts, and give up once a
//! per-migration time budget is exhausted — the VM then simply stays on
//! its source host until the next consolidation interval. This module
//! implements that policy as a pure, deterministic state machine so the
//! emulator's fault injection can replay it byte-identically per seed.

use serde::{Deserialize, Serialize};
use std::error::Error;
use std::fmt;

/// Errors raised by the migration retry machinery.
#[derive(Debug, Clone, PartialEq)]
pub enum MigrationError {
    /// A [`RetryPolicy`] field is NaN, non-positive, or otherwise outside
    /// its domain.
    InvalidPolicy {
        /// The offending field.
        field: &'static str,
        /// The rejected value.
        value: f64,
    },
}

impl fmt::Display for MigrationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MigrationError::InvalidPolicy { field, value } => {
                write!(f, "invalid retry policy: {field} = {value}")
            }
        }
    }
}

impl Error for MigrationError {}

/// Why a migration was abandoned.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AbandonReason {
    /// Every allowed attempt failed.
    AttemptsExhausted,
    /// The next attempt would not fit in the per-migration time budget.
    TimedOut,
}

/// Bounded-retry policy for failed live migrations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Maximum transfer attempts per migration (including the first).
    pub max_attempts: u32,
    /// Backoff before the second attempt, seconds.
    pub base_backoff_secs: f64,
    /// Multiplier applied to the backoff after each failed attempt.
    pub backoff_factor: f64,
    /// Wall-clock budget for one migration including backoffs, seconds.
    pub timeout_budget_secs: f64,
}

impl RetryPolicy {
    /// The default HA policy: 4 attempts, 30 s backoff doubling each
    /// retry, half-hour budget — in line with vSphere DRS retry defaults.
    #[must_use]
    pub fn ha_default() -> Self {
        Self {
            max_attempts: 4,
            base_backoff_secs: 30.0,
            backoff_factor: 2.0,
            timeout_budget_secs: 1800.0,
        }
    }

    /// Validates and builds a policy.
    ///
    /// # Errors
    ///
    /// Rejects NaN or non-positive budgets/backoff factors, zero attempt
    /// caps, and negative base backoffs.
    pub fn try_new(
        max_attempts: u32,
        base_backoff_secs: f64,
        backoff_factor: f64,
        timeout_budget_secs: f64,
    ) -> Result<Self, MigrationError> {
        if max_attempts == 0 {
            return Err(MigrationError::InvalidPolicy {
                field: "max_attempts",
                value: 0.0,
            });
        }
        if base_backoff_secs.is_nan() || base_backoff_secs < 0.0 {
            return Err(MigrationError::InvalidPolicy {
                field: "base_backoff_secs",
                value: base_backoff_secs,
            });
        }
        if backoff_factor.is_nan() || backoff_factor < 1.0 {
            return Err(MigrationError::InvalidPolicy {
                field: "backoff_factor",
                value: backoff_factor,
            });
        }
        if timeout_budget_secs.is_nan() || timeout_budget_secs <= 0.0 {
            return Err(MigrationError::InvalidPolicy {
                field: "timeout_budget_secs",
                value: timeout_budget_secs,
            });
        }
        Ok(Self {
            max_attempts,
            base_backoff_secs,
            backoff_factor,
            timeout_budget_secs,
        })
    }

    /// Backoff before `attempt` (1-based), seconds: 0 for the first
    /// attempt, then `base · factor^(attempt − 2)`.
    #[must_use]
    pub fn backoff_before_attempt(&self, attempt: u32) -> f64 {
        if attempt <= 1 {
            0.0
        } else {
            self.base_backoff_secs * self.backoff_factor.powi(attempt as i32 - 2)
        }
    }

    /// Runs a migration under this policy. `attempt_fails(k)` reports
    /// whether the k-th attempt (1-based) fails; `attempt_duration_secs`
    /// is the simulated transfer time charged per attempt.
    pub fn run<F>(&self, attempt_duration_secs: f64, mut attempt_fails: F) -> RetryOutcome
    where
        F: FnMut(u32) -> bool,
    {
        let duration = attempt_duration_secs.max(0.0);
        let mut elapsed = 0.0;
        let mut attempts = 0;
        for attempt in 1..=self.max_attempts {
            let wait = self.backoff_before_attempt(attempt);
            if elapsed + wait + duration > self.timeout_budget_secs {
                return RetryOutcome {
                    attempts,
                    succeeded: false,
                    elapsed_secs: elapsed,
                    abandoned: Some(AbandonReason::TimedOut),
                };
            }
            elapsed += wait + duration;
            attempts = attempt;
            if !attempt_fails(attempt) {
                return RetryOutcome {
                    attempts,
                    succeeded: true,
                    elapsed_secs: elapsed,
                    abandoned: None,
                };
            }
        }
        RetryOutcome {
            attempts,
            succeeded: false,
            elapsed_secs: elapsed,
            abandoned: Some(AbandonReason::AttemptsExhausted),
        }
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self::ha_default()
    }
}

/// The result of running one migration under a [`RetryPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RetryOutcome {
    /// Attempts actually performed (≤ the policy's cap).
    pub attempts: u32,
    /// Whether any attempt succeeded.
    pub succeeded: bool,
    /// Total simulated time spent (backoffs + transfers), seconds.
    pub elapsed_secs: f64,
    /// Why the migration was abandoned, if it was.
    pub abandoned: Option<AbandonReason>,
}

impl RetryOutcome {
    /// Failed attempts: all but the last on success, all on abandonment.
    #[must_use]
    pub fn failed_attempts(&self) -> u32 {
        if self.succeeded {
            self.attempts.saturating_sub(1)
        } else {
            self.attempts
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_attempt_success_is_cheap() {
        let out = RetryPolicy::ha_default().run(60.0, |_| false);
        assert!(out.succeeded);
        assert_eq!(out.attempts, 1);
        assert_eq!(out.failed_attempts(), 0);
        assert!((out.elapsed_secs - 60.0).abs() < 1e-9);
        assert_eq!(out.abandoned, None);
    }

    #[test]
    fn backoff_grows_exponentially() {
        let p = RetryPolicy::ha_default();
        assert_eq!(p.backoff_before_attempt(1), 0.0);
        assert!((p.backoff_before_attempt(2) - 30.0).abs() < 1e-9);
        assert!((p.backoff_before_attempt(3) - 60.0).abs() < 1e-9);
        assert!((p.backoff_before_attempt(4) - 120.0).abs() < 1e-9);
    }

    #[test]
    fn attempts_are_capped() {
        let p = RetryPolicy::ha_default();
        let mut calls = 0;
        let out = p.run(1.0, |_| {
            calls += 1;
            true
        });
        assert!(!out.succeeded);
        assert_eq!(out.attempts, p.max_attempts);
        assert_eq!(calls, p.max_attempts);
        assert_eq!(out.abandoned, Some(AbandonReason::AttemptsExhausted));
        assert_eq!(out.failed_attempts(), p.max_attempts);
    }

    #[test]
    fn budget_preempts_remaining_attempts() {
        // 2 × 400 s transfers fit an 850 s budget, the third (after 30 s
        // and 60 s backoffs) does not.
        let p = RetryPolicy::try_new(5, 30.0, 2.0, 850.0).unwrap();
        let out = p.run(400.0, |_| true);
        assert_eq!(out.attempts, 2);
        assert_eq!(out.abandoned, Some(AbandonReason::TimedOut));
        assert!(out.elapsed_secs <= p.timeout_budget_secs);
    }

    #[test]
    fn success_on_a_retry_counts_earlier_failures() {
        let out = RetryPolicy::ha_default().run(10.0, |attempt| attempt < 3);
        assert!(out.succeeded);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.failed_attempts(), 2);
        // 3 transfers + 30 s + 60 s backoffs.
        assert!((out.elapsed_secs - (30.0 + 10.0 * 3.0 + 60.0)).abs() < 1e-9);
    }

    #[test]
    fn invalid_policies_are_rejected() {
        assert!(matches!(
            RetryPolicy::try_new(0, 1.0, 2.0, 10.0),
            Err(MigrationError::InvalidPolicy {
                field: "max_attempts",
                ..
            })
        ));
        assert!(RetryPolicy::try_new(1, f64::NAN, 2.0, 10.0).is_err());
        assert!(RetryPolicy::try_new(1, -1.0, 2.0, 10.0).is_err());
        assert!(RetryPolicy::try_new(1, 0.0, 0.5, 10.0).is_err());
        assert!(RetryPolicy::try_new(1, 0.0, f64::NAN, 10.0).is_err());
        assert!(RetryPolicy::try_new(1, 0.0, 2.0, 0.0).is_err());
        assert!(RetryPolicy::try_new(1, 0.0, 2.0, f64::NAN).is_err());
        let err = RetryPolicy::try_new(0, 1.0, 2.0, 10.0).unwrap_err();
        assert!(err.to_string().contains("max_attempts"));
    }

    #[test]
    fn zero_duration_transfers_still_respect_the_cap() {
        let p = RetryPolicy::try_new(3, 0.0, 1.0, 1.0).unwrap();
        let out = p.run(0.0, |_| true);
        assert_eq!(out.attempts, 3);
        assert_eq!(out.abandoned, Some(AbandonReason::AttemptsExhausted));
    }
}
