//! Live-migration substrate for the reproduction of *Virtual Machine
//! Consolidation in the Wild* (Middleware 2014).
//!
//! §4.3 of the paper: "Live VM migration consists of a pre-copy phase,
//! where the memory allocated to a virtual machine is transferred from the
//! source physical server to the target physical server. ... All pages
//! that were made dirty in a pre-copy round are copied again in the next
//! round. The pre-copy completes when either a very small number of dirty
//! pages remain or the number of dirty pages do not reduce between
//! consecutive rounds."
//!
//! This crate implements that design:
//!
//! * [`precopy`] — the iterative pre-copy simulation producing duration,
//!   downtime, rounds and bytes copied (calibrated against the classic
//!   Clark et al. NSDI'05 numbers: sub-second downtime, about a minute of
//!   migration for a busy web server on GbE).
//! * [`reliability`] — the load thresholds the paper measured on ESXi 4.1
//!   ("if the CPU utilization is below 80% and memory committed is below
//!   85%, we can perform live migration reliably") and the reservation
//!   policy (Observation 4: reserve ≥20% of a server for migration).
//! * [`cost`] — the migration cost model consumed by the dynamic
//!   consolidation planner (pMapper-style: cost grows with the VM's
//!   active memory).
//! * [`schedule`] — per-interval migration scheduling under one-transfer-
//!   per-link, deciding which consolidation intervals are feasible (§7,
//!   "Enabling Shorter Consolidation Intervals").
//! * [`mechanisms`] — post-copy and RDMA-assisted migration models for
//!   the §7 "Improving live migration efficiency" what-if.
//! * [`retry`] — bounded retry with exponential backoff and a
//!   per-migration time budget for failed transfers, as used by the
//!   emulator's fault-injection replay.
//!
//! # Example
//!
//! ```
//! use vmcw_migration::{HostLoad, PrecopyConfig, VmMigrationProfile};
//!
//! let config = PrecopyConfig::gigabit();
//! let vm = VmMigrationProfile::new(8192.0, 200.0, 512.0);
//! let calm = config.simulate(&vm, HostLoad::new(0.5, 0.6));
//! assert!(calm.converged);
//! assert!(calm.downtime_ms < 1000.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cost;
pub mod mechanisms;
pub mod precopy;
pub mod reliability;
pub mod retry;
pub mod schedule;

pub use cost::{MigrationCostModel, MigrationCostReport};
pub use mechanisms::MigrationMechanism;
pub use precopy::{HostLoad, MigrationOutcome, PrecopyConfig, VmMigrationProfile};
pub use reliability::{PolicyError, ReliabilityThresholds, ReservationPolicy};
pub use retry::{AbandonReason, MigrationError, RetryOutcome, RetryPolicy};
pub use schedule::{MigrationRequest, MigrationSchedule};
