//! Migration scheduling within a consolidation interval.
//!
//! The paper's 2-hour interval "is a practical number based on the time
//! taken by live migration today as well as the network speeds in data
//! centers built over the past few years" (§7). This module makes that
//! argument computable: given the migrations a consolidation step wants
//! to execute, a greedy list scheduler serialises them under the
//! constraint that each host's migration link carries one migration at a
//! time (both the source and the destination are busy for the whole
//! transfer). The resulting makespan decides whether an interval length
//! is feasible.

use crate::precopy::{HostLoad, MigrationOutcome, PrecopyConfig, VmMigrationProfile};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use vmcw_cluster::datacenter::HostId;
use vmcw_cluster::vm::VmId;

/// One migration to schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MigrationRequest {
    /// The VM to move.
    pub vm: VmId,
    /// Source host.
    pub from: HostId,
    /// Destination host.
    pub to: HostId,
    /// Migration profile of the VM.
    pub profile: VmMigrationProfile,
    /// Load on the source host when the migration starts.
    pub source_load: HostLoad,
}

/// A scheduled migration with its time slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScheduledMigration {
    /// The request being scheduled.
    pub request: MigrationRequest,
    /// Start offset within the interval, seconds.
    pub start_secs: f64,
    /// End offset within the interval, seconds.
    pub end_secs: f64,
    /// Simulated transfer outcome.
    pub outcome: MigrationOutcome,
}

/// A complete schedule for one consolidation interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MigrationSchedule {
    /// The migrations in start order.
    pub items: Vec<ScheduledMigration>,
    /// Time until the last migration finishes, seconds.
    pub makespan_secs: f64,
}

impl MigrationSchedule {
    /// Whether the schedule completes within an interval of
    /// `interval_secs`.
    #[must_use]
    pub fn fits_within(&self, interval_secs: f64) -> bool {
        self.makespan_secs <= interval_secs
    }

    /// Number of migrations that failed to converge.
    #[must_use]
    pub fn failed(&self) -> usize {
        self.items.iter().filter(|m| !m.outcome.converged).count()
    }

    /// Total bytes moved, MB.
    #[must_use]
    pub fn total_copied_mb(&self) -> f64 {
        self.items.iter().map(|m| m.outcome.copied_mb).sum()
    }
}

/// Greedy list scheduling: requests are processed in the given order;
/// each starts as soon as both its endpoints' links are free.
///
/// This models the common hypervisor policy of one concurrent migration
/// per host link (VMware's default on GbE); migrations between disjoint
/// host pairs run in parallel.
#[must_use]
pub fn schedule(requests: &[MigrationRequest], config: &PrecopyConfig) -> MigrationSchedule {
    let mut free_at: HashMap<HostId, f64> = HashMap::new();
    let mut items = Vec::with_capacity(requests.len());
    let mut makespan = 0.0f64;
    for &request in requests {
        let outcome = config.simulate(&request.profile, request.source_load);
        let start = free_at
            .get(&request.from)
            .copied()
            .unwrap_or(0.0)
            .max(free_at.get(&request.to).copied().unwrap_or(0.0));
        let end = start + outcome.total_secs;
        free_at.insert(request.from, end);
        free_at.insert(request.to, end);
        makespan = makespan.max(end);
        items.push(ScheduledMigration {
            request,
            start_secs: start,
            end_secs: end,
            outcome,
        });
    }
    MigrationSchedule {
        items,
        makespan_secs: makespan,
    }
}

/// Greedy list scheduling with `slots` concurrent transfers per host
/// link (vSphere allows 4 on GbE, 8 on 10 GbE). Concurrent transfers
/// share the link, so each runs `slots`× slower — total per-link
/// throughput is conserved — but transfer *chains* across hosts overlap,
/// which is what shortens the makespan in practice.
///
/// # Panics
///
/// Panics if `slots == 0`.
#[must_use]
pub fn schedule_concurrent(
    requests: &[MigrationRequest],
    config: &PrecopyConfig,
    slots: usize,
) -> MigrationSchedule {
    assert!(slots > 0, "need at least one slot per host");
    // Per-host min-heaps of slot free times, represented as sorted vecs
    // (slot counts are tiny).
    let mut free: HashMap<HostId, Vec<f64>> = HashMap::new();
    let mut items = Vec::with_capacity(requests.len());
    let mut makespan = 0.0f64;
    for &request in requests {
        let outcome = config.simulate(&request.profile, request.source_load);
        // Sharing the link: with k-way concurrency each transfer sees
        // 1/k of the bandwidth.
        let duration = outcome.total_secs * slots as f64;
        free.entry(request.from).or_insert_with(|| vec![0.0; slots]);
        free.entry(request.to).or_insert_with(|| vec![0.0; slots]);
        // Earliest slot on each endpoint; the vecs are non-empty because
        // slots ≥ 1, so the folds need no unwrap.
        let earliest = |host: HostId| -> f64 {
            free[&host].iter().copied().fold(f64::INFINITY, f64::min)
        };
        let start = earliest(request.from).max(earliest(request.to));
        let start = if start.is_finite() { start } else { 0.0 };
        let end = start + duration;
        for host in [request.from, request.to] {
            if let Some(slots_vec) = free.get_mut(&host) {
                let idx = slots_vec
                    .iter()
                    .enumerate()
                    .min_by(|(_, a), (_, b)| a.total_cmp(b))
                    .map(|(i, _)| i);
                if let Some(idx) = idx {
                    slots_vec[idx] = end;
                }
            }
        }
        makespan = makespan.max(end);
        items.push(ScheduledMigration {
            request,
            start_secs: start,
            end_secs: end,
            outcome,
        });
    }
    MigrationSchedule {
        items,
        makespan_secs: makespan,
    }
}

/// Schedules transfers whose durations are already known (e.g. recorded
/// by the dynamic planner), under the same one-transfer-per-link rule.
/// Returns the per-transfer `(start, end)` slots and the makespan.
#[must_use]
pub fn schedule_recorded(transfers: &[(HostId, HostId, f64)]) -> (Vec<(f64, f64)>, f64) {
    let mut free_at: HashMap<HostId, f64> = HashMap::new();
    let mut slots = Vec::with_capacity(transfers.len());
    let mut makespan = 0.0f64;
    for &(from, to, duration) in transfers {
        let start = free_at
            .get(&from)
            .copied()
            .unwrap_or(0.0)
            .max(free_at.get(&to).copied().unwrap_or(0.0));
        let end = start + duration;
        free_at.insert(from, end);
        free_at.insert(to, end);
        makespan = makespan.max(end);
        slots.push((start, end));
    }
    (slots, makespan)
}

/// The smallest consolidation interval (from the given candidates, in
/// hours) whose worst-case migration load fits, or `None` if none does.
///
/// `migration_fraction` is the fraction of `vm_count` VMs migrated per
/// interval (the paper cites >25%); `mean_mem_mb` sizes them.
#[must_use]
pub fn min_feasible_interval_hours(
    candidates: &[f64],
    vm_count: usize,
    migration_fraction: f64,
    mean_mem_mb: f64,
    hosts: usize,
    config: &PrecopyConfig,
) -> Option<f64> {
    let moves = ((vm_count as f64 * migration_fraction).ceil() as usize).max(1);
    let requests: Vec<MigrationRequest> = (0..moves)
        .map(|i| MigrationRequest {
            vm: VmId(i as u32),
            // Round-robin over host pairs: spreads link usage the way a
            // consolidation planner's evictions do.
            from: HostId((i % hosts.max(1)) as u32),
            to: HostId(((i + hosts / 2) % hosts.max(1)) as u32),
            profile: VmMigrationProfile::from_demand(mean_mem_mb, 0.4),
            source_load: HostLoad::new(0.7, 0.75),
        })
        .collect();
    let sched = schedule(&requests, config);
    let mut sorted = candidates.to_vec();
    sorted.sort_by(f64::total_cmp);
    sorted.into_iter().find(|&h| sched.fits_within(h * 3600.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn request(vm: u32, from: u32, to: u32, mem_mb: f64) -> MigrationRequest {
        MigrationRequest {
            vm: VmId(vm),
            from: HostId(from),
            to: HostId(to),
            profile: VmMigrationProfile::new(mem_mb, 100.0, mem_mb * 0.05),
            source_load: HostLoad::new(0.5, 0.6),
        }
    }

    #[test]
    fn disjoint_pairs_run_in_parallel() {
        let cfg = PrecopyConfig::gigabit();
        let reqs = [request(0, 0, 1, 2048.0), request(1, 2, 3, 2048.0)];
        let sched = schedule(&reqs, &cfg);
        assert_eq!(sched.items[0].start_secs, 0.0);
        assert_eq!(
            sched.items[1].start_secs, 0.0,
            "disjoint endpoints start together"
        );
        assert!((sched.makespan_secs - sched.items[0].outcome.total_secs).abs() < 1e-9);
    }

    #[test]
    fn shared_source_serialises() {
        let cfg = PrecopyConfig::gigabit();
        let reqs = [request(0, 0, 1, 2048.0), request(1, 0, 2, 2048.0)];
        let sched = schedule(&reqs, &cfg);
        assert!(sched.items[1].start_secs >= sched.items[0].end_secs - 1e-9);
        assert!(sched.makespan_secs > sched.items[0].outcome.total_secs);
    }

    #[test]
    fn shared_destination_serialises() {
        let cfg = PrecopyConfig::gigabit();
        let reqs = [request(0, 0, 2, 2048.0), request(1, 1, 2, 2048.0)];
        let sched = schedule(&reqs, &cfg);
        assert!(sched.items[1].start_secs >= sched.items[0].end_secs - 1e-9);
    }

    #[test]
    fn chains_accumulate_start_times() {
        let cfg = PrecopyConfig::gigabit();
        // 0→1, 1→2, 2→3: each waits for the previous.
        let reqs = [
            request(0, 0, 1, 1024.0),
            request(1, 1, 2, 1024.0),
            request(2, 2, 3, 1024.0),
        ];
        let sched = schedule(&reqs, &cfg);
        assert!(sched.items[2].start_secs >= sched.items[1].end_secs - 1e-9);
        assert!(sched.items[1].start_secs >= sched.items[0].end_secs - 1e-9);
    }

    #[test]
    fn empty_schedule_has_zero_makespan() {
        let sched = schedule(&[], &PrecopyConfig::gigabit());
        assert_eq!(sched.makespan_secs, 0.0);
        assert!(sched.fits_within(0.0));
        assert_eq!(sched.failed(), 0);
        assert_eq!(sched.total_copied_mb(), 0.0);
    }

    #[test]
    fn concurrency_never_lengthens_the_makespan_much() {
        // A star pattern: one source feeding many destinations. Serial:
        // chain of n transfers; with 4 slots the chains overlap.
        let cfg = PrecopyConfig::gigabit();
        let reqs: Vec<MigrationRequest> = (0..8).map(|i| request(i, 0, i + 1, 2048.0)).collect();
        let serial = schedule(&reqs, &cfg);
        let concurrent = schedule_concurrent(&reqs, &cfg, 4);
        // Bandwidth is conserved: the source link still carries all
        // bytes, so the makespans are comparable (within rounding), but
        // concurrency must not be *worse*.
        assert!(concurrent.makespan_secs <= serial.makespan_secs * 1.01);
        assert_eq!(concurrent.items.len(), 8);
    }

    #[test]
    fn concurrency_overlaps_cross_host_chains() {
        // Chain 0→1, 1→2: serially the second waits for the first. With
        // 2 slots they overlap (each at half bandwidth), shortening the
        // critical path.
        let cfg = PrecopyConfig::gigabit();
        let reqs = [request(0, 0, 1, 2048.0), request(1, 1, 2, 2048.0)];
        let serial = schedule(&reqs, &cfg);
        let concurrent = schedule_concurrent(&reqs, &cfg, 2);
        assert!(
            concurrent.makespan_secs <= serial.makespan_secs + 1e-9,
            "concurrent {} vs serial {}",
            concurrent.makespan_secs,
            serial.makespan_secs
        );
        // Both transfers start immediately.
        assert_eq!(concurrent.items[0].start_secs, 0.0);
        assert_eq!(concurrent.items[1].start_secs, 0.0);
    }

    #[test]
    fn one_slot_concurrency_equals_serial() {
        let cfg = PrecopyConfig::gigabit();
        let reqs = [request(0, 0, 1, 2048.0), request(1, 0, 2, 1024.0)];
        let serial = schedule(&reqs, &cfg);
        let one = schedule_concurrent(&reqs, &cfg, 1);
        assert!((serial.makespan_secs - one.makespan_secs).abs() < 1e-9);
    }

    #[test]
    fn schedule_recorded_matches_simulated_schedule_shape() {
        // Two transfers sharing a source serialise; a disjoint pair runs
        // in parallel — same topology rules as the simulating scheduler.
        let transfers = [
            (HostId(0), HostId(1), 100.0),
            (HostId(0), HostId(2), 50.0),
            (HostId(3), HostId(4), 30.0),
        ];
        let (slots, makespan) = schedule_recorded(&transfers);
        assert_eq!(slots[0], (0.0, 100.0));
        assert_eq!(slots[1], (100.0, 150.0), "shared source waits");
        assert_eq!(slots[2], (0.0, 30.0), "disjoint pair runs immediately");
        assert_eq!(makespan, 150.0);
    }

    #[test]
    fn schedule_recorded_empty() {
        let (slots, makespan) = schedule_recorded(&[]);
        assert!(slots.is_empty());
        assert_eq!(makespan, 0.0);
    }

    #[test]
    fn two_hour_interval_is_feasible_on_gbe_as_the_paper_argues() {
        // 25% of 800 VMs at ~4 GB each across 100 hosts on GbE (§7).
        let min = min_feasible_interval_hours(
            &[0.5, 1.0, 2.0, 4.0],
            800,
            0.25,
            4096.0,
            100,
            &PrecopyConfig::gigabit(),
        );
        let min = min.expect("some interval must fit");
        assert!(
            min <= 2.0,
            "the paper's 2h interval must be feasible, min {min}"
        );
    }

    #[test]
    fn ten_gbe_enables_shorter_intervals() {
        let args = (800usize, 0.25, 4096.0, 100usize);
        let candidates = [0.25, 0.5, 1.0, 2.0, 4.0];
        let gbe = min_feasible_interval_hours(
            &candidates,
            args.0,
            args.1,
            args.2,
            args.3,
            &PrecopyConfig::gigabit(),
        )
        .unwrap();
        let ten = min_feasible_interval_hours(
            &candidates,
            args.0,
            args.1,
            args.2,
            args.3,
            &PrecopyConfig::ten_gigabit(),
        )
        .unwrap();
        assert!(ten <= gbe, "10GbE min {ten} vs GbE min {gbe}");
    }

    #[test]
    fn infeasible_when_no_candidate_fits() {
        // One host pair carrying hundreds of large migrations cannot fit
        // any short interval.
        let min =
            min_feasible_interval_hours(&[0.1], 500, 1.0, 16384.0, 2, &PrecopyConfig::gigabit());
        assert!(min.is_none());
    }
}
