//! Alternative live-migration mechanisms (§7, "Improving live migration
//! efficiency").
//!
//! The paper's discussion section argues that offloading migration work
//! from the (likely overloaded) source host — to the target, or out of
//! the OS entirely via RDMA \[21\] — could shrink the resource reservation
//! that cripples dynamic consolidation. This module models the candidate
//! mechanisms so that the `futurework` experiment can quantify exactly
//! that:
//!
//! * [`MigrationMechanism::PreCopy`] — the 2012 status quo (§4.3).
//! * [`MigrationMechanism::PostCopy`] — resume on the target first, fault
//!   pages over: immune to dirty-rate divergence, tiny downtime, but a
//!   demand-paging degradation window as long as the transfer.
//! * [`MigrationMechanism::RdmaAssisted`] — pre-copy whose copy engine
//!   bypasses the source CPU: bandwidth no longer collapses on a loaded
//!   host.

use crate::precopy::{HostLoad, MigrationOutcome, PrecopyConfig, VmMigrationProfile};
use serde::{Deserialize, Serialize};

/// A live-migration mechanism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MigrationMechanism {
    /// Iterative pre-copy (Xen/ESX circa 2012).
    PreCopy,
    /// Post-copy with demand paging.
    PostCopy,
    /// Pre-copy with an RDMA-offloaded copy engine.
    RdmaAssisted,
}

impl MigrationMechanism {
    /// All mechanisms, status quo first.
    pub const ALL: [MigrationMechanism; 3] = [
        MigrationMechanism::PreCopy,
        MigrationMechanism::PostCopy,
        MigrationMechanism::RdmaAssisted,
    ];

    /// Display label.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            MigrationMechanism::PreCopy => "pre-copy",
            MigrationMechanism::PostCopy => "post-copy",
            MigrationMechanism::RdmaAssisted => "rdma-assisted",
        }
    }

    /// Simulates a migration under this mechanism.
    #[must_use]
    pub fn simulate(
        self,
        config: &PrecopyConfig,
        vm: &VmMigrationProfile,
        load: HostLoad,
    ) -> MigrationOutcome {
        match self {
            MigrationMechanism::PreCopy => config.simulate(vm, load),
            MigrationMechanism::PostCopy => {
                // One pass: processor state ships immediately (fixed small
                // downtime), memory follows by demand paging + background
                // prefetch at the effective link rate. Nothing is copied
                // twice, and the guest's dirty rate is irrelevant.
                let copy_mbs = config.effective_copy_mbs(load).max(1e-6);
                let transfer_secs = vm.mem_mb / copy_mbs;
                let downtime_ms = 80.0;
                MigrationOutcome {
                    converged: downtime_ms <= config.downtime_budget_ms,
                    rounds: 1,
                    precopy_secs: 0.0,
                    downtime_ms,
                    total_secs: transfer_secs + downtime_ms / 1000.0,
                    copied_mb: vm.mem_mb,
                    effective_copy_mbs: copy_mbs,
                }
            }
            MigrationMechanism::RdmaAssisted => {
                // The copy engine bypasses the source CPU: run pre-copy
                // with an undegraded link. Memory pressure still inflates
                // the dirty rate (the guest itself pages).
                let undegraded = HostLoad::new(0.0, load.mem_util);
                let mut out = config.simulate(vm, undegraded);
                // RDMA setup/registration adds a small constant.
                out.total_secs += 0.5;
                out
            }
        }
    }

    /// Minimum reservation (5% steps) this mechanism needs for reliable
    /// migration off a host loaded to the corresponding bound — the §7
    /// question "can the reserved resources be reduced without impacting
    /// reliability?".
    #[must_use]
    pub fn min_reservation(self, config: &PrecopyConfig, vm: &VmMigrationProfile) -> f64 {
        for step in 0..=10 {
            let reservation = f64::from(step) * 0.05;
            let bound = 1.0 - reservation;
            let load = HostLoad::new(bound + 0.15, bound + 0.10);
            if self.simulate(config, vm, load).converged {
                return reservation;
            }
        }
        0.50
    }
}

impl std::fmt::Display for MigrationMechanism {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn busy_vm() -> VmMigrationProfile {
        VmMigrationProfile::new(8192.0, 400.0, 1024.0)
    }

    #[test]
    fn postcopy_downtime_is_tiny_and_constant() {
        let cfg = PrecopyConfig::gigabit();
        let calm = MigrationMechanism::PostCopy.simulate(&cfg, &busy_vm(), HostLoad::idle());
        let busy =
            MigrationMechanism::PostCopy.simulate(&cfg, &busy_vm(), HostLoad::new(0.95, 0.95));
        assert_eq!(calm.downtime_ms, busy.downtime_ms);
        assert!(calm.downtime_ms < 100.0);
        assert!(calm.converged && busy.converged);
    }

    #[test]
    fn postcopy_copies_memory_exactly_once() {
        let cfg = PrecopyConfig::gigabit();
        let vm = busy_vm();
        let pre = MigrationMechanism::PreCopy.simulate(&cfg, &vm, HostLoad::idle());
        let post = MigrationMechanism::PostCopy.simulate(&cfg, &vm, HostLoad::idle());
        assert_eq!(post.copied_mb, vm.mem_mb);
        assert!(
            pre.copied_mb > post.copied_mb,
            "pre-copy re-sends dirty pages"
        );
    }

    #[test]
    fn rdma_is_immune_to_source_cpu_load() {
        let cfg = PrecopyConfig::gigabit();
        let vm = busy_vm();
        let idle = MigrationMechanism::RdmaAssisted.simulate(&cfg, &vm, HostLoad::idle());
        let loaded = MigrationMechanism::RdmaAssisted.simulate(&cfg, &vm, HostLoad::new(0.99, 0.5));
        assert!((idle.total_secs - loaded.total_secs).abs() < 1.0);
        assert!(loaded.converged);
        // Plain pre-copy collapses under the same load.
        let precopy = MigrationMechanism::PreCopy.simulate(&cfg, &vm, HostLoad::new(0.99, 0.5));
        assert!(precopy.total_secs > loaded.total_secs);
    }

    #[test]
    fn future_mechanisms_need_less_reservation() {
        let cfg = PrecopyConfig::gigabit();
        let vm = busy_vm();
        let pre = MigrationMechanism::PreCopy.min_reservation(&cfg, &vm);
        let post = MigrationMechanism::PostCopy.min_reservation(&cfg, &vm);
        let rdma = MigrationMechanism::RdmaAssisted.min_reservation(&cfg, &vm);
        assert!(
            pre >= 0.15,
            "status quo needs the Observation-4 reservation, got {pre}"
        );
        assert!(post < pre, "post-copy {post} vs pre-copy {pre}");
        assert!(rdma < pre, "rdma {rdma} vs pre-copy {pre}");
        assert!(post <= 0.05);
    }

    #[test]
    fn labels_and_display() {
        assert_eq!(MigrationMechanism::PreCopy.label(), "pre-copy");
        assert_eq!(MigrationMechanism::PostCopy.to_string(), "post-copy");
        assert_eq!(MigrationMechanism::ALL.len(), 3);
    }
}
