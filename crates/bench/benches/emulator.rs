//! Emulator replay-throughput benchmarks: how fast the trace-replay
//! engine evaluates a plan (the inner loop of every evaluation figure).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vmcw_bench::bench_input;
use vmcw_consolidation::planner::{Planner, PlannerKind};
use vmcw_emulator::engine::{emulate, EmulatorConfig};
use vmcw_trace::datacenters::DataCenterId;

fn bench_emulate(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulate");
    group.sample_size(10);
    for (kind, label) in [
        (PlannerKind::SemiStatic, "fixed-plan"),
        (PlannerKind::Dynamic, "dynamic-plan"),
    ] {
        let input = bench_input(DataCenterId::Beverage, 0.2, 10, 7, 42);
        let plan = Planner::baseline().plan(kind, &input).expect("plan");
        group.bench_with_input(BenchmarkId::from_parameter(label), &(), |b, ()| {
            b.iter(|| black_box(emulate(&input, &plan, &EmulatorConfig::default()).expect("emulation")));
        });
    }
    group.finish();
}

fn bench_emulate_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("emulate-scaling");
    group.sample_size(10);
    for days in [4usize, 8, 14] {
        let input = bench_input(DataCenterId::Airlines, 0.2, 10, days, 42);
        let plan = Planner::baseline().plan_semi_static(&input).expect("plan");
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{days}days")),
            &(),
            |b, ()| {
                b.iter(|| black_box(emulate(&input, &plan, &EmulatorConfig::default()).expect("emulation")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_emulate, bench_emulate_scaling);
criterion_main!(benches);
