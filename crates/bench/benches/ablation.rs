//! Ablation benches for the design choices called out in `DESIGN.md`:
//! PCP body percentile, dynamic predictor, migration-cost weight and FFD
//! ordering key. Each reports the *quality* metric (hosts provisioned /
//! mean active hosts) through Criterion's throughput labels and benches
//! the compute cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vmcw_bench::bench_input;
use vmcw_consolidation::ffd::OrderKey;
use vmcw_consolidation::planner::Planner;
use vmcw_consolidation::prediction::Predictor;
use vmcw_consolidation::sizing::SizingFunction;
use vmcw_migration::cost::MigrationCostModel;
use vmcw_trace::datacenters::DataCenterId;

fn ablate_pcp_body(c: &mut Criterion) {
    let input = bench_input(DataCenterId::Banking, 0.15, 14, 4, 42);
    let mut group = c.benchmark_group("ablate-pcp-body");
    group.sample_size(10);
    for pct in [80.0, 90.0, 95.0] {
        let mut planner = Planner::baseline();
        planner.pcp.body = SizingFunction::Percentile(pct);
        let hosts = planner
            .plan_stochastic(&input)
            .expect("plan")
            .provisioned_hosts();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("p{pct:.0}->{hosts}hosts")),
            &planner,
            |b, planner| b.iter(|| black_box(planner.plan_stochastic(&input).expect("plan"))),
        );
    }
    group.finish();
}

fn ablate_predictor(c: &mut Criterion) {
    let input = bench_input(DataCenterId::Banking, 0.1, 14, 4, 42);
    let mut group = c.benchmark_group("ablate-predictor");
    group.sample_size(10);
    for (label, predictor) in [
        ("oracle", Predictor::Oracle),
        ("prev", Predictor::PreviousWindow),
        ("recent+periodic", Predictor::baseline()),
        ("ewma", Predictor::Ewma { alpha: 0.3 }),
    ] {
        let mut planner = Planner::baseline();
        planner.dynamic.cpu_predictor = predictor;
        let hosts = planner
            .plan_dynamic(&input)
            .expect("plan")
            .provisioned_hosts();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label}->{hosts}hosts")),
            &planner,
            |b, planner| b.iter(|| black_box(planner.plan_dynamic(&input).expect("plan"))),
        );
    }
    group.finish();
}

fn ablate_migration_cost(c: &mut Criterion) {
    let input = bench_input(DataCenterId::Beverage, 0.1, 14, 4, 42);
    let mut group = c.benchmark_group("ablate-migration-cost");
    group.sample_size(10);
    for (label, model) in [
        ("free", MigrationCostModel::free()),
        ("calibrated", MigrationCostModel::default_calibration()),
        (
            "heavy",
            MigrationCostModel {
                risk_penalty_wh_per_gb: 15.0,
                ..MigrationCostModel::default_calibration()
            },
        ),
    ] {
        let mut planner = Planner::baseline();
        planner.dynamic.cost_model = model;
        let migrations = planner.plan_dynamic(&input).expect("plan").migrations.len();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label}->{migrations}migs")),
            &planner,
            |b, planner| b.iter(|| black_box(planner.plan_dynamic(&input).expect("plan"))),
        );
    }
    group.finish();
}

fn ablate_order_key(c: &mut Criterion) {
    let input = bench_input(DataCenterId::NaturalResources, 0.1, 14, 2, 42);
    let mut group = c.benchmark_group("ablate-order-key");
    group.sample_size(10);
    for (label, order) in [
        ("dominant", OrderKey::Dominant),
        ("cpu", OrderKey::Cpu),
        ("mem", OrderKey::Mem),
        ("l2", OrderKey::L2),
    ] {
        let mut planner = Planner::baseline();
        planner.order = order;
        let hosts = planner
            .plan_semi_static(&input)
            .expect("plan")
            .provisioned_hosts();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label}->{hosts}hosts")),
            &planner,
            |b, planner| b.iter(|| black_box(planner.plan_semi_static(&input).expect("plan"))),
        );
    }
    group.finish();
}

fn ablate_packing_algorithm(c: &mut Criterion) {
    use vmcw_consolidation::planner::PackingAlgorithm;
    let input = bench_input(DataCenterId::Banking, 0.15, 14, 2, 42);
    let mut group = c.benchmark_group("ablate-packing");
    group.sample_size(10);
    for (label, packing) in [
        ("ffd", PackingAlgorithm::FirstFitDecreasing),
        ("bfd", PackingAlgorithm::BestFitDecreasing),
    ] {
        let mut planner = Planner::baseline();
        planner.packing = packing;
        let hosts = planner
            .plan_semi_static(&input)
            .expect("plan")
            .provisioned_hosts();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label}->{hosts}hosts")),
            &planner,
            |b, planner| b.iter(|| black_box(planner.plan_semi_static(&input).expect("plan"))),
        );
    }
    group.finish();
}

fn ablate_stochastic_variant(c: &mut Criterion) {
    use vmcw_consolidation::planner::StochasticVariant;
    let input = bench_input(DataCenterId::Banking, 0.1, 14, 2, 42);
    let mut group = c.benchmark_group("ablate-stochastic-variant");
    group.sample_size(10);
    for (label, variant) in [
        ("peak-clustering", StochasticVariant::PeakClustering),
        ("correlation-aware", StochasticVariant::CorrelationAware),
    ] {
        let mut planner = Planner::baseline();
        planner.stochastic_variant = variant;
        let hosts = planner
            .plan_stochastic(&input)
            .expect("plan")
            .provisioned_hosts();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label}->{hosts}hosts")),
            &planner,
            |b, planner| b.iter(|| black_box(planner.plan_stochastic(&input).expect("plan"))),
        );
    }
    group.finish();
}

fn ablate_power_curve(c: &mut Criterion) {
    use vmcw_cluster::power::{PowerCurve, PowerModel};
    use vmcw_emulator::engine::{emulate, EmulatorConfig};
    let input = bench_input(DataCenterId::Banking, 0.1, 14, 4, 42);
    let planner = Planner::baseline();
    let mut plan = planner.plan_dynamic(&input).expect("plan");
    let mut group = c.benchmark_group("ablate-power-curve");
    group.sample_size(10);
    for (label, curve) in [
        ("linear", PowerCurve::Linear),
        ("spec-like", PowerCurve::SpecLike),
    ] {
        // Rebuild the data center's hosts with the chosen power curve.
        let mut dc = vmcw_cluster::datacenter::DataCenter::new(
            vmcw_cluster::server::ServerModel {
                power: PowerModel::with_curve(210.0, 410.0, curve),
                ..vmcw_cluster::server::ServerModel::hs23_elite()
            },
            14,
            4,
        );
        for _ in 0..plan.dc.len() {
            dc.provision();
        }
        plan.dc = dc;
        let kwh = emulate(&input, &plan, &EmulatorConfig::default()).expect("emulation").energy_kwh;
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{label}->{kwh:.0}kwh")),
            &plan,
            |b, plan| b.iter(|| black_box(emulate(&input, plan, &EmulatorConfig::default()).expect("emulation"))),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    ablate_pcp_body,
    ablate_predictor,
    ablate_migration_cost,
    ablate_order_key,
    ablate_packing_algorithm,
    ablate_stochastic_variant,
    ablate_power_curve
);
criterion_main!(benches);
