//! Pre-copy live-migration model benchmarks (the §4.3 substrate).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vmcw_migration::cost::MigrationCostModel;
use vmcw_migration::precopy::{HostLoad, PrecopyConfig, VmMigrationProfile};
use vmcw_migration::reliability::derive_min_reservation;

fn bench_precopy(c: &mut Criterion) {
    let mut group = c.benchmark_group("precopy");
    let config = PrecopyConfig::gigabit();
    for (label, mem_mb, dirty) in [("small-idle", 2048.0, 20.0), ("large-busy", 32768.0, 600.0)] {
        let vm = VmMigrationProfile::new(mem_mb, dirty, mem_mb * 0.1);
        group.bench_with_input(BenchmarkId::from_parameter(label), &vm, |b, vm| {
            b.iter(|| black_box(config.simulate(vm, HostLoad::new(0.6, 0.7))));
        });
    }
    group.finish();
}

fn bench_cost_estimation(c: &mut Criterion) {
    let config = PrecopyConfig::gigabit();
    let model = MigrationCostModel::default_calibration();
    let vm = VmMigrationProfile::new(8192.0, 300.0, 1024.0);
    c.bench_function("migration-cost-estimate", |b| {
        b.iter(|| black_box(model.estimate(&config, &vm, HostLoad::new(0.7, 0.75))));
    });
}

fn bench_reservation_derivation(c: &mut Criterion) {
    let config = PrecopyConfig::gigabit();
    let vm = VmMigrationProfile::new(8192.0, 400.0, 1024.0);
    c.bench_function("derive-min-reservation", |b| {
        b.iter(|| black_box(derive_min_reservation(&config, &vm)));
    });
}

criterion_group!(
    benches,
    bench_precopy,
    bench_cost_estimation,
    bench_reservation_derivation
);
criterion_main!(benches);
