//! Synthetic-workload generator benchmarks (the trace substrate that
//! replaces the proprietary data-center traces).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};
use vmcw_trace::stats::Cdf;

fn bench_generate(c: &mut Criterion) {
    let mut group = c.benchmark_group("generate");
    group.sample_size(10);
    for dc in DataCenterId::ALL {
        let cfg = GeneratorConfig::new(dc).scale(0.1).days(30);
        group.bench_with_input(
            BenchmarkId::from_parameter(dc.industry()),
            &cfg,
            |b, cfg| {
                b.iter(|| black_box(cfg.generate(42)));
            },
        );
    }
    group.finish();
}

fn bench_cdf_construction(c: &mut Criterion) {
    let workload = GeneratorConfig::new(DataCenterId::Banking)
        .scale(0.2)
        .days(30)
        .generate(1);
    c.bench_function("cdf-peak-to-average", |b| {
        b.iter(|| {
            let cdf: Cdf = workload
                .servers
                .iter()
                .filter_map(|s| vmcw_trace::stats::peak_to_average(s.cpu_used_frac.values()))
                .collect();
            black_box(cdf)
        });
    });
}

criterion_group!(benches, bench_generate, bench_cdf_construction);
criterion_main!(benches);
