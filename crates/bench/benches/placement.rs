//! Placement-algorithm benchmarks: the three planners at data-center
//! scale. These regenerate the compute side of the paper's evaluation
//! (Fig 7 onwards is one `plan + emulate` per cell).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vmcw_bench::bench_input;
use vmcw_consolidation::planner::{Planner, PlannerKind};
use vmcw_trace::datacenters::DataCenterId;

fn bench_planners(c: &mut Criterion) {
    let mut group = c.benchmark_group("planners");
    group.sample_size(10);
    for dc in [DataCenterId::Banking, DataCenterId::Airlines] {
        let input = bench_input(dc, 0.25, 14, 7, 42);
        let planner = Planner::baseline();
        for kind in PlannerKind::EVALUATED {
            group.bench_with_input(
                BenchmarkId::new(kind.label(), format!("{dc:?}")),
                &input,
                |b, input| {
                    b.iter(|| black_box(planner.plan(kind, input).expect("plan")));
                },
            );
        }
    }
    group.finish();
}

fn bench_ffd_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("ffd-scaling");
    group.sample_size(10);
    for scale in [0.1, 0.25, 0.5] {
        let input = bench_input(DataCenterId::NaturalResources, scale, 10, 4, 7);
        let planner = Planner::baseline();
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{}vms", input.vms.len())),
            &input,
            |b, input| {
                b.iter(|| black_box(planner.plan_semi_static(input).expect("plan")));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_planners, bench_ffd_scaling);
criterion_main!(benches);
