//! Criterion mirror of `vmcw bench`: trace generation, each evaluated
//! planner, and plan replay, at the same scales the CLI harness uses —
//! so `cargo bench` numbers and `BENCH_*.json` numbers are directly
//! comparable (methodology: docs/PERFORMANCE.md).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use vmcw_bench::perf::{BENCH_DC, EVAL_DAYS, HISTORY_DAYS};
use vmcw_consolidation::input::{PlanningInput, VirtualizationModel};
use vmcw_consolidation::planner::{Planner, PlannerKind};
use vmcw_emulator::engine::{emulate, EmulatorConfig};
use vmcw_trace::datacenters::GeneratorConfig;

const SCALES: [f64; 2] = [0.1, 1.0];
const SEED: u64 = 42;

fn bench_trace_gen(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf-trace-gen");
    group.sample_size(10);
    for scale in SCALES {
        group.bench_with_input(BenchmarkId::from_parameter(scale), &(), |b, ()| {
            b.iter(|| {
                black_box(
                    GeneratorConfig::new(BENCH_DC)
                        .scale(scale)
                        .days(HISTORY_DAYS + EVAL_DAYS)
                        .generate(SEED),
                )
            });
        });
    }
    group.finish();
}

fn bench_planners(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf-planners");
    group.sample_size(10);
    for scale in SCALES {
        let input = vmcw_bench::bench_input(BENCH_DC, scale, HISTORY_DAYS, EVAL_DAYS, SEED);
        let planner = Planner::baseline();
        for kind in PlannerKind::EVALUATED {
            group.bench_with_input(
                BenchmarkId::from_parameter(format!("{}-{scale}", kind.label())),
                &(),
                |b, ()| {
                    b.iter(|| black_box(planner.plan(kind, &input).expect("plan")));
                },
            );
        }
    }
    group.finish();
}

fn bench_replay(c: &mut Criterion) {
    let mut group = c.benchmark_group("perf-replay");
    group.sample_size(10);
    for scale in SCALES {
        let workload = GeneratorConfig::new(BENCH_DC)
            .scale(scale)
            .days(HISTORY_DAYS + EVAL_DAYS)
            .generate(SEED);
        let input =
            PlanningInput::from_workload(&workload, HISTORY_DAYS, VirtualizationModel::baseline());
        let plan = Planner::baseline().plan_dynamic(&input).expect("plan");
        group.bench_with_input(BenchmarkId::from_parameter(scale), &(), |b, ()| {
            b.iter(|| black_box(emulate(&input, &plan, &EmulatorConfig::default()).expect("replay")));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_trace_gen, bench_planners, bench_replay);
criterion_main!(benches);
