//! End-to-end smoke tests of the `vmcw` CLI binary.

use std::path::PathBuf;
use std::process::Command;

fn vmcw() -> Command {
    Command::new(env!("CARGO_BIN_EXE_vmcw"))
}

fn trace_path() -> PathBuf {
    let dir = std::env::temp_dir().join("vmcw-cli-test");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("trace.csv")
}

fn generate() -> PathBuf {
    let path = trace_path();
    let out = vmcw()
        .args([
            "generate", "--dc", "beverage", "--scale", "0.03", "--days", "9", "--seed", "5",
            "--out",
        ])
        .arg(&path)
        .output()
        .expect("spawn vmcw");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    path
}

#[test]
fn generate_analyze_plan_pipeline() {
    let path = generate();
    assert!(path.exists());

    let analyze = vmcw().arg("analyze").arg(&path).args(["--dc", "beverage"]).output().unwrap();
    assert!(analyze.status.success());
    let stdout = String::from_utf8_lossy(&analyze.stdout);
    assert!(stdout.contains("peak/average"), "{stdout}");
    assert!(stdout.contains("corr. stability"));

    let plan = vmcw()
        .arg("plan")
        .arg(&path)
        .args(["--dc", "beverage", "--history-days", "6"])
        .output()
        .unwrap();
    assert!(plan.status.success());
    let stdout = String::from_utf8_lossy(&plan.stdout);
    assert!(stdout.contains("Semi-Static"), "{stdout}");
    assert!(stdout.contains("Dynamic"));
}

#[test]
fn estate_reports_fit_or_exhaustion() {
    let path = generate();
    let big = vmcw()
        .arg("estate")
        .arg(&path)
        .args(["--dc", "beverage", "--history-days", "6", "--hs23", "8"])
        .output()
        .unwrap();
    assert!(big.status.success());
    assert!(String::from_utf8_lossy(&big.stdout).contains("fits"));

    let tiny = vmcw()
        .arg("estate")
        .arg(&path)
        .args(["--dc", "beverage", "--history-days", "6", "--hs23", "1"])
        .output()
        .unwrap();
    assert!(tiny.status.success());
    let stdout = String::from_utf8_lossy(&tiny.stdout);
    assert!(stdout.contains("fits") || stdout.contains("exhausted"), "{stdout}");
}

#[test]
fn bad_arguments_fail_cleanly() {
    let none = vmcw().output().unwrap();
    assert!(!none.status.success());
    assert!(String::from_utf8_lossy(&none.stderr).contains("usage"));

    let unknown = vmcw().arg("frobnicate").output().unwrap();
    assert!(!unknown.status.success());

    let missing = vmcw().args(["generate", "--dc", "beverage"]).output().unwrap();
    assert!(!missing.status.success());
    assert!(String::from_utf8_lossy(&missing.stderr).contains("--out"));
}
