//! Shared helpers for the vmcw benchmark and figure-reproduction harness.

#![forbid(unsafe_code)]

pub mod load;
pub mod perf;

use vmcw_consolidation::input::{PlanningInput, VirtualizationModel};
use vmcw_trace::datacenters::{DataCenterId, GeneratorConfig};

/// Builds a planning input for benchmarking: `scale` of the Table 2
/// population, `history_days` + `eval_days` of trace.
#[must_use]
pub fn bench_input(
    dc: DataCenterId,
    scale: f64,
    history_days: usize,
    eval_days: usize,
    seed: u64,
) -> PlanningInput {
    let workload = GeneratorConfig::new(dc)
        .scale(scale)
        .days(history_days + eval_days)
        .generate(seed);
    PlanningInput::from_workload(&workload, history_days, VirtualizationModel::baseline())
}
