//! `vmcw` — consolidation-planning CLI over CSV traces.
//!
//! The workflow a consolidation engagement runs (§7: "a comprehensive
//! consolidation planning analysis prior to VM consolidation in the
//! wild"), each step a subcommand:
//!
//! ```text
//! vmcw generate --dc banking --scale 0.1 --days 44 --seed 42 --out trace.csv
//! vmcw analyze  trace.csv
//! vmcw plan     trace.csv --history-days 30 [--planner all] [--bound 0.8]
//! ```
//!
//! `analyze` and `plan` accept any CSV in the documented schema
//! (`vmcw_trace::io::HEADER`), so real monitored traces drop straight in.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use vmcw_cluster::server::ServerModel;
use vmcw_consolidation::planner::PlannerKind;
use vmcw_core::health::HealthSnapshot;
use vmcw_core::study::{Study, StudyConfig};
use vmcw_core::supervise::{
    resume_study_opts, run_study_opts, CancelToken, CellOutcome, CellRetryPolicy, ChaosConfig,
    RunOptions, StudyStatus, SuperviseError, StudySpec,
};
use vmcw_emulator::report;
use vmcw_trace::datacenters::{DataCenterId, GeneratedWorkload, GeneratorConfig};
use vmcw_trace::{analysis, io, stats};

const USAGE: &str = "\
usage:
  vmcw generate --dc <banking|airlines|natres|beverage> [--scale F] [--days N] [--seed N] --out FILE
  vmcw analyze <trace.csv> [--dc NAME]
  vmcw plan <trace.csv> [--dc NAME] [--history-days N] [--planner all|semi-static|stochastic|dynamic] [--bound F]
  vmcw compare <trace.csv> [--dc NAME] [--history-days N]
  vmcw drain <trace.csv> --host N [--dc NAME] [--history-days N] [--fabric 1gbe|10gbe]
  vmcw estate <trace.csv> --hs23 N [--hs22 M] [--dc NAME] [--history-days N]
  vmcw faults <trace.csv> [--dc NAME] [--history-days N] [--seed N] [--mtbf H] [--mttr H] [--mig-fail F] [--dropout F] [--thresholds on|off]
  vmcw study --out DIR [--jobs N] [--scale F] [--seed N] [--history-days N] [--eval-days N] [--faults on|off] [--ckpt-hours N] [--max-hours N] [--max-secs F] [--kill-after-hours N] [--max-retries N] [--heartbeat-timeout SECS]
  vmcw study --resume DIR [--jobs N] [--max-hours N] [--max-secs F] [--kill-after-hours N] [--max-retries N] [--heartbeat-timeout SECS]
  vmcw health DIR
  vmcw bench [--scale F[,F...]] [--seed N] [--out DIR]
  vmcw serve DIR [--port P] [--jobs N] [--queue N] [--breaker-trips K] [--breaker-cooldown SECS] [--default-deadline-ms N] [--max-retries N] [--heartbeat-timeout SECS] [--drain-grace SECS] [--seed N]
  vmcw load --port P --get PATH [--expect-status N] [--expect-body SUBSTR] [--retry-for SECS]
  vmcw load --port P --post PATH [--body JSON] [--expect-status N] [--expect-body SUBSTR]
  vmcw load --port P --rps R --duration SECS [--post PATH] [--body JSON] [--expect-shed N] [--expect-ok N]

exit codes: 0 success · 1 runtime failure · 2 bad arguments or unreadable input";

/// A CLI failure, split by whose fault it was: `Usage` (bad arguments,
/// missing or unreadable files — exit code 2) vs `Run` (the command
/// itself failed — exit code 1).
enum CliError {
    Usage(String),
    Run(String),
}

/// Bad arguments or unreadable input — the caller's fault, exit 2.
fn usage(msg: impl std::fmt::Display) -> CliError {
    CliError::Usage(msg.to_string())
}

/// The command itself failed while doing its work — exit 1. Every
/// fallible *runtime* operation must route here, never to [`usage`]:
/// a blanket `String -> Usage` conversion once sent genuine runtime
/// failures (e.g. an unwritable `--out` path) to exit code 2, which
/// breaks scripts that retry on 1 but give up on 2.
fn run_err(msg: impl std::fmt::Display) -> CliError {
    CliError::Run(msg.to_string())
}

fn parse_dc(name: &str) -> Result<DataCenterId, String> {
    match name.to_ascii_lowercase().as_str() {
        "banking" | "a" => Ok(DataCenterId::Banking),
        "airlines" | "b" => Ok(DataCenterId::Airlines),
        "natres" | "natural-resources" | "c" => Ok(DataCenterId::NaturalResources),
        "beverage" | "d" => Ok(DataCenterId::Beverage),
        other => Err(format!("unknown data center `{other}`")),
    }
}

#[derive(Debug)]
struct Args {
    positional: Vec<String>,
    flags: std::collections::BTreeMap<String, String>,
}

fn parse_args(args: &[String]) -> Result<Args, String> {
    let mut positional = Vec::new();
    let mut flags = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if let Some(name) = a.strip_prefix("--") {
            let value = it
                .next()
                .ok_or_else(|| format!("--{name} needs a value"))?
                .clone();
            flags.insert(name.to_owned(), value);
        } else {
            positional.push(a.clone());
        }
    }
    Ok(Args { positional, flags })
}

/// Routes one subcommand. Split from [`main`] so unit tests can drive
/// the dispatcher (and its exit-code classification) without a process.
fn dispatch(cmd: &str, rest: &[String]) -> Result<(), CliError> {
    match cmd {
        "generate" => cmd_generate(rest),
        "analyze" => cmd_analyze(rest),
        "plan" => cmd_plan(rest),
        "compare" => cmd_compare(rest),
        "drain" => cmd_drain(rest),
        "estate" => cmd_estate(rest),
        "faults" => cmd_faults(rest),
        "study" => cmd_study(rest),
        "health" => cmd_health(rest),
        "bench" => cmd_bench(rest),
        "serve" => cmd_serve(rest),
        "load" => cmd_load(rest),
        "--help" | "-h" | "help" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(CliError::Usage(format!("unknown subcommand `{other}`"))),
    }
}

/// Exit code for a dispatch result: 0 / 1 (runtime) / 2 (usage).
fn exit_code_for(result: &Result<(), CliError>) -> u8 {
    match result {
        Ok(()) => 0,
        Err(CliError::Run(_)) => 1,
        Err(CliError::Usage(_)) => 2,
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{USAGE}");
        return ExitCode::from(2);
    };
    let result = dispatch(cmd, rest);
    match &result {
        Ok(()) => {}
        Err(CliError::Run(msg)) => eprintln!("error: {msg}"),
        // Every usage failure — unknown subcommand, malformed flags,
        // missing arguments — prints the usage text so the caller can
        // self-correct, and exits 2 (never 1: scripts retry on 1).
        Err(CliError::Usage(msg)) => eprintln!("error: {msg}\n\n{USAGE}"),
    }
    ExitCode::from(exit_code_for(&result))
}

/// `vmcw study` — a crash-safe, resumable planner × data-center grid.
///
/// `--out DIR` starts a fresh study journaled to `DIR/journal.vmcwj`;
/// `--resume DIR` continues one after a crash or kill. The final
/// report of a resumed run is byte-identical to an uninterrupted one.
fn cmd_study(args: &[String]) -> Result<(), CliError> {
    let args = parse_args(args).map_err(usage)?;
    let token = CancelToken::new();
    // Two-strike shutdown, shared with `vmcw serve`: the first
    // SIGTERM/SIGINT cancels the token cooperatively — in-flight cells
    // checkpoint and the journal stays resumable — and the second
    // hard-exits (see vmcw_core::signals).
    if vmcw_core::signals::install() {
        let drain_token = token.clone();
        vmcw_core::signals::on_first_signal(move || {
            eprintln!(
                "signal received: checkpointing and stopping \
                 (resume with --resume; signal again to hard-exit)"
            );
            drain_token.cancel();
        });
    }
    if let Some(v) = args.flags.get("kill-after-hours") {
        token.cancel_after_hours(
            v.parse()
                .map_err(|e| usage(format!("bad --kill-after-hours: {e}")))?,
        );
    }
    let jobs: usize = args.flags.get("jobs").map_or(Ok(1), |v| {
        v.parse()
            .map_err(|e| format!("bad --jobs: {e}"))
            .and_then(|n: usize| {
                if n == 0 {
                    Err("--jobs must be at least 1".to_owned())
                } else {
                    Ok(n)
                }
            })
            .map_err(usage)
    })?;
    let mut retry = CellRetryPolicy::default_policy();
    if let Some(v) = args.flags.get("max-retries") {
        // --max-retries counts *re*-runs: 0 means a single attempt.
        let retries: usize = v
            .parse()
            .map_err(|e| usage(format!("bad --max-retries: {e}")))?;
        retry.max_attempts = retries + 1;
    }
    let heartbeat_timeout_secs = args
        .flags
        .get("heartbeat-timeout")
        .map(|v| {
            v.parse()
                .map_err(|e| format!("bad --heartbeat-timeout: {e}"))
                .and_then(|s: f64| {
                    if s.is_finite() && s > 0.0 {
                        Ok(s)
                    } else {
                        Err(format!("--heartbeat-timeout must be positive, got {s}"))
                    }
                })
                .map_err(usage)
        })
        .transpose()?;
    let chaos = ChaosConfig::from_env();
    if let Some(c) = &chaos {
        eprintln!(
            "chaos: injecting {} into cell {}/{} before hour {}{}",
            match c.mode {
                vmcw_core::supervise::ChaosMode::Panic => "a panic",
                vmcw_core::supervise::ChaosMode::Hang => "a hang",
            },
            c.dc,
            c.planner,
            c.hour,
            if c.one_shot { " (one-shot)" } else { "" }
        );
    }
    let opts = RunOptions {
        jobs,
        retry,
        heartbeat_timeout_secs,
        chaos,
    };
    let parse_budget = |args: &Args| -> Result<vmcw_core::supervise::CellBudget, CliError> {
        let mut budget = vmcw_core::supervise::CellBudget::unlimited();
        if let Some(v) = args.flags.get("max-hours") {
            budget.max_hours = Some(
                v.parse()
                    .map_err(|e| usage(format!("bad --max-hours: {e}")))?,
            );
        }
        if let Some(v) = args.flags.get("max-secs") {
            budget.max_wall_secs = Some(
                v.parse()
                    .map_err(|e| usage(format!("bad --max-secs: {e}")))?,
            );
        }
        Ok(budget)
    };
    let classify = |e: SuperviseError| match &e {
        SuperviseError::Journal(vmcw_core::journal::JournalError::AlreadyExists { .. })
        | SuperviseError::Journal(vmcw_core::journal::JournalError::BadMagic { .. })
        | SuperviseError::MissingConfig { .. }
        | SuperviseError::Spec { .. } => CliError::Usage(e.to_string()),
        SuperviseError::Journal(vmcw_core::journal::JournalError::Io { source, .. })
            if source.kind() == std::io::ErrorKind::NotFound =>
        {
            CliError::Usage(e.to_string())
        }
        _ => CliError::Run(e.to_string()),
    };

    let report = if let Some(dir) = args.flags.get("resume") {
        let budget = (args.flags.contains_key("max-hours")
            || args.flags.contains_key("max-secs"))
        .then(|| parse_budget(&args))
        .transpose()?;
        resume_study_opts(Path::new(dir), budget, &token, &opts).map_err(classify)?
    } else {
        let dir = args
            .flags
            .get("out")
            .ok_or_else(|| usage("--out DIR or --resume DIR is required"))?;
        let scale: f64 = args.flags.get("scale").map_or(Ok(0.1), |v| {
            v.parse().map_err(|e| usage(format!("bad --scale: {e}")))
        })?;
        let seed: u64 = args.flags.get("seed").map_or(Ok(42), |v| {
            v.parse().map_err(|e| usage(format!("bad --seed: {e}")))
        })?;
        let history_days: usize = args.flags.get("history-days").map_or(Ok(30), |v| {
            v.parse().map_err(|e| usage(format!("bad --history-days: {e}")))
        })?;
        let eval_days: usize = args.flags.get("eval-days").map_or(Ok(14), |v| {
            v.parse().map_err(|e| usage(format!("bad --eval-days: {e}")))
        })?;
        let mut spec = StudySpec::new(scale, seed, history_days, eval_days);
        if let Some(v) = args.flags.get("ckpt-hours") {
            spec.checkpoint_every_hours = v
                .parse()
                .map_err(|e| format!("bad --ckpt-hours: {e}"))
                .and_then(|n: usize| {
                    if n == 0 {
                        Err("--ckpt-hours must be at least 1".to_owned())
                    } else {
                        Ok(n)
                    }
                })
                .map_err(usage)?;
        }
        match args.flags.get("faults").map_or("off", String::as_str) {
            "on" => spec.faults = Some(vmcw_emulator::FaultConfig::baseline(seed)),
            "off" => {}
            other => return Err(usage(format!("bad --faults `{other}` (want on|off)"))),
        }
        spec.budget = parse_budget(&args)?;
        run_study_opts(&spec, Path::new(dir), &token, &opts).map_err(classify)?
    };

    println!(
        "{:<4} {:<12} {:<10} {:>6} {:>6}  note",
        "dc", "planner", "outcome", "hours", "hosts"
    );
    for cell in &report.cells {
        let (hours, hosts) = cell.report.as_ref().map_or_else(
            || ("-".to_owned(), "-".to_owned()),
            |r| (r.hours.to_string(), r.provisioned_hosts.to_string()),
        );
        let note = match &cell.outcome {
            CellOutcome::Completed => String::new(),
            CellOutcome::Degraded { reason, .. } => reason.clone(),
            CellOutcome::Aborted { error } => error.clone(),
            CellOutcome::Crashed { message, .. } => message.clone(),
            CellOutcome::Quarantined { attempts, .. } => {
                format!("quarantined after {attempts} attempt(s)")
            }
        };
        println!(
            "{:<4} {:<12} {:<10} {:>6} {:>6}  {}",
            cell.dc.letter(),
            cell.kind.label(),
            cell.outcome.label(),
            hours,
            hosts,
            note
        );
    }
    match report.status {
        StudyStatus::Completed => println!(
            "study completed: {} cell(s); results written next to the journal",
            report.cells.len()
        ),
        StudyStatus::Interrupted => println!(
            "study interrupted after {} finished cell(s); continue with `vmcw study --resume DIR`",
            report.cells.len()
        ),
    }
    if let Some(tail) = &report.tail_dropped {
        println!("note: discarded corrupt journal tail ({tail})");
    }
    // A quarantined cell means the study finished but is missing
    // results it was asked for — that's a runtime failure (exit 1), so
    // CI and scripts notice even though the sibling cells are intact.
    let quarantined: Vec<String> = report
        .cells
        .iter()
        .filter(|c| matches!(c.outcome, CellOutcome::Quarantined { .. }))
        .map(|c| format!("{}/{}", c.dc.letter(), c.kind.label()))
        .collect();
    if !quarantined.is_empty() {
        return Err(run_err(format!(
            "{} cell(s) quarantined after exhausting retries: {}",
            quarantined.len(),
            quarantined.join(", ")
        )));
    }
    Ok(())
}

/// `vmcw health DIR` — renders the study's `health.json` telemetry:
/// per-cell state, attempt, progress, heartbeat age and throughput.
/// Works on a live run (the supervisor rewrites the file atomically)
/// and on a dead one (the last snapshot is the post-mortem).
fn cmd_health(args: &[String]) -> Result<(), CliError> {
    let args = parse_args(args).map_err(usage)?;
    let dir = args
        .positional
        .first()
        .ok_or_else(|| usage("health needs a study directory"))?;
    let path = Path::new(dir).join(vmcw_core::health::HEALTH_FILE);
    let text = std::fs::read_to_string(&path)
        .map_err(|e| usage(format!("failed to read {}: {e}", path.display())))?;
    let snapshot = HealthSnapshot::parse(&text)
        .map_err(|e| run_err(format!("failed to parse {}: {e}", path.display())))?;
    println!("study status: {}", snapshot.status);
    println!(
        "{:<16} {:<12} {:>7} {:>11} {:>9} {:>10}  incidents",
        "cell", "state", "attempt", "hours", "beat_age", "steps/s"
    );
    for c in &snapshot.cells {
        println!(
            "{:<16} {:<12} {:>7} {:>5}/{:<5} {:>8.1}s {:>10.1}  {}",
            c.cell,
            c.state,
            c.attempt,
            c.hours_done,
            c.hours_total,
            c.beat_age_secs,
            c.steps_per_sec,
            c.incidents.len()
        );
        for incident in &c.incidents {
            println!("  ! {incident}");
        }
    }
    Ok(())
}

/// `vmcw bench` — the reproducible wall-clock harness: times trace
/// generation, each evaluated planner, and plan replay at each `--scale`
/// and writes `BENCH_emulator.json` / `BENCH_planners.json` to `--out`
/// (default: the current directory). Methodology: docs/PERFORMANCE.md.
fn cmd_bench(args: &[String]) -> Result<(), CliError> {
    let args = parse_args(args).map_err(usage)?;
    if !args.positional.is_empty() {
        return Err(usage(format!(
            "bench takes no positional arguments, got `{}`",
            args.positional[0]
        )));
    }
    let mut scales = vec![0.1, 1.0];
    if let Some(raw) = args.flags.get("scale") {
        scales = raw
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<f64>()
                    .map_err(|e| usage(format!("bad --scale `{s}`: {e}")))
                    .and_then(|v| {
                        if v > 0.0 && v.is_finite() {
                            Ok(v)
                        } else {
                            Err(usage(format!("--scale must be positive and finite, got {v}")))
                        }
                    })
            })
            .collect::<Result<Vec<f64>, CliError>>()?;
        if scales.is_empty() {
            return Err(usage("--scale needs at least one value"));
        }
    }
    let seed: u64 = match args.flags.get("seed") {
        Some(s) => s
            .parse()
            .map_err(|e| usage(format!("bad --seed `{s}`: {e}")))?,
        None => 42,
    };
    let out_dir = args.flags.get("out").map_or(".", String::as_str);

    let mut wrote = Vec::new();
    for (suite, file) in [
        (
            vmcw_bench::perf::run_emulator_suite(&scales, seed),
            "BENCH_emulator.json",
        ),
        (
            vmcw_bench::perf::run_planner_suite(&scales, seed),
            "BENCH_planners.json",
        ),
    ] {
        println!("suite {}:", suite.suite);
        for e in &suite.entries {
            println!(
                "  {:<14} scale {:<5} {:>9.3}s  ({} items)",
                e.stage, e.scale, e.seconds, e.items
            );
        }
        let path = Path::new(out_dir).join(file);
        // Writing results is runtime work: an unwritable --out is exit 1.
        std::fs::write(&path, suite.to_json())
            .map_err(|e| run_err(format!("failed to write {}: {e}", path.display())))?;
        wrote.push(path.display().to_string());
    }
    println!("wrote {}", wrote.join(" and "));
    Ok(())
}

fn cmd_generate(args: &[String]) -> Result<(), CliError> {
    let args = parse_args(args).map_err(usage)?;
    let dc = parse_dc(args.flags.get("dc").ok_or_else(|| usage("--dc is required"))?)
        .map_err(usage)?;
    let scale: f64 = args.flags.get("scale").map_or(Ok(1.0), |v| {
        v.parse().map_err(|e| usage(format!("bad --scale: {e}")))
    })?;
    let days: usize = args.flags.get("days").map_or(Ok(44), |v| {
        v.parse().map_err(|e| usage(format!("bad --days: {e}")))
    })?;
    let seed: u64 = args.flags.get("seed").map_or(Ok(42), |v| {
        v.parse().map_err(|e| usage(format!("bad --seed: {e}")))
    })?;
    let out = PathBuf::from(args.flags.get("out").ok_or_else(|| usage("--out is required"))?);
    let workload = GeneratorConfig::new(dc)
        .scale(scale)
        .days(days)
        .generate(seed);
    // Writing the output is runtime work: an unwritable path is exit 1,
    // not a usage error.
    io::save(&workload, &out)
        .map_err(|e| run_err(format!("failed to write {}: {e}", out.display())))?;
    println!(
        "wrote {} servers x {days} days of the {dc} workload to {}",
        workload.servers.len(),
        out.display()
    );
    Ok(())
}

fn load_trace(args: &Args) -> Result<GeneratedWorkload, String> {
    let path = args
        .positional
        .first()
        .ok_or("missing trace file argument")?;
    let dc = args
        .flags
        .get("dc")
        .map(|v| parse_dc(v))
        .transpose()?
        .unwrap_or(DataCenterId::Banking);
    io::load(dc, &PathBuf::from(path)).map_err(|e| e.to_string())
}

fn frac_above(samples: &[f64], x: f64) -> f64 {
    samples.iter().filter(|&&v| v > x).count() as f64 / samples.len().max(1) as f64
}

fn cmd_analyze(args: &[String]) -> Result<(), CliError> {
    let args = parse_args(args).map_err(usage)?;
    let w = load_trace(&args).map_err(usage)?;
    println!(
        "{} servers, {} days, mean CPU {:.2}%\n",
        w.servers.len(),
        w.days,
        w.mean_cpu_util_pct()
    );

    let mut cpu_pa = Vec::new();
    let mut cpu_cov = Vec::new();
    let mut mem_pa = Vec::new();
    for s in &w.servers {
        cpu_pa.extend(stats::peak_to_average(s.cpu_used_frac.values()));
        cpu_cov.extend(stats::coefficient_of_variability(s.cpu_used_frac.values()));
        mem_pa.extend(stats::peak_to_average(s.mem_used_mb.values()));
    }
    if let Some(s5) = stats::FiveNumberSummary::of(&cpu_pa) {
        println!(
            "CPU  peak/average : min {:.1} | q1 {:.1} | median {:.1} | q3 {:.1} | max {:.1}; {:.0}% of servers above 5",
            s5.min, s5.q1, s5.median, s5.q3, s5.max,
            frac_above(&cpu_pa, 5.0) * 100.0
        );
    }
    println!(
        "CPU  CoV          : {:.0}% of servers heavy-tailed (CoV >= 1)",
        frac_above(&cpu_cov, 1.0) * 100.0
    );
    println!(
        "mem  peak/average : {:.0}% of servers at or below 1.5",
        (1.0 - frac_above(&mem_pa, 1.5)) * 100.0
    );

    let cpu = w.aggregate_cpu_rpe2();
    let mem = w.aggregate_mem_mb();
    let ratios: Vec<f64> = cpu
        .iter()
        .zip(mem.iter())
        .filter(|&(_, m)| m > 0.0)
        .map(|(c, m)| c / (m / 1024.0))
        .collect();
    println!(
        "resource ratio    : median {:.0} RPE2/GB; above the HS23 blade's 160 for {:.0}% of hours",
        stats::percentile(&ratios, 50.0).unwrap_or(0.0),
        frac_above(&ratios, 160.0) * 100.0
    );

    let series: Vec<&vmcw_trace::series::TimeSeries> = w
        .servers
        .iter()
        .take(80)
        .map(|s| &s.cpu_used_frac)
        .collect();
    let stability = analysis::correlation_stability(&series, w.hours() / 2).unwrap_or(0.0);
    println!("corr. stability   : {stability:.3} (high values favour stochastic consolidation)");
    let hist = analysis::peak_hour_histogram(series.iter().copied());
    let peak_hour = (0..24).max_by_key(|&h| hist[h]).unwrap_or(0);
    println!("dominant peak hour: {peak_hour}:00");
    Ok(())
}

fn history_days_for(args: &Args, total_days: usize) -> Result<usize, String> {
    let days: usize = args
        .flags
        .get("history-days")
        .map_or(Ok(total_days.saturating_sub(total_days / 3).max(1)), |v| {
            v.parse().map_err(|e| format!("bad --history-days: {e}"))
        })?;
    if days >= total_days {
        return Err(format!(
            "--history-days {days} leaves no evaluation window in a {total_days}-day trace"
        ));
    }
    Ok(days)
}

fn cmd_compare(args: &[String]) -> Result<(), CliError> {
    use vmcw_core::study::{compare, Scenario};
    let args = parse_args(args).map_err(usage)?;
    let w = load_trace(&args).map_err(usage)?;
    let history_days = history_days_for(&args, w.days).map_err(usage)?;
    let config = StudyConfig {
        history_days,
        eval_days: w.days - history_days,
        ..StudyConfig::paper_baseline(w.dc, 0)
    };
    let study = Study::from_workload(&config, w);
    let baseline = vmcw_consolidation::planner::Planner::baseline();
    let rows = compare(
        &study,
        &[
            Scenario::new("semi-static", PlannerKind::SemiStatic, baseline),
            Scenario::new("stochastic (PCP)", PlannerKind::Stochastic, baseline),
            Scenario::new(
                "stochastic (corr)",
                PlannerKind::Stochastic,
                vmcw_consolidation::planner::Planner {
                    stochastic_variant:
                        vmcw_consolidation::planner::StochasticVariant::CorrelationAware,
                    ..baseline
                },
            ),
            Scenario::new("dynamic @U=0.8", PlannerKind::Dynamic, baseline),
            Scenario::new(
                "dynamic @U=1.0",
                PlannerKind::Dynamic,
                baseline.with_utilization_bound(1.0),
            ),
        ],
    )
    .map_err(|e| CliError::Run(e.to_string()))?;
    println!(
        "{:<18} {:>7} {:>11} {:>12} {:>12}",
        "scenario", "hosts", "energy_kwh", "migrations", "contention"
    );
    for r in rows {
        println!(
            "{:<18} {:>7} {:>11.1} {:>12} {:>11.4}%",
            r.label,
            r.hosts,
            r.energy_kwh,
            r.migrations,
            r.contention_fraction * 100.0
        );
    }
    Ok(())
}

fn cmd_drain(args: &[String]) -> Result<(), CliError> {
    use vmcw_consolidation::drain::plan_drain;
    use vmcw_migration::precopy::PrecopyConfig;
    let args = parse_args(args).map_err(usage)?;
    let w = load_trace(&args).map_err(usage)?;
    let history_days = history_days_for(&args, w.days).map_err(usage)?;
    let host: u32 = args
        .flags
        .get("host")
        .ok_or_else(|| usage("--host is required"))?
        .parse()
        .map_err(|e| usage(format!("bad --host: {e}")))?;
    let fabric = match args.flags.get("fabric").map_or("1gbe", String::as_str) {
        "1gbe" => PrecopyConfig::gigabit(),
        "10gbe" => PrecopyConfig::ten_gigabit(),
        other => return Err(usage(format!("unknown --fabric `{other}`"))),
    };
    let config = StudyConfig {
        history_days,
        eval_days: w.days - history_days,
        ..StudyConfig::paper_baseline(w.dc, 0)
    };
    let study = Study::from_workload(&config, w);
    let plan = config
        .planner
        .plan_stochastic(study.input())
        .map_err(|e| CliError::Run(e.to_string()))?;
    let placement = plan.placements.at_hour(0);
    let host = vmcw_cluster::datacenter::HostId(host);
    let drain = plan_drain(
        study.input(),
        placement,
        host,
        &plan.dc,
        0,
        (1.0, 1.0),
        &fabric,
    )
    .map_err(|e| CliError::Run(e.to_string()))?;
    println!(
        "drain of {host}: {} migrations, {:.1} min, {:.0} MB moved, {} failed",
        drain.moves.len(),
        drain.duration_secs() / 60.0,
        drain.schedule.total_copied_mb(),
        drain.schedule.failed()
    );
    for (vm, dest) in &drain.moves {
        println!("  {vm} -> {dest}");
    }
    Ok(())
}

fn cmd_estate(args: &[String]) -> Result<(), CliError> {
    use vmcw_consolidation::ffd::OrderKey;
    use vmcw_consolidation::fixed_pool::{pack_fixed, FixedPoolError};
    use vmcw_consolidation::sizing::SizingFunction;
    let args = parse_args(args).map_err(usage)?;
    let w = load_trace(&args).map_err(usage)?;
    let history_days = history_days_for(&args, w.days).map_err(usage)?;
    let hs23: u32 = args
        .flags
        .get("hs23")
        .ok_or_else(|| usage("--hs23 is required"))?
        .parse()
        .map_err(|e| usage(format!("bad --hs23: {e}")))?;
    let hs22: u32 = args.flags.get("hs22").map_or(Ok(0), |v| {
        v.parse().map_err(|e| usage(format!("bad --hs22: {e}")))
    })?;
    let config = StudyConfig {
        history_days,
        eval_days: w.days - history_days,
        ..StudyConfig::paper_baseline(w.dc, 0)
    };
    let study = Study::from_workload(&config, w);
    let input = study.input();
    let demands = input
        .vms
        .iter()
        .map(|t| {
            (
                t.vm.id,
                t.size_over(input.history_range(), SizingFunction::Max),
            )
        })
        .collect();
    let net = input.net_demands();
    let mut inventory = vec![(ServerModel::hs23_elite(), hs23)];
    if hs22 > 0 {
        inventory.push((ServerModel::hs22(), hs22));
    }
    let estate = vmcw_cluster::datacenter::DataCenter::heterogeneous(&inventory, 14, 4);
    match pack_fixed(
        &demands,
        &net,
        &estate,
        &input.constraints,
        (1.0, 1.0),
        OrderKey::Dominant,
    ) {
        Ok(fit) => {
            println!(
                "fits: {} VMs across {} hosts; {} hosts left empty",
                input.vms.len(),
                estate.len() - fit.empty_hosts.len(),
                fit.empty_hosts.len()
            );
            Ok(())
        }
        Err(FixedPoolError::PoolExhausted { vm, demand }) => {
            println!("exhausted: first stranded VM {vm} needs {demand}");
            Ok(())
        }
        Err(e) => Err(CliError::Run(e.to_string())),
    }
}

fn cmd_faults(args: &[String]) -> Result<(), CliError> {
    use vmcw_emulator::FaultConfig;
    let args = parse_args(args).map_err(usage)?;
    let w = load_trace(&args).map_err(usage)?;
    let history_days = history_days_for(&args, w.days).map_err(usage)?;
    let seed: u64 = args.flags.get("seed").map_or(Ok(42), |v| {
        v.parse().map_err(|e| usage(format!("bad --seed: {e}")))
    })?;
    let mut faults = FaultConfig::baseline(seed);
    let float_flag = |name: &str, slot: &mut f64| -> Result<(), CliError> {
        if let Some(v) = args.flags.get(name) {
            *slot = v
                .parse()
                .map_err(|e| usage(format!("bad --{name}: {e}")))?;
        }
        Ok(())
    };
    float_flag("mtbf", &mut faults.host_mtbf_hours)?;
    float_flag("mttr", &mut faults.host_mttr_hours)?;
    float_flag("mig-fail", &mut faults.migration_failure_prob)?;
    float_flag("dropout", &mut faults.trace_dropout_prob)?;
    faults.enforce_reliability_thresholds =
        match args.flags.get("thresholds").map_or("on", String::as_str) {
            "on" => true,
            "off" => false,
            other => return Err(usage(format!("bad --thresholds `{other}` (want on|off)"))),
        };
    faults.validate().map_err(usage)?;

    let config = StudyConfig {
        history_days,
        eval_days: w.days - history_days,
        ..StudyConfig::paper_baseline(w.dc, 0)
    };
    let study = Study::from_workload(&config, w);
    println!(
        "fault replay: seed {seed}, MTBF {:.0}h, MTTR {:.0}h, migration failure {:.1}%, dropout {:.1}%\n\
         same seed => same fault timeline for every planner\n",
        faults.host_mtbf_hours,
        faults.host_mttr_hours,
        faults.migration_failure_prob * 100.0,
        faults.trace_dropout_prob * 100.0,
    );
    println!(
        "{:<12} {:>7} {:>11} {:>8} {:>7} {:>10} {:>9} {:>8} {:>10} {:>7}",
        "planner",
        "hosts",
        "energy_kwh",
        "crashes",
        "evacs",
        "down_vm_h",
        "mig_fail",
        "retries",
        "abandoned",
        "stale_h"
    );
    for kind in PlannerKind::EVALUATED {
        let run = study.run_faulted(kind, &faults).map_err(|e| CliError::Run(e.to_string()))?;
        let f = run.report.faults;
        println!(
            "{:<12} {:>7} {:>11.1} {:>8} {:>7} {:>10} {:>9} {:>8} {:>10} {:>7}",
            kind.label(),
            run.cost.provisioned_hosts,
            run.cost.energy_kwh,
            f.host_crashes,
            f.evacuations,
            f.downtime_vm_hours,
            f.failed_migrations,
            f.retried_migrations,
            f.abandoned_migrations,
            f.stale_sample_hours,
        );
    }
    Ok(())
}

fn cmd_plan(args: &[String]) -> Result<(), CliError> {
    let args = parse_args(args).map_err(usage)?;
    let w = load_trace(&args).map_err(usage)?;
    let history_days = history_days_for(&args, w.days).map_err(usage)?;
    let bound: f64 = args.flags.get("bound").map_or(Ok(0.8), |v| {
        v.parse().map_err(|e| usage(format!("bad --bound: {e}")))
    })?;
    let which = args.flags.get("planner").map_or("all", String::as_str);

    let mut config = StudyConfig {
        history_days,
        eval_days: w.days - history_days,
        ..StudyConfig::paper_baseline(w.dc, 0)
    };
    config.planner = config.planner.with_utilization_bound(bound);
    let study = Study::from_workload(&config, w);

    let kinds: Vec<PlannerKind> = match which {
        "all" => PlannerKind::EVALUATED.to_vec(),
        "semi-static" => vec![PlannerKind::SemiStatic],
        "stochastic" => vec![PlannerKind::Stochastic],
        "dynamic" => vec![PlannerKind::Dynamic],
        "static" => vec![PlannerKind::Static],
        other => return Err(usage(format!("unknown --planner `{other}`"))),
    };

    println!(
        "planning {} VMs, {history_days}d history + {}d evaluation, utilization bound {bound}\n",
        study.input().vms.len(),
        config.eval_days
    );
    println!(
        "{:<12} {:>7} {:>11} {:>12} {:>12} {:>14}",
        "planner", "hosts", "energy_kwh", "migrations", "contention", "mean_active"
    );
    for kind in kinds {
        let run = study.run(kind).map_err(|e| CliError::Run(e.to_string()))?;
        println!(
            "{:<12} {:>7} {:>11.1} {:>12} {:>11.4}% {:>14.1}",
            kind.label(),
            run.cost.provisioned_hosts,
            run.cost.energy_kwh,
            run.report.migrations,
            report::contention_time_fraction(&run.report) * 100.0,
            run.report.mean_active_hosts(),
        );
    }
    Ok(())
}

/// `vmcw serve DIR` — the long-running service mode: bounded admission
/// queue with load shedding, per-request deadlines, a circuit breaker
/// and graceful drain on SIGTERM/SIGINT. Blocks until drained.
fn cmd_serve(args: &[String]) -> Result<(), CliError> {
    use vmcw_core::serve::{ServeConfig, ServeError, Server};
    let args = parse_args(args).map_err(usage)?;
    let dir = args
        .positional
        .first()
        .ok_or_else(|| usage("serve needs a state directory"))?;
    let port: u16 = args.flags.get("port").map_or(Ok(0), |v| {
        v.parse().map_err(|e| usage(format!("bad --port: {e}")))
    })?;
    let mut config = ServeConfig::new(dir, port);
    let positive_usize = |name: &str, slot: &mut usize| -> Result<(), CliError> {
        if let Some(v) = args.flags.get(name) {
            *slot = v
                .parse()
                .map_err(|e| format!("bad --{name}: {e}"))
                .and_then(|n: usize| {
                    if n == 0 {
                        Err(format!("--{name} must be at least 1"))
                    } else {
                        Ok(n)
                    }
                })
                .map_err(usage)?;
        }
        Ok(())
    };
    positive_usize("jobs", &mut config.workers)?;
    positive_usize("queue", &mut config.queue_depth)?;
    positive_usize("breaker-trips", &mut config.breaker_trip_after)?;
    if let Some(v) = args.flags.get("breaker-cooldown") {
        config.breaker_cooldown_secs = v
            .parse()
            .map_err(|e| usage(format!("bad --breaker-cooldown: {e}")))?;
    }
    if let Some(v) = args.flags.get("default-deadline-ms") {
        config.default_deadline_ms = Some(
            v.parse()
                .map_err(|e| usage(format!("bad --default-deadline-ms: {e}")))?,
        );
    }
    if let Some(v) = args.flags.get("seed") {
        config.seed = v
            .parse()
            .map_err(|e| usage(format!("bad --seed: {e}")))?;
    }
    if let Some(v) = args.flags.get("max-retries") {
        let retries: usize = v
            .parse()
            .map_err(|e| usage(format!("bad --max-retries: {e}")))?;
        config.retry.max_attempts = retries + 1;
    }
    if let Some(v) = args.flags.get("heartbeat-timeout") {
        config.heartbeat_timeout_secs = Some(
            v.parse()
                .map_err(|e| usage(format!("bad --heartbeat-timeout: {e}")))?,
        );
    }
    if let Some(v) = args.flags.get("drain-grace") {
        config.drain_grace_secs = v
            .parse()
            .map_err(|e| usage(format!("bad --drain-grace: {e}")))?;
    }
    config.chaos = ChaosConfig::from_env();

    let server = Server::bind(config).map_err(|e| match e {
        ServeError::Config { .. } => usage(e),
        ServeError::Io { .. } => run_err(e),
    })?;
    println!(
        "vmcw serve: listening on 127.0.0.1:{} (POST /v1/plan, POST /v1/replay, \
         GET /v1/jobs/<id>, GET /healthz, GET /readyz)",
        server.port()
    );
    if vmcw_core::signals::install() {
        let handle = server.drain_handle();
        vmcw_core::signals::on_first_signal(move || {
            eprintln!("signal received: draining (signal again to hard-exit)");
            handle.drain();
        });
    } else {
        eprintln!("note: no signal support on this target; stop by draining manually");
    }
    server.join();
    println!("vmcw serve: drained cleanly");
    Ok(())
}

/// `vmcw load` — the included load client: one-shot requests with
/// status/body assertions (optionally retried for a bounded window, so
/// CI can wait for boot or job completion) and a fixed-rate flood mode
/// for overload tests.
fn cmd_load(args: &[String]) -> Result<(), CliError> {
    use vmcw_bench::load::{flood, request};
    let args = parse_args(args).map_err(usage)?;
    let port: u16 = args
        .flags
        .get("port")
        .ok_or_else(|| usage("--port is required"))?
        .parse()
        .map_err(|e| usage(format!("bad --port: {e}")))?;
    let expect_status: Option<u16> = args
        .flags
        .get("expect-status")
        .map(|v| v.parse().map_err(|e| usage(format!("bad --expect-status: {e}"))))
        .transpose()?;
    let expect_body = args.flags.get("expect-body");
    let default_body = "{\"dcs\": \"A\", \"planners\": [\"Semi-Static\"], \
                        \"scale\": 0.02, \"history_days\": 2, \"eval_days\": 1}";
    let body = args.flags.get("body").map_or(default_body, String::as_str);

    if let Some(rps) = args.flags.get("rps") {
        // Flood mode.
        let rps: u32 = rps.parse().map_err(|e| usage(format!("bad --rps: {e}")))?;
        let duration: f64 = args
            .flags
            .get("duration")
            .ok_or_else(|| usage("--rps needs --duration SECS"))?
            .parse()
            .map_err(|e| usage(format!("bad --duration: {e}")))?;
        let path = args.flags.get("post").map_or("/v1/plan", String::as_str);
        let report = flood(port, path, body, rps, duration);
        println!("{}", report.summary());
        if let Some(v) = args.flags.get("expect-shed") {
            let want: usize = v
                .parse()
                .map_err(|e| usage(format!("bad --expect-shed: {e}")))?;
            if report.count(503) < want {
                return Err(run_err(format!(
                    "expected at least {want} shed (503) responses, saw {}",
                    report.count(503)
                )));
            }
        }
        if let Some(v) = args.flags.get("expect-ok") {
            let want: usize = v
                .parse()
                .map_err(|e| usage(format!("bad --expect-ok: {e}")))?;
            if report.count(200) < want {
                return Err(run_err(format!(
                    "expected at least {want} 200 responses, saw {}",
                    report.count(200)
                )));
            }
        }
        return Ok(());
    }

    // One-shot mode: --get PATH or --post PATH, optionally retried
    // until the expectations hold.
    let (method, path) = if let Some(p) = args.flags.get("get") {
        ("GET", p.as_str())
    } else if let Some(p) = args.flags.get("post") {
        ("POST", p.as_str())
    } else {
        return Err(usage("load needs --get PATH, --post PATH or --rps R"));
    };
    let retry_for: f64 = args.flags.get("retry-for").map_or(Ok(0.0), |v| {
        v.parse().map_err(|e| usage(format!("bad --retry-for: {e}")))
    })?;
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs_f64(retry_for);
    let meets = |status: u16, text: &str| {
        expect_status.is_none_or(|want| status == want)
            && expect_body.is_none_or(|want| text.contains(want.as_str()))
    };
    loop {
        let outcome = request(port, method, path, if method == "GET" { "" } else { body });
        let done = match &outcome {
            Ok(reply) => meets(reply.status, &reply.body),
            Err(_) => false,
        };
        if done {
            let reply = outcome.expect("checked above");
            println!("{} {} -> {} {}", method, path, reply.status, reply.body);
            return Ok(());
        }
        if std::time::Instant::now() >= deadline {
            return match outcome {
                Ok(reply) => Err(run_err(format!(
                    "{method} {path} -> {} {} (expectation not met)",
                    reply.status, reply.body
                ))),
                Err(e) => Err(run_err(format!("{method} {path}: {e}"))),
            };
        }
        std::thread::sleep(std::time::Duration::from_millis(250));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| (*s).to_owned()).collect()
    }

    #[test]
    fn parse_args_splits_positionals_and_flags() {
        let args = parse_args(&argv(&["trace.csv", "--dc", "banking", "--seed", "7"])).unwrap();
        assert_eq!(args.positional, vec!["trace.csv"]);
        assert_eq!(args.flags.get("dc").map(String::as_str), Some("banking"));
        assert_eq!(args.flags.get("seed").map(String::as_str), Some("7"));
    }

    #[test]
    fn parse_args_rejects_a_flag_without_a_value() {
        let err = parse_args(&argv(&["--out"])).unwrap_err();
        assert!(err.contains("--out needs a value"), "{err}");
    }

    #[test]
    fn unknown_subcommand_is_a_usage_error_exit_2() {
        let result = dispatch("frobnicate", &[]);
        assert_eq!(exit_code_for(&result), 2);
        let Err(CliError::Usage(msg)) = result else {
            panic!("expected a usage error");
        };
        assert!(msg.contains("frobnicate"), "{msg}");
    }

    #[test]
    fn malformed_flags_are_usage_errors_exit_2() {
        // A flag missing its value, through the real dispatcher.
        assert_eq!(exit_code_for(&dispatch("study", &argv(&["--out"]))), 2);
        // A flag with an unparsable value.
        assert_eq!(
            exit_code_for(&dispatch(
                "study",
                &argv(&["--out", "/tmp/x", "--jobs", "zero"])
            )),
            2
        );
        assert_eq!(
            exit_code_for(&dispatch("serve", &argv(&["/tmp/x", "--port", "notaport"]))),
            2
        );
        assert_eq!(exit_code_for(&dispatch("load", &argv(&[]))), 2);
    }

    #[test]
    fn runtime_failures_exit_1_and_success_exits_0() {
        assert_eq!(exit_code_for(&Ok(())), 0);
        assert_eq!(exit_code_for(&Err(run_err("boom"))), 1);
        assert_eq!(exit_code_for(&Err(usage("bad"))), 2);
    }

    #[test]
    fn help_is_success() {
        assert_eq!(exit_code_for(&dispatch("help", &[])), 0);
    }
}
